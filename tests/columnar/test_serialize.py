"""Round-trip tests for table serialisation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.columnar.schema import DataType, Field, Schema
from repro.columnar.serialize import deserialize_table, serialize_table
from repro.columnar.table import Column, Table
from repro.errors import SchemaError


def sample_table() -> Table:
    schema = Schema([
        Field("id", DataType.INT64),
        Field("price", DataType.DECIMAL, decimal_scale=2),
        Field("flag", DataType.BOOL),
        Field("name", DataType.STRING),
    ])
    return Table(schema, [
        Column.from_values(schema[0], [1, None, 3]),
        Column.from_values(schema[1], [100, 250, None]),
        Column.from_values(schema[2], [True, False, True]),
        Column.from_values(schema[3], ["a", "", None]),
    ])


class TestRoundTrip:
    def test_sample(self):
        table = sample_table()
        rebuilt = deserialize_table(serialize_table(table))
        assert rebuilt.schema == table.schema
        assert rebuilt.to_pylist() == table.to_pylist()

    def test_empty_table(self):
        schema = Schema([Field("x", DataType.INT32)])
        table = Table(schema, [Column.from_values(schema[0], [])])
        rebuilt = deserialize_table(serialize_table(table))
        assert rebuilt.num_rows == 0

    def test_parse_result_roundtrip(self):
        from repro import parse_bytes
        table = parse_bytes(b'a,1\n"x,y",2\n').table
        rebuilt = deserialize_table(serialize_table(table))
        assert rebuilt.to_pylist() == table.to_pylist()

    @given(st.lists(st.one_of(st.none(),
                              st.text(max_size=10)), max_size=30),
           st.lists(st.one_of(st.none(),
                              st.integers(-(2 ** 31), 2 ** 31 - 1)),
                    max_size=30))
    def test_property_roundtrip(self, strings, ints):
        n = min(len(strings), len(ints))
        schema = Schema([Field("s", DataType.STRING),
                         Field("i", DataType.INT64)])
        table = Table(schema, [
            Column.from_values(schema[0], strings[:n]),
            Column.from_values(schema[1], ints[:n]),
        ])
        rebuilt = deserialize_table(serialize_table(table))
        assert rebuilt.to_pylist() == table.to_pylist()


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(SchemaError):
            deserialize_table(b"NOPE!" + b"\x00" * 20)

    def test_truncated(self):
        raw = serialize_table(sample_table())
        with pytest.raises(SchemaError):
            deserialize_table(raw[:len(raw) // 2])

    def test_trailing_garbage(self):
        raw = serialize_table(sample_table())
        with pytest.raises(SchemaError):
            deserialize_table(raw + b"x")
