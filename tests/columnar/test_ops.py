"""Tests for BufferColumn and the structural buffer operations."""

import numpy as np
import pytest

from repro.columnar.buffers import BufferColumn, pack_validity
from repro.columnar.ops import concat_buffers, slice_buffers, take_buffers
from repro.errors import ColumnarError


def fixed(values, mask=None):
    values = np.asarray(values, dtype=np.int64)
    mask = np.ones(values.size, dtype=bool) if mask is None \
        else np.asarray(mask, dtype=bool)
    return BufferColumn(values.size, pack_validity(mask), values)


def variable(strings):
    mask = np.array([s is not None for s in strings])
    payload = b"".join(s.encode() for s in strings if s is not None)
    lengths = [len(s.encode()) if s is not None else 0 for s in strings]
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    return BufferColumn(len(strings), pack_validity(mask),
                        np.frombuffer(payload, dtype=np.uint8).copy(),
                        offsets)


def materialise(column):
    mask = column.validity_mask()
    if column.offsets is None:
        return [int(v) if ok else None
                for v, ok in zip(column.values, mask)]
    view = memoryview(column.values.tobytes())
    return [bytes(view[int(column.offsets[i]):
                       int(column.offsets[i + 1])]).decode()
            if mask[i] else None for i in range(column.length)]


class TestBufferColumn:
    def test_geometry_validation(self):
        with pytest.raises(ColumnarError):
            BufferColumn(-1, np.zeros(0, dtype=np.uint8),
                         np.zeros(0, dtype=np.int64))
        with pytest.raises(ColumnarError):  # bitmap too short
            BufferColumn(9, np.zeros(1, dtype=np.uint8),
                         np.zeros(9, dtype=np.int64))
        with pytest.raises(ColumnarError):  # offsets wrong length
            BufferColumn(2, np.zeros(1, dtype=np.uint8),
                         np.zeros(4, dtype=np.uint8),
                         np.array([0, 4], dtype=np.int64))
        with pytest.raises(ColumnarError):  # offsets overrun values
            BufferColumn(1, np.zeros(1, dtype=np.uint8),
                         np.zeros(2, dtype=np.uint8),
                         np.array([0, 3], dtype=np.int64))

    def test_nbytes_and_width(self):
        col = variable(["ab", "c"])
        assert col.is_variable_width
        assert col.nbytes() == col.validity.nbytes \
            + col.offsets.nbytes + col.values.nbytes
        assert not fixed([1, 2]).is_variable_width


class TestTakeBuffers:
    def test_fixed_gather(self):
        col = fixed([10, 20, 30, 40], [True, False, True, True])
        out = take_buffers(col, np.array([3, 0, 1]))
        assert materialise(out) == [40, 10, None]

    def test_variable_gather(self):
        col = variable(["aa", None, "", "xyz"])
        out = take_buffers(col, np.array([3, 2, 0, 0]))
        assert materialise(out) == ["xyz", "", "aa", "aa"]
        assert int(out.offsets[0]) == 0

    def test_out_of_range(self):
        with pytest.raises(ColumnarError):
            take_buffers(fixed([1, 2]), np.array([2]))
        with pytest.raises(ColumnarError):
            take_buffers(fixed([1, 2]), np.array([-1]))


class TestSliceBuffers:
    def test_views_not_copies(self):
        col = variable(["aa", "b", "ccc", "d"])
        out = slice_buffers(col, 1, 3)
        assert materialise(out) == ["b", "ccc"]
        assert np.shares_memory(out.values, col.values)
        assert np.shares_memory(out.offsets, col.offsets)
        assert int(out.offsets[0]) == 2  # non-zero base, by design

    def test_unaligned_start_repacks_validity(self):
        col = fixed(list(range(20)), [i % 3 == 0 for i in range(20)])
        out = slice_buffers(col, 5, 13)
        assert materialise(out) == [v if v % 3 == 0 else None
                                    for v in range(5, 13)]

    def test_bounds_checked(self):
        with pytest.raises(ColumnarError):
            slice_buffers(fixed([1]), 0, 2)
        with pytest.raises(ColumnarError):
            slice_buffers(fixed([1]), -1, 1)


class TestConcatBuffers:
    def test_variable_rebase(self):
        parts = [variable(["aa", None]), variable([]),
                 slice_buffers(variable(["xx", "yy", "zz"]), 1, 3)]
        out = concat_buffers(parts)
        assert materialise(out) == ["aa", None, "yy", "zz"]
        assert int(out.offsets[0]) == 0
        assert int(out.offsets[-1]) == out.values.size

    def test_fixed_concat(self):
        out = concat_buffers([fixed([1, 2]), fixed([3], [False])])
        assert materialise(out) == [1, 2, None]

    def test_single_part_passthrough(self):
        col = variable(["a"])
        assert concat_buffers([col]) is col

    def test_mixed_width_rejected(self):
        with pytest.raises(ColumnarError):
            concat_buffers([fixed([1]), variable(["a"])])
        with pytest.raises(ColumnarError):
            concat_buffers([])
