"""Feather-style framed writer: round-trips, edge tables, guards.

Covers the ISSUE 6 serialisation surface: ``write_feather`` /
``read_feather`` round-trips (including the fig13 workload tables and
zero-copy sliced inputs), degenerate table shapes, foreign-endianness
buffers, length-field overflow guards and malformed-stream rejection for
both framings.
"""

import json
import struct

import numpy as np
import pytest

from repro import Dialect, ParseOptions, parse_bytes
from repro.columnar import (
    Column,
    DataType,
    Field,
    Schema,
    Table,
    deserialize_table,
    read_feather,
    serialize_table,
    write_feather,
)
from repro.columnar import serialize as serialize_mod
from repro.errors import ColumnarError
from repro.workloads import generate_taxi_like, generate_yelp_like

NO_CR = Dialect(strip_carriage_return=False)


def sample_table() -> Table:
    schema = Schema([
        Field("id", DataType.INT64),
        Field("price", DataType.DECIMAL, decimal_scale=2),
        Field("flag", DataType.BOOL),
        Field("name", DataType.STRING),
    ])
    return Table(schema, [
        Column.from_values(schema[0], [1, None, 3]),
        Column.from_values(schema[1], [100, 250, None]),
        Column.from_values(schema[2], [True, False, True]),
        Column.from_values(schema[3], ["a", "", None]),
    ])


def assert_roundtrip(table: Table) -> Table:
    rebuilt = read_feather(write_feather(table))
    assert rebuilt.schema == table.schema
    assert rebuilt.to_pylist() == table.to_pylist()
    rprw = deserialize_table(serialize_table(table))
    assert rprw.to_pylist() == table.to_pylist()
    return rebuilt


class TestFeatherRoundTrip:
    def test_sample(self):
        assert_roundtrip(sample_table())

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.feather"
        stream = write_feather(sample_table(), path)
        assert path.read_bytes() == stream
        assert read_feather(path) == read_feather(stream)

    @pytest.mark.parametrize("generate,seed", [
        (generate_yelp_like, 7), (generate_taxi_like, 11),
    ], ids=["yelp", "taxi"])
    def test_fig13_workload_tables(self, generate, seed):
        data = generate(64 * 1024, seed=seed)
        table = parse_bytes(data, ParseOptions(dialect=NO_CR)).table
        assert table.num_rows > 0
        assert_roundtrip(table)

    def test_sliced_table_roundtrip(self):
        """Zero-copy slices (non-zero offset base) canonicalise on write."""
        table = sample_table().slice(1, 3)
        rebuilt = assert_roundtrip(table)
        offsets = rebuilt.column("name").offsets
        assert int(offsets[0]) == 0

    def test_buffers_are_eight_byte_aligned(self):
        stream = write_feather(sample_table())
        header_len, = struct.unpack_from("<I", stream, 6)
        header = json.loads(stream[10:10 + header_len].decode("utf-8"))
        specs = [b for c in header["columns"] for b in c["buffers"]]
        assert specs
        for spec in specs:
            assert spec["offset"] % 8 == 0
            # dtype strings carry explicit endianness for multi-byte types.
            assert np.dtype(spec["dtype"]).byteorder in ("<", ">", "|", "=")


class TestEdgeTables:
    def test_zero_rows(self):
        schema = Schema([Field("s", DataType.STRING),
                         Field("i", DataType.INT32)])
        table = Table(schema, [Column.from_values(schema[0], []),
                               Column.from_values(schema[1], [])])
        rebuilt = assert_roundtrip(table)
        assert rebuilt.num_rows == 0

    def test_zero_columns(self):
        table = Table(Schema([]), [])
        rebuilt = assert_roundtrip(table)
        assert rebuilt.num_columns == 0
        assert rebuilt.num_rows == 0

    def test_all_null_columns(self):
        schema = Schema([Field("s", DataType.STRING),
                         Field("f", DataType.FLOAT64)])
        table = Table(schema, [
            Column.from_values(schema[0], [None, None, None]),
            Column.from_values(schema[1], [None, None, None]),
        ])
        rebuilt = assert_roundtrip(table)
        assert rebuilt.column("s").null_count == 3
        assert rebuilt.column("f").null_count == 3

    def test_empty_string_only_column(self):
        schema = Schema([Field("s", DataType.STRING)])
        table = Table(schema, [Column.from_values(schema[0], ["", "", ""])])
        rebuilt = assert_roundtrip(table)
        assert rebuilt.to_pylist() == [{"s": ""}] * 3

    def test_non_native_endian_buffers(self):
        """A header declaring ``>i8`` values is byteswapped on read."""
        schema = Schema([Field("x", DataType.INT64)])
        table = Table(schema, [Column.from_values(schema[0], [1, -2, 3])])
        stream = write_feather(table)
        header_len, = struct.unpack_from("<I", stream, 6)
        header_raw = stream[10:10 + header_len]
        header = json.loads(header_raw.decode("utf-8"))
        spec = next(b for b in header["columns"][0]["buffers"]
                    if b["kind"] == "values")
        assert np.dtype(spec["dtype"]) == np.dtype("<i8")
        # Byteswap the values buffer in place and flip the declared
        # order; "<i8" and ">i8" have equal length so offsets hold.
        lo, n = spec["offset"], spec["length"]
        swapped = np.frombuffer(stream, "<i8", count=n // 8,
                                offset=lo).byteswap().tobytes()
        foreign = (stream[:10]
                   + header_raw.replace(b'"<i8"', b'">i8"')
                   + stream[10 + header_len:lo] + swapped
                   + stream[lo + n:])
        assert foreign != stream
        rebuilt = read_feather(foreign)
        assert rebuilt.to_pylist() == table.to_pylist()


class TestGuards:
    def test_serialize_u32_overflow(self, monkeypatch):
        monkeypatch.setattr(serialize_mod, "_U32_MAX", 8)
        with pytest.raises(ColumnarError, match="u32 length field"):
            serialize_table(sample_table())

    def test_serialize_u64_overflow(self, monkeypatch):
        monkeypatch.setattr(serialize_mod, "_U64_MAX", 4)
        with pytest.raises(ColumnarError, match="u64 length field"):
            serialize_table(sample_table())

    def test_feather_header_overflow(self, monkeypatch):
        monkeypatch.setattr(serialize_mod, "_U32_MAX", 8)
        with pytest.raises(ColumnarError, match="u32 length field"):
            write_feather(sample_table())

    def test_feather_buffer_overflow(self, monkeypatch):
        monkeypatch.setattr(serialize_mod, "_U64_MAX", 4)
        with pytest.raises(ColumnarError, match="u64 length field"):
            write_feather(sample_table())

    def test_rprw_trailing_bytes(self):
        stream = serialize_table(sample_table())
        with pytest.raises(ColumnarError, match="trailing"):
            deserialize_table(stream + b"\x00")

    def test_feather_bad_magic(self):
        with pytest.raises(ColumnarError, match="bad magic"):
            read_feather(b"NOPE" + b"\x00" * 16)

    def test_feather_bad_version(self):
        stream = bytearray(write_feather(sample_table()))
        struct.pack_into("<H", stream, 4, 99)
        with pytest.raises(ColumnarError, match="version"):
            read_feather(bytes(stream))

    def test_feather_truncated(self):
        stream = write_feather(sample_table())
        with pytest.raises(ColumnarError):
            read_feather(stream[:-3])

    def test_feather_trailing_bytes(self):
        stream = write_feather(sample_table())
        with pytest.raises(ColumnarError, match="trailing or missing"):
            read_feather(stream + b"\x00" * 8)
