"""Tests for columns, tables and concatenation."""

import numpy as np
import pytest

from repro.columnar.buffers import ValidityBitmap
from repro.columnar.schema import DataType, Field, Schema
from repro.columnar.table import Column, Table, concat_tables
from repro.errors import SchemaError


class TestColumn:
    def test_fixed_width_from_values(self):
        col = Column.from_values(Field("x", DataType.INT64), [1, None, 3])
        assert col.to_list() == [1, None, 3]
        assert col.null_count == 1

    def test_string_from_values(self):
        col = Column.from_values(Field("s", DataType.STRING),
                                 ["ab", None, "", "xyz"])
        assert col.to_list() == ["ab", None, "", "xyz"]

    def test_string_requires_offsets(self):
        with pytest.raises(SchemaError):
            Column(Field("s", DataType.STRING),
                   np.zeros(0, dtype=np.uint8))

    def test_fixed_rejects_offsets(self):
        with pytest.raises(SchemaError):
            Column(Field("x", DataType.INT64),
                   np.zeros(1, dtype=np.int64),
                   offsets=np.array([0, 1], dtype=np.int64))

    def test_dtype_mismatch(self):
        with pytest.raises(SchemaError):
            Column(Field("x", DataType.INT64),
                   np.zeros(1, dtype=np.int32))

    def test_bool_materialisation(self):
        col = Column.from_values(Field("b", DataType.BOOL), [True, False])
        assert col.to_list() == [True, False]
        assert isinstance(col.value(0), bool)

    def test_float_materialisation(self):
        col = Column.from_values(Field("f", DataType.FLOAT64), [1.5])
        assert isinstance(col.value(0), float)

    def test_offsets_overrun(self):
        with pytest.raises(SchemaError):
            Column(Field("s", DataType.STRING),
                   np.zeros(2, dtype=np.uint8),
                   offsets=np.array([0, 5], dtype=np.int64))

    def test_equality(self):
        f = Field("x", DataType.INT64)
        assert Column.from_values(f, [1, 2]) == Column.from_values(f, [1, 2])
        assert Column.from_values(f, [1, 2]) != Column.from_values(f, [1, 3])


class TestTable:
    def make(self):
        schema = Schema([Field("a", DataType.INT64),
                         Field("b", DataType.STRING)])
        return Table(schema, [
            Column.from_values(schema[0], [1, 2]),
            Column.from_values(schema[1], ["x", None]),
        ])

    def test_shape(self):
        table = self.make()
        assert table.num_rows == 2
        assert table.num_columns == 2

    def test_row_access(self):
        assert self.make().row(1) == (2, None)

    def test_column_by_name(self):
        assert self.make().column("b").to_list() == ["x", None]

    def test_to_pylist(self):
        assert self.make().to_pylist() == [
            {"a": 1, "b": "x"}, {"a": 2, "b": None}]

    def test_length_mismatch(self):
        schema = Schema([Field("a", DataType.INT64),
                         Field("b", DataType.INT64)])
        with pytest.raises(SchemaError):
            Table(schema, [Column.from_values(schema[0], [1]),
                           Column.from_values(schema[1], [1, 2])])

    def test_schema_column_count_mismatch(self):
        schema = Schema([Field("a", DataType.INT64)])
        with pytest.raises(SchemaError):
            Table(schema, [])


class TestFilterSlice:
    def make(self, n: int) -> Table:
        schema = Schema([Field("i", DataType.INT64),
                         Field("s", DataType.STRING)])
        return Table(schema, [
            Column.from_values(schema[0], list(range(n))),
            Column.from_values(schema[1],
                               [None if i % 11 == 0 else f"v{i}"
                                for i in range(n)]),
        ])

    def test_filter_contents(self):
        table = self.make(50)
        mask = np.arange(50) % 7 == 0
        filtered = table.filter(mask)
        assert filtered.num_rows == int(mask.sum())
        assert filtered.to_pylist() == [
            row for row, keep in zip(table.to_pylist(), mask) if keep]

    def test_filter_mask_length_checked(self):
        with pytest.raises(SchemaError):
            self.make(5).filter(np.ones(4, dtype=bool))

    def test_slice_contents_and_views(self):
        table = self.make(50)
        sliced = table.slice(10, 20)
        assert sliced.num_rows == 10
        assert sliced.to_pylist() == table.to_pylist()[10:20]
        # Slices are views over the parent buffers, not copies.
        for parent, child in zip(table.columns, sliced.columns):
            assert np.shares_memory(child.data, parent.data)

    def test_filter_large_table_avoids_row_materialisation(self, monkeypatch):
        """Regression (ISSUE 6): filter/slice on a 6-digit-row table must
        be buffer gathers — never a ``Column.value`` call per row."""
        n = 100_000
        table = self.make(n)
        calls = {"value": 0}
        original = Column.value

        def counting_value(self, row):
            calls["value"] += 1
            return original(self, row)

        monkeypatch.setattr(Column, "value", counting_value)
        mask = np.arange(n) % 97 == 0
        filtered = table.filter(mask)
        sliced = table.slice(n // 2, n // 2 + 10)
        assert calls["value"] == 0
        assert filtered.num_rows == int(mask.sum())
        assert sliced.num_rows == 10
        monkeypatch.undo()
        assert filtered.column("i").value(1) == 97
        assert sliced.column("s").value(0) == f"v{n // 2}"


class TestConcatTables:
    def test_concat_roundtrip(self):
        schema = Schema([Field("a", DataType.INT64),
                         Field("s", DataType.STRING)])

        def table(rows):
            return Table(schema, [
                Column.from_values(schema[0], [r[0] for r in rows]),
                Column.from_values(schema[1], [r[1] for r in rows]),
            ])

        t1 = table([(1, "aa"), (2, None)])
        t2 = table([(3, "b")])
        t3 = table([])
        combined = concat_tables([t1, t2, t3])
        assert combined.to_pylist() == [
            {"a": 1, "s": "aa"}, {"a": 2, "s": None}, {"a": 3, "s": "b"}]

    def test_rejects_schema_mismatch(self):
        a = Table(Schema([Field("x", DataType.INT64)]),
                  [Column.from_values(Field("x", DataType.INT64), [1])])
        b = Table(Schema([Field("x", DataType.INT8)]),
                  [Column.from_values(Field("x", DataType.INT8), [1])])
        with pytest.raises(SchemaError):
            concat_tables([a, b])

    def test_rejects_empty_list(self):
        with pytest.raises(SchemaError):
            concat_tables([])

    def test_single_table_passthrough(self):
        schema = Schema([Field("x", DataType.INT64)])
        t = Table(schema, [Column.from_values(schema[0], [1])])
        assert concat_tables([t]) is t

    def test_rejects_accumulate(self):
        schema = Schema([Field("x", DataType.INT64)])
        col = Column.from_values(schema[0], [1])
        col.rejects = 2
        t = Table(schema, [col])
        combined = concat_tables([t, t])
        assert combined.total_rejects() == 4
