"""Tests for schemas and data types."""

import numpy as np
import pytest

from repro.columnar.schema import DataType, Field, Schema
from repro.errors import SchemaError


class TestDataType:
    def test_numpy_dtypes(self):
        assert DataType.INT64.numpy_dtype == np.dtype(np.int64)
        assert DataType.DATE.numpy_dtype == np.dtype(np.int32)
        assert DataType.DECIMAL.numpy_dtype == np.dtype(np.int64)

    def test_variable_width(self):
        assert DataType.STRING.is_variable_width
        assert not DataType.INT32.is_variable_width

    def test_classification(self):
        assert DataType.DECIMAL.is_numeric
        assert DataType.TIMESTAMP.is_temporal
        assert not DataType.STRING.is_numeric


class TestField:
    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Field("", DataType.INT64)

    def test_rejects_negative_scale(self):
        with pytest.raises(SchemaError):
            Field("x", DataType.DECIMAL, decimal_scale=-1)

    def test_defaults(self):
        f = Field("x", DataType.INT64)
        assert f.nullable and f.default is None


class TestSchema:
    def test_lookup(self):
        schema = Schema([Field("a", DataType.INT64),
                         Field("b", DataType.STRING)])
        assert schema.index_of("b") == 1
        assert schema["b"].dtype is DataType.STRING
        assert schema[0].name == "a"
        assert schema.names == ("a", "b")
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("a", DataType.INT64), Field("a", DataType.INT8)])

    def test_unknown_name(self):
        schema = Schema([Field("a", DataType.INT64)])
        with pytest.raises(SchemaError):
            schema.index_of("z")

    def test_select(self):
        schema = Schema([Field("a", DataType.INT64),
                         Field("b", DataType.STRING),
                         Field("c", DataType.BOOL)])
        projected = schema.select(["c", "a"])
        assert projected.names == ("c", "a")

    def test_of_types(self):
        schema = Schema.of_types([DataType.INT8, DataType.STRING])
        assert schema.names == ("col0", "col1")

    def test_all_strings(self):
        schema = Schema.all_strings(3)
        assert all(f.dtype is DataType.STRING for f in schema)

    def test_equality(self):
        a = Schema([Field("a", DataType.INT64)])
        b = Schema([Field("a", DataType.INT64)])
        c = Schema([Field("a", DataType.INT8)])
        assert a == b and a != c
