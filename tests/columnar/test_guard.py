"""Tests for the read-only guard and readonly-flag propagation.

The runtime twin of the parlint dataflow tier: with the guard enabled,
every zero-copy buffer handed out by the columnar layer must be
non-writeable, writes through it must raise, and materialisation points
(``concat_buffers``) must launder read-only parts into fresh owned
buffers.
"""

import numpy as np
import pytest

from repro.columnar import guard
from repro.columnar.buffers import BufferColumn, pack_validity
from repro.columnar.ops import concat_buffers, slice_buffers, take_buffers


@pytest.fixture
def guarded():
    was = guard.enabled()
    guard.enable()
    yield
    if not was:
        guard.disable()


@pytest.fixture
def unguarded():
    # Force-off: the core/kernels suites enable the guard session-wide,
    # and suite ordering must not change what these tests see.
    was = guard.enabled()
    guard.disable()
    yield
    if was:
        guard.enable()


def fixed(values):
    values = np.asarray(values, dtype=np.int64)
    return BufferColumn(values.size, pack_validity(
        np.ones(values.size, dtype=bool)), values)


def variable(strings):
    payload = b"".join(s.encode() for s in strings)
    lengths = [len(s.encode()) for s in strings]
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    return BufferColumn(len(strings), pack_validity(
        np.ones(len(strings), dtype=bool)),
        np.frombuffer(payload, dtype=np.uint8).copy(), offsets)


class TestProtect:
    def test_disabled_guard_is_identity(self, unguarded):
        arr = np.zeros(4)
        assert guard.protect(arr) is arr
        assert arr.flags.writeable

    def test_protect_returns_readonly_view(self, guarded):
        arr = np.arange(8)
        view = guard.protect(arr)
        assert not view.flags.writeable
        assert np.shares_memory(view, arr)
        # The caller's own array is untouched.
        assert arr.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 1

    def test_protect_passes_through_none_and_readonly(self, guarded):
        assert guard.protect(None) is None
        frozen = np.arange(4)
        frozen.setflags(write=False)
        assert guard.protect(frozen) is frozen


class TestSliceHandout:
    def test_slice_views_are_readonly_under_guard(self, guarded):
        column = variable(["alpha", "beta", "gamma"])
        view = slice_buffers(column, 1, 3)
        assert np.shares_memory(view.values, column.values)
        assert not view.values.flags.writeable
        assert not view.offsets.flags.writeable
        assert view.readonly
        with pytest.raises(ValueError):
            view.values[0] = 0
        # The source column's buffers stay writable.
        assert column.values.flags.writeable
        assert not column.readonly

    def test_slice_views_stay_writable_without_guard(self, unguarded):
        column = fixed([1, 2, 3, 4])
        view = slice_buffers(column, 1, 3)
        assert np.shares_memory(view.values, column.values)
        assert view.values.flags.writeable
        assert not view.readonly

    def test_take_is_owned_even_under_guard(self, guarded):
        column = variable(["alpha", "beta"])
        taken = take_buffers(column, np.array([1, 0]))
        assert not np.shares_memory(taken.values, column.values)
        assert taken.values.flags.writeable
        assert not taken.readonly


class TestConcatLaunders:
    def test_single_writable_part_passes_through(self):
        column = fixed([1, 2, 3])
        assert concat_buffers([column]) is column

    def test_single_readonly_part_is_copied_fresh(self, guarded):
        column = variable(["alpha", "beta", "gamma"])
        view = slice_buffers(column, 0, 3)
        assert view.readonly
        fresh = concat_buffers([view])
        assert not fresh.readonly
        assert fresh.values.flags.writeable
        assert fresh.offsets.flags.writeable
        assert not np.shares_memory(fresh.values, column.values)
        assert not np.shares_memory(fresh.offsets, column.offsets)
        assert fresh.values.tobytes() == view.values.tobytes()
        assert fresh.offsets.tolist() == view.offsets.tolist()
        fresh.values[0] = 0  # writable: must not raise

    def test_single_readonly_fixed_part_is_copied(self, guarded):
        column = fixed([1, 2, 3, 4])
        view = slice_buffers(column, 0, 4)
        fresh = concat_buffers([view])
        assert not np.shares_memory(fresh.values, column.values)
        assert fresh.values.flags.writeable
        assert fresh.offsets is None

    def test_multi_part_concat_is_owned_under_guard(self, guarded):
        column = variable(["alpha", "beta", "gamma", "delta"])
        parts = [slice_buffers(column, 0, 2), slice_buffers(column, 2, 4)]
        merged = concat_buffers(parts)
        assert not merged.readonly
        assert not np.shares_memory(merged.values, column.values)
        assert int(merged.offsets[0]) == 0


class TestReadonlyFlag:
    def test_frombuffer_of_bytes_is_readonly(self):
        column = BufferColumn(
            3, pack_validity(np.ones(3, dtype=bool)),
            np.frombuffer(b"abc", dtype=np.uint8),
            np.array([0, 1, 2, 3], dtype=np.int64))
        assert column.readonly

    def test_any_readonly_buffer_marks_the_column(self):
        offsets = np.array([0, 1, 2], dtype=np.int64)
        offsets.setflags(write=False)
        column = BufferColumn(
            2, pack_validity(np.ones(2, dtype=bool)),
            np.frombuffer(b"ab", dtype=np.uint8).copy(), offsets)
        assert column.readonly
