"""Tests for validity bitmaps (Arrow LSB-first packing)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.columnar.buffers import ValidityBitmap, pack_validity, \
    unpack_validity


class TestPacking:
    def test_lsb_first(self):
        # Arrow packs bit i of byte j as row 8j + i.
        packed = pack_validity(np.array([True, False, True]))
        assert packed.tolist() == [0b101]

    def test_multibyte(self):
        mask = np.array([True] * 9)
        packed = pack_validity(mask)
        assert packed.tolist() == [0xFF, 0x01]

    @given(hnp.arrays(np.bool_, st.integers(0, 100)))
    def test_roundtrip(self, mask):
        packed = pack_validity(mask)
        assert unpack_validity(packed, len(mask)).tolist() == mask.tolist()

    def test_unpack_too_short(self):
        with pytest.raises(ValueError):
            unpack_validity(np.array([1], dtype=np.uint8), 9)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            pack_validity(np.zeros((2, 2), dtype=bool))


class TestValidityBitmap:
    def test_bit_access(self):
        bitmap = ValidityBitmap.from_mask(np.array([True, False, True]))
        assert bitmap[0] and not bitmap[1] and bitmap[2]
        assert len(bitmap) == 3

    def test_out_of_range(self):
        bitmap = ValidityBitmap.all_valid(3)
        with pytest.raises(IndexError):
            bitmap[3]

    def test_null_count(self):
        bitmap = ValidityBitmap.from_mask(
            np.array([True, False, False, True]))
        assert bitmap.null_count() == 2

    def test_all_valid(self):
        bitmap = ValidityBitmap.all_valid(10)
        assert bitmap.null_count() == 0

    def test_equality_ignores_padding_bits(self):
        a = ValidityBitmap(np.array([0b00000101], dtype=np.uint8), 3)
        b = ValidityBitmap(np.array([0b11111101], dtype=np.uint8), 3)
        assert a == b

    def test_buffer_read_only(self):
        bitmap = ValidityBitmap.all_valid(8)
        with pytest.raises(ValueError):
            bitmap.buffer[0] = 0
