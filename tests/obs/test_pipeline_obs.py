"""Observability wired through the parse pipeline and both executors."""

import os

import pytest

from repro.core import ParPaRawParser, ParseOptions
from repro.core.parser import parse_bytes
from repro.exec import SerialExecutor, ShardedExecutor
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)

DATA = b"id,price,name\n1,2.5,ant\n2,99.125,bee\n3,0.25,cow\n" * 40


def parse_with_obs(executor=None, data=DATA, **options):
    tracer, metrics = Tracer(), MetricsRegistry()
    result = parse_bytes(data, executor=executor, tracer=tracer,
                         metrics=metrics, **options)
    return result, tracer, metrics


class TestSerialObservability:
    def test_stage_spans_nested_under_parse(self):
        _, tracer, _ = parse_with_obs()
        names = [s.name for s in tracer.spans]
        assert "parse" in names
        assert "executor:serial" in names
        for stage in ("chunk", "stv", "scan", "tag", "validate",
                      "partition", "convert"):
            assert f"stage:{stage}" in names
        parse_span = next(s for s in tracer.spans if s.name == "parse")
        for span in tracer.spans:
            assert parse_span.start <= span.start
            assert span.end <= parse_span.end

    def test_counters_describe_the_parse(self):
        result, _, metrics = parse_with_obs()
        assert metrics.counters["bytes.in"] == len(DATA)
        assert metrics.counters["records"] == result.num_records
        assert metrics.counters["rows"] == result.num_rows
        assert metrics.counters["records.rejected"] == \
            result.rejected_records
        assert metrics.counters["fields"] == \
            result.num_rows * result.table.num_columns
        assert metrics.gauges["columns"] == result.table.num_columns
        assert metrics.counters["bytes.out"] > 0

    def test_stage_durations_recorded(self):
        _, _, metrics = parse_with_obs()
        histograms = metrics.to_dict()["histograms"]
        for stage in ("chunk", "tag", "convert"):
            assert histograms[f"stage.{stage}.seconds"]["count"] == 1

    def test_disabled_by_default(self):
        parser = ParPaRawParser(ParseOptions())
        result = parser.parse(DATA)
        assert result.num_rows > 0
        assert parser.tracer.spans == []
        assert parser.tracer.enabled is False
        assert parser.metrics.enabled is False

    def test_trace_exports_valid(self):
        _, tracer, metrics = parse_with_obs()
        assert validate_chrome_trace(chrome_trace(tracer.spans,
                                                  metrics)) == []


class TestShardedObservability:
    @pytest.fixture()
    def sharded(self):
        executor = ShardedExecutor(workers=3, shard_bytes=200,
                                   use_processes=True)
        yield executor
        executor.close()

    def test_worker_spans_from_worker_pids(self, sharded):
        _, tracer, _ = parse_with_obs(executor=sharded)
        worker_spans = [s for s in tracer.spans
                        if s.name.startswith("worker:")]
        assert worker_spans
        worker_pids = {s.pid for s in worker_spans}
        assert os.getpid() not in worker_pids
        names = {s.name for s in tracer.spans}
        assert {"sharded:contexts", "sharded:combine",
                "sharded:tags"} <= names
        # Worker spans carry their shard index.
        shards = {s.attrs["shard"] for s in worker_spans}
        assert len(shards) > 1

    def test_worker_spans_share_the_parent_timeline(self, sharded):
        """perf_counter is system-wide on Linux: worker span intervals
        must fall inside the parent's enclosing phase spans."""
        _, tracer, _ = parse_with_obs(executor=sharded)
        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        (contexts_phase,) = by_name["sharded:contexts"]
        for span in by_name["worker:contexts"]:
            assert contexts_phase.start <= span.start
            assert span.end <= contexts_phase.end + 1e-3

    def test_inline_shards_observe_too(self):
        executor = ShardedExecutor(workers=2, shard_bytes=300,
                                   use_processes=False)
        try:
            _, tracer, metrics = parse_with_obs(executor=executor)
        finally:
            executor.close()
        assert any(s.name == "worker:tags" for s in tracer.spans)
        assert metrics.counters["worker.bytes"] == 2 * len(DATA)


class TestSerialShardedMetricParity:
    """The issue's acceptance bar: merged sharded metrics must match the
    serial counters — both schedules account every record exactly once."""

    PARITY_COUNTERS = ("bytes.in", "records", "records.rejected", "rows",
                      "fields", "bytes.out")

    @pytest.mark.parametrize("shard_bytes", [64, 200, 1000])
    def test_counters_equal(self, shard_bytes):
        _, _, serial = parse_with_obs(executor=SerialExecutor())
        executor = ShardedExecutor(workers=3, shard_bytes=shard_bytes,
                                   use_processes=True)
        try:
            _, _, sharded = parse_with_obs(executor=executor)
        finally:
            executor.close()
        for name in self.PARITY_COUNTERS:
            assert serial.counters.get(name) == sharded.counters.get(name)

    def test_durations_merge_within_tolerance(self):
        """Summed sharded stage durations stay in the same order of
        magnitude as the whole parse (they are wall-clock, so only a
        sanity bound is meaningful)."""
        executor = ShardedExecutor(workers=2, shard_bytes=400,
                                   use_processes=False)
        try:
            _, tracer, metrics = parse_with_obs(executor=executor)
        finally:
            executor.close()
        parse_span = next(s for s in tracer.spans if s.name == "parse")
        histograms = metrics.to_dict()["histograms"]
        worker_total = sum(h["total"] for n, h in histograms.items()
                           if n.startswith("worker."))
        assert 0 < worker_total <= parse_span.duration * 1.5

    def test_messy_input_parity(self):
        data = (b"a,b\n1,2\nrow,with,extra\nonly-one\n"
                b"3,4\n\n5,6\n" * 20)
        _, _, serial = parse_with_obs(executor=SerialExecutor(),
                                      data=data)
        executor = ShardedExecutor(workers=3, shard_bytes=77,
                                   use_processes=False)
        try:
            _, _, sharded = parse_with_obs(executor=executor, data=data)
        finally:
            executor.close()
        for name in self.PARITY_COUNTERS:
            assert serial.counters.get(name) == sharded.counters.get(name)


class TestStreamingObservability:
    def test_partition_spans_and_counters(self):
        from repro.columnar.schema import Schema
        from repro.streaming import StreamingParser

        options = ParseOptions(schema=Schema.all_strings(3))
        tracer, metrics = Tracer(), MetricsRegistry()
        stream = StreamingParser(options, tracer=tracer, metrics=metrics)
        chunks = [DATA[i:i + 500] for i in range(0, len(DATA), 500)]
        for chunk in chunks:
            stream.feed(chunk)
        table = stream.finish()
        assert table.num_rows == DATA.count(b"\n")

        names = [s.name for s in tracer.spans]
        for i in range(len(chunks)):
            assert f"partition:{i}" in names
        assert "boundary" in names
        assert metrics.counters["stream.partitions"] == len(chunks)
        carry = metrics.to_dict()["histograms"]["stream.carry.bytes"]
        assert carry["count"] == len(chunks)

    def test_streaming_defaults_to_noop(self):
        from repro.columnar.schema import Schema
        from repro.streaming import StreamingParser

        stream = StreamingParser(ParseOptions(schema=Schema.all_strings(3)))
        stream.feed(DATA)
        stream.finish()
        assert stream.tracer.enabled is False
        assert stream.tracer.spans == []
