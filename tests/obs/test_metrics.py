"""Tests for the metrics registry, including the cross-process merge."""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import NULL_METRICS, MetricsRegistry


class TestRecording:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.count("records")
        metrics.count("records", 4)
        assert metrics.counters == {"records": 5}

    def test_gauges_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("columns", 3)
        metrics.gauge("columns", 7)
        assert metrics.gauges == {"columns": 7.0}

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for v in (0.5, 1.5, 1.0):
            metrics.observe("stage.tag.seconds", v)
        summary = metrics.to_dict()["histograms"]["stage.tag.seconds"]
        assert summary == {"count": 3, "total": 3.0, "min": 0.5,
                           "max": 1.5, "mean": 1.0}

    def test_clear(self):
        metrics = MetricsRegistry()
        metrics.count("a")
        metrics.gauge("b", 1)
        metrics.observe("c", 1)
        metrics.clear()
        assert metrics.to_dict() == {"counters": {}, "gauges": {},
                                     "histograms": {}}


class TestNullMetrics:
    def test_disabled_and_silent(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.count("x")
        NULL_METRICS.gauge("y", 1)
        NULL_METRICS.observe("z", 1)
        NULL_METRICS.merge_dict({"counters": {"x": 1}, "gauges": {},
                                 "histograms": {}})
        assert NULL_METRICS.to_dict() == {"counters": {}, "gauges": {},
                                          "histograms": {}}

    def test_is_a_registry(self):
        assert isinstance(NULL_METRICS, MetricsRegistry)


class TestMerge:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("records", 10)
        b.count("records", 20)
        b.count("rows", 5)
        a.merge(b)
        assert a.counters == {"records": 30, "rows": 5}

    def test_histograms_combine_summaries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("d", 1.0)
        a.observe("d", 3.0)
        b.observe("d", 2.0)
        b.observe("d", 10.0)
        a.merge(b)
        summary = a.to_dict()["histograms"]["d"]
        assert summary["count"] == 4
        assert summary["total"] == pytest.approx(16.0)
        assert summary["min"] == 1.0 and summary["max"] == 10.0

    def test_merge_dict_snapshot_survives_pickle(self):
        """The exact cross-process path: to_dict -> pickle -> merge_dict."""
        worker = MetricsRegistry()
        worker.count("records", 7)
        worker.gauge("shard", 3)
        worker.observe("worker.tags.seconds", 0.25)
        blob = pickle.dumps(worker.to_dict())

        parent = MetricsRegistry()
        parent.count("records", 3)
        parent.merge_dict(pickle.loads(blob))
        assert parent.counters["records"] == 10
        assert parent.gauges["shard"] == 3.0
        hist = parent.to_dict()["histograms"]["worker.tags.seconds"]
        assert hist["count"] == 1 and hist["total"] == 0.25

    @given(st.lists(st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]),
                  st.integers(0, 100)),
        max_size=8), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_merge_order_independent_for_counters(self, shards):
        """Counters merge associatively and commutatively: any shard
        order gives the totals of a single flat registry."""
        flat = MetricsRegistry()
        merged_fwd, merged_rev = MetricsRegistry(), MetricsRegistry()
        snapshots = []
        for shard in shards:
            local = MetricsRegistry()
            for name, value in shard:
                local.count(name, value)
                flat.count(name, value)
            snapshots.append(local.to_dict())
        for snap in snapshots:
            merged_fwd.merge_dict(snap)
        for snap in reversed(snapshots):
            merged_rev.merge_dict(snap)
        assert merged_fwd.counters == flat.counters == merged_rev.counters


def _worker_registry(shard: int) -> dict:
    """Module-level so it pickles under the spawn start method."""
    metrics = MetricsRegistry()
    metrics.count("records", 10 * (shard + 1))
    metrics.observe("worker.seconds", 0.1 * (shard + 1))
    metrics.gauge(f"shard.{shard}", shard)
    return metrics.to_dict()


class TestCrossProcessMerge:
    def test_real_process_pool_roundtrip(self):
        """Registries built in genuine worker processes merge correctly."""
        parent = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for snapshot in pool.map(_worker_registry, range(3)):
                parent.merge_dict(snapshot)
        assert parent.counters["records"] == 10 + 20 + 30
        hist = parent.to_dict()["histograms"]["worker.seconds"]
        assert hist["count"] == 3
        assert hist["total"] == pytest.approx(0.6)
        assert hist["min"] == pytest.approx(0.1)
        assert hist["max"] == pytest.approx(0.3)
        assert parent.gauges == {"shard.0": 0.0, "shard.1": 1.0,
                                 "shard.2": 2.0}
