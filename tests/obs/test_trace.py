"""Tests for the span tracer: nesting, no-op guard, cross-process ingest."""

import os
import pickle

from repro.obs import NULL_TRACER, Span, Tracer
from repro.obs.trace import NullTracer, snapshot_spans


class TestTracer:
    def test_span_records_interval(self):
        tracer = Tracer()
        with tracer.span("stage:tag", records=3):
            pass
        (span,) = tracer.spans
        assert span.name == "stage:tag"
        assert span.end >= span.start
        assert span.attrs == {"records": 3}
        assert span.pid == os.getpid()

    def test_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # Inner spans complete first but containment holds.
        assert by_name["outer"].start <= by_name["inner"].start
        assert by_name["inner"].end <= by_name["outer"].end

    def test_depth_recovers_after_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with tracer.span("after"):
            pass
        assert {s.depth for s in tracer.spans} == {0}
        # The failing span is still recorded (its duration is real work).
        assert [s.name for s in tracer.spans] == ["failing", "after"]

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans == []

    def test_monotonic_ordering(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans
        assert a.end <= b.start


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_records_nothing(self):
        with NULL_TRACER.span("x", k=1):
            pass
        NULL_TRACER.add(Span(name="y", start=0.0, end=1.0))
        NULL_TRACER.ingest([("z", 0.0, 1.0, 0, ())], pid=123)
        assert NULL_TRACER.spans == []

    def test_is_a_tracer(self):
        # Call sites annotate `tracer: Tracer`; the null object must
        # satisfy the same contract.
        assert isinstance(NULL_TRACER, Tracer)
        assert isinstance(NULL_TRACER, NullTracer)


class TestSnapshotIngest:
    def test_roundtrip_relabels_pid(self):
        worker = Tracer()
        with worker.span("worker:tags", shard=2):
            pass
        blob = pickle.dumps(snapshot_spans(worker))

        parent = Tracer()
        parent.ingest(pickle.loads(blob), pid=4242)
        (span,) = parent.spans
        assert span.name == "worker:tags"
        assert span.pid == span.tid == 4242
        assert span.attrs == {"shard": 2}
        original = worker.spans[0]
        assert span.start == original.start
        assert span.end == original.end
        assert span.depth == original.depth

    def test_snapshot_is_plain_data(self):
        tracer = Tracer()
        with tracer.span("a", n=1):
            pass
        (entry,) = snapshot_spans(tracer)
        assert isinstance(entry, tuple)
        name, start, end, depth, attrs = entry
        assert name == "a" and attrs == (("n", 1),)
