"""Tests for the Chrome trace / text exporters and the shape validator."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace,
    render_text_report,
    validate_chrome_trace,
    write_chrome_trace,
)


def spans_fixture():
    return [
        Span(name="parse", start=10.0, end=10.5, pid=100, tid=100),
        Span(name="stage:tag", start=10.1, end=10.3, pid=100, tid=100,
             depth=1, attrs={"records": 3}),
        Span(name="worker:tags", start=10.1, end=10.25, pid=101, tid=101),
    ]


class TestChromeTrace:
    def test_events_rebased_to_microseconds(self):
        doc = chrome_trace(spans_fixture())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        assert by_name["parse"]["ts"] == pytest.approx(0.0)
        assert by_name["parse"]["dur"] == pytest.approx(0.5e6)
        assert by_name["stage:tag"]["ts"] == pytest.approx(0.1e6)
        assert by_name["stage:tag"]["args"] == {"records": 3}
        assert by_name["stage:tag"]["cat"] == "stage"

    def test_distinct_pids_get_distinct_tracks(self):
        doc = chrome_trace(spans_fixture())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        tracks = {(e["pid"], e["tid"]) for e in events}
        assert len(tracks) == 2
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["name"] for m in meta} == {"thread_name",
                                             "process_name"}

    def test_string_tids_become_labelled_tracks(self):
        spans = [Span(name="parse:0", start=0.0, end=1.0, pid=0,
                      tid="GPU"),
                 Span(name="transfer:0", start=0.0, end=0.5, pid=0,
                      tid="HtD")]
        doc = chrome_trace(spans)
        labels = {e["args"]["name"] for e in doc["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        assert labels == {"GPU", "HtD"}
        for event in doc["traceEvents"]:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_metrics_embedded(self):
        metrics = MetricsRegistry()
        metrics.count("records", 3)
        doc = chrome_trace(spans_fixture(), metrics)
        assert doc["metrics"]["counters"] == {"records": 3}

    def test_empty_spans(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []
        assert validate_chrome_trace(doc) == []

    def test_document_is_json_serialisable(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.observe("s", 0.5)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, spans_fixture(), metrics)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"


class TestValidate:
    def test_accepts_valid(self):
        assert validate_chrome_trace(chrome_trace(spans_fixture())) == []

    @pytest.mark.parametrize("doc,fragment", [
        ([], "traceEvents"),
        ({"foo": 1}, "traceEvents"),
        ({"traceEvents": "nope"}, "not a list"),
        ({"traceEvents": [{"name": "x"}]}, "ph"),
        ({"traceEvents": [{"ph": "X", "name": "x", "ts": -1.0,
                           "dur": 1.0, "pid": 1, "tid": 1}]}, "bad ts"),
        ({"traceEvents": [{"ph": "X", "name": "x", "ts": 0.0,
                           "dur": -2.0, "pid": 1, "tid": 1}]}, "bad dur"),
        ({"traceEvents": [{"ph": "X", "ts": 0.0, "dur": 1.0,
                           "pid": 1, "tid": 1}]}, "name"),
    ])
    def test_rejects_malformed(self, doc, fragment):
        problems = validate_chrome_trace(doc)
        assert problems
        assert any(fragment in p for p in problems)


class TestTextReport:
    def test_lists_spans_and_metrics(self):
        tracer = Tracer()
        with tracer.span("parse"):
            with tracer.span("stage:tag"):
                pass
        metrics = MetricsRegistry()
        metrics.count("records", 42)
        metrics.gauge("columns", 3)
        metrics.observe("stage.tag.seconds", 0.001)
        report = render_text_report(tracer, metrics)
        assert "parse" in report
        assert "stage:tag" in report
        assert "42" in report
        assert "columns" in report
        assert "stage.tag.seconds" in report

    def test_empty_report(self):
        assert "no observability data" in render_text_report()
