"""Tests for the §3.2 chunk-offset machinery (bitmaps, rel/abs, scans)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.offsets import (
    chunk_bitmap_ints,
    column_offset_from_bitmaps,
    compute_chunk_offsets,
)
from repro.scan.operators import ColumnOffset, OffsetKind


class TestBitmapInts:
    def test_bit_positions(self):
        rd = np.array([True, False, False, True])
        fd = np.array([False, True, True, False])
        rd_bits, fd_bits = chunk_bitmap_ints(rd, fd)
        assert rd_bits == 0b1001
        assert fd_bits == 0b0110

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            chunk_bitmap_ints(np.zeros(65, dtype=bool),
                              np.zeros(65, dtype=bool))


class TestColumnOffsetFromBitmaps:
    def test_relative_when_no_record_delim(self):
        offset = column_offset_from_bitmaps(0, 0b10110)
        assert offset.kind is OffsetKind.RELATIVE
        assert offset.value == 3

    def test_absolute_counts_after_last_record_bit(self):
        # Field bits at 0,1,4,5; record bit at 3 -> count bits 4,5 = 2.
        offset = column_offset_from_bitmaps(0b001000, 0b110011)
        assert offset.kind is OffsetKind.ABSOLUTE
        assert offset.value == 2

    def test_record_bit_last_position(self):
        offset = column_offset_from_bitmaps(0b100000, 0b011111)
        assert offset == ColumnOffset.absolute(0)

    @given(st.integers(0, 2 ** 20 - 1), st.integers(0, 2 ** 20 - 1))
    def test_matches_naive(self, rd_bits, fd_bits):
        offset = column_offset_from_bitmaps(rd_bits, fd_bits)
        # Naive reference: walk positions with a counter.
        counter = 0
        absolute = False
        for j in range(20):
            if rd_bits >> j & 1:
                counter = 0
                absolute = True
            elif fd_bits >> j & 1:
                counter += 1
        assert offset.value == counter
        assert offset.is_absolute == absolute


class TestComputeChunkOffsets:
    def test_figure4(self):
        """The exact per-chunk values of Figure 4 (six 10-byte chunks of
        the worked example)."""
        # Build delimiter masks from the example's emissions.
        data = b'1941,199.99,"Bookcase"\n1938,19.99,"Frame\n' \
               b'""Ribba"", black"\n'
        from repro.dfa.csv import dialect_dfa
        from repro.dfa.dialects import Dialect
        dfa = dialect_dfa(Dialect(strip_carriage_return=False))
        _, emissions = dfa.simulate(data)
        codes = np.array([int(e) for e in emissions], dtype=np.uint8)
        size = 10
        padded = np.full(60, 4, dtype=np.uint8)  # COMMENT padding
        padded[:codes.size] = codes
        grid = padded.reshape(6, size)
        record_delim = grid == 2
        field_delim = grid == 1
        offsets = compute_chunk_offsets(record_delim, field_delim)
        # Figure 4: record counts 0 1 0 0 2 0...
        # (our layout: 60 padded bytes; chunk 2 holds 'se"\n1938,' with the
        # record delimiter, chunk 5 the final one)
        assert offsets.record_counts.sum() == 2
        assert offsets.record_offsets.tolist()[0] == 0
        # Entering column offsets: chunk 0 enters column 0.
        assert offsets.entering_column_offsets[0] == 0

    def test_figure4_exact_vectors(self):
        """Direct check of the figure's rel/abs rows: chunks with own
        offsets rel1, rel1, abs0, rel1, rel0, rel0 scan to 0 1 2 0 1 1."""
        kinds = np.array([False, False, True, False, False, False])
        values = np.array([1, 1, 0, 1, 0, 0], dtype=np.int64)
        rd = np.zeros((6, 4), dtype=bool)
        fd = np.zeros((6, 4), dtype=bool)
        # Synthesise masks matching those offsets.
        fd[0, 0] = True          # rel 1
        fd[1, 2] = True          # rel 1
        rd[2, 3] = True          # abs 0 (record delim at end)
        fd[3, 1] = True          # rel 1
        # chunks 4, 5: nothing -> rel 0
        offsets = compute_chunk_offsets(rd, fd)
        assert offsets.column_kinds.tolist() == kinds.tolist()
        assert offsets.column_values.tolist() == values.tolist()
        assert offsets.entering_column_offsets.tolist() == [0, 1, 2, 0, 1, 1]

    @given(hnp.arrays(np.bool_, st.tuples(st.integers(1, 20),
                                          st.integers(1, 16))),
           st.data())
    def test_matches_scalar_walk(self, record_delim, data):
        field_delim = data.draw(
            hnp.arrays(np.bool_, record_delim.shape)) & ~record_delim
        offsets = compute_chunk_offsets(record_delim, field_delim)
        # Scalar reference over the flattened stream.
        record, column = 0, 0
        for c in range(record_delim.shape[0]):
            assert offsets.record_offsets[c] == record
            assert offsets.entering_column_offsets[c] == column, c
            for j in range(record_delim.shape[1]):
                if record_delim[c, j]:
                    record += 1
                    column = 0
                elif field_delim[c, j]:
                    column += 1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compute_chunk_offsets(np.zeros((2, 3), dtype=bool),
                                  np.zeros((3, 2), dtype=bool))
