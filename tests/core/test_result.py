"""Tests for ParseResult conveniences and the cost-model bridge."""

import pytest

from repro import ParPaRawParser, ParseOptions, TaggingMode
from repro.columnar.table import Table
from repro.gpusim.cost_model import PipelineCostModel
from repro.workloads import TAXI_SCHEMA, generate_taxi_like


@pytest.fixture(scope="module")
def taxi_result():
    data = generate_taxi_like(50_000, seed=11)
    return ParPaRawParser(ParseOptions(schema=TAXI_SCHEMA)).parse(data), \
        len(data)


class TestParseResult:
    def test_parsing_rate(self, taxi_result):
        result, size = taxi_result
        rate = result.parsing_rate()
        assert rate > 0
        assert result.input_bytes == size

    def test_repr(self, taxi_result):
        result, _ = taxi_result
        assert "rows=" in repr(result)

    def test_step_seconds_complete(self, taxi_result):
        result, _ = taxi_result
        steps = result.step_seconds()
        assert {"parse", "scan", "tag", "partition", "convert"} \
            <= set(steps)
        assert all(v >= 0 for v in steps.values())


class TestWorkloadStatsBridge:
    def test_shape_matches_parse(self, taxi_result):
        result, size = taxi_result
        stats = result.workload_stats()
        assert stats.input_bytes == size
        assert stats.num_columns == 17
        assert stats.num_records == result.num_rows
        assert stats.chunk_size == 31
        # Every taxi column is numeric or temporal.
        assert stats.numeric_field_fraction == 1.0

    def test_feeds_cost_model(self, taxi_result):
        result, _ = taxi_result
        model = PipelineCostModel()
        simulated = model.total_seconds(result.workload_stats())
        assert simulated > 0
        # A 50 KB workload should be microseconds-scale on the GPU model.
        assert simulated < 1e-2

    def test_tagging_mode_affects_stats(self):
        data = generate_taxi_like(20_000, seed=11)
        tagged = ParPaRawParser(ParseOptions(schema=TAXI_SCHEMA)) \
            .parse(data).workload_stats()
        inline = ParPaRawParser(ParseOptions(
            schema=TAXI_SCHEMA,
            tagging_mode=TaggingMode.INLINE)).parse(data).workload_stats()
        assert tagged.record_tag_bytes == 4.0
        assert inline.record_tag_bytes == 0.0


class TestTableConveniences:
    def test_select(self, taxi_result):
        result, _ = taxi_result
        projected = result.table.select(["fare_amount", "tip_amount"])
        assert projected.schema.names == ("fare_amount", "tip_amount")
        assert projected.num_rows == result.num_rows

    def test_slice(self, taxi_result):
        result, _ = taxi_result
        window = result.table.slice(2, 5)
        assert window.num_rows == 3
        assert window.row(0) == result.table.row(2)

    def test_slice_string_columns(self):
        from repro import parse_bytes
        table = parse_bytes(b"aa,b\ncc,d\nee,f\n").table
        window = table.slice(1, 3)
        assert window.to_pylist() == [
            {"col0": "cc", "col1": "d"}, {"col0": "ee", "col1": "f"}]

    def test_slice_bounds_clamped(self):
        from repro import parse_bytes
        table = parse_bytes(b"a\nb\n").table
        assert table.slice(5, 10).num_rows == 0
        assert table.slice(-3, 1).num_rows == 1
        assert table.slice(1).num_rows == 1
