"""Tests for the stable radix-sort partition (§3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.partition import (partition_by_column,
                                  partition_field_runs,
                                  stable_radix_sort)
from repro.errors import ParseError


class TestStableRadixSort:
    @given(hnp.arrays(np.int64, st.integers(0, 300),
                      elements=st.integers(0, 40)),
           st.sampled_from([1, 2, 4, 8, 16]))
    def test_sorted_and_stable(self, keys, radix_bits):
        perm = stable_radix_sort(keys, radix_bits=radix_bits)
        sorted_keys = keys[perm]
        assert np.all(sorted_keys[:-1] <= sorted_keys[1:]) \
            if keys.size else True
        # Stability: among equal keys, original order preserved.
        for value in np.unique(keys):
            positions = perm[sorted_keys == value]
            assert np.all(positions[:-1] < positions[1:])

    @given(hnp.arrays(np.int64, st.integers(0, 200),
                      elements=st.integers(0, 100)))
    def test_matches_numpy_stable(self, keys):
        perm = stable_radix_sort(keys)
        expected = np.argsort(keys, kind="stable")
        assert perm.tolist() == expected.tolist()

    def test_is_permutation(self):
        keys = np.array([3, 1, 3, 0, 2, 1])
        perm = stable_radix_sort(keys, radix_bits=1)
        assert sorted(perm.tolist()) == list(range(6))

    def test_empty(self):
        assert stable_radix_sort(np.array([], dtype=np.int64)).size == 0

    def test_multi_pass(self):
        # Keys needing several 2-bit passes.
        keys = np.array([255, 0, 128, 64, 192, 1])
        perm = stable_radix_sort(keys, radix_bits=2)
        assert keys[perm].tolist() == sorted(keys.tolist())

    def test_rejects_negative_keys(self):
        with pytest.raises(ParseError):
            stable_radix_sort(np.array([-1, 2]))

    def test_rejects_bad_radix(self):
        with pytest.raises(ParseError):
            stable_radix_sort(np.array([1]), radix_bits=0)
        with pytest.raises(ParseError):
            stable_radix_sort(np.array([1]), radix_bits=17)

    def test_rejects_2d(self):
        with pytest.raises(ParseError):
            stable_radix_sort(np.zeros((2, 2), dtype=np.int64))


class TestPartitionByColumn:
    def test_figure5_layout(self):
        """Figure 5: symbols partitioned into per-column CSSs, record
        tags moved along, offsets from the histogram."""
        data = np.frombuffer(b"19411938x199.9919.99y", dtype=np.uint8)
        #                      col0 col0  ?  col1  col1  ?
        column_ids = np.array([0] * 4 + [0] * 4 + [9] + [1] * 6 + [1] * 5
                              + [9])
        record_ids = np.array([0] * 4 + [1] * 4 + [0] + [0] * 6 + [1] * 5
                              + [1])
        keep = column_ids != 9
        part = partition_by_column(data, keep, column_ids, record_ids,
                                   num_columns=2)
        assert part.column_css(0).tobytes() == b"19411938"
        assert part.column_css(1).tobytes() == b"199.9919.99"
        assert part.column_offsets.tolist() == [0, 8, 19]
        assert part.column_record_tags(0).tolist() == [0] * 4 + [1] * 4

    def test_order_gathers_payload(self):
        data = np.frombuffer(b"ba", dtype=np.uint8)
        column_ids = np.array([1, 0])
        record_ids = np.array([0, 0])
        keep = np.ones(2, dtype=bool)
        part = partition_by_column(data, keep, column_ids, record_ids, 2)
        assert part.css.tobytes() == b"ab"
        assert part.order.tolist() == [1, 0]

    def test_empty_columns_have_empty_css(self):
        data = np.frombuffer(b"xy", dtype=np.uint8)
        part = partition_by_column(data, np.ones(2, dtype=bool),
                                   np.array([2, 2]), np.array([0, 0]), 4)
        assert part.column_css(0).size == 0
        assert part.column_css(2).tobytes() == b"xy"
        assert part.column_css(3).size == 0

    def test_rejects_overflowing_tags(self):
        data = np.frombuffer(b"x", dtype=np.uint8)
        with pytest.raises(ParseError):
            partition_by_column(data, np.ones(1, dtype=bool),
                                np.array([5]), np.array([0]), 2)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ParseError):
            partition_by_column(np.zeros(2, dtype=np.uint8),
                                np.ones(3, dtype=bool),
                                np.zeros(2, dtype=np.int64),
                                np.zeros(2, dtype=np.int64), 1)

    @given(st.data())
    @settings(max_examples=60)
    def test_preserves_order_within_column(self, data):
        n = data.draw(st.integers(0, 150))
        payload = data.draw(hnp.arrays(np.uint8, n))
        columns = data.draw(hnp.arrays(np.int64, n,
                                       elements=st.integers(0, 5)))
        records = data.draw(hnp.arrays(np.int64, n,
                                       elements=st.integers(0, 8)))
        keep = data.draw(hnp.arrays(np.bool_, n))
        part = partition_by_column(payload, keep, columns, records, 6)
        for c in range(6):
            expected = payload[keep & (columns == c)]
            assert part.column_css(c).tolist() == expected.tolist()
            expected_tags = records[keep & (columns == c)]
            assert part.column_record_tags(c).tolist() \
                == expected_tags.tolist()


def _runsy(data, n, num_cols):
    """Draw run-structured (column, record) tag arrays of length n."""
    col = np.empty(n, dtype=np.int64)
    rec = np.empty(n, dtype=np.int64)
    pos = 0
    record = 0
    while pos < n:
        length = data.draw(st.integers(1, 12))
        column = data.draw(st.integers(0, num_cols - 1))
        end = min(n, pos + length)
        col[pos:end] = column
        rec[pos:end] = record
        if data.draw(st.booleans()):
            record += 1
        pos = end
    return col, rec


class TestStableCountingSort:
    @given(hnp.arrays(np.int64, st.integers(0, 250),
                      elements=st.integers(0, 30)))
    def test_matches_numpy_stable(self, keys):
        from repro.core.partition import _stable_counting_sort
        perm, key_starts = _stable_counting_sort(keys, 31)
        expected = np.argsort(keys, kind="stable")
        assert perm.tolist() == expected.tolist()
        counts = np.bincount(keys, minlength=31)
        assert key_starts.tolist() == \
            (np.cumsum(counts) - counts).tolist()


class TestPartitionFieldRuns:
    """The O(n + num_fields) strategy must match the radix sort bit for
    bit — including the stable ``order`` permutation."""

    @given(st.data())
    @settings(max_examples=80)
    def test_parity_with_radix_arbitrary_tags(self, data):
        n = data.draw(st.integers(0, 150))
        num_cols = data.draw(st.integers(1, 6))
        payload = data.draw(hnp.arrays(np.uint8, n))
        columns = data.draw(hnp.arrays(
            np.int64, n, elements=st.integers(0, num_cols - 1)))
        records = data.draw(hnp.arrays(np.int64, n,
                                       elements=st.integers(0, 8)))
        keep = data.draw(hnp.arrays(np.bool_, n))
        a = partition_by_column(payload, keep, columns, records, num_cols)
        b = partition_field_runs(payload, keep, columns, records,
                                 num_cols)
        assert a.css.tolist() == b.css.tolist()
        assert a.record_tags.tolist() == b.record_tags.tolist()
        assert a.column_offsets.tolist() == b.column_offsets.tolist()
        assert a.order.tolist() == b.order.tolist()

    @given(st.data(), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=60)
    def test_parity_across_radix_bits(self, data, radix_bits):
        n = data.draw(st.integers(0, 120))
        num_cols = data.draw(st.integers(1, 5))
        payload = data.draw(hnp.arrays(np.uint8, n))
        columns, records = _runsy(data, n, num_cols)
        keep = data.draw(hnp.arrays(np.bool_, n))
        a = partition_by_column(payload, keep, columns, records,
                                num_cols, radix_bits=radix_bits)
        b = partition_field_runs(payload, keep, columns, records,
                                 num_cols)
        assert a.css.tolist() == b.css.tolist()
        assert a.record_tags.tolist() == b.record_tags.tolist()
        assert a.column_offsets.tolist() == b.column_offsets.tolist()
        assert a.order.tolist() == b.order.tolist()

    @given(st.data())
    @settings(max_examples=60)
    def test_delim_positions_path_matches_fallback(self, data):
        """Explicit segment boundaries must give the same result as
        boundary detection, provided tags are constant per segment."""
        n = data.draw(st.integers(1, 120))
        num_cols = data.draw(st.integers(1, 5))
        payload = data.draw(hnp.arrays(np.uint8, n))
        # Build segments from sorted delimiter positions; tags constant
        # on (prev_delim, this_delim] exactly as the tagger guarantees.
        delims = np.array(sorted(data.draw(st.sets(
            st.integers(0, n - 1), max_size=12))), dtype=np.int64)
        seg_starts = np.concatenate([[0], delims + 1])
        col = np.empty(n, dtype=np.int64)
        rec = np.empty(n, dtype=np.int64)
        for i, s in enumerate(seg_starts):
            e = n if i + 1 == seg_starts.size else seg_starts[i + 1]
            col[s:e] = data.draw(st.integers(0, num_cols - 1))
            rec[s:e] = i
        keep = data.draw(hnp.arrays(np.bool_, n))
        a = partition_field_runs(payload, keep, col, rec, num_cols)
        b = partition_field_runs(payload, keep, col, rec, num_cols,
                                 delim_positions=delims)
        assert a.css.tolist() == b.css.tolist()
        assert a.record_tags.tolist() == b.record_tags.tolist()
        assert a.column_offsets.tolist() == b.column_offsets.tolist()
        assert a.order.tolist() == b.order.tolist()

    def test_empty_input(self):
        part = partition_field_runs(
            np.zeros(0, dtype=np.uint8), np.zeros(0, dtype=bool),
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 3)
        assert part.css.size == 0
        assert part.order.size == 0
        assert part.column_offsets.tolist() == [0, 0, 0, 0]

    def test_single_column(self):
        data = np.frombuffer(b"abcdef", dtype=np.uint8)
        keep = np.array([True, False, True, True, True, False])
        part = partition_field_runs(data, keep,
                                    np.zeros(6, dtype=np.int64),
                                    np.array([0, 0, 1, 1, 2, 2]), 1)
        assert part.css.tobytes() == b"acde"
        assert part.order.tolist() == [0, 2, 3, 4]
        assert part.record_tags.tolist() == [0, 1, 1, 2]
        assert part.num_field_runs is not None

    def test_all_one_record(self):
        data = np.frombuffer(b"1,2,3", dtype=np.uint8)
        col = np.array([0, 0, 1, 1, 2])
        rec = np.zeros(5, dtype=np.int64)
        keep = np.array([True, False, True, False, True])
        a = partition_by_column(data, keep, col, rec, 3)
        b = partition_field_runs(data, keep, col, rec, 3)
        assert b.css.tobytes() == b"123"
        assert a.order.tolist() == b.order.tolist()

    def test_rejects_negative_tags(self):
        with pytest.raises(ParseError):
            partition_field_runs(np.zeros(2, dtype=np.uint8),
                                 np.ones(2, dtype=bool),
                                 np.array([-1, 0]),
                                 np.zeros(2, dtype=np.int64), 2)

    def test_rejects_overflowing_tags(self):
        with pytest.raises(ParseError):
            partition_field_runs(np.zeros(2, dtype=np.uint8),
                                 np.ones(2, dtype=bool),
                                 np.array([0, 7]),
                                 np.zeros(2, dtype=np.int64), 2)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ParseError):
            partition_field_runs(np.zeros(2, dtype=np.uint8),
                                 np.ones(3, dtype=bool),
                                 np.zeros(2, dtype=np.int64),
                                 np.zeros(2, dtype=np.int64), 1)


class TestPartitionResultDefaults:
    def test_order_defaults_to_none(self):
        from repro.core.partition import PartitionResult
        part = PartitionResult(
            css=np.zeros(0, dtype=np.uint8),
            record_tags=np.zeros(0, dtype=np.int64),
            column_offsets=np.zeros(1, dtype=np.int64),
            num_columns=0)
        assert part.order is None
        assert part.num_field_runs is None
