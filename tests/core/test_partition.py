"""Tests for the stable radix-sort partition (§3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.partition import partition_by_column, stable_radix_sort
from repro.errors import ParseError


class TestStableRadixSort:
    @given(hnp.arrays(np.int64, st.integers(0, 300),
                      elements=st.integers(0, 40)),
           st.sampled_from([1, 2, 4, 8, 16]))
    def test_sorted_and_stable(self, keys, radix_bits):
        perm = stable_radix_sort(keys, radix_bits=radix_bits)
        sorted_keys = keys[perm]
        assert np.all(sorted_keys[:-1] <= sorted_keys[1:]) \
            if keys.size else True
        # Stability: among equal keys, original order preserved.
        for value in np.unique(keys):
            positions = perm[sorted_keys == value]
            assert np.all(positions[:-1] < positions[1:])

    @given(hnp.arrays(np.int64, st.integers(0, 200),
                      elements=st.integers(0, 100)))
    def test_matches_numpy_stable(self, keys):
        perm = stable_radix_sort(keys)
        expected = np.argsort(keys, kind="stable")
        assert perm.tolist() == expected.tolist()

    def test_is_permutation(self):
        keys = np.array([3, 1, 3, 0, 2, 1])
        perm = stable_radix_sort(keys, radix_bits=1)
        assert sorted(perm.tolist()) == list(range(6))

    def test_empty(self):
        assert stable_radix_sort(np.array([], dtype=np.int64)).size == 0

    def test_multi_pass(self):
        # Keys needing several 2-bit passes.
        keys = np.array([255, 0, 128, 64, 192, 1])
        perm = stable_radix_sort(keys, radix_bits=2)
        assert keys[perm].tolist() == sorted(keys.tolist())

    def test_rejects_negative_keys(self):
        with pytest.raises(ParseError):
            stable_radix_sort(np.array([-1, 2]))

    def test_rejects_bad_radix(self):
        with pytest.raises(ParseError):
            stable_radix_sort(np.array([1]), radix_bits=0)
        with pytest.raises(ParseError):
            stable_radix_sort(np.array([1]), radix_bits=17)

    def test_rejects_2d(self):
        with pytest.raises(ParseError):
            stable_radix_sort(np.zeros((2, 2), dtype=np.int64))


class TestPartitionByColumn:
    def test_figure5_layout(self):
        """Figure 5: symbols partitioned into per-column CSSs, record
        tags moved along, offsets from the histogram."""
        data = np.frombuffer(b"19411938x199.9919.99y", dtype=np.uint8)
        #                      col0 col0  ?  col1  col1  ?
        column_ids = np.array([0] * 4 + [0] * 4 + [9] + [1] * 6 + [1] * 5
                              + [9])
        record_ids = np.array([0] * 4 + [1] * 4 + [0] + [0] * 6 + [1] * 5
                              + [1])
        keep = column_ids != 9
        part = partition_by_column(data, keep, column_ids, record_ids,
                                   num_columns=2)
        assert part.column_css(0).tobytes() == b"19411938"
        assert part.column_css(1).tobytes() == b"199.9919.99"
        assert part.column_offsets.tolist() == [0, 8, 19]
        assert part.column_record_tags(0).tolist() == [0] * 4 + [1] * 4

    def test_order_gathers_payload(self):
        data = np.frombuffer(b"ba", dtype=np.uint8)
        column_ids = np.array([1, 0])
        record_ids = np.array([0, 0])
        keep = np.ones(2, dtype=bool)
        part = partition_by_column(data, keep, column_ids, record_ids, 2)
        assert part.css.tobytes() == b"ab"
        assert part.order.tolist() == [1, 0]

    def test_empty_columns_have_empty_css(self):
        data = np.frombuffer(b"xy", dtype=np.uint8)
        part = partition_by_column(data, np.ones(2, dtype=bool),
                                   np.array([2, 2]), np.array([0, 0]), 4)
        assert part.column_css(0).size == 0
        assert part.column_css(2).tobytes() == b"xy"
        assert part.column_css(3).size == 0

    def test_rejects_overflowing_tags(self):
        data = np.frombuffer(b"x", dtype=np.uint8)
        with pytest.raises(ParseError):
            partition_by_column(data, np.ones(1, dtype=bool),
                                np.array([5]), np.array([0]), 2)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ParseError):
            partition_by_column(np.zeros(2, dtype=np.uint8),
                                np.ones(3, dtype=bool),
                                np.zeros(2, dtype=np.int64),
                                np.zeros(2, dtype=np.int64), 1)

    @given(st.data())
    @settings(max_examples=60)
    def test_preserves_order_within_column(self, data):
        n = data.draw(st.integers(0, 150))
        payload = data.draw(hnp.arrays(np.uint8, n))
        columns = data.draw(hnp.arrays(np.int64, n,
                                       elements=st.integers(0, 5)))
        records = data.draw(hnp.arrays(np.int64, n,
                                       elements=st.integers(0, 8)))
        keep = data.draw(hnp.arrays(np.bool_, n))
        part = partition_by_column(payload, keep, columns, records, 6)
        for c in range(6):
            expected = payload[keep & (columns == c)]
            assert part.column_css(c).tolist() == expected.tolist()
            expected_tags = records[keep & (columns == c)]
            assert part.column_record_tags(c).tolist() \
                == expected_tags.tolist()
