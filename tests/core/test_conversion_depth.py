"""Deeper conversion coverage: dtype boundaries, leap years, float32."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DataType, Field, Schema, parse_bytes
from repro.core.scalar_convert import parse_date_scalar
from repro.core.vector_convert import (
    pack_fields,
    parse_date_vector,
    parse_float_vector,
    parse_int_vector,
)


def packed(fields):
    src = np.frombuffer(b"".join(fields), dtype=np.uint8)
    lengths = np.array([len(f) for f in fields], dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
    return pack_fields(src, starts, lengths) + (lengths,)


class TestIntBoundaries:
    BOUNDS = {
        DataType.INT8: (-(2 ** 7), 2 ** 7 - 1),
        DataType.INT16: (-(2 ** 15), 2 ** 15 - 1),
        DataType.INT32: (-(2 ** 31), 2 ** 31 - 1),
        DataType.INT64: (-(2 ** 63), 2 ** 63 - 1),
    }

    @pytest.mark.parametrize("dtype", list(BOUNDS))
    def test_exact_boundaries(self, dtype):
        lo, hi = self.BOUNDS[dtype]
        fields = [str(v).encode() for v in
                  (lo, lo - 1, hi, hi + 1, 0, -1, 1)]
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_int_vector(buf, offsets, lengths,
                                                dtype)
        expectations = [True, False, True, False, True, True, True]
        for i, expected in enumerate(expectations):
            if fallback[i]:
                # >18-digit literal (int64 edges): the scalar fallback
                # handles it in the full pipeline; assert via parse_bytes.
                result = parse_bytes(fields[i] + b"\n",
                                     schema=Schema([Field("n", dtype)]))
                value = result.table.column("n").to_list()[0]
                assert (value is not None) == expected, fields[i]
            else:
                assert bool(ok[i]) == expected, fields[i]
                if expected:
                    assert int(values[i]) == int(fields[i])

    def test_pipeline_end_to_end_boundaries(self):
        data = b"127\n128\n-128\n-129\n"
        result = parse_bytes(data,
                             schema=Schema([Field("n", DataType.INT8)]))
        assert result.table.column("n").to_list() == [127, None, -128,
                                                      None]
        assert result.total_rejected_fields == 2


class TestLeapYears:
    @pytest.mark.parametrize("date,valid", [
        (b"2016-02-29", True),    # /4 leap
        (b"2017-02-29", False),
        (b"1900-02-29", False),   # /100 not leap
        (b"2000-02-29", True),    # /400 leap
        (b"2100-02-29", False),
        (b"2016-02-30", False),
        (b"2016-04-31", False),   # 30-day month
        (b"2016-12-31", True),
    ])
    def test_vector_matches_scalar(self, date, valid):
        buf, offsets, lengths = packed([date])
        _, ok, _ = parse_date_vector(buf, offsets, lengths)
        assert bool(ok[0]) == valid
        assert parse_date_scalar(date)[1] == valid


class TestFloat32:
    @given(st.lists(st.floats(width=32, allow_nan=False,
                              allow_infinity=False), min_size=1,
                    max_size=40))
    @settings(max_examples=100)
    def test_vector_equals_cast_scalar(self, numbers):
        fields = [f"{n:.5f}".encode() for n in numbers]
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_float_vector(buf, offsets, lengths,
                                                  DataType.FLOAT32)
        for i, field in enumerate(fields):
            if fallback[i]:
                continue
            assert ok[i]
            assert values[i] == np.float32(float(field))

    def test_pipeline_float32_column(self):
        schema = Schema([Field("f", DataType.FLOAT32)])
        result = parse_bytes(b"1.5\n-0.25\nbad\n", schema=schema)
        assert result.table.column("f").to_list()[:2] == [1.5, -0.25]
        assert result.table.column("f").to_list()[2] is None


class TestNegativeZeroAndSigns:
    def test_negative_zero_float(self):
        schema = Schema([Field("f", DataType.FLOAT64)])
        result = parse_bytes(b"-0.0\n", schema=schema)
        value = result.table.column("f").to_list()[0]
        assert value == 0.0
        import math
        assert math.copysign(1.0, value) == -1.0

    def test_plus_signs_everywhere(self):
        schema = Schema([Field("n", DataType.INT64),
                         Field("f", DataType.FLOAT64),
                         Field("d", DataType.DECIMAL)])
        result = parse_bytes(b"+5,+1.5,+2.50\n", schema=schema)
        assert result.table.row(0) == (5, 1.5, 250)
