"""End-to-end parser tests: semantics, options, capabilities (§4.3)."""

import numpy as np
import pytest

from repro import (
    ColumnCountPolicy,
    DataType,
    Dialect,
    Field,
    ParPaRawParser,
    ParseError,
    ParseOptions,
    Schema,
    TaggingImpl,
    TaggingMode,
    parse_bytes,
)


class TestBasics:
    def test_quickstart(self):
        result = parse_bytes(b'a,b\n"x,y",2\n')
        assert result.table.to_pylist() == [
            {"col0": "a", "col1": "b"}, {"col0": "x,y", "col1": "2"}]

    def test_paper_example_typed(self, paper_example):
        schema = Schema([Field("id", DataType.INT64),
                         Field("price", DataType.DECIMAL),
                         Field("name", DataType.STRING)])
        result = parse_bytes(paper_example, schema=schema)
        assert result.table.to_pylist() == [
            {"id": 1941, "price": 19999, "name": "Bookcase"},
            {"id": 1938, "price": 1999, "name": 'Frame\n"Ribba", black'}]

    def test_empty_input(self):
        result = parse_bytes(b"")
        assert result.num_records == 0
        assert result.table.num_rows == 0

    def test_trailing_record(self):
        result = parse_bytes(b"1,2\n3,4")
        assert result.table.to_pylist()[-1] == {"col0": "3", "col1": "4"}

    def test_step_timer_has_paper_steps(self):
        result = parse_bytes(b"a,b\n")
        assert {"parse", "scan", "tag", "partition", "convert"} \
            <= set(result.step_seconds())

    def test_option_kwargs(self):
        result = parse_bytes(b"a;b\n", dialect=Dialect(delimiter=b";"))
        assert result.table.row(0) == ("a", "b")

    def test_rejects_non_uint8_array(self):
        with pytest.raises(ParseError):
            ParPaRawParser().parse(np.zeros(4, dtype=np.int32))

    def test_accepts_uint8_array(self):
        data = np.frombuffer(b"a,b\n", dtype=np.uint8)
        assert ParPaRawParser().parse(data).num_rows == 1


class TestEmptyFieldSemantics:
    def test_empty_fields_null(self):
        result = parse_bytes(b"1,,3\n")
        assert result.table.row(0) == ("1", None, "3")

    def test_quoted_empty_is_null(self):
        # No data symbols -> default/NULL (documented semantics).
        result = parse_bytes(b'1,"",3\n')
        assert result.table.row(0) == ("1", None, "3")

    def test_blank_line_is_single_null_record(self):
        result = parse_bytes(b"a,b\n\nc,d\n")
        rows = result.table.to_pylist()
        assert len(rows) == 3
        assert rows[1] == {"col0": None, "col1": None}

    def test_missing_trailing_fields_null(self):
        schema = Schema.all_strings(3)
        result = parse_bytes(b"a,b\n", schema=schema)
        assert result.table.row(0) == ("a", "b", None)

    def test_extra_fields_dropped(self):
        schema = Schema.all_strings(2)
        result = parse_bytes(b"a,b,c,d\n", schema=schema)
        assert result.table.row(0) == ("a", "b")


class TestChunkAndImplEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 4, 7, 16, 31, 64, 999])
    def test_chunk_size_invariance(self, paper_example, chunk_size):
        baseline = parse_bytes(paper_example).table.to_pylist()
        result = parse_bytes(paper_example, chunk_size=chunk_size)
        assert result.table.to_pylist() == baseline

    @pytest.mark.parametrize("impl", list(TaggingImpl))
    def test_tagging_impls_agree(self, paper_example, impl):
        baseline = parse_bytes(paper_example).table.to_pylist()
        result = parse_bytes(paper_example, tagging_impl=impl,
                             chunk_size=5)
        assert result.table.to_pylist() == baseline

    @pytest.mark.parametrize("mode", list(TaggingMode))
    def test_tagging_modes_agree(self, mode):
        data = b"1,,3\n4,5,6\n7,8,9"
        baseline = parse_bytes(data).table.to_pylist()
        result = parse_bytes(data, tagging_mode=mode)
        assert result.table.to_pylist() == baseline


class TestTaggingModeConstraints:
    def test_inline_requires_consistent_columns(self):
        with pytest.raises(ParseError, match="constant number"):
            parse_bytes(b"1,2\n3\n", tagging_mode=TaggingMode.INLINE)

    def test_inline_rejects_terminator_in_data(self):
        data = b"a\x1eb,c\n"
        with pytest.raises(ParseError, match="terminator"):
            parse_bytes(data, tagging_mode=TaggingMode.INLINE)

    def test_delimited_handles_terminator_in_data(self):
        data = b"a\x1eb,c\n"
        result = parse_bytes(data, tagging_mode=TaggingMode.DELIMITED)
        assert result.table.row(0) == ("a\x1eb", "c")

    def test_reject_policy_enables_inline_on_dirty_input(self):
        data = b"1,2\n3\n4,5\n"
        result = parse_bytes(data, tagging_mode=TaggingMode.INLINE,
                             column_count_policy=ColumnCountPolicy.REJECT)
        assert result.table.to_pylist() == [
            {"col0": "1", "col1": "2"}, {"col0": "4", "col1": "5"}]
        assert result.rejected_records == 1


class TestColumnCountPolicies:
    DATA = b"1,2\n3\n4,5,6\n7,8\n"

    def test_lenient_keeps_all(self):
        result = parse_bytes(self.DATA, schema=Schema.all_strings(2))
        assert result.num_rows == 4
        assert result.table.row(1) == ("3", None)
        assert result.table.row(2) == ("4", "5")

    def test_reject_drops_deviants(self):
        result = parse_bytes(self.DATA, schema=Schema.all_strings(2),
                             column_count_policy=ColumnCountPolicy.REJECT)
        assert result.num_rows == 2
        assert result.rejected_records == 2

    def test_strict_raises(self):
        with pytest.raises(ParseError, match="fields"):
            parse_bytes(self.DATA, schema=Schema.all_strings(2),
                        column_count_policy=ColumnCountPolicy.STRICT)

    def test_validation_report(self):
        result = parse_bytes(self.DATA)
        assert result.validation.min_columns == 1
        assert result.validation.max_columns == 3
        assert result.validation.inferred_num_columns == 3


class TestFormatValidation:
    def test_invalid_tail_rejected_leniently(self):
        # A stray quote mid-field invalidates that record and the rest.
        result = parse_bytes(b'good,row\nbad"row\nnever,seen\n')
        assert result.table.to_pylist() == [{"col0": "good", "col1": "row"}]
        # The offending record is rejected; symbols after the invalid
        # transition sit in the sink and never form further records.
        assert result.rejected_records == 1
        assert result.num_records == 2
        assert result.validation.invalid_position is not None

    def test_strict_raises_on_invalid(self):
        with pytest.raises(ParseError, match="invalid state"):
            parse_bytes(b'bad"row\n', strict=True)

    def test_strict_raises_on_truncated(self):
        with pytest.raises(ParseError, match="non-accepting"):
            parse_bytes(b'a,"unclosed', strict=True)

    def test_lenient_keeps_truncated_trailing(self):
        result = parse_bytes(b'a,"unclosed')
        assert result.table.row(0) == ("a", "unclosed")
        assert not result.validation.end_accepted

    def test_reject_policy_drops_truncated_trailing(self):
        result = parse_bytes(
            b'a,b\nc,"unclosed',
            column_count_policy=ColumnCountPolicy.REJECT)
        assert result.table.to_pylist() == [{"col0": "a", "col1": "b"}]


class TestSelection:
    def test_select_columns(self):
        result = parse_bytes(b"a,b,c\nd,e,f\n", select_columns=(2, 0))
        assert result.table.schema.names == ("col0", "col2")
        assert result.table.to_pylist() == [
            {"col0": "a", "col2": "c"}, {"col0": "d", "col2": "f"}]

    def test_select_out_of_range(self):
        with pytest.raises(ParseError):
            parse_bytes(b"a,b\n", select_columns=(5,))

    def test_skip_records(self):
        result = parse_bytes(b"a\nb\nc\n", skip_records=frozenset({1}))
        assert [r["col0"] for r in result.table.to_pylist()] == ["a", "c"]

    def test_skip_rows_prunes_before_parsing(self):
        # Skipping the row with the opening quote changes how everything
        # after parses — which is why rows are pruned up front (§4.3).
        data = b'keep,1\n"drop,2\nkeep,3\n'
        result = parse_bytes(data, skip_rows=frozenset({1}))
        assert result.table.to_pylist() == [
            {"col0": "keep", "col1": "1"}, {"col0": "keep", "col1": "3"}]

    def test_skip_rows_vs_records_differ(self):
        # A record spanning two rows: skipping row 1 truncates the quoted
        # field; skipping record 1 drops a whole logical record.
        data = b'a,"x\ny",b\nc,d,e\n'
        by_row = parse_bytes(data, skip_rows=frozenset({0}))
        by_record = parse_bytes(data, skip_records=frozenset({0}))
        assert by_record.table.to_pylist() == [
            {"col0": "c", "col1": "d", "col2": "e"}]
        # Pruning row 0 removes the opening quote, leaving a stray close
        # quote that invalidates the remainder — rows are not records.
        assert by_row.validation.invalid_position is not None
        assert by_row.table.to_pylist() != by_record.table.to_pylist()


class TestTypeInference:
    def test_infer_numeric_and_temporal(self):
        data = (b"1,1.5,2020-01-02 03:04:05,x\n"
                b"200,2.25,1999-12-31 23:59:59,y\n")
        result = parse_bytes(data, infer_types=True)
        dtypes = [f.dtype for f in result.table.schema]
        assert dtypes == [DataType.INT16, DataType.FLOAT64,
                          DataType.TIMESTAMP, DataType.STRING]

    def test_no_inference_all_strings(self):
        result = parse_bytes(b"1,2\n")
        assert all(f.dtype is DataType.STRING
                   for f in result.table.schema)

    def test_schema_overrides_inference(self):
        schema = Schema([Field("a", DataType.STRING),
                         Field("b", DataType.STRING)])
        result = parse_bytes(b"1,2\n", schema=schema, infer_types=True)
        assert result.table.schema == schema


class TestComments:
    def test_comments_skipped(self):
        options = ParseOptions(dialect=Dialect.csv_with_comments())
        result = ParPaRawParser(options).parse(
            b'#header "with quote\n1,2\n# another, comment\n3,4\n')
        assert result.table.to_pylist() == [
            {"col0": "1", "col1": "2"}, {"col0": "3", "col1": "4"}]

    def test_comment_only_input(self):
        options = ParseOptions(dialect=Dialect.csv_with_comments())
        result = ParPaRawParser(options).parse(b"#nothing here\n#at all")
        assert result.num_records == 0


class TestRejectsTracking:
    def test_conversion_rejects_counted(self):
        schema = Schema([Field("n", DataType.INT64)])
        result = parse_bytes(b"1\nx\n3\n", schema=schema)
        assert result.table.column("n").to_list() == [1, None, 3]
        assert result.total_rejected_fields == 1

    def test_collaboration_stats_reported(self):
        result = parse_bytes(b'a,' + b'"' + b'y' * 2000 + b'"\n',
                             block_threshold=100, device_threshold=1000)
        assert result.collaboration.device_fields == 1
