"""Property tests: vectorised converters ≡ scalar converters.

Each vector parser must, over arbitrary byte fields, either (a) agree with
the scalar reference exactly, or (b) flag the field for fallback — never
silently disagree.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar.schema import DataType
from repro.core.scalar_convert import (
    parse_bool_scalar,
    parse_date_scalar,
    parse_decimal_scalar,
    parse_float_scalar,
    parse_int_scalar,
    parse_timestamp_scalar,
)
from repro.core.vector_convert import (
    pack_fields,
    parse_bool_vector,
    parse_date_vector,
    parse_decimal_vector,
    parse_float_vector,
    parse_int_vector,
    parse_timestamp_vector,
)


def packed(fields: list[bytes]):
    """Build (buf, offsets, lengths) for a list of non-empty fields."""
    src = np.frombuffer(b"".join(fields), dtype=np.uint8)
    lengths = np.array([len(f) for f in fields], dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
    buf, offsets = pack_fields(src, starts, lengths)
    return buf, offsets, lengths


numeric_text = st.one_of(
    st.integers(-10 ** 20, 10 ** 20).map(lambda v: str(v).encode()),
    st.floats(allow_nan=False, allow_infinity=False)
      .map(lambda v: repr(v).encode()),
    st.floats(allow_nan=False, allow_infinity=False, width=32)
      .map(lambda v: f"{v:.4f}".encode()),
    st.binary(min_size=1, max_size=8),   # garbage
    st.sampled_from([b"-", b"+", b".", b"1.", b".5", b"007", b"-0",
                     b"1e5", b"nan", b"inf", b"1.2.3", b"--3",
                     # Python-isms both converters must reject in parity:
                     b"infinity", b"Infinity", b"-INF",
                     b"1_0", b"1_000", b"1_0.5", b"1_0e2"]),
)


class TestPackFields:
    def test_gathers_slices(self):
        src = np.frombuffer(b"aXbbXccc", dtype=np.uint8)
        starts = np.array([0, 2, 5])
        lengths = np.array([1, 2, 3])
        buf, offsets = pack_fields(src, starts, lengths)
        assert buf.tobytes() == b"abbccc"
        assert offsets.tolist() == [0, 1, 3]

    def test_empty(self):
        buf, offsets = pack_fields(np.zeros(0, dtype=np.uint8),
                                   np.zeros(0, dtype=np.int64),
                                   np.zeros(0, dtype=np.int64))
        assert buf.size == 0 and offsets.size == 0


class TestIntVector:
    @given(st.lists(numeric_text, min_size=1, max_size=40))
    @settings(max_examples=150)
    def test_agrees_or_falls_back(self, fields):
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_int_vector(buf, offsets, lengths)
        for i, field in enumerate(fields):
            if fallback[i]:
                continue
            expected, expected_ok = parse_int_scalar(field)
            assert bool(ok[i]) == expected_ok, field
            if expected_ok:
                assert int(values[i]) == expected, field

    @given(st.lists(st.integers(-(2 ** 63), 2 ** 63 - 1), min_size=1,
                    max_size=30))
    def test_valid_ints_roundtrip(self, numbers):
        fields = [str(n).encode() for n in numbers]
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_int_vector(buf, offsets, lengths)
        for i, n in enumerate(numbers):
            if fallback[i]:
                assert len(fields[i].lstrip(b"-+")) > 18
            else:
                assert ok[i] and int(values[i]) == n

    def test_narrow_dtype_bounds(self):
        buf, offsets, lengths = packed([b"127", b"128", b"-128", b"-129"])
        values, ok, _ = parse_int_vector(buf, offsets, lengths,
                                         DataType.INT8)
        assert ok.tolist() == [True, False, True, False]

    def test_empty_input(self):
        values, ok, fb = parse_int_vector(np.zeros(0, dtype=np.uint8),
                                          np.zeros(0, dtype=np.int64),
                                          np.zeros(0, dtype=np.int64))
        assert values.size == ok.size == fb.size == 0


class TestFloatVector:
    @given(st.lists(numeric_text, min_size=1, max_size=40))
    @settings(max_examples=150)
    def test_agrees_or_falls_back(self, fields):
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_float_vector(buf, offsets, lengths)
        for i, field in enumerate(fields):
            if fallback[i]:
                continue
            expected, expected_ok = parse_float_scalar(field)
            assert bool(ok[i]) == expected_ok, field
            if expected_ok:
                assert float(values[i]) == expected, field

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=30))
    def test_bit_exact_on_plain_literals(self, numbers):
        fields = [f"{n:.6f}".encode() for n in numbers]
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_float_vector(buf, offsets, lengths)
        for i, field in enumerate(fields):
            if not fallback[i]:
                assert ok[i]
                assert float(values[i]) == float(field), field

    def test_exponents_route_to_fallback(self):
        buf, offsets, lengths = packed([b"1e5", b"2E-3", b"inf", b"nan"])
        _, ok, fallback = parse_float_vector(buf, offsets, lengths)
        assert fallback.all()
        assert not ok.any()


class TestDecimalVector:
    @given(st.lists(numeric_text, min_size=1, max_size=30),
           st.integers(0, 4))
    @settings(max_examples=120)
    def test_agrees_or_falls_back(self, fields, scale):
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_decimal_vector(buf, offsets, lengths,
                                                    scale)
        for i, field in enumerate(fields):
            if fallback[i]:
                continue
            expected, expected_ok = parse_decimal_scalar(field, scale)
            assert bool(ok[i]) == expected_ok, (field, scale)
            if expected_ok:
                assert int(values[i]) == expected, (field, scale)

    def test_figure5_prices(self):
        buf, offsets, lengths = packed([b"199.99", b"19.99"])
        values, ok, _ = parse_decimal_vector(buf, offsets, lengths, 2)
        assert ok.all()
        assert values.tolist() == [19999, 1999]


class TestBoolVector:
    @given(st.lists(st.one_of(
        st.sampled_from([b"1", b"0", b"t", b"f", b"true", b"false",
                         b"True", b"False", b"TRUE", b"FALSE"]),
        st.binary(min_size=1, max_size=6)), min_size=1, max_size=30))
    def test_agrees(self, fields):
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_bool_vector(buf, offsets, lengths)
        assert not fallback.any()
        for i, field in enumerate(fields):
            expected, expected_ok = parse_bool_scalar(field)
            assert bool(ok[i]) == expected_ok, field
            if expected_ok:
                assert bool(values[i]) == expected


date_like = st.one_of(
    st.tuples(st.integers(1900, 2100), st.integers(0, 13),
              st.integers(0, 32)).map(
        lambda t: f"{t[0]:04d}-{t[1]:02d}-{t[2]:02d}".encode()),
    st.binary(min_size=1, max_size=12),
)


class TestDateVector:
    @given(st.lists(date_like, min_size=1, max_size=30))
    @settings(max_examples=120)
    def test_agrees(self, fields):
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_date_vector(buf, offsets, lengths)
        assert not fallback.any()
        for i, field in enumerate(fields):
            expected, expected_ok = parse_date_scalar(field)
            assert bool(ok[i]) == expected_ok, field
            if expected_ok:
                assert int(values[i]) == expected


timestamp_like = st.one_of(
    st.tuples(st.integers(1900, 2100), st.integers(1, 12),
              st.integers(1, 28), st.integers(0, 24), st.integers(0, 60),
              st.integers(0, 60)).map(
        lambda t: (f"{t[0]:04d}-{t[1]:02d}-{t[2]:02d} "
                   f"{t[3]:02d}:{t[4]:02d}:{t[5]:02d}").encode()),
    st.binary(min_size=1, max_size=20),
)


class TestTimestampVector:
    @given(st.lists(timestamp_like, min_size=1, max_size=30))
    @settings(max_examples=120)
    def test_agrees(self, fields):
        buf, offsets, lengths = packed(fields)
        values, ok, fallback = parse_timestamp_vector(buf, offsets, lengths)
        assert not fallback.any()
        for i, field in enumerate(fields):
            expected, expected_ok = parse_timestamp_scalar(field)
            assert bool(ok[i]) == expected_ok, field
            if expected_ok:
                assert int(values[i]) == expected
