"""Tests for CSS index generation in all three tagging modes (Fig. 5/6)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.css import delimited_index, inline_index, tagged_index
from repro.errors import ParseError


class TestTaggedIndex:
    def test_figure5_text_column(self):
        # Column 2 of Figure 5: "Bookcase\0Frame..." with records 0, 1.
        tags = np.array([0] * 9 + [1] * 21)
        index = tagged_index(tags)
        assert index.records.tolist() == [0, 1]
        assert index.offsets.tolist() == [0, 9]
        assert index.lengths.tolist() == [9, 21]

    def test_empty(self):
        index = tagged_index(np.array([], dtype=np.int64))
        assert index.num_fields == 0

    def test_missing_records_absent(self):
        # Record 1 contributed no symbols: only records 0 and 2 indexed.
        tags = np.array([0, 0, 2, 2, 2])
        index = tagged_index(tags)
        assert index.records.tolist() == [0, 2]

    @given(st.lists(st.integers(0, 30), max_size=200))
    def test_reconstruction(self, tag_list):
        tags = np.array(tag_list, dtype=np.int64)
        index = tagged_index(tags)
        rebuilt = np.repeat(index.records, index.lengths)
        assert rebuilt.tolist() == tag_list
        # Offsets are the exclusive prefix sum of lengths.
        assert index.offsets.tolist() == \
            np.concatenate([[0], np.cumsum(index.lengths)[:-1]]).tolist() \
            if index.num_fields else True


class TestInlineIndex:
    def test_figure6(self):
        # "Apples\x1e\x1ePears\x1e" -> offsets 0,7,9; lengths 6,0,5.
        css = np.frombuffer(b"Apples\x1e\x1ePears\x1e", dtype=np.uint8)
        index = inline_index(css, 0x1E)
        assert index.offsets.tolist() == [0, 7, 8]
        assert index.lengths.tolist() == [6, 0, 5]
        assert index.records.tolist() == [0, 1, 2]

    def test_empty_css(self):
        index = inline_index(np.array([], dtype=np.uint8), 0x1E)
        assert index.num_fields == 0

    def test_missing_trailing_terminator_rejected(self):
        css = np.frombuffer(b"abc", dtype=np.uint8)
        with pytest.raises(ParseError):
            inline_index(css, 0x1E)

    def test_all_empty_fields(self):
        css = np.full(3, 0x1E, dtype=np.uint8)
        index = inline_index(css, 0x1E)
        assert index.lengths.tolist() == [0, 0, 0]

    @given(st.lists(st.binary(max_size=8).filter(lambda b: 0x1E not in b),
                    max_size=30))
    def test_roundtrip(self, fields):
        css_bytes = b"".join(f + b"\x1e" for f in fields)
        css = np.frombuffer(css_bytes, dtype=np.uint8)
        index = inline_index(css, 0x1E)
        assert index.num_fields == len(fields)
        for i, expected in enumerate(fields):
            lo = int(index.offsets[i])
            hi = lo + int(index.lengths[i])
            assert css[lo:hi].tobytes() == expected


class TestDelimitedIndex:
    def test_figure6(self):
        # "Apples??Pears?" with marks 00000011000001.
        marks = np.array([0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1],
                         dtype=bool)
        index = delimited_index(marks)
        assert index.offsets.tolist() == [0, 7, 8]
        assert index.lengths.tolist() == [6, 0, 5]

    def test_missing_trailing_mark_rejected(self):
        with pytest.raises(ParseError):
            delimited_index(np.array([True, False]))

    def test_empty(self):
        assert delimited_index(np.array([], dtype=bool)).num_fields == 0

    @given(st.lists(st.integers(0, 6), max_size=30))
    def test_matches_inline(self, field_lengths):
        """Inline and delimited must index identical field geometry."""
        css_bytes = b"".join(b"x" * n + b"\x1e" for n in field_lengths)
        css = np.frombuffer(css_bytes, dtype=np.uint8)
        marks = css == 0x1E
        a = inline_index(css, 0x1E)
        b = delimited_index(marks)
        assert a.offsets.tolist() == b.offsets.tolist()
        assert a.lengths.tolist() == b.lengths.tolist()
