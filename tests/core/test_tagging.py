"""Tests for phase 2: emissions, bitmaps, record/column tags (§3.1-3.2).

The key invariant: the GLOBAL (vectorised cumulative sums) and CHUNKED
(paper-faithful per-chunk offsets + scans) implementations produce
bit-identical tags, and both match a scalar reference walk.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chunking import chunk_groups
from repro.core.context import determine_contexts
from repro.core.tagging import compute_emissions, tag_chunked, tag_global
from repro.dfa.automaton import Emission
from repro.dfa.csv import dialect_dfa
from repro.dfa.dialects import Dialect

csv_like = st.text(
    alphabet=st.sampled_from(list('ab",\n')), max_size=100
).map(lambda s: s.encode())


def run_tagging(data: bytes, chunk_size: int = 7, dialect=None):
    dfa = dialect_dfa(dialect or Dialect(strip_carriage_return=False))
    arr = np.frombuffer(data, dtype=np.uint8)
    groups, chunking, padded = chunk_groups(arr, dfa, chunk_size)
    _, starts = determine_contexts(groups, padded)
    emissions, final, invalid = compute_emissions(groups, starts, padded,
                                                  chunking)
    return emissions, final, invalid, chunking, dfa


def reference_tags(dfa, data: bytes):
    """Scalar reference: record/column id per byte."""
    state = dfa.start_state
    record, column = 0, 0
    records, columns = [], []
    for byte in data:
        records.append(record)
        columns.append(column)
        state, emission = dfa.step(state, byte)
        if emission is Emission.RECORD_DELIMITER:
            record += 1
            column = 0
        elif emission is Emission.FIELD_DELIMITER:
            column += 1
    return records, columns


class TestEmissions:
    def test_emissions_match_sequential(self, csv_dfa):
        data = b'a,"b\nc",d\ne,f\n'
        emissions, final, invalid, _, dfa = run_tagging(data, 3)
        _, expected = dfa.simulate(data)
        assert emissions.tolist() == [int(e) for e in expected]
        assert invalid is None

    def test_final_state(self):
        emissions, final, _, _, dfa = run_tagging(b'a,"unclosed', 4)
        assert dfa.state_names[final] == "ENC"

    def test_invalid_position_detected(self):
        # 'a"' drives FLD -> INV at the quote; the automaton *sits* in INV
        # from the next byte on.
        _, _, invalid, _, _ = run_tagging(b'ab"cd,e\n', 3)
        assert invalid == 3

    def test_invalid_none_for_clean_input(self):
        _, _, invalid, _, _ = run_tagging(b"a,b\n", 2)
        assert invalid is None


class TestGlobalTags:
    @given(csv_like, st.integers(1, 13))
    @settings(max_examples=120)
    def test_matches_reference(self, data, chunk_size):
        emissions, final, _, chunking, dfa = run_tagging(data, chunk_size)
        tags = tag_global(emissions, final)
        exp_records, exp_columns = reference_tags(dfa, data)
        assert tags.record_ids.tolist() == exp_records
        assert tags.column_ids.tolist() == exp_columns

    def test_figure4_tags(self):
        """Bottom of Figure 4: column/record tags of the worked example."""
        data = b'1941,199.99,"Bookcase"\n1938,19.99,"Frame\n' \
               b'""Ribba"", black"\n'
        emissions, final, _, chunking, dfa = run_tagging(data, 10)
        tags = tag_global(emissions, final)
        # First record: '1941' col 0, '199.99' col 1, 'Bookcase' col 2.
        assert tags.column_ids[:4].tolist() == [0] * 4
        assert tags.column_ids[5:11].tolist() == [1] * 6
        assert tags.record_ids[:23].tolist() == [0] * 23
        assert tags.record_ids[23:30].tolist() == [1] * 7
        assert tags.num_records == 2

    def test_record_count_with_trailing(self):
        emissions, final, _, _, _ = run_tagging(b"a\nb", 2)
        tags = tag_global(emissions, final)
        assert tags.num_records == 2
        assert tags.has_trailing_record

    def test_no_trailing_after_clean_end(self):
        emissions, final, _, _, _ = run_tagging(b"a\nb\n", 2)
        tags = tag_global(emissions, final)
        assert tags.num_records == 2
        assert not tags.has_trailing_record

    def test_lone_quotes_are_a_record(self):
        # '""' is one record with one empty field (CONTROL content).
        emissions, final, _, _, _ = run_tagging(b'""', 1)
        tags = tag_global(emissions, final)
        assert tags.num_records == 1

    def test_comment_only_input_no_records(self):
        data = b"#just a comment"
        dfa_dialect = Dialect(comment=b"#", strip_carriage_return=False)
        emissions, final, _, chunking, dfa = run_tagging(data, 4,
                                                         dfa_dialect)
        tags = tag_global(emissions, final)
        assert tags.num_records == 0

    def test_empty_input(self):
        emissions, final, _, _, _ = run_tagging(b"", 4)
        tags = tag_global(emissions, final)
        assert tags.num_records == 0
        assert tags.record_ids.size == 0


class TestChunkedEqualsGlobal:
    @given(csv_like, st.integers(1, 13))
    @settings(max_examples=120)
    def test_identical_tags(self, data, chunk_size):
        emissions, final, _, chunking, _ = run_tagging(data, chunk_size)
        a = tag_global(emissions, final)
        b = tag_chunked(emissions, final, chunking)
        assert a.record_ids.tolist() == b.record_ids.tolist()
        assert a.column_ids.tolist() == b.column_ids.tolist()
        assert a.num_records == b.num_records
        assert a.has_trailing_record == b.has_trailing_record
        assert np.array_equal(a.record_delim, b.record_delim)
        assert np.array_equal(a.field_delim, b.field_delim)
        assert np.array_equal(a.data_mask, b.data_mask)

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 10, 31, 64, 1000])
    def test_paper_example_all_chunk_sizes(self, chunk_size, paper_example):
        emissions, final, _, chunking, _ = run_tagging(paper_example,
                                                       chunk_size)
        a = tag_global(emissions, final)
        b = tag_chunked(emissions, final, chunking)
        assert a.column_ids.tolist() == b.column_ids.tolist()
        assert a.record_ids.tolist() == b.record_ids.tolist()
