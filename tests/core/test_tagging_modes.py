"""Unit tests for the tagging-mode mechanics module (§4.1)."""

import numpy as np
import pytest

from repro.core.options import ParseOptions, TaggingMode
from repro.core.partition import partition_by_column
from repro.core.tagging_modes import build_keep_mask, column_indexes, \
    prepare_css
from repro.errors import ParseError


def make_partition(data: bytes, keep, columns, records, num_columns):
    return partition_by_column(
        np.frombuffer(data, dtype=np.uint8),
        np.asarray(keep, dtype=bool),
        np.asarray(columns, dtype=np.int64),
        np.asarray(records, dtype=np.int64), num_columns)


class TestKeepMask:
    DATA = np.array([True, False, True, False], dtype=bool)
    DELIM = np.array([False, True, False, True], dtype=bool)
    OK = np.ones(4, dtype=bool)

    def test_tagged_keeps_data_only(self):
        keep = build_keep_mask(TaggingMode.TAGGED, self.DATA, self.DELIM,
                               self.OK, self.OK)
        assert keep.tolist() == [True, False, True, False]

    def test_inline_keeps_delimiters_too(self):
        keep = build_keep_mask(TaggingMode.INLINE, self.DATA, self.DELIM,
                               self.OK, self.OK)
        assert keep.tolist() == [True, True, True, True]

    def test_filters_apply(self):
        no = np.zeros(4, dtype=bool)
        keep = build_keep_mask(TaggingMode.DELIMITED, self.DATA,
                               self.DELIM, self.OK, no)
        assert not keep.any()


class TestPrepareCss:
    def test_inline_substitutes_terminator(self):
        # 'ab,c\n' with delimiters kept: positions 2 and 4 are delims.
        data = b"ab,c\n"
        keep = [True] * 5
        columns = [0, 0, 0, 1, 1]
        records = [0] * 5
        part = make_partition(data, keep, columns, records, 2)
        delim_mask = np.array([False, False, True, False, True])
        options = ParseOptions(tagging_mode=TaggingMode.INLINE)
        css, aux = prepare_css(TaggingMode.INLINE, part, delim_mask,
                               options)
        assert css.tobytes() == b"ab\x1ec\x1e"
        assert aux.tolist() == [False, False, True, False, True]

    def test_inline_rejects_terminator_in_data(self):
        data = b"a\x1e,b\n"
        keep = [True] * 5
        columns = [0, 0, 0, 1, 1]
        records = [0] * 5
        part = make_partition(data, keep, columns, records, 2)
        delim_mask = np.array([False, False, True, False, True])
        options = ParseOptions(tagging_mode=TaggingMode.INLINE)
        with pytest.raises(ParseError, match="terminator"):
            prepare_css(TaggingMode.INLINE, part, delim_mask, options)

    def test_delimited_leaves_bytes_alone(self):
        data = b"a,b\n"
        part = make_partition(data, [True] * 4, [0, 0, 1, 1], [0] * 4, 2)
        delim_mask = np.array([False, True, False, True])
        options = ParseOptions(tagging_mode=TaggingMode.DELIMITED)
        css, aux = prepare_css(TaggingMode.DELIMITED, part, delim_mask,
                               options)
        assert css.tobytes() == b"a,b\n"
        assert aux.tolist() == [False, True, False, True]


class TestColumnIndexes:
    def test_tagged_indexes_by_record_runs(self):
        data = b"aabb"
        part = make_partition(data, [True] * 4, [0, 0, 0, 0],
                              [0, 0, 1, 1], 1)
        options = ParseOptions()
        indexes = column_indexes(TaggingMode.TAGGED, part, part.css,
                                 np.zeros(4, dtype=bool), options)
        assert indexes[0].records.tolist() == [0, 1]
        assert indexes[0].lengths.tolist() == [2, 2]

    def test_inline_indexes_by_terminators(self):
        data = b"ab\x1ec\x1e"
        part = make_partition(data, [True] * 5, [0] * 5, [0] * 5, 1)
        options = ParseOptions(tagging_mode=TaggingMode.INLINE)
        indexes = column_indexes(TaggingMode.INLINE, part, part.css,
                                 part.css == 0x1E, options)
        assert indexes[0].lengths.tolist() == [2, 1]
