"""Strategy parity: field-run partitioning is bit-identical to radix.

The field-run strategy's acceptance bar (ISSUE 5): for every dialect,
tagging mode, input and executor schedule, ``partition_field_runs``
produces exactly the ``PartitionResult`` the stable radix sort produces —
same ``css``, ``record_tags``, ``column_offsets`` and stable ``order``
permutation (``num_field_runs`` is diagnostic metadata and excluded).
"""

import numpy as np
import pytest

from repro import (
    Dialect,
    ParPaRawParser,
    ParseOptions,
    PartitionStrategy,
    SerialExecutor,
    ShardedExecutor,
)
from repro.core.options import TaggingImpl, TaggingMode
from repro.core.stages import PartitionStage, PipelineContext, RawInput
from repro.dfa import dialect_dfa
from repro.errors import ParseError
from repro.utils.timing import StepTimer
from tests.conftest import TRICKY_INPUTS, as_uint8
from tests.exec.test_executors import assert_results_match
from tests.kernels.test_parity import DIALECTS

MODES = [TaggingMode.TAGGED, TaggingMode.INLINE, TaggingMode.DELIMITED]


def partition_result(data: bytes, options: ParseOptions, executor=None):
    """Run the pipeline up to (and including) the partition stage."""
    executor = executor or SerialExecutor()
    ctx = PipelineContext(options=options,
                          dfa=dialect_dfa(options.dialect),
                          timer=StepTimer())
    raw = as_uint8(data)
    with executor:
        payload = executor.execute(
            ctx, RawInput(raw=raw, input_bytes=raw.size),
            until="partition")
    return payload.part


def assert_parts_identical(a, b):
    np.testing.assert_array_equal(a.css, b.css)
    np.testing.assert_array_equal(a.record_tags, b.record_tags)
    np.testing.assert_array_equal(a.column_offsets, b.column_offsets)
    np.testing.assert_array_equal(a.order, b.order)
    assert a.num_columns == b.num_columns


class TestStrategyParity:
    @pytest.mark.parametrize(
        "dialect", DIALECTS,
        ids=[f"dialect{i}" for i in range(len(DIALECTS))])
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_dialects_and_modes(self, dialect, mode):
        for data in TRICKY_INPUTS:
            base = dict(dialect=dialect, tagging_mode=mode, chunk_size=8)
            # Inline/delimited modes reject ragged column counts — the
            # strategies must then agree on the *rejection* too.
            try:
                radix = partition_result(
                    data, ParseOptions(
                        partition_strategy=PartitionStrategy.RADIX,
                        **base))
            except ParseError:
                for strategy in (PartitionStrategy.FIELD_RUN, None):
                    with pytest.raises(ParseError):
                        partition_result(data, ParseOptions(
                            partition_strategy=strategy, **base))
                continue
            field_run = partition_result(
                data, ParseOptions(
                    partition_strategy=PartitionStrategy.FIELD_RUN,
                    **base))
            auto = partition_result(
                data, ParseOptions(partition_strategy=None, **base))
            assert_parts_identical(radix, field_run)
            assert_parts_identical(radix, auto)

    def test_chunked_tagging_impl(self):
        """The paper-faithful chunked tagger carries no delimiter
        positions: an explicit field-run request is rejected up front
        with an actionable error, and auto resolves to radix with
        bit-identical partitions."""
        base = dict(dialect=Dialect(strip_carriage_return=False),
                    tagging_impl=TaggingImpl.CHUNKED, chunk_size=8)
        with pytest.raises(ParseError, match="field-run"):
            ParseOptions(partition_strategy=PartitionStrategy.FIELD_RUN,
                         **base)
        for data in TRICKY_INPUTS:
            radix = partition_result(
                data, ParseOptions(
                    partition_strategy=PartitionStrategy.RADIX, **base))
            auto = partition_result(data, ParseOptions(**base))
            assert_parts_identical(radix, auto)

    @pytest.mark.parametrize("workers,shard_bytes", [(2, 64), (3, 48)])
    def test_sharded_schedule(self, workers, shard_bytes):
        """The sharded executor resolves the same strategy and produces
        the same partition as the serial schedule."""
        dialect = Dialect(strip_carriage_return=False)
        for data in TRICKY_INPUTS:
            for strategy in (PartitionStrategy.RADIX,
                             PartitionStrategy.FIELD_RUN, None):
                options = ParseOptions(dialect=dialect, chunk_size=8,
                                       partition_strategy=strategy)
                serial = partition_result(data, options)
                sharded = partition_result(
                    data, options,
                    executor=ShardedExecutor(workers=workers,
                                             shard_bytes=shard_bytes,
                                             use_processes=False))
                assert_parts_identical(serial, sharded)

    @pytest.mark.parametrize("strategy",
                             [PartitionStrategy.FIELD_RUN,
                              PartitionStrategy.RADIX])
    def test_end_to_end_tables_match_sharded(self, strategy):
        executor = ShardedExecutor(workers=2, shard_bytes=64,
                                   use_processes=False)
        with executor:
            for data in TRICKY_INPUTS:
                assert_results_match(
                    data,
                    ParseOptions(
                        dialect=Dialect(strip_carriage_return=False),
                        chunk_size=8, partition_strategy=strategy),
                    executor)


class TestStrategyResolution:
    def test_auto_prefers_field_run_with_positions(self):
        options = ParseOptions()
        strategy = PartitionStage.resolve_strategy(
            options, np.array([3, 7], dtype=np.int64))
        assert strategy is PartitionStrategy.FIELD_RUN

    def test_auto_falls_back_to_radix_without_positions(self):
        options = ParseOptions()
        assert PartitionStage.resolve_strategy(options, None) \
            is PartitionStrategy.RADIX

    def test_explicit_choice_wins(self):
        options = ParseOptions(partition_strategy=PartitionStrategy.RADIX)
        assert PartitionStage.resolve_strategy(
            options, np.array([1], dtype=np.int64)) \
            is PartitionStrategy.RADIX

    def test_options_coerce_strings(self):
        assert ParseOptions(partition_strategy="field-run") \
            .partition_strategy is PartitionStrategy.FIELD_RUN
        assert ParseOptions(partition_strategy="radix") \
            .partition_strategy is PartitionStrategy.RADIX

    def test_options_reject_unknown_strategy(self):
        with pytest.raises(ParseError):
            ParseOptions(partition_strategy="quicksort")

    def test_metrics_record_strategy(self):
        from repro.core.parser import parse_bytes
        from repro.obs import MetricsRegistry
        dialect = Dialect(strip_carriage_return=False)
        metrics = MetricsRegistry()
        parse_bytes(b"a,b\nc,d\n", metrics=metrics,
                    options=ParseOptions(
                        dialect=dialect,
                        partition_strategy=PartitionStrategy.FIELD_RUN))
        assert metrics.gauges["stage.partition.strategy"] == 1.0
        assert metrics.gauges["partition.fields"] > 0

        metrics = MetricsRegistry()
        parse_bytes(b"a,b\nc,d\n", metrics=metrics,
                    options=ParseOptions(
                        dialect=dialect,
                        partition_strategy=PartitionStrategy.RADIX))
        assert metrics.gauges["stage.partition.strategy"] == 0.0
        assert "partition.fields" not in metrics.gauges
