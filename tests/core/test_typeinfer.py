"""Tests for numeric/temporal type inference (§4.3)."""

import numpy as np
import pytest

from repro.columnar.schema import DataType
from repro.core.css import ColumnIndex
from repro.core.typeinfer import infer_column_type


def column(fields: list[bytes]):
    css = np.frombuffer(b"".join(fields), dtype=np.uint8)
    lengths = np.array([len(f) for f in fields], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]) \
        .astype(np.int64)
    index = ColumnIndex(records=np.arange(len(fields), dtype=np.int64),
                        offsets=offsets, lengths=lengths)
    return css, index


@pytest.mark.parametrize("fields,expected", [
    ([b"0", b"1"], DataType.BOOL),
    ([b"t", b"false"], DataType.BOOL),
    ([b"0", b"2"], DataType.INT8),
    ([b"127", b"-128"], DataType.INT8),
    ([b"128"], DataType.INT16),
    ([b"40000"], DataType.INT32),
    ([b"3000000000"], DataType.INT64),
    ([b"1", b"1.5"], DataType.FLOAT64),
    ([b"1e300"], DataType.FLOAT64),
    ([b"2020-01-01"], DataType.DATE),
    ([b"2020-01-01 10:00:00"], DataType.TIMESTAMP),
    ([b"hello"], DataType.STRING),
    ([b"1", b"x"], DataType.STRING),
    ([b"2020-01-01", b"5"], DataType.STRING),  # mixed temporal/numeric
    ([], DataType.STRING),
])
def test_inference(fields, expected):
    css, index = column(fields)
    assert infer_column_type(css, index) is expected


def test_empty_fields_are_neutral():
    css, index = column([b"", b"7", b""])
    assert infer_column_type(css, index) is DataType.INT8


def test_widening_is_max_reduction():
    # int8 candidates + one int64 -> int64 (paper: reduction over the
    # minimum per-field type).
    css, index = column([b"1", b"2", b"3000000000", b"4"])
    assert infer_column_type(css, index) is DataType.INT64
