"""Core suite: run under the zero-copy read-only guard.

Every test in this directory executes with
:mod:`repro.columnar.guard` enabled, so the zero-copy buffers the fused
convert/partition paths hand out are non-writeable — a latent mutation
of a borrowed view fails loudly here instead of corrupting a parity
comparison silently.  The environment variable propagates the switch to
``spawn``-ed pool workers.
"""

import os

import pytest

from repro.columnar import guard


@pytest.fixture(autouse=True, scope="session")
def readonly_guard():
    was_enabled = guard.enabled()
    had_env = os.environ.get("REPRO_READONLY_GUARD")
    os.environ["REPRO_READONLY_GUARD"] = "1"
    guard.enable()
    yield
    if had_env is None:
        os.environ.pop("REPRO_READONLY_GUARD", None)
    else:
        os.environ["REPRO_READONLY_GUARD"] = had_env
    if not was_enabled:
        guard.disable()
