"""Tests for §4.2: symbol-level chunk-parallel parsing of UTF-8/UTF-16."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.symbol_parser import SymbolDfa, parse_symbols, \
    symbol_transition_vectors
from repro.dfa.csv import dialect_dfa
from repro.dfa.dialects import Dialect
from repro.dfa.transitions import compose, identity_vector

NO_CR = Dialect(strip_carriage_return=False)


def sequential_symbol_rows(sdfa: SymbolDfa,
                           text: str) -> tuple[list[list[str | None]], int]:
    """Scalar reference: simulate the DFA over the decoded code points."""
    from repro.dfa.automaton import Emission
    dfa = sdfa.dfa
    state = dfa.start_state
    records: list[list[str | None]] = []
    fields: list[str | None] = []
    buffer: list[str] = []
    has_content = False
    has_data = False
    for char in text:
        group = sdfa.group_of(ord(char))
        emission = Emission(int(dfa.emissions[state, group]))
        state = int(dfa.transitions[group, state])
        if emission is Emission.DATA:
            buffer.append(char)
            has_data = has_content = True
        elif emission is Emission.FIELD_DELIMITER:
            fields.append("".join(buffer) if has_data else None)
            buffer.clear()
            has_data = False
            has_content = True
        elif emission is Emission.RECORD_DELIMITER:
            fields.append("".join(buffer) if has_data else None)
            buffer.clear()
            has_data = False
            records.append(fields)
            fields = []
            has_content = False
        elif emission is Emission.CONTROL:
            has_content = True
    if has_content:
        fields.append("".join(buffer) if has_data else None)
        records.append(fields)
    return records, state


UNICODE_CSV = st.text(
    alphabet=st.sampled_from(list('aé日🙂",\n')), max_size=60)


@pytest.fixture(scope="module")
def csv_symbol_dfa() -> SymbolDfa:
    return SymbolDfa(dialect_dfa(NO_CR))


class TestStvComposition:
    @given(UNICODE_CSV, st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_utf8_stv_composes_to_sequential(self, text, chunk_size,
                                             ):
        sdfa = SymbolDfa(dialect_dfa(NO_CR))
        data = text.encode("utf-8")
        vectors = symbol_transition_vectors(sdfa, data, chunk_size)
        prefix = identity_vector(sdfa.dfa.num_states)
        for vector in vectors:
            prefix = compose(prefix, vector)
        _, expected_state = sequential_symbol_rows(sdfa, text)
        assert prefix[sdfa.dfa.start_state] == expected_state

    @given(UNICODE_CSV, st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_utf16_stv_composes_to_sequential(self, text, units):
        sdfa = SymbolDfa(dialect_dfa(NO_CR))
        data = text.encode("utf-16-le")
        vectors = symbol_transition_vectors(sdfa, data, units * 2,
                                            encoding="utf-16-le")
        prefix = identity_vector(sdfa.dfa.num_states)
        for vector in vectors:
            prefix = compose(prefix, vector)
        _, expected_state = sequential_symbol_rows(sdfa, text)
        assert prefix[sdfa.dfa.start_state] == expected_state


class TestParseSymbols:
    @given(UNICODE_CSV, st.integers(1, 16))
    @settings(max_examples=120, deadline=None)
    def test_utf8_matches_sequential(self, text, chunk_size,
                                     ):
        sdfa = SymbolDfa(dialect_dfa(NO_CR))
        rows, state = parse_symbols(sdfa, text.encode("utf-8"), chunk_size)
        expected_rows, expected_state = sequential_symbol_rows(sdfa, text)
        assert rows == expected_rows
        assert state == expected_state

    @given(UNICODE_CSV, st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_utf16_matches_sequential(self, text, units):
        sdfa = SymbolDfa(dialect_dfa(NO_CR))
        rows, state = parse_symbols(sdfa, text.encode("utf-16-le"),
                                    units * 2, encoding="utf-16-le")
        expected_rows, expected_state = sequential_symbol_rows(sdfa, text)
        assert rows == expected_rows
        assert state == expected_state

    def test_multibyte_quoted_field(self, csv_symbol_dfa):
        text = 'id,"日本語, with 🙂 emoji\nand a newline"\n'
        rows, _ = parse_symbols(csv_symbol_dfa, text.encode("utf-8"), 5)
        assert rows == [["id", "日本語, with 🙂 emoji\nand a newline"]]

    def test_surrogate_pair_spanning_chunks(self, csv_symbol_dfa):
        # A 4-byte UTF-16 code point straddling every possible 2-byte
        # chunk boundary must never split.
        text = 'a,🙂\n'
        data = text.encode("utf-16-le")
        for units in (1, 2, 3):
            rows, _ = parse_symbols(csv_symbol_dfa, data, units * 2,
                                    encoding="utf-16-le")
            assert rows == [["a", "🙂"]], units

    def test_empty_input(self, csv_symbol_dfa):
        rows, state = parse_symbols(csv_symbol_dfa, b"", 4)
        assert rows == []
        assert state == csv_symbol_dfa.dfa.start_state

    def test_custom_classifier(self):
        # Treat the em dash (U+2014) as the field delimiter.
        dfa = dialect_dfa(NO_CR)
        delim_group = dfa.group_of(ord(","))
        other_group = dfa.group_of(ord("x"))
        eol_group = dfa.group_of(ord("\n"))

        def classify(cp: int) -> int:
            if cp == 0x2014:
                return delim_group
            if cp == ord("\n"):
                return eol_group
            if cp < 128:
                return int(dfa.symbol_groups[cp])
            return other_group

        sdfa = SymbolDfa(dfa, classify)
        rows, _ = parse_symbols(sdfa, "a—b\n".encode("utf-8"), 3)
        assert rows == [["a", "b"]]

    def test_matches_byte_pipeline_on_utf8(self):
        """For UTF-8 (ASCII-compatible), symbol-level parsing must agree
        with the byte-level pipeline — §4.2's compatibility claim."""
        from repro import ParPaRawParser, ParseOptions, Schema
        text = 'é,"日本\n🙂",x\nплюс,b,c\n'
        data = text.encode("utf-8")
        sdfa = SymbolDfa(dialect_dfa(NO_CR))
        rows, _ = parse_symbols(sdfa, data, 7)
        parsed = ParPaRawParser(ParseOptions(
            dialect=NO_CR, schema=Schema.all_strings(3))).parse(data)
        assert [list(r) for r in parsed.table.rows()] == rows
