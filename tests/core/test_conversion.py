"""Tests for column conversion: defaults, NULLs, rejects, collaboration."""

import numpy as np
import pytest

from repro.columnar.schema import DataType, Field
from repro.core.conversion import CollaborationStats, convert_column
from repro.core.css import ColumnIndex
from repro.core.options import ParseOptions
from repro.errors import ConversionError


def make_index(fields: list[bytes], records: list[int]):
    css = np.frombuffer(b"".join(fields), dtype=np.uint8)
    lengths = np.array([len(f) for f in fields], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]) \
        .astype(np.int64)
    return css, ColumnIndex(records=np.array(records, dtype=np.int64),
                            offsets=offsets, lengths=lengths)


IDENTITY = ParseOptions()


class TestFixedWidth:
    def test_basic_int(self):
        css, index = make_index([b"7", b"42"], [0, 1])
        rows = np.array([0, 1])
        column, stats = convert_column(Field("x", DataType.INT64), css,
                                       index, rows, 2, IDENTITY)
        assert column.to_list() == [7, 42]
        assert stats.thread_fields == 2

    def test_missing_record_is_null(self):
        css, index = make_index([b"7"], [0])
        rows = np.array([0, -1, 1])  # record 1 dropped, record 2 -> row 1
        column, _ = convert_column(Field("x", DataType.INT64), css, index,
                                   rows, 2, IDENTITY)
        assert column.to_list() == [7, None]

    def test_default_fills_missing(self):
        css, index = make_index([b"7"], [1])
        rows = np.array([0, 1])
        field = Field("x", DataType.INT64, default=99)
        column, _ = convert_column(field, css, index, rows, 2, IDENTITY)
        assert column.to_list() == [99, 7]

    def test_reject_clears_validity_and_counts(self):
        css, index = make_index([b"oops", b"3"], [0, 1])
        rows = np.array([0, 1])
        column, _ = convert_column(Field("x", DataType.INT64), css, index,
                                   rows, 2, IDENTITY)
        assert column.to_list() == [None, 3]
        assert column.rejects == 1

    def test_reject_overrides_default(self):
        css, index = make_index([b"oops"], [0])
        rows = np.array([0])
        field = Field("x", DataType.INT64, default=5)
        column, _ = convert_column(field, css, index, rows, 1, IDENTITY)
        assert column.to_list() == [None]

    def test_strict_raises_on_reject(self):
        css, index = make_index([b"bad"], [0])
        rows = np.array([0])
        with pytest.raises(ConversionError):
            convert_column(Field("x", DataType.INT64), css, index, rows,
                           1, IDENTITY.with_(strict=True))

    def test_scalar_path_equals_vector_path(self):
        fields = [b"1.5", b"-2", b"x", b"1e3", b"0.001"]
        css, index = make_index(fields, list(range(5)))
        rows = np.arange(5)
        field = Field("f", DataType.FLOAT64)
        vector, _ = convert_column(field, css, index, rows, 5, IDENTITY)
        scalar, _ = convert_column(
            field, css, index, rows, 5,
            IDENTITY.with_(vectorized_conversion=False))
        assert vector.to_list() == scalar.to_list()
        assert vector.rejects == scalar.rejects

    def test_non_nullable_gets_zero_default(self):
        css, index = make_index([b"1"], [0])
        rows = np.array([0, 1])
        field = Field("x", DataType.INT64, nullable=False)
        column, _ = convert_column(field, css, index, rows, 2, IDENTITY)
        assert column.to_list() == [1, 0]

    def test_out_of_range_record_ignored(self):
        css, index = make_index([b"1", b"2"], [0, 7])
        rows = np.array([0])
        column, _ = convert_column(Field("x", DataType.INT64), css, index,
                                   rows, 1, IDENTITY)
        assert column.to_list() == [1]


class TestStringColumn:
    def test_basic(self):
        css, index = make_index([b"ab", b"cde"], [0, 1])
        rows = np.array([0, 1])
        column, _ = convert_column(Field("s", DataType.STRING), css,
                                   index, rows, 2, IDENTITY)
        assert column.to_list() == ["ab", "cde"]

    def test_missing_is_null(self):
        css, index = make_index([b"ab"], [1])
        rows = np.array([0, 1, 2])
        column, _ = convert_column(Field("s", DataType.STRING), css,
                                   index, rows, 3, IDENTITY)
        assert column.to_list() == [None, "ab", None]

    def test_string_default(self):
        css, index = make_index([b"ab"], [1])
        rows = np.array([0, 1])
        field = Field("s", DataType.STRING, default="n/a")
        column, _ = convert_column(field, css, index, rows, 2, IDENTITY)
        assert column.to_list() == ["n/a", "ab"]

    def test_non_nullable_empty_string_default(self):
        css, index = make_index([b"x"], [0])
        rows = np.array([0, 1])
        field = Field("s", DataType.STRING, nullable=False)
        column, _ = convert_column(field, css, index, rows, 2, IDENTITY)
        assert column.to_list() == ["x", ""]

    def test_rows_out_of_order(self):
        css, index = make_index([b"first", b"second"], [0, 1])
        rows = np.array([1, 0])  # record 0 -> row 1, record 1 -> row 0
        column, _ = convert_column(Field("s", DataType.STRING), css,
                                   index, rows, 2, IDENTITY)
        assert column.to_list() == ["second", "first"]


class TestCollaborationLevels:
    def test_classification(self):
        options = IDENTITY.with_(block_threshold=4, device_threshold=10)
        css, index = make_index([b"ab", b"abcdef", b"x" * 20], [0, 1, 2])
        rows = np.arange(3)
        _, stats = convert_column(Field("s", DataType.STRING), css, index,
                                  rows, 3, options)
        assert stats.thread_fields == 1
        assert stats.block_fields == 1
        assert stats.device_fields == 1
        assert stats.total_fields == 3

    def test_stats_addition(self):
        total = CollaborationStats(1, 2, 3) + CollaborationStats(4, 5, 6)
        assert (total.thread_fields, total.block_fields,
                total.device_fields) == (5, 7, 9)
