"""Fused-convert parity: zero-copy output is bit-identical to the copy path.

The fused partition→convert path (ISSUE 6) must produce exactly the same
``Table`` contents as the copying reference path (``fused_convert=False``)
for every dialect, tagging mode, input and executor schedule.  String
columns on the fused path must additionally be zero-copy slices of the
partition's CSS buffer.
"""

import dataclasses

import numpy as np
import pytest

from repro import (
    Dialect,
    ParPaRawParser,
    ParseOptions,
    SerialExecutor,
    ShardedExecutor,
)
from repro.columnar import DataType
from repro.core.options import TaggingMode
from repro.core.stages import ConvertStage, PipelineContext, RawInput
from repro.dfa import dialect_dfa
from repro.utils.timing import StepTimer
from tests.conftest import TRICKY_INPUTS, as_uint8
from tests.kernels.test_parity import DIALECTS

MODES = [TaggingMode.TAGGED, TaggingMode.INLINE, TaggingMode.DELIMITED]


def parse_table(data: bytes, options: ParseOptions, executor=None):
    parser = ParPaRawParser(options, executor=executor)
    return parser.parse(data).table


def fused_and_legacy(options: ParseOptions):
    return (dataclasses.replace(options, fused_convert=True),
            dataclasses.replace(options, fused_convert=False))


class TestFusedParity:
    @pytest.mark.parametrize(
        "dialect", DIALECTS,
        ids=[f"dialect{i}" for i in range(len(DIALECTS))])
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_dialects_and_modes(self, dialect, mode):
        for data in TRICKY_INPUTS:
            options = ParseOptions(dialect=dialect, tagging_mode=mode)
            fused, legacy = fused_and_legacy(options)
            try:
                expected = parse_table(data, legacy)
            except Exception as exc:
                with pytest.raises(type(exc)):
                    parse_table(data, fused)
                continue
            got = parse_table(data, fused)
            assert got.to_pylist() == expected.to_pylist(), data
            assert got == expected, data

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_sharded_matches_serial_legacy(self, mode):
        executor = ShardedExecutor(workers=2, shard_bytes=64,
                                   use_processes=False)
        options = ParseOptions(dialect=Dialect.csv(), tagging_mode=mode)
        fused, legacy = fused_and_legacy(options)
        for data in TRICKY_INPUTS:
            try:
                expected = parse_table(data, legacy, SerialExecutor())
            except Exception as exc:
                with pytest.raises(type(exc)):
                    parse_table(data, fused, ShardedExecutor(
                        workers=2, shard_bytes=64, use_processes=False))
                continue
            got = parse_table(data, fused, ShardedExecutor(
                workers=2, shard_bytes=64, use_processes=False))
            assert got.to_pylist() == expected.to_pylist(), data

    def test_null_literals_and_defaults_parity(self):
        data = (b"alpha,1,x\n"
                b"NA,2,y\n"
                b"gamma,NA,\n"
                b",4,NA\n")
        options = ParseOptions(dialect=Dialect.csv(),
                               null_literals=("NA",))
        fused, legacy = fused_and_legacy(options)
        expected = parse_table(data, legacy)
        got = parse_table(data, fused)
        assert got.to_pylist() == expected.to_pylist()


class TestZeroCopyStrings:
    def _converted(self, data: bytes, options: ParseOptions):
        """Partition and convert within ONE pipeline execution."""
        executor = SerialExecutor()
        ctx = PipelineContext(options=options,
                              dfa=dialect_dfa(options.dialect),
                              timer=StepTimer())
        raw = as_uint8(data)
        with executor:
            payload = executor.execute(
                ctx, RawInput(raw=raw, input_bytes=raw.size),
                until="partition")
        converted = ConvertStage().run(ctx, payload)
        return payload, converted

    def test_string_columns_share_css_memory(self):
        data = (b"alpha,bravo,charlie\n"
                b"delta,echo,foxtrot\n"
                b"golf,hotel,india\n")
        options = ParseOptions(dialect=Dialect.csv())
        payload, converted = self._converted(data, options)
        strings = [c for c in converted.table.columns
                   if c.field.dtype is DataType.STRING]
        assert strings, "expected string columns in the inferred schema"
        for column in strings:
            assert np.shares_memory(column.data, payload.css)
        assert converted.convert_stats.zero_copy_columns == len(strings)
        assert converted.convert_stats.bytes_copied == 0

    def test_copy_path_does_not_share_css_memory(self):
        data = b"alpha,bravo\ncharlie,delta\n"
        options = ParseOptions(dialect=Dialect.csv(), fused_convert=False)
        payload, converted = self._converted(data, options)
        for column in converted.table.columns:
            assert not np.shares_memory(column.data, payload.css)
        assert converted.convert_stats.zero_copy_columns == 0
        assert converted.convert_stats.bytes_copied > 0

    def test_fused_and_copy_stats_cover_all_columns(self):
        data = b"alpha,1\nbravo,2\ncharlie,3\n"
        options = ParseOptions(dialect=Dialect.csv(), infer_types=True)
        _, converted = self._converted(data, options)
        stats = converted.convert_stats
        # One string column is zero-copy; the fused int column writes its
        # values straight into the output buffer, so nothing is re-copied.
        assert stats.zero_copy_columns == 1
        assert stats.bytes_copied == 0
