"""Tests for chunking and variable-length symbol boundary handling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.chunking import (
    SymbolReader,
    chunk_groups,
    utf8_leading_skip,
    utf16_leading_skip,
)
from repro.errors import ParseError


class TestChunkGroups:
    def test_exact_multiple(self, csv_dfa):
        data = np.frombuffer(b"a,b\nc,d\n", dtype=np.uint8)
        groups, chunking, padded = chunk_groups(data, csv_dfa, 4)
        assert groups.shape == (2, 4)
        assert chunking.padding == 0
        assert padded.group_names[-1] == "PAD"

    def test_padding(self, csv_dfa):
        data = np.frombuffer(b"abcde", dtype=np.uint8)
        groups, chunking, padded = chunk_groups(data, csv_dfa, 4)
        assert groups.shape == (2, 4)
        assert chunking.padding == 3
        pad_group = padded.num_groups - 1
        assert groups[1, 1:].tolist() == [pad_group] * 3

    def test_empty_input_one_chunk(self, csv_dfa):
        data = np.frombuffer(b"", dtype=np.uint8)
        groups, chunking, padded = chunk_groups(data, csv_dfa, 8)
        assert groups.shape == (1, 8)
        assert chunking.num_chunks == 1

    def test_group_mapping(self, csv_dfa):
        data = np.frombuffer(b',x"\n', dtype=np.uint8)
        groups, _, _ = chunk_groups(data, csv_dfa, 4)
        assert groups[0].tolist() == [2, 3, 1, 0]

    def test_rejects_bad_chunk_size(self, csv_dfa):
        with pytest.raises(ParseError):
            chunk_groups(np.frombuffer(b"x", dtype=np.uint8), csv_dfa, 0)

    def test_rejects_wrong_dtype(self, csv_dfa):
        with pytest.raises(ParseError):
            chunk_groups(np.zeros(4, dtype=np.int32), csv_dfa, 4)


class TestUtf8Skip:
    def test_ascii_no_skip(self):
        assert utf8_leading_skip(b"abc") == 0

    def test_continuation_bytes(self):
        # é = 0xC3 0xA9; a chunk starting at the 0xA9 skips one byte.
        encoded = "é".encode("utf-8")
        assert utf8_leading_skip(encoded[1:] + b"xy") == 1

    def test_three_continuations(self):
        # 𝄞 (U+1D11E) = F0 9D 84 9E: starting at byte 1 skips 3.
        encoded = "𝄞".encode("utf-8")
        assert utf8_leading_skip(encoded[1:]) == 3
        assert utf8_leading_skip(encoded[2:]) == 2
        assert utf8_leading_skip(encoded[3:]) == 1

    def test_empty(self):
        assert utf8_leading_skip(b"") == 0

    @given(st.text(min_size=1, max_size=30),
           st.integers(min_value=0, max_value=100))
    def test_skip_lands_on_boundary(self, text, start):
        data = text.encode("utf-8")
        start = min(start, len(data))
        skip = utf8_leading_skip(data[start:])
        head = data[start + skip:]
        # After skipping, the remainder decodes from a code point start.
        if head:
            assert (head[0] & 0xC0) != 0x80


class TestUtf16Skip:
    def test_bmp_no_skip(self):
        data = "ab".encode("utf-16-le")
        assert utf16_leading_skip(data) == 0

    def test_low_surrogate_skipped(self):
        # 𝄞 encodes as a surrogate pair; starting at the low surrogate
        # skips two bytes.
        data = "𝄞".encode("utf-16-le")
        assert utf16_leading_skip(data[2:]) == 2
        assert utf16_leading_skip(data) == 0

    def test_short_chunk(self):
        assert utf16_leading_skip(b"\x00") == 0


class TestSymbolReader:
    @given(st.text(max_size=50), st.integers(0, 20), st.integers(1, 16))
    def test_chunked_reads_cover_input_utf8(self, text, _seed, chunk_size):
        """Union of all chunk readers == the full code-point sequence,
        each code point read exactly once (by its leading chunk)."""
        data = text.encode("utf-8")
        expected = [ord(c) for c in text]
        collected: list[int] = []
        for start in range(0, max(len(data), 1), chunk_size):
            reader = SymbolReader(data, start, chunk_size)
            collected.extend(reader)
        assert collected == expected

    @given(st.text(max_size=40), st.integers(1, 8))
    def test_chunked_reads_cover_input_utf16(self, text, units):
        chunk_size = units * 2  # integer multiple of the code unit
        data = text.encode("utf-16-le")
        expected = [ord(c) for c in text]
        collected: list[int] = []
        for start in range(0, max(len(data), 1), chunk_size):
            reader = SymbolReader(data, start, chunk_size,
                                  encoding="utf-16-le")
            collected.extend(reader)
        assert collected == expected

    def test_rejects_unknown_encoding(self):
        with pytest.raises(ParseError):
            SymbolReader(b"", 0, 4, encoding="latin-1")

    def test_invalid_utf8_raises(self):
        with pytest.raises(ParseError):
            list(SymbolReader(b"\xff", 0, 4))
