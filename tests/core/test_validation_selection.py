"""Unit tests for validation, selection helpers and options."""

import numpy as np
import pytest

from repro.core.options import ColumnCountPolicy, ParseOptions
from repro.core.selection import prune_rows, row_mapping, \
    selected_column_mask
from repro.core.validation import apply_column_policy
from repro.errors import ParseError, SchemaError


class TestPruneRows:
    def test_removes_lines(self):
        data = np.frombuffer(b"l0\nl1\nl2\n", dtype=np.uint8)
        out = prune_rows(data, {1}, ord("\n"))
        assert out.tobytes() == b"l0\nl2\n"

    def test_removes_unterminated_tail(self):
        data = np.frombuffer(b"l0\ntail", dtype=np.uint8)
        out = prune_rows(data, {1}, ord("\n"))
        assert out.tobytes() == b"l0\n"

    def test_no_skips_is_identity(self):
        data = np.frombuffer(b"a\nb\n", dtype=np.uint8)
        assert prune_rows(data, set(), ord("\n")) is data

    def test_out_of_range_rows_ignored(self):
        data = np.frombuffer(b"a\n", dtype=np.uint8)
        assert prune_rows(data, {7}, ord("\n")).tobytes() == b"a\n"

    def test_negative_row_rejected(self):
        data = np.frombuffer(b"a\n", dtype=np.uint8)
        with pytest.raises(ParseError):
            prune_rows(data, {-1}, ord("\n"))


class TestRowMapping:
    def test_mapping(self):
        rows, n = row_mapping(np.array([True, False, True, True]))
        assert rows.tolist() == [0, -1, 1, 2]
        assert n == 3

    def test_empty(self):
        rows, n = row_mapping(np.array([], dtype=bool))
        assert rows.size == 0 and n == 0


class TestSelectedColumnMask:
    def test_all_when_none(self):
        assert selected_column_mask(3, None).tolist() == [True] * 3

    def test_subset(self):
        assert selected_column_mask(4, (0, 2)).tolist() \
            == [True, False, True, False]

    def test_out_of_range(self):
        with pytest.raises(ParseError):
            selected_column_mask(2, (3,))


class TestParseOptionsValidation:
    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ParseError):
            ParseOptions(chunk_size=0)

    def test_rejects_bad_terminator(self):
        with pytest.raises(ParseError):
            ParseOptions(inline_terminator=300)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ParseError):
            ParseOptions(block_threshold=100, device_threshold=50)

    def test_rejects_duplicate_selection(self):
        with pytest.raises(SchemaError):
            ParseOptions(select_columns=(1, 1))

    def test_rejects_negative_selection(self):
        with pytest.raises(SchemaError):
            ParseOptions(select_columns=(-1,))

    def test_with_copies(self):
        base = ParseOptions()
        derived = base.with_(chunk_size=7)
        assert derived.chunk_size == 7
        assert base.chunk_size == 31

    def test_dfa_cached(self):
        options = ParseOptions()
        assert options.resolved_dfa() is options.resolved_dfa()


class TestApplyColumnPolicy:
    class FakeReport:
        def __init__(self, counts):
            self.field_counts = np.array(counts, dtype=np.int64)

    def test_lenient(self):
        mask = apply_column_policy(self.FakeReport([1, 2, 3]), 2,
                                   ColumnCountPolicy.LENIENT, False)
        assert mask.tolist() == [True] * 3

    def test_reject(self):
        mask = apply_column_policy(self.FakeReport([1, 2, 3]), 2,
                                   ColumnCountPolicy.REJECT, False)
        assert mask.tolist() == [False, True, False]

    def test_strict(self):
        with pytest.raises(ParseError):
            apply_column_policy(self.FakeReport([2, 1]), 2,
                                ColumnCountPolicy.STRICT, True)
