"""Tests for phase 1: STV computation and start-state recovery (§3.1).

The central invariant: for ANY input and ANY chunk size, the scanned start
state of chunk ``c`` equals the state a sequential DFA simulation is in
when it reaches chunk ``c``'s first byte.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.chunking import chunk_groups
from repro.core.context import (
    chunk_start_states,
    compute_transition_vectors,
    determine_contexts,
)
from repro.dfa.csv import dialect_dfa
from repro.dfa.dialects import Dialect

csv_like = st.text(
    alphabet=st.sampled_from(list('abc",\n#')), max_size=120
).map(lambda s: s.encode())


def sequential_states_at_chunk_starts(dfa, data: bytes,
                                      chunk_size: int) -> list[int]:
    state = dfa.start_state
    states = []
    for i, byte in enumerate(data):
        if i % chunk_size == 0:
            states.append(state)
        state, _ = dfa.step(state, byte)
    if not data:
        states.append(dfa.start_state)
    return states


class TestTransitionVectors:
    def test_rows_match_scalar_stv(self, csv_dfa):
        data = np.frombuffer(b'1941,199.99,"Bookcase"\n', dtype=np.uint8)
        groups, chunking, padded = chunk_groups(data, csv_dfa, 5)
        vectors = compute_transition_vectors(groups, padded)
        for c in range(chunking.num_chunks):
            lo, hi = c * 5, min((c + 1) * 5, data.size)
            expected = csv_dfa.transition_vector(data[lo:hi])
            assert tuple(vectors[c].tolist()) == expected, c

    def test_padding_is_noop(self, csv_dfa):
        data = np.frombuffer(b"abc", dtype=np.uint8)
        groups, _, padded = chunk_groups(data, csv_dfa, 8)
        vectors = compute_transition_vectors(groups, padded)
        assert tuple(vectors[0].tolist()) == csv_dfa.transition_vector(b"abc")


class TestStartStates:
    @given(csv_like, st.integers(min_value=1, max_value=17))
    @settings(max_examples=150)
    def test_matches_sequential(self, data, chunk_size):
        dfa = dialect_dfa(Dialect(strip_carriage_return=False))
        arr = np.frombuffer(data, dtype=np.uint8)
        groups, chunking, padded = chunk_groups(arr, dfa, chunk_size)
        _, starts = determine_contexts(groups, padded)
        expected = sequential_states_at_chunk_starts(dfa, data, chunk_size)
        assert starts[:len(expected)].tolist() == expected

    @given(csv_like, st.integers(min_value=1, max_value=17))
    @settings(max_examples=80)
    def test_comment_dialect(self, data, chunk_size):
        dfa = dialect_dfa(Dialect(comment=b"#",
                                  strip_carriage_return=False))
        arr = np.frombuffer(data, dtype=np.uint8)
        groups, chunking, padded = chunk_groups(arr, dfa, chunk_size)
        _, starts = determine_contexts(groups, padded)
        expected = sequential_states_at_chunk_starts(dfa, data, chunk_size)
        assert starts[:len(expected)].tolist() == expected

    def test_figure3_shape(self, csv_dfa):
        """Figure 3: six threads, per-thread STVs, scan -> start states."""
        data = np.frombuffer(
            b'1941,199.99,"Bookcase"\n1938,19.99,"Frame\n'
            b'""Ribba"", black"\n', dtype=np.uint8)
        chunk = 10
        groups, chunking, padded = chunk_groups(data, csv_dfa, chunk)
        vectors, starts = determine_contexts(groups, padded)
        assert vectors.shape[1] == 6
        # The first chunk always starts in the DFA's start state (EOR).
        assert starts[0] == csv_dfa.start_state
        # Chunk 3 starts inside the quoted "Bookcase" region? — verify
        # against sequential simulation instead of hand counting.
        expected = sequential_states_at_chunk_starts(csv_dfa,
                                                     data.tobytes(), chunk)
        assert starts.tolist()[:len(expected)] == expected
