"""Tests for NULL-literal handling (paper §3.3, "identifying NULLs")."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    DataType,
    Field,
    ParPaRawParser,
    ParseOptions,
    Schema,
    parse_bytes,
)
from repro.baselines import SequentialParser

SCHEMA = Schema([Field("n", DataType.INT64),
                 Field("s", DataType.STRING)])
OPTIONS = ParseOptions(schema=SCHEMA, null_literals=("NA", "null", "-"))


class TestNullLiterals:
    def test_literals_become_null(self):
        result = parse_bytes(b"1,x\nNA,null\n-,y\n", OPTIONS)
        assert result.table.to_pylist() == [
            {"n": 1, "s": "x"},
            {"n": None, "s": None},
            {"n": None, "s": "y"},
        ]

    def test_not_counted_as_rejects(self):
        result = parse_bytes(b"NA\nbad\n",
                             ParseOptions(schema=Schema([
                                 Field("n", DataType.INT64)]),
                                 null_literals=("NA",)))
        assert result.table.column("n").to_list() == [None, None]
        assert result.total_rejected_fields == 1  # only 'bad'

    def test_overrides_default(self):
        schema = Schema([Field("n", DataType.INT64, default=7)])
        options = ParseOptions(schema=schema, null_literals=("NA",))
        result = parse_bytes(b"NA\n\n1\n", options)
        # Literal NULL beats the default; the *empty* field takes it.
        assert result.table.column("n").to_list() == [None, 7, 1]

    def test_exact_match_only(self):
        result = parse_bytes(b"NAT,NAx\n", ParseOptions(
            schema=Schema.all_strings(2), null_literals=("NA",)))
        assert result.table.row(0) == ("NAT", "NAx")

    def test_string_column_nulls(self):
        result = parse_bytes(b"null,ok\n", ParseOptions(
            schema=Schema.all_strings(2), null_literals=("null",)))
        assert result.table.row(0) == (None, "ok")

    def test_disabled_by_default(self):
        result = parse_bytes(b"NA\n", schema=Schema.all_strings(1))
        assert result.table.row(0) == ("NA",)

    def test_scalar_path_agrees(self):
        data = b"1,NA\nnull,-\n2,z\n"
        vector = parse_bytes(data, OPTIONS).table.to_pylist()
        scalar = parse_bytes(
            data, OPTIONS.with_(vectorized_conversion=False)) \
            .table.to_pylist()
        assert vector == scalar

    @given(st.lists(st.sampled_from(
        [b"1", b"NA", b"null", b"-", b"xyz", b"7"]), min_size=1,
        max_size=30), st.integers(1, 17))
    @settings(max_examples=60, deadline=None)
    def test_equivalence_with_sequential(self, fields, chunk_size):
        data = b"\n".join(fields) + b"\n"
        options = ParseOptions(
            schema=Schema([Field("v", DataType.STRING)]),
            null_literals=("NA", "null", "-"),
            chunk_size=chunk_size)
        parallel = ParPaRawParser(options).parse(data).table.to_pylist()
        sequential = SequentialParser(options).parse(data).to_pylist()
        assert parallel == sequential
