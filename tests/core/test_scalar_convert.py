"""Tests for the scalar reference converters."""

import pytest
from hypothesis import given, strategies as st

from repro.columnar.schema import DataType, Field
from repro.core.scalar_convert import (
    convert_scalar,
    days_from_civil,
    parse_bool_scalar,
    parse_date_scalar,
    parse_decimal_scalar,
    parse_float_scalar,
    parse_int_scalar,
    parse_timestamp_scalar,
)


class TestParseInt:
    @pytest.mark.parametrize("text,value", [
        (b"0", 0), (b"42", 42), (b"-7", -7), (b"+13", 13),
        (b"007", 7), (b"9223372036854775807", 2 ** 63 - 1),
        (b"-9223372036854775808", -(2 ** 63)),
    ])
    def test_accepts(self, text, value):
        assert parse_int_scalar(text) == (value, True)

    @pytest.mark.parametrize("text", [
        b"", b"-", b"+", b"1.5", b"1e3", b"abc", b"12 ", b" 12",
        b"1-2", b"--1", b"9223372036854775808",
    ])
    def test_rejects(self, text):
        assert parse_int_scalar(text) == (None, False)

    def test_narrow_types_range_checked(self):
        assert parse_int_scalar(b"127", DataType.INT8) == (127, True)
        assert parse_int_scalar(b"128", DataType.INT8) == (None, False)
        assert parse_int_scalar(b"-32768", DataType.INT16) == (-32768, True)
        assert parse_int_scalar(b"70000", DataType.INT16) == (None, False)

    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
    def test_roundtrip(self, value):
        assert parse_int_scalar(str(value).encode()) == (value, True)


class TestParseFloat:
    @pytest.mark.parametrize("text", [
        b"0", b"1.5", b"-2.25", b"+0.125", b".5", b"1.", b"1e3",
        b"2.5E-2", b"-1e+10", b"nan", b"NaN",
    ])
    def test_accepts(self, text):
        value, ok = parse_float_scalar(text)
        assert ok
        if text.lower().strip(b"+-") != b"nan":
            assert value == float(text)

    @pytest.mark.parametrize("text", [
        b"", b".", b"-", b"1.2.3", b"e5", b"1e", b"abc", b"1_000",
        b"0x1p3", b" 1", b"1 ",
        # Python float() accepts these; strict CSV numerics must not.
        b"inf", b"-inf", b"infinity", b"-Infinity", b"INF",
        b"1_0", b"1_0.5", b"1_0e2", b"1e1_0",
    ])
    def test_rejects(self, text):
        assert parse_float_scalar(text) == (None, False)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_roundtrip(self, value):
        text = repr(value).encode()
        parsed, ok = parse_float_scalar(text)
        assert ok and parsed == value


class TestParseDecimal:
    @pytest.mark.parametrize("text,scale,value", [
        (b"199.99", 2, 19999),
        (b"19.99", 2, 1999),
        (b"0.50", 2, 50),
        (b"-1.5", 2, -150),
        (b"3", 2, 300),
        (b"42", 0, 42),
        (b".25", 2, 25),
    ])
    def test_accepts(self, text, scale, value):
        assert parse_decimal_scalar(text, scale) == (value, True)

    @pytest.mark.parametrize("text,scale", [
        (b"", 2), (b".", 2), (b"1.", 2), (b"1.234", 2), (b"1,5", 2),
        (b"abc", 2), (b"--1", 2), (b"1.2.3", 2),
    ])
    def test_rejects(self, text, scale):
        assert parse_decimal_scalar(text, scale) == (None, False)

    @given(st.integers(-(10 ** 15), 10 ** 15), st.integers(0, 4))
    def test_roundtrip(self, scaled, scale):
        text = str(scaled * 10 ** scale // 10 ** scale)
        # Construct "<int>.<frac>" from a scaled integer.
        sign = "-" if scaled < 0 else ""
        magnitude = abs(scaled)
        whole, frac = divmod(magnitude, 10 ** scale)
        literal = f"{sign}{whole}.{str(frac).zfill(scale)}" if scale \
            else f"{sign}{whole}"
        assert parse_decimal_scalar(literal.encode(), scale) \
            == (scaled, True)


class TestParseBool:
    @pytest.mark.parametrize("text,value", [
        (b"1", True), (b"0", False), (b"t", True), (b"f", False),
        (b"true", True), (b"False", False), (b"TRUE", True),
    ])
    def test_accepts(self, text, value):
        assert parse_bool_scalar(text) == (value, True)

    @pytest.mark.parametrize("text", [b"", b"yes", b"2", b"tru", b"10"])
    def test_rejects(self, text):
        assert parse_bool_scalar(text) == (None, False)


class TestDaysFromCivil:
    @pytest.mark.parametrize("ymd,days", [
        ((1970, 1, 1), 0),
        ((1970, 1, 2), 1),
        ((1969, 12, 31), -1),
        ((2000, 3, 1), 11017),
        ((2018, 1, 1), 17532),
    ])
    def test_known_dates(self, ymd, days):
        assert days_from_civil(*ymd) == days

    @given(st.integers(-300000, 300000))
    def test_matches_datetime(self, offset):
        import datetime
        date = datetime.date(1970, 1, 1) + datetime.timedelta(days=offset)
        assert days_from_civil(date.year, date.month, date.day) == offset


class TestParseDate:
    def test_accepts(self):
        assert parse_date_scalar(b"1970-01-01") == (0, True)
        assert parse_date_scalar(b"2016-02-29") == (16860, True)

    @pytest.mark.parametrize("text", [
        b"", b"1970-1-1", b"1970/01/01", b"2017-02-29", b"2018-13-01",
        b"2018-00-10", b"2018-01-32", b"2018-01-00", b"18-01-01",
        b"2018-01-01x",
    ])
    def test_rejects(self, text):
        assert parse_date_scalar(text) == (None, False)


class TestParseTimestamp:
    def test_accepts(self):
        assert parse_timestamp_scalar(b"1970-01-01 00:00:00") == (0, True)
        assert parse_timestamp_scalar(b"1970-01-02 01:02:03") \
            == (86400 + 3723, True)

    @pytest.mark.parametrize("text", [
        b"", b"1970-01-01", b"1970-01-01T00:00:00",
        b"1970-01-01 24:00:00", b"1970-01-01 00:60:00",
        b"1970-01-01 00:00:61", b"1970-01-01 0:00:00",
    ])
    def test_rejects(self, text):
        assert parse_timestamp_scalar(text) == (None, False)


class TestConvertScalarDispatch:
    def test_string_passthrough(self):
        field = Field("s", DataType.STRING)
        assert convert_scalar(field, b"hi") == ("hi", True)

    def test_decimal_uses_field_scale(self):
        field = Field("d", DataType.DECIMAL, decimal_scale=3)
        assert convert_scalar(field, b"1.250") == (1250, True)

    def test_all_types_dispatch(self):
        cases = {
            DataType.INT8: b"5", DataType.INT16: b"5",
            DataType.INT32: b"5", DataType.INT64: b"5",
            DataType.FLOAT32: b"1.5", DataType.FLOAT64: b"1.5",
            DataType.BOOL: b"true", DataType.DATE: b"2000-01-01",
            DataType.TIMESTAMP: b"2000-01-01 00:00:00",
        }
        for dtype, text in cases.items():
            _, ok = convert_scalar(Field("x", dtype), text)
            assert ok, dtype
