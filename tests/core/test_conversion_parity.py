"""Property test: scalar and vectorized conversion are interchangeable.

``ParseOptions.vectorized_conversion`` selects between the scalar
per-field converters and the vectorised column kernels; the two are
different code paths over the same grammar, so for ANY input they must
produce identical columns, validity masks and inferred types.  The
strategy deliberately covers the awkward corners: empty fields, null
literals, records with deviating column counts, Python-ism numerics
(``inf``/``1_000``) that both paths must reject in lockstep.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.options import ColumnCountPolicy, ParseOptions
from repro.core.parser import parse_bytes

NULLS = ("NA", "null")

field_text = st.one_of(
    st.just(b""),                                    # empty field
    st.sampled_from([b"NA", b"null"]),               # null literals
    st.integers(-10 ** 12, 10 ** 12).map(lambda v: str(v).encode()),
    st.floats(allow_nan=False, allow_infinity=False)
      .map(lambda v: repr(v).encode()),
    st.sampled_from([b"1e5", b"2.5E-2", b"nan", b"007", b"-0", b".5"]),
    # Python-isms: accepted by float()/int(), must be STRING-ed by both.
    st.sampled_from([b"inf", b"-infinity", b"Infinity", b"1_000",
                     b"1_0.5", b"1_0e2"]),
    st.sampled_from([b"true", b"False", b"2019-03-01", b"abc", b"x y"]),
    st.text(alphabet="abcdefgh0123456789.-+ ", max_size=6)
      .map(str.encode),
)

records = st.lists(
    st.lists(field_text, min_size=1, max_size=5),     # deviating counts
    min_size=0, max_size=12)


def render_csv(rows: list[list[bytes]]) -> bytes:
    return b"".join(b",".join(fields) + b"\n" for fields in rows)


def parse_both(data: bytes, **kwargs):
    results = []
    for vectorized in (False, True):
        options = ParseOptions(
            null_literals=NULLS,
            column_count_policy=ColumnCountPolicy.LENIENT,
            vectorized_conversion=vectorized,
            **kwargs)
        results.append(parse_bytes(data, options))
    return results


def assert_tables_identical(scalar, vectorized):
    ts, tv = scalar.table, vectorized.table
    assert [f.dtype for f in ts.schema] == [f.dtype for f in tv.schema]
    assert ts.num_rows == tv.num_rows
    for cs, cv in zip(ts.columns, tv.columns):
        assert cs.validity.to_mask().tolist() \
            == cv.validity.to_mask().tolist()
        if cs.field.dtype.is_variable_width:
            assert cs.to_list() == cv.to_list()
        else:
            vs = np.asarray(cs.data)
            vv = np.asarray(cv.data)
            mask = cs.validity.to_mask()
            np.testing.assert_array_equal(vs[mask], vv[mask])
        assert cs.rejects == cv.rejects
    assert scalar.rejected_records == vectorized.rejected_records


class TestScalarVectorizedParity:
    @given(records)
    @settings(max_examples=120, deadline=None)
    def test_inferred_types_and_columns_identical(self, rows):
        data = render_csv(rows)
        scalar, vectorized = parse_both(data, infer_types=True)
        assert_tables_identical(scalar, vectorized)

    @given(records)
    @settings(max_examples=60, deadline=None)
    def test_string_columns_identical(self, rows):
        data = render_csv(rows)
        scalar, vectorized = parse_both(data)
        assert_tables_identical(scalar, vectorized)

    def test_pythonisms_infer_string_on_both_paths(self):
        data = b"inf\n-Infinity\n1_000\n1_0e2\n"
        scalar, vectorized = parse_both(data, infer_types=True)
        for result in (scalar, vectorized):
            (field,) = result.table.schema
            assert field.dtype.value == "string"
        assert_tables_identical(scalar, vectorized)

    def test_nan_still_floats_on_both_paths(self):
        data = b"nan\n1.5\nNaN\n"
        scalar, vectorized = parse_both(data, infer_types=True)
        for result in (scalar, vectorized):
            (field,) = result.table.schema
            assert field.dtype.value == "float64"
        assert_tables_identical(scalar, vectorized)
