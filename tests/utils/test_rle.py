"""Tests for run-length encoding (the CSS index primitive)."""

import numpy as np
from hypothesis import given, strategies as st

from repro.utils.rle import run_length_encode, run_starts


class TestRunStarts:
    def test_empty(self):
        assert run_starts(np.array([], dtype=np.int64)).tolist() == []

    def test_single(self):
        assert run_starts(np.array([5])).tolist() == [0]

    def test_alternating(self):
        assert run_starts(np.array([1, 2, 1, 2])).tolist() == [0, 1, 2, 3]

    def test_constant(self):
        assert run_starts(np.array([7] * 10)).tolist() == [0]


class TestRunLengthEncode:
    def test_figure5_record_tags(self):
        # Column 2 of Figure 5: record tags over the text column symbols.
        tags = np.array([0] * 9 + [1] * 21)
        values, lengths = run_length_encode(tags)
        assert values.tolist() == [0, 1]
        assert lengths.tolist() == [9, 21]

    def test_empty(self):
        values, lengths = run_length_encode(np.array([], dtype=np.int64))
        assert values.size == 0 and lengths.size == 0

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=200))
    def test_roundtrip(self, data):
        arr = np.array(data, dtype=np.int64)
        values, lengths = run_length_encode(arr)
        rebuilt = np.repeat(values, lengths)
        assert rebuilt.tolist() == data

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=200))
    def test_no_adjacent_equal_runs(self, data):
        values, _ = run_length_encode(np.array(data))
        assert all(values[i] != values[i + 1]
                   for i in range(len(values) - 1))

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=200))
    def test_lengths_sum_to_input(self, data):
        _, lengths = run_length_encode(np.array(data, dtype=np.int64))
        assert int(lengths.sum()) == len(data)
