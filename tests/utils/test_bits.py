"""Tests for bit-manipulation helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    bits_required,
    clear_bits_below,
    last_set_bit_position,
    next_power_of_two,
    popcount32,
    popcount64,
    popcount_array,
)


class TestPopcount:
    def test_zero(self):
        assert popcount32(0) == 0
        assert popcount64(0) == 0

    def test_all_ones(self):
        assert popcount32(0xFFFFFFFF) == 32
        assert popcount64(0xFFFFFFFFFFFFFFFF) == 64

    def test_single_bits(self):
        for i in range(32):
            assert popcount32(1 << i) == 1

    def test_masks_to_32_bits(self):
        # Values beyond 32 bits are masked, like the hardware intrinsic.
        assert popcount32((1 << 40) | 0b11) == 2

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_matches_bin_count(self, value):
        assert popcount32(value) == bin(value).count("1")

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    def test_popcount64_matches(self, value):
        assert popcount64(value) == bin(value).count("1")


class TestPopcountArray:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32,
                                       np.uint64])
    def test_matches_scalar(self, dtype):
        rng = np.random.default_rng(1)
        info = np.iinfo(dtype)
        values = rng.integers(0, info.max, size=100,
                              dtype=dtype)
        out = popcount_array(values)
        expected = [bin(int(v)).count("1") for v in values]
        assert out.tolist() == expected

    def test_rejects_signed(self):
        with pytest.raises(TypeError):
            popcount_array(np.array([1, 2], dtype=np.int32))


class TestBitsRequired:
    @pytest.mark.parametrize("count,expected", [
        (1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (16, 4), (17, 5), (256, 8),
    ])
    def test_values(self, count, expected):
        assert bits_required(count) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bits_required(0)

    @given(st.integers(min_value=2, max_value=10 ** 9))
    def test_covers_range(self, count):
        bits = bits_required(count)
        assert 2 ** bits >= count
        assert 2 ** (bits - 1) < count


class TestNextPowerOfTwo:
    @pytest.mark.parametrize("value,expected", [
        (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16), (1000, 1024),
    ])
    def test_values(self, value, expected):
        assert next_power_of_two(value) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestClearBitsBelow:
    def test_example_from_paper(self):
        # §3.2: zero field-delimiter bits preceding the last record bit.
        field_bits = 0b110011
        assert clear_bits_below(field_bits, 3) == 0b110000

    def test_position_zero_is_identity(self):
        assert clear_bits_below(0b1011, 0) == 0b1011

    @given(st.integers(min_value=0, max_value=2 ** 62),
           st.integers(min_value=0, max_value=64))
    def test_no_low_bits_remain(self, value, position):
        cleared = clear_bits_below(value, position)
        assert cleared & ((1 << position) - 1) == 0
        assert cleared & ~((1 << position) - 1) \
            == value & ~((1 << position) - 1)


class TestLastSetBitPosition:
    def test_zero(self):
        assert last_set_bit_position(0) == -1

    @given(st.integers(min_value=1, max_value=2 ** 62))
    def test_matches_bit_length(self, value):
        assert last_set_bit_position(value) == value.bit_length() - 1
