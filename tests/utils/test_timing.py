"""Tests for the step timer."""

import pytest

from repro.utils.timing import StepTimer


class TestStepTimer:
    def test_accumulates(self):
        timer = StepTimer()
        with timer.step("parse"):
            pass
        with timer.step("parse"):
            pass
        assert timer.counts()["parse"] == 2
        assert timer.totals()["parse"] >= 0.0

    def test_add_manual(self):
        timer = StepTimer()
        timer.add("tag", 0.5)
        timer.add("tag", 0.25)
        assert timer.totals()["tag"] == pytest.approx(0.75)
        assert timer.total() == pytest.approx(0.75)

    def test_add_rejects_negative(self):
        with pytest.raises(ValueError):
            StepTimer().add("x", -1.0)

    def test_merge(self):
        a = StepTimer()
        a.add("parse", 1.0)
        b = StepTimer()
        b.add("parse", 2.0)
        b.add("scan", 0.5)
        a.merge(b)
        assert a.totals() == {"parse": 3.0, "scan": 0.5}
        assert a.counts() == {"parse": 2, "scan": 1}

    def test_reset(self):
        timer = StepTimer()
        timer.add("x", 1.0)
        timer.reset()
        assert timer.totals() == {}
        assert timer.total() == 0.0

    def test_exception_still_recorded(self):
        timer = StepTimer()
        with pytest.raises(RuntimeError):
            with timer.step("boom"):
                raise RuntimeError()
        assert "boom" in timer.totals()
