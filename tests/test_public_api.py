"""Packaging-level tests: the public API surface is importable and sane."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_all_entries_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.dfa", "repro.exec", "repro.obs", "repro.scan",
        "repro.gpusim", "repro.streaming", "repro.baselines",
        "repro.workloads", "repro.columnar", "repro.utils",
        "repro.__main__",
    ])
    def test_subpackages_import(self, module):
        imported = importlib.import_module(module)
        assert imported is not None

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.dfa", "repro.exec", "repro.obs", "repro.scan",
        "repro.gpusim", "repro.streaming", "repro.baselines",
        "repro.workloads", "repro.columnar", "repro.utils",
    ])
    def test_subpackage_all_resolves(self, module):
        imported = importlib.import_module(module)
        for name in getattr(imported, "__all__", []):
            assert hasattr(imported, name), f"{module}.{name}"

    def test_quickstart_from_readme(self):
        from repro import parse_bytes
        result = parse_bytes(b'id,name\n1,"Billy, the bookcase"\n')
        assert result.table.to_pylist() == [
            {"col0": "id", "col1": "name"},
            {"col0": "1", "col1": "Billy, the bookcase"},
        ]

    def test_exceptions_exported(self):
        from repro import ParseError, ReproError
        assert issubclass(ParseError, ReproError)

    def test_docstrings_on_public_symbols(self):
        undocumented = [name for name in repro.__all__
                        if name != "__version__"
                        and not (getattr(repro, name).__doc__ or "").strip()]
        assert undocumented == []
