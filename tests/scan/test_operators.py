"""Tests for the scan monoids: identity and associativity laws.

Every parallel scan algorithm in the library assumes associativity; these
property tests pin the law down for each operator — most importantly the
two non-commutative ones the paper introduces (STV composition and the
rel/abs column offset).
"""

import pytest
from hypothesis import given, strategies as st

from repro.scan.operators import (
    ColumnOffset,
    ColumnOffsetMonoid,
    MaxMonoid,
    MinMonoid,
    OffsetKind,
    SumMonoid,
    TransitionComposeMonoid,
)

NUM_STATES = 6

vectors = st.lists(st.integers(min_value=0, max_value=NUM_STATES - 1),
                   min_size=NUM_STATES, max_size=NUM_STATES).map(tuple)

offsets = st.builds(
    ColumnOffset,
    st.sampled_from([OffsetKind.RELATIVE, OffsetKind.ABSOLUTE]),
    st.integers(min_value=0, max_value=50))


class TestSumMonoid:
    @given(st.integers(), st.integers(), st.integers())
    def test_associative(self, a, b, c):
        m = SumMonoid()
        assert m.combine(m.combine(a, b), c) == m.combine(a, m.combine(b, c))

    @given(st.integers())
    def test_identity(self, a):
        m = SumMonoid()
        assert m.combine(m.identity(), a) == a
        assert m.combine(a, m.identity()) == a


class TestMinMaxMonoids:
    @given(st.integers(min_value=-10 ** 9, max_value=10 ** 9))
    def test_max_identity(self, a):
        m = MaxMonoid()
        assert m.combine(m.identity(), a) == a

    @given(st.integers(min_value=-10 ** 9, max_value=10 ** 9))
    def test_min_identity(self, a):
        m = MinMonoid()
        assert m.combine(m.identity(), a) == a

    @given(st.integers(), st.integers(), st.integers())
    def test_max_associative(self, a, b, c):
        m = MaxMonoid()
        assert m.combine(m.combine(a, b), c) == m.combine(a, m.combine(b, c))


class TestTransitionCompose:
    @given(vectors, vectors, vectors)
    def test_associative(self, a, b, c):
        m = TransitionComposeMonoid(NUM_STATES)
        assert m.combine(m.combine(a, b), c) == m.combine(a, m.combine(b, c))

    @given(vectors)
    def test_identity(self, a):
        m = TransitionComposeMonoid(NUM_STATES)
        assert m.combine(m.identity(), a) == a
        assert m.combine(a, m.identity()) == a

    def test_paper_semantics(self):
        # (a ∘ b)[i] = b[a[i]]: start in i, apply chunk a, then chunk b.
        m = TransitionComposeMonoid(3)
        a = (1, 2, 0)
        b = (2, 0, 1)
        assert m.combine(a, b) == (b[1], b[2], b[0])

    def test_not_commutative(self):
        m = TransitionComposeMonoid(3)
        a = (1, 1, 1)
        b = (2, 0, 0)
        assert m.combine(a, b) != m.combine(b, a)

    def test_rejects_wrong_length(self):
        m = TransitionComposeMonoid(3)
        with pytest.raises(ValueError):
            m.combine((0, 1), (0, 1, 2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TransitionComposeMonoid(0)


class TestColumnOffsetMonoid:
    @given(offsets, offsets, offsets)
    def test_associative(self, a, b, c):
        m = ColumnOffsetMonoid()
        assert m.combine(m.combine(a, b), c) == m.combine(a, m.combine(b, c))

    @given(offsets)
    def test_identity(self, a):
        m = ColumnOffsetMonoid()
        assert m.combine(m.identity(), a) == a
        assert m.combine(a, m.identity()) == a

    def test_absolute_right_wins(self):
        m = ColumnOffsetMonoid()
        result = m.combine(ColumnOffset.relative(5),
                           ColumnOffset.absolute(2))
        assert result == ColumnOffset.absolute(2)

    def test_relative_right_accumulates(self):
        m = ColumnOffsetMonoid()
        result = m.combine(ColumnOffset.absolute(3),
                           ColumnOffset.relative(4))
        assert result == ColumnOffset.absolute(7)

    def test_figure4_example(self):
        # Figure 4: offsets rel1, rel1, abs0, rel1, rel0, rel0 scan to
        # entering offsets 0, 1, 2, 0, 1, 1.
        m = ColumnOffsetMonoid()
        own = [ColumnOffset.relative(1), ColumnOffset.relative(1),
               ColumnOffset.absolute(0), ColumnOffset.relative(1),
               ColumnOffset.relative(0), ColumnOffset.relative(0)]
        acc = m.identity()
        entering = []
        for value in own:
            entering.append(acc.value)
            acc = m.combine(acc, value)
        assert entering == [0, 1, 2, 0, 1, 1]
