"""Tests for the warp/block/device scan hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro.scan.hierarchical import (
    block_scan,
    hierarchical_device_scan,
    warp_scan,
)
from repro.scan.operators import SumMonoid, TransitionComposeMonoid
from repro.scan.sequential import exclusive_scan, inclusive_scan

NUM_STATES = 4

ints = st.lists(st.integers(-100, 100), max_size=300)
vectors = st.lists(
    st.lists(st.integers(0, NUM_STATES - 1), min_size=NUM_STATES,
             max_size=NUM_STATES).map(tuple), max_size=130)


class TestWarpScan:
    @given(st.lists(st.integers(-50, 50), max_size=32))
    def test_matches_sequential(self, lanes):
        assert warp_scan(lanes, SumMonoid()) \
            == inclusive_scan(lanes, SumMonoid())

    def test_step_count_is_log(self):
        # Structural: the doubling loop makes exactly log2(32)=5 sweeps
        # for a full warp (witnessed through a counting monoid).
        class CountingSum(SumMonoid):
            combines = 0

            def combine(self, a, b):
                CountingSum.combines += 1
                return super().combine(a, b)

        m = CountingSum()
        CountingSum.combines = 0
        warp_scan(list(range(32)), m)
        # Hillis-Steele work: sum over d of (32 - 2^d), d in 0..4.
        assert CountingSum.combines == sum(32 - 2 ** d for d in range(5))

    def test_rejects_oversized_warp(self):
        with pytest.raises(ValueError):
            warp_scan(list(range(33)), SumMonoid())

    @given(st.lists(st.lists(st.integers(0, NUM_STATES - 1),
                             min_size=NUM_STATES,
                             max_size=NUM_STATES).map(tuple), max_size=32))
    def test_non_commutative(self, lanes):
        m = TransitionComposeMonoid(NUM_STATES)
        assert warp_scan(lanes, m) == inclusive_scan(lanes, m)


class TestBlockScan:
    @given(ints)
    def test_inclusive(self, values):
        assert block_scan(values, SumMonoid()) \
            == inclusive_scan(values, SumMonoid())

    @given(ints)
    def test_exclusive(self, values):
        assert block_scan(values, SumMonoid(), exclusive=True) \
            == exclusive_scan(values, SumMonoid())

    @given(vectors)
    def test_non_commutative(self, values):
        m = TransitionComposeMonoid(NUM_STATES)
        assert block_scan(values, m) == inclusive_scan(values, m)

    @pytest.mark.parametrize("n", [0, 1, 31, 32, 33, 64, 96, 100])
    def test_warp_boundaries(self, n):
        values = list(range(n))
        assert block_scan(values, SumMonoid()) \
            == inclusive_scan(values, SumMonoid())

    def test_small_warp_size(self):
        values = list(range(20))
        assert block_scan(values, SumMonoid(), warp_size=4) \
            == inclusive_scan(values, SumMonoid())


class TestHierarchicalDeviceScan:
    @given(ints, st.sampled_from([32, 64, 128]))
    def test_matches_sequential(self, values, block_size):
        assert hierarchical_device_scan(values, SumMonoid(),
                                        block_size=block_size) \
            == exclusive_scan(values, SumMonoid())

    @given(vectors)
    def test_non_commutative(self, values):
        m = TransitionComposeMonoid(NUM_STATES)
        assert hierarchical_device_scan(values, m, block_size=32) \
            == exclusive_scan(values, m)

    def test_inclusive_variant(self):
        values = [3, 5, 1, 2, 9, 7, 4, 2]
        assert hierarchical_device_scan(values, SumMonoid(), block_size=3,
                                        exclusive=False) \
            == inclusive_scan(values, SumMonoid())

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            hierarchical_device_scan([1], SumMonoid(), block_size=0)
