"""Tests for the segmented scan and its derived monoid."""

import pytest
from hypothesis import given, strategies as st

from repro.scan.operators import SumMonoid
from repro.scan.segmented import SegmentedMonoid, segmented_inclusive_scan


class TestSegmentedMonoid:
    pairs = st.tuples(st.booleans(), st.integers(-50, 50))

    @given(pairs, pairs, pairs)
    def test_associative(self, a, b, c):
        m = SegmentedMonoid(SumMonoid())
        assert m.combine(m.combine(a, b), c) == m.combine(a, m.combine(b, c))

    @given(pairs)
    def test_identity(self, a):
        m = SegmentedMonoid(SumMonoid())
        assert m.combine(m.identity(), a) == a

    def test_flag_resets(self):
        m = SegmentedMonoid(SumMonoid())
        assert m.combine((False, 10), (True, 1)) == (True, 1)
        assert m.combine((True, 10), (False, 1)) == (True, 11)


class TestSegmentedScan:
    def test_docstring_example(self):
        out = segmented_inclusive_scan(
            [1, 1, 1, 1, 1], [True, False, True, False, False], SumMonoid())
        assert out == [1, 2, 1, 2, 3]

    def test_no_flags_is_plain_scan(self):
        out = segmented_inclusive_scan([1, 2, 3], [False] * 3, SumMonoid())
        assert out == [1, 3, 6]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            segmented_inclusive_scan([1], [True, False], SumMonoid())

    @given(st.lists(st.tuples(st.booleans(), st.integers(-20, 20)),
                    max_size=100))
    def test_matches_per_segment_cumsum(self, flagged):
        flags = [f for f, _ in flagged]
        values = [v for _, v in flagged]
        out = segmented_inclusive_scan(values, flags, SumMonoid())
        # Reference: reset a running sum at each head flag.
        acc = 0
        expected = []
        for flag, value in zip(flags, values):
            acc = value if flag else acc + value
            expected.append(acc)
        assert out == expected
