"""Cross-algorithm scan equivalence: every parallel scan == sequential.

The key property: with any associative operator — including the paper's
non-commutative STV composition — Hillis–Steele, Blelloch, and the
Merrill–Garland single-pass scan must all produce exactly the sequential
scan, for any input length (power of two or not) and, for the single-pass
scan, any tile size and any tile scheduling order.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scan.blelloch import blelloch_scan
from repro.scan.decoupled_lookback import ScanStatistics, single_pass_scan
from repro.scan.hillis_steele import hillis_steele_scan
from repro.scan.operators import SumMonoid, TransitionComposeMonoid
from repro.scan.sequential import exclusive_scan, inclusive_scan, reduce

NUM_STATES = 4

ints = st.lists(st.integers(min_value=-100, max_value=100), max_size=64)
vectors = st.lists(
    st.lists(st.integers(min_value=0, max_value=NUM_STATES - 1),
             min_size=NUM_STATES, max_size=NUM_STATES).map(tuple),
    max_size=32)


class TestSequentialScan:
    def test_paper_example(self):
        # The worked prefix-sum example of paper §2.
        x = [3, 5, 1, 2, 9, 7, 4, 2]
        assert inclusive_scan(x, SumMonoid()) == [3, 8, 9, 11, 20, 27, 31, 33]
        assert exclusive_scan(x, SumMonoid()) == [0, 3, 8, 9, 11, 20, 27, 31]

    def test_empty(self):
        assert inclusive_scan([], SumMonoid()) == []
        assert exclusive_scan([], SumMonoid()) == []
        assert reduce([], SumMonoid()) == 0

    def test_reduce(self):
        assert reduce([1, 2, 3], SumMonoid()) == 6


class TestHillisSteele:
    @given(ints)
    def test_matches_sequential_sum(self, data):
        assert hillis_steele_scan(data, SumMonoid()) \
            == inclusive_scan(data, SumMonoid())

    @given(ints)
    def test_exclusive(self, data):
        assert hillis_steele_scan(data, SumMonoid(), exclusive=True) \
            == exclusive_scan(data, SumMonoid())

    @given(vectors)
    def test_non_commutative(self, data):
        m = TransitionComposeMonoid(NUM_STATES)
        assert hillis_steele_scan(data, m) == inclusive_scan(data, m)


class TestBlelloch:
    @given(ints)
    def test_exclusive_matches_sequential(self, data):
        assert blelloch_scan(data, SumMonoid()) \
            == exclusive_scan(data, SumMonoid())

    @given(ints)
    def test_inclusive(self, data):
        assert blelloch_scan(data, SumMonoid(), exclusive=False) \
            == inclusive_scan(data, SumMonoid())

    @given(vectors)
    def test_non_commutative(self, data):
        # The down-sweep must preserve left-to-right combine order.
        m = TransitionComposeMonoid(NUM_STATES)
        assert blelloch_scan(data, m) == exclusive_scan(data, m)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 33])
    def test_non_power_of_two_lengths(self, n):
        data = list(range(n))
        assert blelloch_scan(data, SumMonoid()) \
            == exclusive_scan(data, SumMonoid())


class TestSinglePassScan:
    @given(ints, st.integers(min_value=1, max_value=9))
    def test_matches_sequential(self, data, tile_size):
        assert single_pass_scan(data, SumMonoid(), tile_size=tile_size) \
            == exclusive_scan(data, SumMonoid())

    @given(vectors, st.integers(min_value=1, max_value=5))
    def test_non_commutative(self, data, tile_size):
        m = TransitionComposeMonoid(NUM_STATES)
        assert single_pass_scan(data, m, tile_size=tile_size) \
            == exclusive_scan(data, m)

    @given(st.randoms(use_true_random=False),
           st.lists(st.integers(-50, 50), min_size=1, max_size=40),
           st.integers(min_value=1, max_value=6))
    def test_any_schedule(self, rng, data, tile_size):
        # Out-of-order tile scheduling (deferred look-backs) must not
        # change the result.
        num_tiles = -(-len(data) // tile_size)
        schedule = list(range(num_tiles))
        rng.shuffle(schedule)
        assert single_pass_scan(data, SumMonoid(), tile_size=tile_size,
                                schedule=schedule) \
            == exclusive_scan(data, SumMonoid())

    def test_inclusive(self):
        data = [3, 5, 1, 2]
        assert single_pass_scan(data, SumMonoid(), tile_size=2,
                                exclusive=False) \
            == inclusive_scan(data, SumMonoid())

    def test_lookback_statistics(self):
        stats = ScanStatistics()
        single_pass_scan(list(range(20)), SumMonoid(), tile_size=4,
                         statistics=stats)
        assert stats.tiles == 5
        # In-order execution: every tile finds its predecessor's inclusive
        # prefix immediately (single-step look-back).
        assert stats.max_lookback == 1

    def test_reverse_schedule_defers(self):
        stats = ScanStatistics()
        single_pass_scan(list(range(12)), SumMonoid(), tile_size=4,
                         schedule=[2, 1, 0], statistics=stats)
        assert stats.deferred_tiles > 0

    def test_rejects_bad_schedule(self):
        with pytest.raises(ValueError):
            single_pass_scan([1, 2, 3], SumMonoid(), tile_size=2,
                             schedule=[0, 0])

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ValueError):
            single_pass_scan([1], SumMonoid(), tile_size=0)
