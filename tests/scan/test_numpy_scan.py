"""Tests for the vectorised scans against their scalar references."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.scan.numpy_scan import (
    compose_vectors,
    exclusive_sum,
    inclusive_sum,
    scan_column_offsets,
    scan_transition_vectors,
)
from repro.scan.operators import (
    ColumnOffset,
    ColumnOffsetMonoid,
    OffsetKind,
    TransitionComposeMonoid,
)
from repro.scan.sequential import exclusive_scan, inclusive_scan

NUM_STATES = 6


class TestSums:
    def test_exclusive_example(self):
        assert exclusive_sum(np.array([3, 5, 1, 2])).tolist() == [0, 3, 8, 9]

    def test_empty(self):
        assert exclusive_sum(np.array([], dtype=np.int64)).size == 0

    @given(hnp.arrays(np.int32, st.integers(0, 100),
                      elements=st.integers(-1000, 1000)))
    def test_matches_python(self, values):
        expected = []
        acc = 0
        for v in values:
            expected.append(acc)
            acc += int(v)
        assert exclusive_sum(values).tolist() == expected

    def test_inclusive_int64_no_overflow(self):
        # Byte offsets must not wrap in int32.
        values = np.full(10, 2 ** 30, dtype=np.int64)
        assert int(inclusive_sum(values)[-1]) == 10 * 2 ** 30


class TestComposeVectors:
    def test_matches_monoid(self):
        m = TransitionComposeMonoid(4)
        a = np.array([1, 0, 3, 2], dtype=np.uint8)
        b = np.array([2, 2, 0, 1], dtype=np.uint8)
        assert compose_vectors(a, b).tolist() == list(m.combine(tuple(a),
                                                                tuple(b)))

    def test_batched(self):
        a = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        b = np.array([[1, 1], [0, 0]], dtype=np.uint8)
        out = compose_vectors(a, b)
        assert out.tolist() == [[1, 1], [0, 0]]


vector_arrays = hnp.arrays(
    np.uint8, st.tuples(st.integers(0, 40), st.just(NUM_STATES)),
    elements=st.integers(0, NUM_STATES - 1))


class TestScanTransitionVectors:
    @given(vector_arrays)
    def test_matches_scalar_exclusive(self, vectors):
        m = TransitionComposeMonoid(NUM_STATES)
        rows = [tuple(int(x) for x in row) for row in vectors]
        expected = exclusive_scan(rows, m)
        out = scan_transition_vectors(vectors, exclusive=True)
        assert [tuple(r) for r in out.tolist()] == expected

    @given(vector_arrays)
    def test_matches_scalar_inclusive(self, vectors):
        m = TransitionComposeMonoid(NUM_STATES)
        rows = [tuple(int(x) for x in row) for row in vectors]
        expected = inclusive_scan(rows, m)
        out = scan_transition_vectors(vectors, exclusive=False)
        assert [tuple(r) for r in out.tolist()] == expected

    def test_first_row_is_identity(self):
        vectors = np.array([[3, 2, 1, 0, 4, 5]] * 4, dtype=np.uint8)
        out = scan_transition_vectors(vectors)
        assert out[0].tolist() == [0, 1, 2, 3, 4, 5]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            scan_transition_vectors(np.zeros(5, dtype=np.uint8))


class TestScanColumnOffsets:
    @given(hnp.arrays(np.bool_, st.integers(0, 50)),
           hnp.arrays(np.int64, st.integers(0, 50),
                      elements=st.integers(0, 20)))
    def test_matches_scalar(self, kinds, values):
        n = min(len(kinds), len(values))
        kinds, values = kinds[:n], values[:n]
        m = ColumnOffsetMonoid()
        items = [ColumnOffset(OffsetKind.ABSOLUTE if k
                              else OffsetKind.RELATIVE, int(v))
                 for k, v in zip(kinds, values)]
        expected = exclusive_scan(items, m)
        out_kinds, out_values = scan_column_offsets(kinds, values)
        assert out_values.tolist() == [o.value for o in expected]
        assert out_kinds.tolist() == [o.is_absolute for o in expected]

    def test_figure4(self):
        kinds = np.array([False, False, True, False, False, False])
        values = np.array([1, 1, 0, 1, 0, 0])
        _, entering = scan_column_offsets(kinds, values)
        assert entering.tolist() == [0, 1, 2, 0, 1, 1]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            scan_column_offsets(np.array([True]), np.array([1, 2]))
