"""parlint self-tests: the corpus must fail, the source tree must pass."""

import io
import json
import pathlib

import pytest

from repro.analysis import all_checkers, all_codes, lint_paths, main
from repro.analysis.driver import load_module

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "analysis" / "corpus"
SRC = REPO_ROOT / "src"


def codes_in(path) -> list[str]:
    return [d.code for d in lint_paths([path]).diagnostics]


class TestCorpus:
    """Each checker must catch its known-bad snippet."""

    def test_stage_contract(self):
        codes = codes_in(CORPUS / "bad_stage_contract.py")
        assert "PPR101" in codes
        assert "PPR102" in codes
        assert "PPR103" in codes

    def test_operator_laws(self):
        codes = codes_in(CORPUS / "bad_monoid.py")
        assert "PPR201" in codes

    def test_mp_safety(self):
        codes = codes_in(CORPUS / "bad_mp_safety.py")
        assert "PPR301" in codes
        assert "PPR302" in codes
        assert "PPR303" in codes
        assert "PPR304" in codes

    def test_hot_loops(self):
        codes = codes_in(CORPUS / "bad_hot_loop.py")
        assert codes.count("PPR401") == 2, \
            "two loops flagged, the waived one silent"

    def test_api_hygiene(self):
        codes = codes_in(CORPUS / "bad_api_hygiene.py")
        assert "PPR501" in codes
        assert "PPR502" in codes
        assert "PPR503" in codes
        codes = codes_in(CORPUS / "bad_no_all.py")
        assert "PPR504" in codes

    def test_buffer_mutation(self):
        codes = codes_in(CORPUS / "bad_buffer_mutation.py")
        assert codes.count("PPR601") == 5, \
            "five mutation sites flagged, the waived one silent"
        assert codes.count("PPR602") == 4
        assert codes.count("PPR603") == 2
        assert not [c for c in codes if not c.startswith("PPR6")]

    def test_buffer_escape(self):
        codes = codes_in(CORPUS / "bad_buffer_escape.py")
        assert codes.count("PPR604") == 4, \
            "returns-borrowed hand-out and copies stay silent"
        assert codes.count("PPR605") == 2
        assert codes.count("PPR606") == 1

    def test_pragma_placement(self):
        codes = codes_in(CORPUS / "pragma_placement.py")
        assert codes == ["PPR303", "PPR601", "PPR601"], \
            "markers above decorators honoured; multi-line waiver silent"

    def test_corpus_fails_via_cli(self):
        out = io.StringIO()
        assert main([str(CORPUS)], out=out) == 1

    def test_every_checker_has_a_corpus_case(self):
        hit = set()
        for diag in lint_paths([CORPUS]).diagnostics:
            hit.add(diag.checker)
        assert hit == {c.name for c in all_checkers()}


class TestSourceTree:
    """The shipped source must be violation-free (fixed or waived)."""

    def test_src_is_clean(self):
        result = lint_paths([SRC])
        assert result.ok, "\n".join(
            d.format() for d in result.diagnostics)
        assert result.files_checked > 50

    def test_src_clean_via_cli(self):
        out = io.StringIO()
        assert main([str(SRC)], out=out) == 0
        assert "0 finding(s)" in out.getvalue()


class TestWaivers:
    def test_line_waiver_silences_one_code(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(
            "__all__ = ['ghost']  # parlint: disable=PPR501 -- testing\n")
        assert codes_in(bad) == []

    def test_line_waiver_is_code_specific(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(
            "__all__ = ['ghost']  # parlint: disable=PPR502 -- wrong code\n")
        assert codes_in(bad) == ["PPR501"]

    def test_bare_disable_waives_every_code(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("__all__ = ['ghost']  # parlint: disable\n")
        assert codes_in(bad) == []

    def test_file_waiver(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("# parlint: disable-file=PPR504 -- scratch file\n"
                       "x = 1\n")
        assert codes_in(bad) == []

    def test_skip_file(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("# parlint: skip-file\nimport repro.exec\n")
        assert codes_in(bad) == []


class TestDriver:
    def test_json_output_shape(self):
        out = io.StringIO()
        assert main([str(CORPUS / "bad_no_all.py")],
                    output_format="json", out=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["files_checked"] == 1
        assert payload["diagnostic_count"] == len(payload["diagnostics"])
        diag = payload["diagnostics"][0]
        assert set(diag) >= {"path", "line", "code", "message", "checker"}

    def test_list_codes_covers_registry(self):
        out = io.StringIO()
        assert main([], list_codes=True, out=out) == 0
        text = out.getvalue()
        for code in all_codes():
            assert code in text

    def test_missing_path_is_usage_error(self):
        assert main(["/nonexistent/nowhere.py"]) == 2

    def test_syntax_error_is_usage_error(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2

    def test_diagnostics_are_sorted(self):
        diags = lint_paths([CORPUS]).diagnostics
        keys = [(d.path, d.line, d.code) for d in diags]
        assert keys == sorted(keys)

    def test_select_keeps_only_matching_codes(self):
        out = io.StringIO()
        assert main([str(CORPUS / "bad_hot_loop.py")],
                    select="PPR4", out=out) == 1
        out = io.StringIO()
        assert main([str(CORPUS / "bad_hot_loop.py")],
                    select="PPR5,PPR6", out=out) == 0
        assert "0 finding(s)" in out.getvalue()

    def test_ignore_drops_matching_codes(self):
        out = io.StringIO()
        assert main([str(CORPUS / "bad_hot_loop.py")],
                    ignore="PPR401", out=out) == 0

    def test_github_format(self):
        out = io.StringIO()
        assert main([str(CORPUS / "bad_no_all.py")],
                    output_format="github", out=out) == 1
        line = out.getvalue().splitlines()[0]
        assert line.startswith("::error file=")
        assert ",line=" in line
        assert "PPR504" in line

    def test_module_name_inference(self):
        info = load_module(SRC / "repro" / "core" / "stages.py")
        assert info.module == "repro.core.stages"
        assert info.package == "repro.core"


class TestRegistry:
    def test_seven_checkers_registered(self):
        names = {c.name for c in all_checkers()}
        assert names == {"stage-contract", "operator-laws", "mp-safety",
                         "hot-loops", "api-hygiene", "buffer-mutation",
                         "buffer-escape"}

    def test_codes_are_unique_and_documented(self):
        codes = all_codes()
        assert len(codes) == 20
        for code, summary in codes.items():
            assert code.startswith("PPR")
            assert summary

    def test_checker_rejects_undeclared_code(self):
        checker = next(iter(all_checkers()))
        info = load_module(CORPUS / "bad_no_all.py")
        with pytest.raises(ValueError):
            checker.diagnostic(info, 1, "PPR999", "bogus")
