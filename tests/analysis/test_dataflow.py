"""Unit tests for the buffer-ownership dataflow engine.

Each test lints a small synthetic module and asserts on the raw
:class:`~repro.analysis.dataflow.DataflowEvent` stream — the checkers'
PPR6xx mapping is covered by the corpus tests in ``test_parlint.py``.
"""

import textwrap

from repro.analysis.dataflow import analyse_module
from repro.analysis.driver import load_module


def events_for(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(source))
    return analyse_module(load_module(path))


def kinds(events):
    return [e.kind for e in events]


class TestBorrowSources:
    def test_borrow_call_then_store(self, tmp_path):
        events = events_for(tmp_path, """
            def f(column, slice_buffers):
                view = slice_buffers(column, 0, 4)
                view[0] = 1
        """)
        assert kinds(events) == ["subscript-store"]
        assert events[0].name == "view"
        assert "slice_buffers" in events[0].origin

    def test_borrowed_attribute_read(self, tmp_path):
        events = events_for(tmp_path, """
            def f(column):
                column.values[0] = 1
        """)
        assert kinds(events) == ["subscript-store"]

    def test_borrowed_param_pragma(self, tmp_path):
        events = events_for(tmp_path, """
            # parlint: borrowed=css
            def f(css, out):
                css[0] = 1
                out[0] = 1
        """)
        assert kinds(events) == ["subscript-store"]
        assert events[0].line == 4

    def test_bare_borrowed_marks_all_params(self, tmp_path):
        events = events_for(tmp_path, """
            # parlint: borrowed
            def f(a, b):
                a[0] = 1
                b[0] = 1
        """)
        assert kinds(events) == ["subscript-store", "subscript-store"]

    def test_ndarray_over_foreign_buffer(self, tmp_path):
        events = events_for(tmp_path, """
            import numpy as np

            def f(shm):
                raw = np.ndarray((8,), dtype=np.uint8, buffer=shm.buf)
                raw[0] = 1
        """)
        assert kinds(events) == ["subscript-store"]


class TestPropagationAndLaundering:
    def test_basic_slice_propagates(self, tmp_path):
        events = events_for(tmp_path, """
            # parlint: borrowed=css
            def f(css):
                chunk = css[2:6]
                chunk[:] = 0
        """)
        assert kinds(events) == ["subscript-store"]

    def test_view_call_propagates(self, tmp_path):
        events = events_for(tmp_path, """
            # parlint: borrowed=css
            def f(css):
                flat = css.reshape(-1)
                flat[0] = 1
        """)
        assert kinds(events) == ["subscript-store"]

    def test_fancy_indexing_launders(self, tmp_path):
        events = events_for(tmp_path, """
            # parlint: borrowed=css
            def f(css, rows):
                gathered = css[rows]
                gathered[0] = 1
        """)
        assert events == []

    def test_copy_launders(self, tmp_path):
        events = events_for(tmp_path, """
            # parlint: borrowed=css
            def f(css):
                owned = css.copy()
                owned[0] = 1
                owned.sort()
                return owned
        """)
        assert events == []

    def test_owned_pragma_clears_inferred_borrow(self, tmp_path):
        events = events_for(tmp_path, """
            def f(column, take_buffers):
                fresh = take_buffers(column, 3)  # parlint: owned -- gather copies
                fresh[0] = 1
        """)
        assert events == []

    def test_unpacking_borrow_source_taints_targets(self, tmp_path):
        events = events_for(tmp_path, """
            def f(part):
                values, offsets = part.column_view(0)
                offsets[0] = 1
        """)
        assert kinds(events) == ["subscript-store"]

    def test_rebinding_kills_borrow(self, tmp_path):
        events = events_for(tmp_path, """
            import numpy as np

            def f(column, slice_buffers):
                view = slice_buffers(column, 0, 4)
                view = np.zeros(4)
                view[0] = 1
        """)
        assert events == []


class TestMutationKinds:
    def test_augassign_and_out_kwarg(self, tmp_path):
        events = events_for(tmp_path, """
            import numpy as np

            # parlint: borrowed=buf
            def f(buf):
                buf += 1
                np.cumsum(buf, out=buf)
        """)
        assert kinds(events) == ["augassign", "out-kwarg"]

    def test_inplace_method_registry(self, tmp_path):
        events = events_for(tmp_path, """
            # parlint: borrowed=buf
            def f(buf):
                buf.fill(0)
                buf.byteswap()            # not in-place without the kwarg
                buf.byteswap(inplace=False)
                buf.byteswap(inplace=True)
                buf.setflags(write=False)  # tightening is fine
                buf.setflags(write=True)
        """)
        assert kinds(events) == ["inplace-method", "inplace-method",
                                 "inplace-method"]

    def test_store_of_borrowed_into_owned_subscript_is_fine(self, tmp_path):
        # NumPy copies on ``owned[a:b] = view`` — column_view's own
        # ``offsets[:-1] = starts`` pattern must not be flagged.
        events = events_for(tmp_path, """
            import numpy as np

            # parlint: borrowed=starts
            def f(starts):
                offsets = np.empty(starts.size + 1)
                offsets[:-1] = starts
                return offsets
        """)
        assert events == []


class TestEscapes:
    def test_return_and_contract(self, tmp_path):
        events = events_for(tmp_path, """
            # parlint: borrowed=css
            def leaky(css):
                return css[0:4]

            # parlint: borrowed=css returns-borrowed
            def contracted(css):
                return css[0:4]
        """)
        assert kinds(events) == ["return"]
        assert events[0].function == "leaky"

    def test_local_returns_borrowed_taints_callers(self, tmp_path):
        events = events_for(tmp_path, """
            # parlint: borrowed=css returns-borrowed
            def handout(css):
                return css[0:4]

            def caller(css2):
                view = handout(css2)
                view[0] = 1
        """)
        assert kinds(events) == ["subscript-store"]
        assert events[0].function == "caller"

    def test_closure_capture(self, tmp_path):
        events = events_for(tmp_path, """
            def f(column, slice_buffers):
                view = slice_buffers(column, 0, 4)
                def g(i):
                    return view[i]
                return g
        """)
        assert kinds(events) == ["closure"]

    def test_attribute_store_escape(self, tmp_path):
        events = events_for(tmp_path, """
            class C:
                def cache(self, column, slice_buffers):
                    self.view = slice_buffers(column, 0, 4)
        """)
        assert kinds(events) == ["store-escape"]


class TestLoops:
    def test_loop_carried_alias(self, tmp_path):
        events = events_for(tmp_path, """
            def f(parts, slice_buffers):
                view = None
                for part in parts:
                    if view is not None:
                        view[:] = 0
                    view = slice_buffers(part, 0, 4)
        """)
        assert kinds(events) == ["subscript-store"]

    def test_no_duplicate_events_from_loop_rewalk(self, tmp_path):
        events = events_for(tmp_path, """
            def f(parts, slice_buffers):
                for part in parts:
                    view = slice_buffers(part, 0, 4)
                    view[0] = 1
        """)
        assert kinds(events) == ["subscript-store"]
