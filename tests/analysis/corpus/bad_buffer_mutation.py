"""Corpus: mutations of borrowed zero-copy buffer views.

Expected diagnostics:

* PPR601 — subscript store through a ``slice_buffers`` alias, augmented
  assignment through a borrowed parameter, attribute store through a
  borrowed view, and a loop-carried alias mutated after rebinding.
* PPR602 — ``sort()`` on a ``.values`` read, ``fill()`` on a view-of-a-
  view (``reshape``), ``byteswap(inplace=True)``, and ``setflags``
  re-enabling write on a borrowed view.
* PPR603 — a ``column_view`` result used as an ``out=`` target (plain
  and tuple forms).
* The waived store in ``deliberate_scratch_write`` and the fancy-indexed
  (owned-copy) paths in ``owned_copies_are_fine`` must stay silent.
"""

import numpy as np

__all__ = [
    "clobber_slice",
    "clobber_param",
    "clobber_flags",
    "loop_carried_alias",
    "inplace_methods",
    "reenable_write",
    "out_targets",
    "deliberate_scratch_write",
    "owned_copies_are_fine",
]


def clobber_slice(column, slice_buffers):
    view = slice_buffers(column, 0, 8)
    view[0] = 0                                           # PPR601
    return None


# parlint: borrowed=css
def clobber_param(css):
    chunk = css[4:12]
    chunk[:] = 0                                          # PPR601
    css += 1                                              # PPR601
    return None


def clobber_flags(table):
    data = table.data
    data.flags.writeable = True                           # PPR601
    return None


def loop_carried_alias(parts, slice_buffers):
    view = None
    for part in parts:
        if view is not None:
            view[:] = 0                                   # PPR601
        view = slice_buffers(part, 0, 4)
    return None


def inplace_methods(column):
    values = column.values
    values.sort()                                         # PPR602
    values.reshape(-1).fill(0)                            # PPR602
    values.byteswap(inplace=True)                         # PPR602
    return None


def reenable_write(part):
    css = part.column_css(0)
    css.setflags(write=True)                              # PPR602
    return None


def out_targets(part):
    values, offsets = part.column_view(0)
    np.cumsum(values, out=values)                         # PPR603
    np.divmod(offsets, 2, out=(offsets, offsets))         # PPR603
    return None


def deliberate_scratch_write(column, slice_buffers):
    view = slice_buffers(column, 0, 8)
    view[0] = 0  # parlint: disable=PPR601 -- corpus: waiver must silence
    return None


# parlint: borrowed=css
def owned_copies_are_fine(css, rows):
    gathered = css[rows]        # fancy indexing copies: owned
    gathered[0] = 1
    owned = css.copy()
    owned.sort()
    np.cumsum(owned, out=owned)
    return owned
