"""Corpus: pragma placement around decorators and multi-line statements.

Regression cases for two placement bugs:

* a def-level marker (``worker``, ``borrowed``) on the line above a
  *decorator* used to be invisible — the scanner only probed the ``def``
  line and the line above it.  ``decorated_worker`` must therefore be
  audited (PPR303 on its clock read) and ``decorated_borrowed`` must
  have its parameter tracked (PPR601 on the store).
* a ``disable=`` waiver trailing any physical line of a multi-line
  statement used to miss diagnostics anchored to a *different* line of
  the same statement.  ``multiline_waived`` must stay silent;
  ``multiline_flagged`` is the unwaived control (PPR601).
"""

import time

__all__ = [
    "identity",
    "decorated_worker",
    "decorated_borrowed",
    "multiline_waived",
    "multiline_flagged",
]


def identity(func):
    return func


# parlint: worker
@identity
def decorated_worker(shard):
    return shard, time.time()                             # PPR303


# parlint: borrowed=css
@identity
def decorated_borrowed(css):
    css[0] = 0                                            # PPR601
    return None


# parlint: borrowed=css
def multiline_waived(css, zeros):
    css[0:4] = zeros(
        4
    )  # parlint: disable=PPR601 -- corpus: waiver on the last line of a multi-line statement
    return None


# parlint: borrowed=css
def multiline_flagged(css, zeros):
    css[0:4] = zeros(                                     # PPR601
        4
    )
    return None
