"""Corpus: multiprocess-safety hazards in worker tasks.

Expected diagnostics:

* PPR301 — a lambda and a nested function handed to ``pool.submit``.
* PPR302 — a worker rebinding a global and mutating a module-level dict.
* PPR303 — a worker reading the wall clock.
* PPR304 — a worker iterating a set literal.
"""

import time

__all__ = ["dispatch", "racy_worker", "clocky_worker", "set_worker"]

_CACHE = {}
_TOTAL = 0


# parlint: worker
def racy_worker(shard):
    global _TOTAL                                         # PPR302
    _CACHE[shard.id] = shard                              # PPR302
    _CACHE.update({shard.id: shard})                      # PPR302
    return shard


# parlint: worker
def clocky_worker(shard):
    started = time.time()                                 # PPR303
    return shard, started


# parlint: worker
def set_worker(shard):
    acc = []
    for item in {1, 2, 3}:                                # PPR304
        acc.append(item)
    return acc


def dispatch(pool, shards):
    def local_task(shard):
        return shard

    futures = [pool.submit(lambda s: s, shard)            # PPR301
               for shard in shards]
    futures.append(pool.submit(local_task, shards[0]))    # PPR301
    return futures
