"""Corpus: a monoid-shaped operator missing from the law registry.

Expected diagnostics:

* PPR201 — ``RogueMonoid`` defines ``combine``/``identity`` but has no
  :data:`repro.analysis.oplaws.LAW_SPECS` entry, so nothing proves its
  associativity before it gets used in a scan.
"""

__all__ = ["RogueMonoid"]


class RogueMonoid:                                        # PPR201
    """Subtraction: not associative — exactly why registration matters."""

    def identity(self):
        return 0

    def combine(self, a, b):
        return a - b
