"""Corpus: a public module with no ``__all__``.

Expected diagnostics:

* PPR504 — no ``__all__`` declared.
"""


def helper():                                             # pragma: no cover
    return 1
