"""Corpus: a scalar loop in a hot-path module.

Expected diagnostics:

* PPR401 — the per-symbol ``for`` loop in ``slow_count`` (and the
  ``while`` in ``slow_scan``).
* The waived loop in ``bounded_ok`` must stay silent.
"""

# parlint: hot-path

__all__ = ["slow_count", "slow_scan", "bounded_ok"]


def slow_count(buf, needle):
    count = 0
    for byte in buf:                                      # PPR401
        if byte == needle:
            count += 1
    return count


def slow_scan(buf):
    pos = 0
    while pos < len(buf):                                 # PPR401
        pos += 1
    return pos


def bounded_ok(buf):
    total = 0
    for shift in range(4):  # parlint: disable=PPR401 -- 4 fixed radix passes
        total += int(buf[0]) >> shift
    return total
