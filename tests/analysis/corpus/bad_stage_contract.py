"""Corpus: stage-contract violations.

Expected diagnostics:

* PPR101 — ``BrokenReader.run`` reads ``payload.tags``, undeclared on
  ``In``.
* PPR102 — ``BrokenReader.run`` constructs ``Other`` instead of ``Out``.
* PPR103 — ``Undeclared`` declares no payload types.
"""

from dataclasses import dataclass

__all__ = ["BrokenReader", "Undeclared"]


class Stage:
    name = "base"


@dataclass
class In:
    raw: bytes
    input_bytes: int


@dataclass
class Out(In):
    total: int


@dataclass
class Other(In):
    unrelated: int


class BrokenReader(Stage):
    name = "broken"
    input_type = In
    output_type = Out

    def run(self, ctx, payload):
        total = payload.input_bytes + len(payload.tags)  # PPR101
        return Other(raw=payload.raw,                    # PPR102
                     input_bytes=payload.input_bytes,
                     unrelated=total)


class Undeclared(Stage):                                  # PPR103
    name = "undeclared"

    def run(self, ctx, payload):
        return payload
