"""Corpus: borrowed zero-copy views escaping their frame.

Expected diagnostics:

* PPR604 — a borrowed view returned without a ``returns-borrowed``
  contract (plain, tuple and yield forms, plus a view laundered through
  ``np.asarray``).
* PPR605 — a closure and a lambda capturing a borrowed name.
* PPR606 — a borrowed view cached on ``self``.
* ``view_handout`` (marked ``returns-borrowed``), its caller storing
  locally, and ``copies_escape_fine`` must stay silent.
"""

import numpy as np

__all__ = [
    "leak_return",
    "leak_tuple_return",
    "leak_yield",
    "leak_through_asarray",
    "leak_closure",
    "leak_lambda",
    "CacheLeak",
    "view_handout",
    "copies_escape_fine",
]


def leak_return(column, slice_buffers):
    view = slice_buffers(column, 0, 8)
    return view                                           # PPR604


def leak_tuple_return(part):
    values, offsets = part.column_view(0)
    return values, offsets.copy()                         # PPR604


def leak_yield(parts, slice_buffers):
    for part in parts:
        yield slice_buffers(part, 0, 4)                   # PPR604


# parlint: borrowed=buf
def leak_through_asarray(buf):
    return np.asarray(buf[2:6])                           # PPR604


def leak_closure(column, slice_buffers):
    view = slice_buffers(column, 0, 8)

    def reader(i):
        return view[i]                                    # PPR605

    return reader


def leak_lambda(part):
    css = part.column_css(0)
    return lambda i: css[i]                               # PPR605


class CacheLeak:
    def remember(self, column, slice_buffers):
        self.cached = slice_buffers(column, 0, 8)         # PPR606
        return None


# parlint: returns-borrowed -- corpus: the documented view hand-out
def view_handout(column, slice_buffers):
    return slice_buffers(column, 0, 8)


def copies_escape_fine(column, slice_buffers):
    view = slice_buffers(column, 0, 8)
    local = view            # local aliasing alone is not an escape
    total = int(local.sum())
    return view.copy(), total
