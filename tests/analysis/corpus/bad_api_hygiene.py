"""Corpus: ``__all__`` inconsistencies and a layering violation.

Expected diagnostics:

* PPR501 — ``__all__`` names ``ghost``, which is never defined.
* PPR502 — ``present`` appears twice in ``__all__``.
* PPR503 — the ``module=`` pragma plants this file in ``repro.core``,
  which must not import ``repro.exec``.
"""

# parlint: module=repro.core.badmod

import repro.exec                                         # PPR503

__all__ = ["ghost", "present", "present"]                 # PPR501, PPR502

present = repro.exec
