"""The DFA proof tier: minimisation is behaviour-preserving for every
shipped automaton.

``ParseOptions.minimize_dfa`` substitutes the canonical minimised
automaton into every sweep; these tests machine-check the obligations
that license the substitution (equivalence, idempotence, engine
agreement, registry distinctness, and the strict-inclusion witness) via
:mod:`repro.analysis.dfaproofs`.  ``scripts/check.sh`` smokes
``verify_all`` as its own gate before the main suite.
"""

import pytest

from repro.analysis.dfaproofs import (
    ProofViolation,
    lenient_rfc4180_dfa,
    verify_all,
    verify_automaton,
    verify_distinctness,
    verify_inclusion,
)
from repro.dfa.minimize import equivalent, included
from repro.dfa.registry import REGISTERED_AUTOMATA, registered_dfas


@pytest.fixture(scope="module")
def dfas():
    return registered_dfas()


class TestRegistry:
    def test_core_dialects_registered(self):
        """The paper's automaton and the CLI-facing dialects must stay
        enrolled — dropping one silently drops its proofs."""
        assert {"rfc4180", "csv", "tsv", "pipe",
                "csv-comments"} <= set(REGISTERED_AUTOMATA)

    def test_factories_build_fresh_instances(self):
        a = REGISTERED_AUTOMATA["csv"]()
        b = REGISTERED_AUTOMATA["csv"]()
        assert a is not b


@pytest.mark.parametrize("name", sorted(REGISTERED_AUTOMATA))
class TestPerAutomaton:
    def test_obligations_hold(self, dfas, name):
        violations = verify_automaton(name, dfas[name])
        assert violations == [], "\n".join(str(v) for v in violations)


class TestAcrossAutomata:
    def test_registry_is_distinct(self, dfas):
        violations = verify_distinctness(dfas)
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_strict_inclusion_witness(self):
        violations = verify_inclusion()
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_lenient_variant_separates(self, dfas):
        """The witness pair really is ordered strictly: strict ⊆ lenient
        but not conversely, and they are not equivalent."""
        strict = dfas["rfc4180"]
        lenient = lenient_rfc4180_dfa()
        assert included(strict, lenient)
        assert not included(lenient, strict)
        assert not equivalent(strict, lenient)

    def test_verify_all_is_clean(self):
        report = verify_all()
        assert set(REGISTERED_AUTOMATA) <= set(report)
        broken = {subject: [str(v) for v in violations]
                  for subject, violations in report.items() if violations}
        assert not broken


class TestTheCheckActuallyChecks:
    """The obligations must catch a genuinely broken minimiser output —
    an automaton that is NOT equivalent to csv must fail csv's proofs if
    swapped in."""

    def test_equivalence_check_catches_wrong_automaton(self, dfas):
        violations = [v for v in verify_automaton("csv", dfas["csv"])
                      if v.proof == "equivalence"]
        assert violations == []
        # tsv's canonical form is not csv's behaviour; equivalent() must
        # say so (distinctness already proved it, assert directly too).
        assert not equivalent(dfas["csv"], dfas["tsv"])

    def test_violation_renders(self):
        violation = ProofViolation("equivalence", "x", "detail")
        assert "equivalence" in str(violation) and "x" in str(violation)
