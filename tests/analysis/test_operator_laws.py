"""The law tier: exhaustive monoid proofs for every registered operator.

Associativity + identity are what license replacing the sequential DFA
sweep with parallel prefix scans (paper §2); these tests *prove* both
laws on closed, fully enumerated domains rather than sampling them.
``scripts/check.sh`` runs this file as its own gate before the main
suite.
"""

import pytest

from repro.analysis.oplaws import (
    LAW_SPECS,
    LawViolation,
    check_monoid_laws,
    verify_all_registered,
)


@pytest.mark.parametrize("spec", LAW_SPECS.values(),
                         ids=list(LAW_SPECS))
class TestRegisteredOperators:
    def test_laws_hold_exhaustively(self, spec):
        violations = check_monoid_laws(spec.factory(), spec.domain())
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_closed_domains_really_are_closed(self, spec):
        """Specs claiming closure (the exhaustive sweep is then a proof
        restricted to the domain) must keep combine inside the domain
        and contain the identity."""
        if not spec.closed:
            pytest.skip("spec does not claim a closed domain")
        monoid = spec.factory()
        domain = list(spec.domain())
        members = set(domain)
        assert monoid.identity() in members
        for x in domain:
            for y in domain:
                assert monoid.combine(x, y) in members, (x, y)

    def test_spec_is_documented(self, spec):
        assert spec.rationale
        assert spec.module.startswith("repro.")


class TestLoadBearingOperators:
    """The two operators the paper's §3.1/§3.2 decompositions rest on
    must be registered — a registry regression would silently drop the
    proof."""

    def test_stv_composition_registered(self):
        assert "TransitionComposeMonoid" in LAW_SPECS

    def test_rel_abs_offset_registered(self):
        assert "ColumnOffsetMonoid" in LAW_SPECS

    def test_stv_domain_is_complete(self):
        """All 27 functions on the 3-state set — structural completeness
        for function composition."""
        domain = LAW_SPECS["TransitionComposeMonoid"].domain()
        assert len(set(domain)) == 27

    def test_offset_domain_covers_both_kinds(self):
        domain = LAW_SPECS["ColumnOffsetMonoid"].domain()
        kinds = {offset.kind for offset in domain}
        assert len(kinds) == 2


class TestVerifyAll:
    def test_every_registered_operator_is_lawful(self):
        report = verify_all_registered()
        assert set(report) == set(LAW_SPECS)
        broken = {name: violations for name, violations in report.items()
                  if violations}
        assert not broken


class TestTheCheckActuallyChecks:
    """check_monoid_laws must catch a genuinely broken operator."""

    class _Subtraction:
        def identity(self):
            return 0

        def combine(self, a, b):
            return a - b

    class _WrongIdentity:
        def identity(self):
            return 1

        def combine(self, a, b):
            return a + b

    def test_catches_non_associativity(self):
        violations = check_monoid_laws(self._Subtraction(), [0, 1, 2])
        assert any(v.law == "associativity" for v in violations)

    def test_catches_broken_identity(self):
        violations = check_monoid_laws(self._WrongIdentity(), [0, 1, 2])
        laws = {v.law for v in violations}
        assert "identity-left" in laws or "identity-right" in laws

    def test_violation_reports_operands(self):
        violations = check_monoid_laws(self._Subtraction(), [0, 1, 2])
        violation = violations[0]
        assert isinstance(violation, LawViolation)
        assert violation.operands
        assert str(violation)

    def test_max_violations_caps_output(self):
        violations = check_monoid_laws(self._Subtraction(),
                                       list(range(6)), max_violations=2)
        assert len(violations) == 2
