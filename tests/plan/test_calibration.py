"""Calibration store: monotone EWMA convergence and fingerprint sharing.

Satellite (ISSUE 10): after ingesting synthetic obs timings,
`estimate_cost` converges toward measured stage totals (the EWMA is
monotone — each update moves the estimate toward the measurement and
never overshoots), and serial vs sharded runs of the same workload
calibrate the same fingerprint.
"""

import pytest

from repro import ParseOptions, SerialExecutor, ShardedExecutor
from repro.core.parser import ParPaRawParser
from repro.gpusim.cost_model import StepCosts
from repro.obs import MetricsRegistry
from repro.plan import CalibrationStore, Planner, config_key, probe_input
from repro.plan.calibration import STEPS

MEASURED_A = {"parse": 0.004, "scan": 0.001, "tag": 0.003,
              "partition": 0.002, "convert": 0.002}
MEASURED_B = {"parse": 0.020, "scan": 0.005, "tag": 0.015,
              "partition": 0.010, "convert": 0.010}
MODELLED = StepCosts(parse=0.001, scan=0.001, tag=0.001,
                     partition=0.001, convert=0.001)


def make_data(repeats: int = 800) -> bytes:
    return b"".join(b"%d,%d.25,row%d\n" % (i, i % 97, i)
                    for i in range(repeats))


class TestStore:
    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            CalibrationStore(alpha=0.0)
        with pytest.raises(ValueError):
            CalibrationStore(alpha=1.5)
        assert CalibrationStore(alpha=1.0).alpha == 1.0

    def test_first_observation_is_exact(self):
        store = CalibrationStore()
        store.observe("k", MEASURED_A, MODELLED)
        applied = store.apply(MODELLED, "k")
        assert applied.total == pytest.approx(sum(MEASURED_A.values()))

    def test_version_bumps_per_observation(self):
        store = CalibrationStore()
        assert store.version == 0
        store.observe("k", MEASURED_A, MODELLED)
        store.observe("k", MEASURED_A, MODELLED)
        assert store.version == 2

    def test_fallback_chain(self):
        store = CalibrationStore()
        store.observe("workload", MEASURED_A, MODELLED)
        assert store.scale("workload|c32k4pradix", "parse",
                           "workload") == pytest.approx(4.0)
        assert store.scale("unknown", "parse") == 1.0
        assert store.observed("workload")
        assert not store.observed("unknown")

    def test_zero_and_missing_steps_skipped(self):
        store = CalibrationStore()
        store.observe("k", {"parse": 0.0, "scan": 0.002}, MODELLED)
        assert store.scale("k", "parse") == 1.0    # 0 observation skipped
        assert store.scale("k", "scan") == pytest.approx(2.0)
        assert store.scale("k", "tag") == 1.0      # missing step skipped

    def test_snapshot_is_json_friendly(self):
        import json
        store = CalibrationStore()
        store.observe("k", MEASURED_A, MODELLED)
        snapshot = store.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_config_key_buckets_chunks_by_power_of_two(self):
        assert config_key("fp", 60, 4, "radix") \
            == config_key("fp", 33, 4, "radix")
        assert config_key("fp", 16, 4, "radix") \
            != config_key("fp", 64, 4, "radix")


class TestMonotoneConvergence:
    def test_ewma_converges_monotonically(self):
        """Under a constant observed workload each update moves the
        scale toward the measured ratio and never overshoots."""
        store = CalibrationStore(alpha=0.5)
        store.observe("k", MEASURED_A, MODELLED)   # warm start, ratios A
        target = MEASURED_B["parse"] / MODELLED.parse
        previous_error = abs(store.scale("k", "parse") - target)
        for _ in range(8):
            store.observe("k", MEASURED_B, MODELLED)
            scale = store.scale("k", "parse")
            error = abs(scale - target)
            assert error <= previous_error + 1e-15
            previous_error = error
        assert previous_error < 0.01 * target

    def test_estimate_cost_converges_to_measured_totals(self):
        planner = Planner()
        data = make_data()
        decision = planner.plan(data)
        fingerprint = decision.fingerprint
        base = ParseOptions()
        target = sum(MEASURED_B.values())
        # Warm-start with different timings, then feed a constant
        # measured workload: the calibrated estimate must walk toward
        # the measured total monotonically.
        for key in (fingerprint,):
            planner.store.observe(key, MEASURED_A, MODELLED)
        previous_error = abs(
            planner.estimate_cost(len(data), base,
                                  fingerprint=fingerprint) - target)
        for _ in range(8):
            stats = decision.stats
            # Model prediction for the exact config estimate_cost prices.
            from repro.kernels.strided import resolve_stride
            stride = resolve_stride(base.kernel_stride, base._sweep_dfa(),
                                    base.kernel_table_budget)
            modelled = planner._modelled(stats, len(data),
                                         base.chunk_size, stride,
                                         "field-run")
            key = config_key(fingerprint, base.chunk_size, stride,
                             "field-run")
            planner.store.observe(key, MEASURED_B, modelled)
            estimate = planner.estimate_cost(len(data), base,
                                             fingerprint=fingerprint)
            error = abs(estimate - target)
            assert error <= previous_error + 1e-12
            previous_error = error
        assert previous_error < 0.05 * target


class TestFingerprintSharing:
    def test_serial_and_sharded_calibrate_same_fingerprint(self):
        data = make_data()
        options = ParseOptions(infer_types=True)
        planner = Planner()
        serial = ParPaRawParser(options,
                                executor=SerialExecutor()).parse(data)
        executor = ShardedExecutor(workers=2, use_processes=False)
        with executor:
            sharded = ParPaRawParser(options, executor=executor)\
                .parse(data)
        fp_serial = planner.observe(serial)
        fp_sharded = planner.observe(sharded)
        assert fp_serial == fp_sharded
        assert planner.store.observed(fp_serial)
        # Two parses, each calibrating both granularities (per-config
        # key + bare fingerprint).
        assert planner.store.version == 4

    def test_probe_fingerprint_matches_observed_fingerprint(self):
        """The probe's fingerprint (planning) and the result's
        fingerprint (observation) land on the same calibration entry —
        the loop is closed, not two disjoint stores."""
        data = make_data()
        options = ParseOptions(infer_types=True)
        planner = Planner()
        decision = planner.plan(data, options)
        result = ParPaRawParser(decision.chosen).parse(data)
        assert planner.observe(result) == decision.fingerprint

    def test_observe_updates_both_granularities(self):
        data = make_data()
        planner = Planner()
        result = ParPaRawParser(ParseOptions()).parse(data)
        fingerprint = planner.observe(result)
        snapshot = planner.store.snapshot()
        assert fingerprint in snapshot
        config_keys = [k for k in snapshot if k.startswith(fingerprint)
                       and "|" in k]
        assert config_keys, "per-configuration entry missing"


class TestObsPlumbing:
    def test_histogram_totals_extracts_stage_seconds(self):
        metrics = MetricsRegistry()
        metrics.observe("stage.stv.seconds", 0.5)
        metrics.observe("stage.stv.seconds", 0.25)
        metrics.observe("stage.tag.seconds", 0.125)
        metrics.observe("other.seconds", 9.0)
        totals = metrics.histogram_totals("stage.", ".seconds")
        assert totals == {"stv": 0.75, "tag": 0.125}

    def test_sharded_records_stage_seconds_metrics(self):
        metrics = MetricsRegistry()
        executor = ShardedExecutor(workers=2, use_processes=False)
        with executor:
            ParPaRawParser(ParseOptions(), executor=executor,
                           metrics=metrics).parse(make_data())
        totals = metrics.histogram_totals("stage.", ".seconds")
        for stage in ("stv", "scan", "tag"):
            assert stage in totals, f"stage.{stage}.seconds missing"

    def test_step_seconds_cover_calibration_steps(self):
        result = ParPaRawParser(ParseOptions()).parse(make_data())
        measured = result.step_seconds()
        for step in STEPS:
            assert step in measured

    def test_scaled_step_costs(self):
        scaled = MODELLED.scaled({"parse": 2.0, "tag": 3.0})
        assert scaled.parse == pytest.approx(0.002)
        assert scaled.tag == pytest.approx(0.003)
        assert scaled.scan == pytest.approx(0.001)   # default factor 1.0


def test_probe_uses_callers_type_settings():
    """Without type inference every column converts as STRING, so the
    probe must not fingerprint the workload as numeric (the convert-cost
    profile the parse will actually have is string-shaped)."""
    data = make_data()
    plain = probe_input(data, ParseOptions())
    inferred = probe_input(data, ParseOptions(infer_types=True))
    assert plain.numeric_fraction == 0.0
    assert inferred.numeric_fraction > 0.0
    assert plain.fingerprint() != inferred.fingerprint()
