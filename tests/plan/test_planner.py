"""The self-tuning planner: probe, candidate scoring, decisions, wiring.

Covers the static half of the tentpole (ISSUE 10): `probe_input`
statistics, fingerprint stability, feasibility filtering against the
table budget, loser rationale, `plan="auto"` end-to-end equivalence,
`plan.*` spans/metrics, and the satellite pinning the dormant
`suggest_chunk_size` / `max_input_for_device` conveniences on the paper
workload factories.
"""

import numpy as np
import pytest

from repro import (
    Dialect,
    ParseOptions,
    PartitionStrategy,
    parse_bytes,
)
from repro.core.options import TaggingImpl, TaggingMode
from repro.errors import ParseError
from repro.gpusim.cost_model import PipelineCostModel, StepCosts, \
    WorkloadStats
from repro.obs import MetricsRegistry, Tracer
from repro.plan import InputStats, Planner, config_key, probe_input
from repro.plan.planner import WORKERS_INPUT_THRESHOLD
from repro.plan.stats import workload_fingerprint

CSV = b"id,price,name\n1,2.50,ash\n2,3.75,birch\n3,1.25,cedar\n"


def make_data(repeats: int = 500) -> bytes:
    return b"id,price,name\n" + b"".join(
        b"%d,%d.25,row%d\n" % (i, i % 97, i) for i in range(repeats))


class TestProbe:
    def test_probe_reads_shape(self):
        stats = probe_input(make_data())
        assert stats.num_columns == 3
        assert stats.records_sampled > 100
        assert 8.0 < stats.avg_record_bytes < 20.0
        assert stats.quote_rate == 0.0
        assert stats.input_bytes == len(make_data())

    def test_probe_is_bounded(self):
        data = make_data(100_000)
        stats = probe_input(data)
        assert stats.sample_bytes <= 64 * 1024
        assert stats.input_bytes == len(data)

    def test_fingerprint_stable_across_sizes(self):
        small = probe_input(make_data(300))
        large = probe_input(make_data(60_000))
        assert small.fingerprint() == large.fingerprint()

    def test_fingerprint_separates_shapes(self):
        csv = probe_input(make_data())
        pipe = probe_input(make_data().replace(b",", b"|"),
                           ParseOptions(dialect=Dialect.pipe()))
        assert csv.fingerprint() != pipe.fingerprint()

    def test_empty_input(self):
        stats = probe_input(b"")
        assert stats.input_bytes == 0
        assert stats.records_sampled == 0
        assert stats.fingerprint()  # still a usable key

    def test_sniffer_cross_check(self):
        # Comma data probed with a pipe dialect: the sniffer disagrees,
        # the configured dialect still wins.
        stats = probe_input(make_data(),
                            ParseOptions(dialect=Dialect.pipe()))
        assert not stats.sniffed_agrees
        assert stats.dialect.delimiter == b"|"

    def test_stats_factory_matches_workload_shape(self):
        stats = probe_input(make_data())
        ws = stats.workload(1_000_000, chunk_size=31)
        assert isinstance(ws, WorkloadStats)
        assert ws.num_columns == 3
        assert ws.input_bytes == 1_000_000
        assert ws.num_fields == ws.num_records * 3


class TestDecision:
    def test_infeasible_strides_kept_with_reason(self):
        decision = Planner().plan(make_data())
        infeasible = [c for c in decision.candidates if not c.feasible]
        assert infeasible, "quoted CSV k=8 should blow the 4 MiB budget"
        assert all("table budget" in c.reason for c in infeasible)
        assert all(c.modelled_seconds is None for c in infeasible)
        assert decision.winner.feasible

    def test_every_loser_has_a_reason(self):
        decision = Planner().plan(make_data())
        for c in decision.candidates:
            if not c.chosen:
                assert c.reason
        assert decision.winner.reason == "chosen"
        assert len([c for c in decision.candidates if c.chosen]) == 1

    def test_chosen_options_are_concrete(self):
        base = ParseOptions(plan="auto", infer_types=True)
        decision = Planner().plan(make_data(), base)
        chosen = decision.chosen
        assert chosen.plan is None
        assert chosen.kernel_stride is not None
        assert chosen.partition_strategy is not None
        # Non-knob options survive planning untouched.
        assert chosen.infer_types
        assert chosen.dialect == base.dialect

    def test_pinned_stride_collapses_the_dimension(self):
        decision = Planner().plan(
            make_data(), ParseOptions(kernel_stride=2))
        assert {c.stride for c in decision.candidates} == {2}
        assert decision.chosen.kernel_stride == 2

    def test_pinned_strategy_collapses_the_dimension(self):
        decision = Planner().plan(
            make_data(),
            ParseOptions(partition_strategy=PartitionStrategy.RADIX))
        assert {c.strategy for c in decision.candidates} == {"radix"}

    def test_chunked_tagging_never_plans_field_run(self):
        decision = Planner().plan(
            make_data(), ParseOptions(tagging_impl=TaggingImpl.CHUNKED))
        assert all(c.strategy == "radix" for c in decision.candidates)
        assert any("field-run not considered" in n for n in decision.notes)

    def test_suggested_chunk_size_is_a_candidate(self):
        planner = Planner()
        decision = planner.plan(make_data())
        suggested = planner.model.suggest_chunk_size(
            decision.stats.stats_factory(), decision.stats.input_bytes)
        assert suggested in {c.chunk_size for c in decision.candidates}

    def test_workers_recommendation_scales_with_input(self):
        import os
        planner = Planner()
        small = planner.plan(make_data())
        assert small.workers == 1
        stats = probe_input(make_data())
        big = InputStats(**{**stats.__dict__,
                            "input_bytes": WORKERS_INPUT_THRESHOLD})
        decision = planner._decide(big, big.fingerprint(), ParseOptions())
        assert decision.workers == min(4, os.cpu_count() or 1)
        assert any("shard workers" in note for note in decision.notes)

    def test_device_ceiling_reported(self):
        decision = Planner().plan(make_data())
        assert decision.device_ceiling_bytes > decision.stats.input_bytes

    def test_rationale_and_dict_round_trip(self):
        decision = Planner().plan(make_data())
        text = "\n".join(decision.rationale())
        assert "chose chunk_size=" in text
        as_dict = decision.as_dict()
        assert as_dict["chosen"]["chunk_size"] \
            == decision.chosen.chunk_size
        assert len(as_dict["candidates"]) == len(decision.candidates)


class TestAutoParse:
    def test_plan_auto_is_bit_identical(self):
        data = make_data()
        default = parse_bytes(data, ParseOptions(infer_types=True))
        auto = parse_bytes(data, ParseOptions(plan="auto",
                                              infer_types=True))
        assert auto.table.to_pylist() == default.table.to_pylist()
        assert auto.num_records == default.num_records
        assert auto.options.plan is None

    def test_plan_auto_emits_spans_and_metrics(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        planner = Planner(tracer=tracer, metrics=metrics)
        parse_bytes(make_data(), ParseOptions(plan="auto"),
                    tracer=tracer, metrics=metrics, planner=planner)
        names = {span.name for span in tracer.spans}
        assert "plan.probe" in names
        assert "plan.decide" in names
        assert metrics.counters["plan.decisions"] == 1
        assert metrics.counters["plan.calibration.updates"] == 1
        assert "plan.chunk_size" in metrics.gauges

    def test_replan_on_new_evidence(self):
        tracer, metrics = Tracer(), MetricsRegistry()
        planner = Planner(tracer=tracer, metrics=metrics)
        data = make_data()
        first = planner.plan(data)
        loser = next(c for c in first.candidates
                     if c.feasible and not c.chosen)
        # Plant overwhelming evidence that one loser is much faster.
        key = config_key(first.fingerprint, loser.chunk_size,
                         loser.stride, loser.strategy)
        planner.store.observe(
            key, {s: 1e-9 for s in ("parse", "scan", "tag", "partition",
                                    "convert")},
            StepCosts(1.0, 1.0, 1.0, 1.0, 1.0))
        second = planner.plan(data)
        assert second.chosen != first.chosen
        assert metrics.counters["plan.replans"] == 1
        assert "plan.replan" in {span.name for span in tracer.spans}

    def test_refine_explores_and_converges(self):
        planner = Planner()
        data = make_data(2000)
        decision = planner.refine(data, rounds=3)
        explored = [c for c in decision.candidates
                    if c.feasible and c.calibrated]
        assert len(explored) >= 3
        assert decision.calibrated

    def test_shared_default_planner_used_for_auto(self):
        import repro.plan as plan_pkg
        shared = plan_pkg.shared_planner()
        before = shared.store.version
        parse_bytes(make_data(), ParseOptions(plan="auto"))
        assert shared.store.version > before


class TestEstimateCost:
    def test_estimate_scales_with_bytes(self):
        planner = Planner()
        planner.plan(make_data())
        small = planner.estimate_cost(1_000_000)
        large = planner.estimate_cost(100_000_000)
        assert 0.0 < small < large

    def test_estimate_without_history_uses_generic_shape(self):
        assert Planner().estimate_cost(10_000_000) > 0.0


class TestDormantConveniences:
    """Satellite: pin the cost-model conveniences on the paper factories."""

    def test_suggest_chunk_size_yelp_pinned(self):
        model = PipelineCostModel()
        assert model.suggest_chunk_size(
            WorkloadStats.yelp_like, 512 * 1024 * 1024) == 63
        assert model.suggest_chunk_size(
            WorkloadStats.yelp_like, 32 * 1024 * 1024) == 63

    def test_suggest_chunk_size_taxi_pinned(self):
        model = PipelineCostModel()
        assert model.suggest_chunk_size(
            WorkloadStats.taxi_like, 512 * 1024 * 1024) == 63

    def test_max_input_for_device_pinned(self):
        model = PipelineCostModel()
        assert model.max_input_for_device(
            WorkloadStats.yelp_like) == 700_805_387
        assert model.max_input_for_device(
            WorkloadStats.taxi_like) == 605_233_242

    def test_planner_wires_both(self):
        """The planner consults both conveniences on every decision."""
        decision = Planner().plan(make_data())
        assert decision.device_ceiling_bytes > 0
        chunks = {c.chunk_size for c in decision.candidates}
        assert 63 in chunks  # the model's suggestion joined the ladder


class TestOptionsValidation:
    """Satellite: contradictory combinations rejected up front."""

    def test_stride_over_budget_rejected(self):
        with pytest.raises(ParseError, match="kernel_table_budget"):
            ParseOptions(kernel_stride=8)  # quoted CSV blows 4 MiB

    def test_stride_within_raised_budget_accepted(self):
        options = ParseOptions(kernel_stride=8,
                               kernel_table_budget=1 << 30)
        assert options.kernel_stride == 8

    def test_error_message_names_the_fix(self):
        with pytest.raises(ParseError) as err:
            ParseOptions(kernel_stride=2, kernel_table_budget=1)
        message = str(err.value)
        assert "raise kernel_table_budget to at least" in message
        assert "kernel_stride=None" in message

    def test_field_run_with_chunked_tagging_rejected(self):
        with pytest.raises(ParseError, match="field-run"):
            ParseOptions(partition_strategy=PartitionStrategy.FIELD_RUN,
                         tagging_impl=TaggingImpl.CHUNKED)

    def test_auto_strategy_with_chunked_tagging_accepted(self):
        options = ParseOptions(tagging_impl=TaggingImpl.CHUNKED)
        assert options.partition_strategy is None

    def test_plan_value_validated(self):
        with pytest.raises(ParseError, match="plan"):
            ParseOptions(plan="turbo")
        assert ParseOptions(plan="auto").plan == "auto"


class TestFingerprint:
    def test_buckets_record_length_by_power_of_two(self):
        d = Dialect.csv()
        a = workload_fingerprint(d, 5, 100.0, 0.5)
        b = workload_fingerprint(d, 5, 120.0, 0.5)
        c = workload_fingerprint(d, 5, 300.0, 0.5)
        assert a == b != c

    def test_numeric_fraction_quartiles(self):
        d = Dialect.csv()
        assert workload_fingerprint(d, 5, 100.0, 0.45) \
            == workload_fingerprint(d, 5, 100.0, 0.55)
        assert workload_fingerprint(d, 5, 100.0, 0.1) \
            != workload_fingerprint(d, 5, 100.0, 0.9)


def test_probe_accepts_ndarray():
    raw = np.frombuffer(make_data(), dtype=np.uint8)
    stats = probe_input(raw)
    assert stats.num_columns == 3
    assert stats.input_bytes == raw.size
