"""Tests for the quote-parity parser: exact on RFC 4180, broken by
comments — the paper's §2 claim about format-tailored parsers."""

from hypothesis import given, settings, strategies as st

from repro.baselines.quote_count import QuoteCountParser
from repro.baselines.sequential import SequentialParser
from repro.core.options import ParseOptions
from repro.dfa.dialects import Dialect
from repro.workloads.generators import CsvGenerator
from repro.workloads.yelp import generate_yelp_like

NO_CR = Dialect(strip_carriage_return=False)


def reference_rows(data: bytes, dialect=NO_CR):
    return SequentialParser(ParseOptions(dialect=dialect)).parse_rows(data)


class TestAgreementOnRfc4180:
    def test_yelp_like(self):
        data = generate_yelp_like(30_000)
        assert QuoteCountParser(NO_CR).parse_rows(data) \
            == reference_rows(data)

    def test_quoted_edge_cases(self):
        for data in (b'""\n', b'"a""b"\n', b'"a,b",c\n', b'a,"x\ny"\n',
                     b"a,b", b"", b"\n", b"a,,b\n"):
            assert QuoteCountParser(NO_CR).parse_rows(data) \
                == reference_rows(data), data

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=25)
    def test_generated_corpora(self, seed):
        data = CsvGenerator(dialect=NO_CR, seed=seed,
                            quote_probability=0.5,
                            embedded_delim_probability=0.5).generate(30)
        assert QuoteCountParser(NO_CR).parse_rows(data) \
            == reference_rows(data)


class TestBreakage:
    def test_comments_break_parity(self):
        """A comment line containing an odd number of quotes flips the
        speculated quotation scope for everything after it (paper §2)."""
        dialect = Dialect(comment=b"#", strip_carriage_return=False)
        data = b'#note: "rotated\n1,2\n3,4\n'
        wrong = QuoteCountParser(NO_CR).parse_rows(data)
        right = reference_rows(data, dialect)
        assert wrong != right
        assert right == [[b"1", b"2"], [b"3", b"4"]]

    def test_unquoted_dialect(self):
        parser = QuoteCountParser(Dialect.tsv())
        assert parser.parse_rows(b"a\tb\nc\td\n") \
            == [[b"a", b"b"], [b"c", b"d"]]
