"""Tests for the Figure 13 comparator models."""

import pytest

from repro.baselines.system_models import PAPER_SYSTEMS, modelled_duration
from repro.errors import SimulationError

YELP = 4.823e9
TAXI = 9.073e9


class TestCalibration:
    @pytest.mark.parametrize("system,yelp,taxi", [
        ("cuDF*", 7.3, 9.4),
        ("cuDF", 10.5, 16.5),
        ("MonetDB", 58.2, 38.0),
        ("Spark", 94.3, 98.1),
        ("pandas", 91.3, 83.4),
    ])
    def test_paper_durations(self, system, yelp, taxi):
        assert modelled_duration(system, YELP, True) \
            == pytest.approx(yelp, rel=1e-6)
        assert modelled_duration(system, TAXI, False) \
            == pytest.approx(taxi, rel=1e-6)

    def test_instant_loading_taxi(self):
        assert modelled_duration("Inst. Loading", TAXI, False) \
            == pytest.approx(3.6)

    def test_instant_loading_fails_on_yelp(self):
        """Paper §5.2: could not handle the yelp dataset."""
        with pytest.raises(SimulationError):
            modelled_duration("Inst. Loading", YELP, True)

    def test_unknown_system(self):
        with pytest.raises(SimulationError):
            modelled_duration("DuckDB", YELP, True)


class TestScaling:
    def test_linear_in_size(self):
        half = modelled_duration("pandas", YELP / 2, True)
        full = modelled_duration("pandas", YELP, True)
        assert full == pytest.approx(2 * half, rel=1e-6)

    def test_spark_startup_floor(self):
        tiny = modelled_duration("Spark", 1e6, True)
        assert tiny > 4.0  # JVM spin-up dominates tiny inputs

    def test_ordering_matches_figure13(self):
        """Who beats whom on each dataset (the figure's visual story)."""
        yelp_order = ["cuDF*", "cuDF", "MonetDB", "pandas", "Spark"]
        durations = [modelled_duration(s, YELP, True) for s in yelp_order]
        assert durations == sorted(durations)
        taxi_order = ["Inst. Loading", "cuDF*", "cuDF", "MonetDB",
                      "pandas", "Spark"]
        durations = [modelled_duration(s, TAXI, False) for s in taxi_order]
        assert durations == sorted(durations)
