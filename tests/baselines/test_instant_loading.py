"""Tests for the Instant-Loading baseline: correct where the paper says it
is, wrong where the paper says it breaks."""

import pytest

from repro.baselines.instant_loading import InstantLoadingParser
from repro.baselines.sequential import SequentialParser
from repro.core.options import ParseOptions
from repro.dfa.dialects import Dialect
from repro.errors import ParseError
from repro.workloads.generators import CsvGenerator
from repro.workloads.taxi import generate_taxi_like
from repro.workloads.yelp import generate_yelp_like

NO_CR = Dialect(strip_carriage_return=False)


def reference_rows(data: bytes, dialect=NO_CR):
    return SequentialParser(ParseOptions(dialect=dialect)).parse_rows(data)


class TestUnsafeMode:
    def test_correct_on_simple_input(self):
        data = generate_taxi_like(5_000)
        parser = InstantLoadingParser(NO_CR, num_threads=7)
        assert parser.parse_rows(data) == reference_rows(data)

    def test_wrong_on_quoted_newlines(self):
        """The paper §5.2: unsafe Instant Loading cannot handle yelp-like
        data (quoted strings containing record delimiters)."""
        data = generate_yelp_like(30_000)
        parser = InstantLoadingParser(NO_CR, num_threads=8)
        rows = parser.parse_rows(data)
        assert rows != reference_rows(data)

    def test_single_thread_is_sequential(self):
        data = generate_yelp_like(10_000)
        parser = InstantLoadingParser(NO_CR, num_threads=1)
        assert parser.parse_rows(data) == reference_rows(data)

    def test_empty_input(self):
        assert InstantLoadingParser(NO_CR).parse_rows(b"") == []


class TestSafeMode:
    def test_correct_on_quoted_newlines(self):
        data = generate_yelp_like(30_000)
        parser = InstantLoadingParser(NO_CR, num_threads=8, safe_mode=True)
        assert parser.parse_rows(data) == reference_rows(data)

    def test_correct_on_comments(self):
        dialect = Dialect(comment=b"#", strip_carriage_return=False)
        data = CsvGenerator(dialect=dialect, comment_probability=0.3,
                            seed=5).generate(200)
        parser = InstantLoadingParser(dialect, num_threads=6,
                                      safe_mode=True)
        assert parser.parse_rows(data) == reference_rows(data, dialect)

    def test_serial_fraction_positive(self):
        data = generate_taxi_like(5_000)
        parser = InstantLoadingParser(NO_CR, num_threads=8, safe_mode=True)
        parser.parse_rows(data)
        assert parser.serial_fraction() > 0.0

    def test_amdahl_bound(self):
        """Safe mode's sequential pre-pass caps the speed-up well below
        the core count (the paper's scalability argument, §2)."""
        data = generate_taxi_like(20_000)
        parser = InstantLoadingParser(NO_CR, num_threads=8, safe_mode=True)
        parser.parse_rows(data)
        assert parser.amdahl_speedup(3584) < 3.0

    def test_unsafe_has_no_serial_work(self):
        data = generate_taxi_like(5_000)
        parser = InstantLoadingParser(NO_CR, num_threads=8)
        parser.parse_rows(data)
        assert parser.serial_fraction() == 0.0
        assert parser.amdahl_speedup(3584) > 1000


class TestWorkAccounting:
    def test_idle_threads_on_giant_record(self):
        """A record spanning many chunks leaves most threads without a
        boundary in their chunk (the load-balancing pathology, §2)."""
        giant = b"x" * 10_000 + b"\n" + b"a,b\n"
        parser = InstantLoadingParser(NO_CR, num_threads=8)
        parser.parse_rows(giant)
        assert parser.stats.idle_threads >= 5

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ParseError):
            InstantLoadingParser(num_threads=0)
