"""Tests for the sequential reference parser itself."""

import pytest

from repro.baselines.sequential import SequentialParser, sequential_rows
from repro.core.options import ColumnCountPolicy, ParseOptions
from repro.columnar.schema import DataType, Field, Schema
from repro.errors import ParseError


class TestSequentialRows:
    def test_basic(self, csv_dfa):
        rows, state, trailing = sequential_rows(b"a,b\nc,d\n", csv_dfa)
        assert rows == [[b"a", b"b"], [b"c", b"d"]]
        assert not trailing

    def test_empty_field_is_none(self, csv_dfa):
        rows, _, _ = sequential_rows(b"a,,c\n", csv_dfa)
        assert rows == [[b"a", None, b"c"]]

    def test_quoted_delimiters(self, csv_dfa, paper_example):
        rows, _, _ = sequential_rows(paper_example, csv_dfa)
        assert rows[1] == [b"1938", b"19.99", b'Frame\n"Ribba", black']

    def test_trailing_record(self, csv_dfa):
        rows, _, trailing = sequential_rows(b"a\nb", csv_dfa)
        assert rows == [[b"a"], [b"b"]]
        assert trailing

    def test_invalid_discards_rest(self, csv_dfa):
        rows, _, _ = sequential_rows(b'ok\nbad"x\nmore\n', csv_dfa)
        assert rows == [[b"ok"]]

    def test_strict_raises(self, csv_dfa):
        with pytest.raises(ParseError):
            sequential_rows(b'bad"x\n', csv_dfa, strict=True)

    def test_comment_lines(self, comment_dfa):
        rows, _, _ = sequential_rows(b"#c\na\n#d", comment_dfa)
        assert rows == [[b"a"]]


class TestSequentialParserOptions:
    def test_schema_conversion(self):
        schema = Schema([Field("n", DataType.INT64),
                         Field("s", DataType.STRING)])
        table = SequentialParser(ParseOptions(schema=schema)) \
            .parse(b"1,a\nbad,b\n")
        assert table.to_pylist() == [
            {"n": 1, "s": "a"}, {"n": None, "s": "b"}]
        assert table.column("n").rejects == 1

    def test_select_columns(self):
        options = ParseOptions(select_columns=(1,))
        table = SequentialParser(options).parse(b"a,b\nc,d\n")
        assert table.to_pylist() == [{"col1": "b"}, {"col1": "d"}]

    def test_reject_policy(self):
        options = ParseOptions(schema=Schema.all_strings(2),
                               column_count_policy=ColumnCountPolicy.REJECT)
        table = SequentialParser(options).parse(b"a,b\nc\nd,e\n")
        assert table.num_rows == 2

    def test_skip_rows(self):
        options = ParseOptions(skip_rows=frozenset({0}))
        table = SequentialParser(options).parse(b"a\nb\nc\n")
        assert [r["col0"] for r in table.to_pylist()] == ["b", "c"]

    def test_skip_records(self):
        options = ParseOptions(skip_records=frozenset({1}))
        table = SequentialParser(options).parse(b"a\nb\nc\n")
        assert [r["col0"] for r in table.to_pylist()] == ["a", "c"]
