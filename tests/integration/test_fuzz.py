"""Deterministic mutation fuzzing: the parallel pipeline never diverges.

Seeds well-formed CSV corpora, then applies byte-level mutations (flips,
deletions, duplications, splices of quote/delimiter bytes) and checks the
central invariant on every mutant: ParPaRaw == sequential reference, for
several chunk sizes.  Complements the hypothesis tests with adversarial,
structure-aware corruption.
"""

import random

import pytest

from repro import Dialect, ParPaRawParser, ParseOptions, Schema
from repro.baselines import SequentialParser
from repro.workloads import CsvGenerator, generate_taxi_like, \
    generate_yelp_like

NO_CR = Dialect(strip_carriage_return=False)

MUTATION_BYTES = b'",\n#\\x00\xff'


def mutate(data: bytes, rng: random.Random, operations: int) -> bytes:
    buf = bytearray(data)
    for _ in range(operations):
        if not buf:
            break
        op = rng.randrange(4)
        pos = rng.randrange(len(buf))
        if op == 0:      # overwrite with a structural byte
            buf[pos] = rng.choice(MUTATION_BYTES)
        elif op == 1:    # delete
            del buf[pos]
        elif op == 2:    # duplicate a span
            span = buf[pos:pos + rng.randrange(1, 8)]
            buf[pos:pos] = span
        else:            # bit flip
            buf[pos] ^= 1 << rng.randrange(8)
    return bytes(buf)


def assert_equivalent(data: bytes, chunk_sizes=(3, 31)):
    for chunk_size in chunk_sizes:
        options = ParseOptions(dialect=NO_CR, chunk_size=chunk_size)
        parallel = ParPaRawParser(options).parse(data).table.to_pylist()
        sequential = SequentialParser(options).parse(data).to_pylist()
        assert parallel == sequential, (chunk_size, data[:120])


class TestMutationFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_mutated_quoted_csv(self, seed):
        rng = random.Random(seed)
        base = CsvGenerator(dialect=NO_CR, seed=seed,
                            quote_probability=0.5,
                            embedded_delim_probability=0.5).generate(15)
        for _ in range(6):
            assert_equivalent(mutate(base, rng, operations=4))

    @pytest.mark.parametrize("seed", range(6))
    def test_mutated_yelp_like(self, seed):
        rng = random.Random(1000 + seed)
        base = generate_yelp_like(3_000, seed=seed)
        for _ in range(4):
            assert_equivalent(mutate(base, rng, operations=6))

    @pytest.mark.parametrize("seed", range(6))
    def test_mutated_taxi_like(self, seed):
        rng = random.Random(2000 + seed)
        base = generate_taxi_like(2_000, seed=seed)
        for _ in range(4):
            assert_equivalent(mutate(base, rng, operations=6))

    def test_pathological_quote_storms(self):
        # Long runs of quotes exercise the ENC<->ESC oscillation.
        for n in (1, 2, 3, 4, 7, 16, 33):
            assert_equivalent(b'"' * n + b"\n")
            assert_equivalent(b'a,' + b'"' * n + b",b\n")

    def test_delimiter_storms(self):
        for n in (1, 5, 64, 200):
            assert_equivalent(b"," * n + b"\n")
            assert_equivalent(b"\n" * n)

    def test_alternating_structures(self):
        assert_equivalent(b',"\n' * 40)
        assert_equivalent(b'",\n"' * 40)
        assert_equivalent(bytes(range(256)).replace(b"\r", b"") * 2)


class TestTypedMutationFuzz:
    @pytest.mark.parametrize("seed", range(6))
    def test_typed_schema_never_diverges(self, seed):
        from repro.workloads import TAXI_SCHEMA
        rng = random.Random(3000 + seed)
        base = generate_taxi_like(1_500, seed=seed)
        mutant = mutate(base, rng, operations=10)
        options = ParseOptions(dialect=NO_CR, schema=TAXI_SCHEMA)
        parallel = ParPaRawParser(options).parse(mutant)
        sequential = SequentialParser(options).parse(mutant)
        assert parallel.table.to_pylist() == sequential.to_pylist()
        assert parallel.total_rejected_fields \
            == sum(c.rejects for c in sequential.columns)
