"""Write -> parse round-trip properties.

The strongest end-to-end invariant available without external data: any
table the columnar layer can represent, rendered by the writer, must parse
back (with the matching schema) into an equal table — under every dialect,
chunk size and tagging implementation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    DataType,
    Dialect,
    Field,
    ParPaRawParser,
    ParseOptions,
    Schema,
    TaggingImpl,
)
from repro.columnar.table import Column, Table
from repro.workloads.writer import render_value, write_rows, write_table
from repro.errors import DialectError


def make_table(schema: Schema, columns_values) -> Table:
    return Table(schema, [Column.from_values(f, v)
                          for f, v in zip(schema, columns_values)])


TEXT = st.one_of(
    st.none(),
    st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            min_size=1, max_size=20),
    st.sampled_from(['a,b', 'x\ny', 'he said "hi"', ',', '\n', '"',
                     '""', 'tricky,"\n"']),
)

INTS = st.one_of(st.none(), st.integers(-(2 ** 62), 2 ** 62))
FLOATS = st.one_of(st.none(),
                   st.floats(allow_nan=False, allow_infinity=False))
BOOLS = st.one_of(st.none(), st.booleans())
# The textual forms are YYYY-MM-DD (years 0000-9999), so the renderable
# domain is bounded; days_from_civil(0,1,1) = -719528.
MIN_DAYS, MAX_DAYS = -719_528, 2_932_896
DATES = st.one_of(st.none(), st.integers(MIN_DAYS, MAX_DAYS))
TIMESTAMPS = st.one_of(st.none(),
                       st.integers(MIN_DAYS * 86_400,
                                   MAX_DAYS * 86_400 + 86_399))
DECIMALS = st.one_of(st.none(), st.integers(-(10 ** 15), 10 ** 15))


class TestTypedRoundTrip:
    SCHEMA = Schema([
        Field("s", DataType.STRING),
        Field("i", DataType.INT64),
        Field("f", DataType.FLOAT64),
        Field("b", DataType.BOOL),
        Field("d", DataType.DATE),
        Field("t", DataType.TIMESTAMP),
        Field("m", DataType.DECIMAL, decimal_scale=2),
    ])

    @given(st.lists(
        st.tuples(TEXT, INTS, FLOATS, BOOLS, DATES, TIMESTAMPS, DECIMALS),
        max_size=25))
    @settings(max_examples=120, deadline=None)
    def test_write_parse_equals_original(self, rows):
        # Rows whose string field is empty cannot round trip exactly
        # (empty renders like NULL); map '' to None up front.
        rows = [tuple(None if v == "" else v for v in row)
                for row in rows]
        columns = list(zip(*rows)) if rows else [[]] * len(self.SCHEMA)
        table = make_table(self.SCHEMA, [list(c) for c in columns])
        raw = write_table(table)
        parsed = ParPaRawParser(
            ParseOptions(schema=self.SCHEMA)).parse(raw)
        assert parsed.table.to_pylist() == table.to_pylist()
        assert parsed.total_rejected_fields == 0

    @pytest.mark.parametrize("chunk_size", [1, 5, 31])
    def test_fixed_rows_all_chunk_sizes(self, chunk_size):
        table = make_table(self.SCHEMA, [
            ["a,b", None, 'quo"te'],
            [1, -2, None],
            [1.5, None, -0.25],
            [True, False, None],
            [0, -719468, 11017],
            [0, 86399, None],
            [19999, None, -50],
        ])
        raw = write_table(table)
        parsed = ParPaRawParser(ParseOptions(schema=self.SCHEMA,
                                             chunk_size=chunk_size)) \
            .parse(raw)
        assert parsed.table.to_pylist() == table.to_pylist()


class TestRawRowsRoundTrip:
    @given(st.lists(st.lists(st.one_of(
        st.none(), st.binary(min_size=1, max_size=12)
        .filter(lambda b: all(c < 0x80 for c in b))),
        min_size=1, max_size=5), max_size=20),
        st.integers(1, 23))
    @settings(max_examples=100, deadline=None)
    def test_bytes_roundtrip(self, rows, chunk_size):
        from repro.baselines import SequentialParser
        raw = write_rows(rows, Dialect.csv())
        parser = SequentialParser(ParseOptions())
        assert parser.parse_rows(raw) == [list(r) for r in rows]
        # And the parallel parser agrees, of course.
        width = max((len(r) for r in rows), default=0)
        parsed = ParPaRawParser(ParseOptions(
            schema=Schema.all_strings(width),
            chunk_size=chunk_size)).parse(raw)
        expected = [[None if f is None else f.decode() for f in r]
                    + [None] * (width - len(r)) for r in rows]
        assert [list(row) for row in parsed.table.rows()] == expected

    def test_header(self):
        schema = Schema([Field("alpha", DataType.STRING),
                         Field("beta", DataType.INT64)])
        table = make_table(schema, [["x"], [1]])
        raw = write_table(table, header=True)
        assert raw.startswith(b"alpha,beta\n")

    def test_comment_byte_gets_quoted(self):
        dialect = Dialect.csv_with_comments()
        raw = write_rows([[b"#not a comment", b"v"]], dialect)
        parsed = ParPaRawParser(ParseOptions(dialect=dialect)).parse(raw)
        assert parsed.table.row(0) == ("#not a comment", "v")

    def test_unquotable_dialect_raises(self):
        with pytest.raises(DialectError):
            write_rows([[b"a\tb"]], Dialect.tsv())
        with pytest.raises(DialectError):
            write_rows([[b'quote " inside']],
                       Dialect(doubled_quote=False))


class TestRenderValue:
    def test_decimal(self):
        assert render_value(19999, DataType.DECIMAL, 2) == b"199.99"
        assert render_value(-5, DataType.DECIMAL, 2) == b"-0.05"
        assert render_value(7, DataType.DECIMAL, 0) == b"7"

    def test_date_inverse(self):
        from repro.core.scalar_convert import parse_date_scalar
        for days in (-1000, 0, 1, 11017, 200_000):
            text = render_value(days, DataType.DATE)
            assert parse_date_scalar(text) == (days, True)

    @given(st.integers(-719_528 * 86_400, 2_932_896 * 86_400 + 86_399))
    def test_timestamp_inverse(self, seconds):
        from repro.core.scalar_convert import parse_timestamp_scalar
        text = render_value(seconds, DataType.TIMESTAMP)
        assert parse_timestamp_scalar(text) == (seconds, True)

    def test_bool(self):
        assert render_value(True, DataType.BOOL) == b"true"
        assert render_value(None, DataType.BOOL) is None
