"""Every example script must run cleanly end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _example_env() -> dict:
    """Subprocess environment with the package importable.

    pytest's ``pythonpath`` ini setting only extends ``sys.path`` of the
    test process itself; example scripts run as fresh interpreters and
    need ``src`` on PYTHONPATH explicitly.
    """
    env = os.environ.copy()
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[s.stem for s in EXAMPLES])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300, env=_example_env())
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_every_example_listed_in_readme():
    readme = (EXAMPLES_DIR / "README.md").read_text()
    for script in EXAMPLES:
        assert script.name in readme, script.name
