"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[s.stem for s in EXAMPLES])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_every_example_listed_in_readme():
    readme = (EXAMPLES_DIR / "README.md").read_text()
    for script in EXAMPLES:
        assert script.name in readme, script.name
