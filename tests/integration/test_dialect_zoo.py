"""Dialect matrix: the same logical data through every dialect family.

One logical table is rendered under each dialect (writer) and parsed back
(parallel + sequential), so every dialect feature — delimiters, quoting,
escapes, comments, CRLF — is exercised through the full pipeline with a
known expected result.
"""

import pytest

from repro import Dialect, ParPaRawParser, ParseOptions, Schema
from repro.baselines import SequentialParser
from repro.workloads.writer import write_rows

LOGICAL_ROWS = [
    [b"plain", b"42", b"x"],
    [b"with space", b"-7", b"y"],
    [None, b"0", b"z"],          # empty field -> NULL
    [b"end", b"1", None],
]

DIALECTS = {
    "csv": Dialect.csv(),
    "csv-no-crlf": Dialect(strip_carriage_return=False),
    "tsv": Dialect.tsv(),
    "pipe": Dialect.pipe(),
    "semicolon": Dialect(delimiter=b";"),
    "comments": Dialect.csv_with_comments(),
    "escape": Dialect(escape=b"\\"),
    "colon-unquoted": Dialect(delimiter=b":", quote=None,
                              doubled_quote=False),
}


@pytest.mark.parametrize("name", DIALECTS)
@pytest.mark.parametrize("chunk_size", [3, 31])
def test_roundtrip_in_every_dialect(name, chunk_size):
    dialect = DIALECTS[name]
    raw = write_rows(LOGICAL_ROWS, dialect)
    options = ParseOptions(dialect=dialect, chunk_size=chunk_size,
                           schema=Schema.all_strings(3))
    parallel = ParPaRawParser(options).parse(raw).table.to_pylist()
    sequential = SequentialParser(options).parse(raw).to_pylist()
    assert parallel == sequential
    expected = [
        {f"col{i}": (None if f is None else f.decode())
         for i, f in enumerate(row)}
        for row in LOGICAL_ROWS
    ]
    assert parallel == expected


QUOTED_ROWS = [
    [b"a,b", b"line\nbreak", b'quote"inside'],
    [b"trailing", b"", b"ok"],
]


@pytest.mark.parametrize("name", ["csv", "csv-no-crlf", "comments",
                                  "semicolon"])
def test_adversarial_fields_in_quoting_dialects(name):
    dialect = DIALECTS[name]
    rows = [[f if f != b"" else None for f in row] for row in QUOTED_ROWS]
    raw = write_rows(rows, dialect)
    options = ParseOptions(dialect=dialect, schema=Schema.all_strings(3))
    parsed = ParPaRawParser(options).parse(raw)
    assert [list(r) for r in parsed.table.rows()] == [
        [None if f is None else f.decode() for f in row] for row in rows]


def test_comment_dialect_skips_injected_comments():
    dialect = DIALECTS["comments"]
    raw = write_rows(LOGICAL_ROWS[:2], dialect)
    noisy = b'# leading comment, with "quotes\n' + raw + b"# tail comment"
    options = ParseOptions(dialect=dialect, schema=Schema.all_strings(3))
    parsed = ParPaRawParser(options).parse(noisy)
    assert parsed.num_rows == 2
    assert parsed.table.row(0)[0] == "plain"


def test_escape_dialect_literal_specials():
    dialect = DIALECTS["escape"]
    raw = b"a\\,b,c\nd\\\ne,f\n"   # escaped comma; escaped newline
    options = ParseOptions(dialect=dialect, schema=Schema.all_strings(2))
    parallel = ParPaRawParser(options).parse(raw).table.to_pylist()
    sequential = SequentialParser(options).parse(raw).to_pylist()
    assert parallel == sequential
    assert parallel[0] == {"col0": "a,b", "col1": "c"}
    assert parallel[1] == {"col0": "d\ne", "col1": "f"}


def test_crlf_dialect_strips_cr():
    raw = b"a,b\r\nc,d\r\n"
    options = ParseOptions(dialect=Dialect.csv(),
                           schema=Schema.all_strings(2))
    parsed = ParPaRawParser(options).parse(raw)
    assert parsed.table.to_pylist() == [
        {"col0": "a", "col1": "b"}, {"col0": "c", "col1": "d"}]
