"""The library's central invariant: ParPaRaw ≡ sequential reference.

For any input, any chunk size, any tagging implementation — the massively
parallel pipeline must produce exactly the output of the sequential FSM
parser.  A third-party oracle (Python's ``csv`` module) cross-checks both
on inputs where the semantics are comparable.
"""

import csv as csv_module

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ColumnCountPolicy,
    DataType,
    Dialect,
    Field,
    ParPaRawParser,
    ParseOptions,
    Schema,
    TaggingImpl,
)
from repro.baselines import SequentialParser, stdlib_csv_rows
from repro.workloads import CsvGenerator, generate_clf, generate_elf
from repro.dfa.logformats import common_log_format_dfa, \
    extended_log_format_dfa
from tests.conftest import TRICKY_INPUTS

NO_CR = Dialect(strip_carriage_return=False)


def assert_equivalent(data: bytes, options: ParseOptions):
    parallel = ParPaRawParser(options).parse(data).table.to_pylist()
    sequential = SequentialParser(options).parse(data).to_pylist()
    assert parallel == sequential, data


class TestTrickyCorpus:
    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 31])
    def test_all_tricky_inputs(self, chunk_size):
        for data in TRICKY_INPUTS:
            assert_equivalent(data, ParseOptions(dialect=NO_CR,
                                                 chunk_size=chunk_size))

    @pytest.mark.parametrize("impl", list(TaggingImpl))
    def test_both_impls(self, impl):
        for data in TRICKY_INPUTS:
            assert_equivalent(data, ParseOptions(dialect=NO_CR,
                                                 tagging_impl=impl,
                                                 chunk_size=4))

    def test_reject_policy(self):
        for data in TRICKY_INPUTS:
            options = ParseOptions(
                dialect=NO_CR, schema=Schema.all_strings(3),
                column_count_policy=ColumnCountPolicy.REJECT)
            assert_equivalent(data, options)


class TestPropertyEquivalence:
    @given(st.text(alphabet=st.sampled_from(list('ab",\n')), max_size=150),
           st.integers(1, 40))
    @settings(max_examples=200, deadline=None)
    def test_random_csvish(self, text, chunk_size):
        assert_equivalent(text.encode(),
                          ParseOptions(dialect=NO_CR,
                                       chunk_size=chunk_size))

    @given(st.binary(max_size=120), st.integers(1, 17))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_bytes(self, data, chunk_size):
        # Even arbitrary binary garbage must parse identically (mostly
        # into rejected/invalid states, but identically).
        data = data.replace(b"\r", b"")  # quote-free CR semantics aside
        assert_equivalent(data, ParseOptions(dialect=NO_CR,
                                             chunk_size=chunk_size))

    @given(st.text(alphabet=st.sampled_from(list('ab",\n#')), max_size=150),
           st.integers(1, 23))
    @settings(max_examples=120, deadline=None)
    def test_comment_dialect(self, text, chunk_size):
        dialect = Dialect(comment=b"#", strip_carriage_return=False)
        assert_equivalent(text.encode(),
                          ParseOptions(dialect=dialect,
                                       chunk_size=chunk_size))

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_generated_corpora(self, seed):
        data = CsvGenerator(dialect=NO_CR, seed=seed,
                            quote_probability=0.4,
                            embedded_delim_probability=0.5,
                            empty_probability=0.2,
                            numeric_columns=(1, 2)).generate(25)
        schema = Schema([Field("a", DataType.STRING),
                         Field("b", DataType.FLOAT64),
                         Field("c", DataType.INT64),
                         Field("d", DataType.STRING)])
        assert_equivalent(data, ParseOptions(dialect=NO_CR, schema=schema))


class TestAgainstStdlibCsv:
    """Third-party oracle, on inputs where the semantics align
    (no blank lines — csv yields [] there — and NULL folded to '')."""

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_rows_match(self, seed):
        data = CsvGenerator(dialect=NO_CR, seed=seed,
                            quote_probability=0.5,
                            embedded_delim_probability=0.5,
                            empty_probability=0.0).generate(20)
        ours = ParPaRawParser(ParseOptions(dialect=NO_CR)).parse(data)
        ours_rows = [["" if v is None else v for v in row]
                     for row in ours.table.rows()]
        oracle = stdlib_csv_rows(data, NO_CR)
        assert ours_rows == oracle

    def test_paper_example(self, paper_example):
        ours = ParPaRawParser(ParseOptions(dialect=NO_CR)) \
            .parse(paper_example)
        rows = [list(r) for r in ours.table.rows()]
        assert rows == stdlib_csv_rows(paper_example, NO_CR)


class TestLogFormats:
    @pytest.mark.parametrize("chunk_size", [3, 31])
    def test_clf_parallel_equals_sequential(self, chunk_size):
        data = generate_clf(120)
        options = ParseOptions(dfa=common_log_format_dfa(),
                               chunk_size=chunk_size)
        assert_equivalent(data, options)

    @pytest.mark.parametrize("chunk_size", [3, 31])
    def test_elf_with_directives(self, chunk_size):
        data = generate_elf(150, directive_every=20)
        options = ParseOptions(dfa=extended_log_format_dfa(),
                               chunk_size=chunk_size)
        result = ParPaRawParser(options).parse(data)
        assert result.num_rows == 150  # directives excluded
        assert_equivalent(data, options)

    def test_clf_typed(self):
        data = generate_clf(50)
        schema = Schema([
            Field("host", DataType.STRING),
            Field("ident", DataType.STRING),
            Field("user", DataType.STRING),
            Field("time", DataType.STRING),
            Field("request", DataType.STRING),
            Field("status", DataType.INT16),
            Field("bytes", DataType.INT64),
        ])
        options = ParseOptions(dfa=common_log_format_dfa(), schema=schema)
        result = ParPaRawParser(options).parse(data)
        statuses = set(result.table.column("status").to_list())
        assert statuses <= {200, 301, 404, 500}
        assert result.total_rejected_fields == 0
