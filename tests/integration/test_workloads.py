"""Tests for the synthetic dataset generators' statistical fidelity."""

import pytest

from repro import ParPaRawParser, ParseOptions
from repro.baselines import SequentialParser
from repro.columnar.schema import DataType
from repro.workloads import (
    CsvGenerator,
    TAXI_SCHEMA,
    YELP_SCHEMA,
    generate_clf,
    generate_elf,
    generate_taxi_like,
    generate_yelp_like,
    skew_dataset,
)


class TestYelpLike:
    def test_statistics_match_paper(self):
        """~721 B/record, 9 columns, all fields quoted (§5)."""
        data = generate_yelp_like(300_000)
        result = ParPaRawParser(ParseOptions(schema=YELP_SCHEMA)).parse(data)
        bytes_per_record = len(data) / result.num_rows
        assert 550 < bytes_per_record < 900
        assert result.table.num_columns == 9
        assert result.total_rejected_fields == 0

    def test_embeds_delimiters_in_text(self):
        data = generate_yelp_like(100_000)
        result = ParPaRawParser(ParseOptions(schema=YELP_SCHEMA)).parse(data)
        texts = result.table.column("text").to_list()
        assert any("," in t for t in texts)
        assert any("\n" in t for t in texts)
        assert any('"' in t for t in texts)

    def test_deterministic(self):
        assert generate_yelp_like(10_000, seed=3) \
            == generate_yelp_like(10_000, seed=3)
        assert generate_yelp_like(10_000, seed=3) \
            != generate_yelp_like(10_000, seed=4)

    def test_stars_in_range(self):
        data = generate_yelp_like(50_000)
        result = ParPaRawParser(ParseOptions(schema=YELP_SCHEMA)).parse(data)
        stars = result.table.column("stars").to_list()
        assert set(stars) <= {1, 2, 3, 4, 5}


class TestTaxiLike:
    def test_statistics_match_paper(self):
        """~88 B/record, ~5.2 B/field, 17 columns (§5)."""
        data = generate_taxi_like(100_000)
        result = ParPaRawParser(ParseOptions(schema=TAXI_SCHEMA)).parse(data)
        bytes_per_record = len(data) / result.num_rows
        assert 70 < bytes_per_record < 115
        bytes_per_field = len(data) / (result.num_rows * 17)
        assert 4.0 < bytes_per_field < 7.0
        assert result.total_rejected_fields == 0

    def test_every_newline_is_a_record_delimiter(self):
        """The property that makes taxi trivially splittable (§5.2)."""
        data = generate_taxi_like(20_000)
        assert data.count(b"\n") == data.count(b"\n")  # no quoting at all
        assert b'"' not in data

    def test_types_convert_cleanly(self):
        data = generate_taxi_like(30_000)
        result = ParPaRawParser(ParseOptions(schema=TAXI_SCHEMA)).parse(data)
        fares = result.table.column("fare_amount").to_list()
        assert all(f is not None and f > 0 for f in fares)
        pickups = result.table.column("pickup_datetime").to_list()
        assert all(p is not None for p in pickups)


class TestSkew:
    def test_giant_record_prepended(self):
        base = generate_taxi_like(5_000)
        skewed = skew_dataset(base, giant_record_bytes=20_000)
        assert len(skewed) > len(base) + 15_000
        result = ParPaRawParser(ParseOptions()).parse(skewed)
        baseline = ParPaRawParser(ParseOptions()).parse(base)
        assert result.num_rows == baseline.num_rows + 1

    def test_giant_record_parses_equal_to_sequential(self):
        base = b"a,b,c\n" * 20
        skewed = skew_dataset(base, giant_record_bytes=5_000, column=1)
        options = ParseOptions(block_threshold=64, device_threshold=1024)
        parallel = ParPaRawParser(options).parse(skewed)
        sequential = SequentialParser(options).parse(skewed)
        assert parallel.table.to_pylist() == sequential.to_pylist()
        assert parallel.collaboration.device_fields >= 1

    def test_unquoted_variant(self):
        base = b"1,2\n"
        skewed = skew_dataset(base, 1000, quoted=False)
        assert b'"' not in skewed.split(b"\n", 1)[0]

    def test_column_out_of_range(self):
        with pytest.raises(ValueError):
            skew_dataset(b"a,b\n", 100, column=5)


class TestLogWorkloads:
    def test_clf_line_count(self):
        data = generate_clf(100)
        assert data.count(b"\n") == 100

    def test_elf_has_directives_with_quotes(self):
        data = generate_elf(100, directive_every=10)
        directive_lines = [line for line in data.split(b"\n")
                           if line.startswith(b"#")]
        assert len(directive_lines) > 2
        assert any(b'"' in line for line in directive_lines)


class TestCsvGenerator:
    def test_deterministic(self):
        gen = CsvGenerator(seed=9)
        assert gen.generate(10) == CsvGenerator(seed=9).generate(10)

    def test_trailing_newline_control(self):
        gen = CsvGenerator(seed=1)
        assert gen.generate(3, trailing_newline=True).endswith(b"\n")
        assert not gen.generate(3, trailing_newline=False).endswith(b"\n")

    def test_numeric_columns_parse(self):
        gen = CsvGenerator(seed=2, numeric_columns=(0,),
                           empty_probability=0.0)
        data = gen.generate(50)
        from repro.columnar.schema import Field, Schema
        schema = Schema([Field("n", DataType.FLOAT64)]
                        + [Field(f"s{i}", DataType.STRING)
                           for i in range(3)])
        result = ParPaRawParser(ParseOptions(schema=schema)).parse(data)
        assert result.table.column("n").rejects == 0

    def test_comment_lines_emitted(self):
        from repro.dfa.dialects import Dialect
        gen = CsvGenerator(seed=3, comment_probability=0.5,
                           dialect=Dialect.csv_with_comments())
        data = gen.generate(40)
        assert any(line.startswith(b"#") for line in data.split(b"\n"))
