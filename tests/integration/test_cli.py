"""Tests for the ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.__main__ import main
from repro.columnar.serialize import deserialize_table


@pytest.fixture()
def csv_file(tmp_path: pathlib.Path) -> str:
    path = tmp_path / "data.csv"
    path.write_bytes(b'1,2.5,"a,b"\n2,3.25,"c\nd"\n3,4.0,e\n')
    return str(path)


class TestParseCommand:
    def test_prints_rows(self, csv_file, capsys):
        assert main(["parse", csv_file]) == 0
        out = capsys.readouterr().out
        assert "col0\tcol1\tcol2" in out
        assert "1\t2.5\ta,b" in out

    def test_limit(self, csv_file, capsys):
        main(["parse", csv_file, "--limit", "1"])
        out = capsys.readouterr().out
        assert "more rows" in out

    def test_summary(self, csv_file, capsys):
        main(["parse", csv_file, "--summary"])
        out = capsys.readouterr().out
        assert "records:  3" in out
        assert "end state: EOR (ok)" in out
        assert "partition" in out

    def test_custom_dialect(self, tmp_path, capsys):
        path = tmp_path / "semi.csv"
        path.write_bytes(b"# header\nx;1\n")
        main(["parse", str(path), "--delimiter", ";", "--comment", "#"])
        out = capsys.readouterr().out
        assert "x\t1" in out

    def test_serialised_output(self, csv_file, tmp_path, capsys):
        out_path = tmp_path / "out.rprw"
        main(["parse", csv_file, "--output", str(out_path)])
        table = deserialize_table(out_path.read_bytes())
        assert table.num_rows == 3
        assert table.row(1) == ("2", "3.25", "c\nd")

    def test_null_rendering(self, tmp_path, capsys):
        path = tmp_path / "nulls.csv"
        path.write_bytes(b"a,,c\n")
        main(["parse", str(path)])
        assert "a\tNULL\tc" in capsys.readouterr().out

    def test_timings_flag(self, csv_file, capsys):
        assert main(["parse", csv_file, "--timings", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "step timings:" in out
        for step in ("parse", "scan", "tag", "partition", "convert",
                     "total"):
            assert step in out

    def test_workers_flag_same_rows(self, csv_file, capsys):
        assert main(["parse", csv_file]) == 0
        serial_out = capsys.readouterr().out
        assert main(["parse", csv_file, "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_workers_with_summary(self, csv_file, capsys):
        main(["parse", csv_file, "--workers", "3", "--summary"])
        out = capsys.readouterr().out
        assert "records:  3" in out
        assert "end state: EOR (ok)" in out


class TestInferCommand:
    def test_inferred_types(self, tmp_path, capsys):
        path = tmp_path / "typed.csv"
        path.write_bytes(b"1,2.5,2020-01-01,x\n2,3.5,2021-02-02,y\n")
        assert main(["infer", str(path)]) == 0
        out = capsys.readouterr().out
        assert "int8" in out and "float64" in out
        assert "date" in out and "string" in out


class TestSimulateCommand:
    def test_step_breakdown(self, capsys):
        assert main(["simulate", "--dataset", "yelp",
                     "--size-mb", "64"]) == 0
        out = capsys.readouterr().out
        assert "parse" in out and "convert" in out
        assert "GB/s" in out
        assert "streamed end-to-end" in out

    def test_taxi_slower_than_yelp(self, capsys):
        main(["simulate", "--dataset", "yelp", "--size-mb", "512"])
        yelp_out = capsys.readouterr().out
        main(["simulate", "--dataset", "taxi", "--size-mb", "512"])
        taxi_out = capsys.readouterr().out

        def total_ms(out: str) -> float:
            for line in out.splitlines():
                if line.strip().startswith("total"):
                    return float(line.split()[1])
            raise AssertionError("no total line")

        assert total_ms(taxi_out) > total_ms(yelp_out)


class TestObservabilityFlags:
    def test_parse_trace_writes_valid_chrome_trace(self, csv_file,
                                                   tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        assert main(["parse", csv_file, "--summary",
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "trace spans" in out
        doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert "parse" in names
        assert any(n.startswith("stage:") for n in names)
        assert doc["metrics"]["counters"]["records"] == 3

    def test_parse_trace_with_workers_has_worker_spans(self, tmp_path,
                                                       capsys):
        import json

        path = tmp_path / "wide.csv"
        path.write_bytes(b"a,b,c\n1,2,3\n" * 200)
        trace_path = tmp_path / "trace.json"
        assert main(["parse", str(path), "--summary", "--workers", "4",
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert {"sharded:contexts", "sharded:tags"} <= names

    def test_parse_metrics_report(self, csv_file, capsys):
        assert main(["parse", csv_file, "--summary", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "records" in out
        assert "bytes.in" in out

    def test_simulate_trace_and_metrics(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "sim.json"
        assert main(["simulate", "--size-mb", "64", "--partition-mb",
                     "16", "--trace", str(trace_path),
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck resource:" in out
        assert "sim.overlap_efficiency" in out
        doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(doc) == []
        labels = {e["args"]["name"] for e in doc["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        assert labels == {"HtD", "GPU", "DtH"}
