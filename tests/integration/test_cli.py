"""Tests for the ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.__main__ import main
from repro.columnar.serialize import deserialize_table


@pytest.fixture()
def csv_file(tmp_path: pathlib.Path) -> str:
    path = tmp_path / "data.csv"
    path.write_bytes(b'1,2.5,"a,b"\n2,3.25,"c\nd"\n3,4.0,e\n')
    return str(path)


class TestParseCommand:
    def test_prints_rows(self, csv_file, capsys):
        assert main(["parse", csv_file]) == 0
        out = capsys.readouterr().out
        assert "col0\tcol1\tcol2" in out
        assert "1\t2.5\ta,b" in out

    def test_limit(self, csv_file, capsys):
        main(["parse", csv_file, "--limit", "1"])
        out = capsys.readouterr().out
        assert "more rows" in out

    def test_summary(self, csv_file, capsys):
        main(["parse", csv_file, "--summary"])
        out = capsys.readouterr().out
        assert "records:  3" in out
        assert "end state: EOR (ok)" in out
        assert "partition" in out

    def test_custom_dialect(self, tmp_path, capsys):
        path = tmp_path / "semi.csv"
        path.write_bytes(b"# header\nx;1\n")
        main(["parse", str(path), "--delimiter", ";", "--comment", "#"])
        out = capsys.readouterr().out
        assert "x\t1" in out

    def test_serialised_output(self, csv_file, tmp_path, capsys):
        out_path = tmp_path / "out.rprw"
        main(["parse", csv_file, "--output", str(out_path)])
        table = deserialize_table(out_path.read_bytes())
        assert table.num_rows == 3
        assert table.row(1) == ("2", "3.25", "c\nd")

    def test_null_rendering(self, tmp_path, capsys):
        path = tmp_path / "nulls.csv"
        path.write_bytes(b"a,,c\n")
        main(["parse", str(path)])
        assert "a\tNULL\tc" in capsys.readouterr().out

    def test_timings_flag(self, csv_file, capsys):
        assert main(["parse", csv_file, "--timings", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "step timings:" in out
        for step in ("parse", "scan", "tag", "partition", "convert",
                     "total"):
            assert step in out

    def test_workers_flag_same_rows(self, csv_file, capsys):
        assert main(["parse", csv_file]) == 0
        serial_out = capsys.readouterr().out
        assert main(["parse", csv_file, "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_workers_with_summary(self, csv_file, capsys):
        main(["parse", csv_file, "--workers", "3", "--summary"])
        out = capsys.readouterr().out
        assert "records:  3" in out
        assert "end state: EOR (ok)" in out


class TestInferCommand:
    def test_inferred_types(self, tmp_path, capsys):
        path = tmp_path / "typed.csv"
        path.write_bytes(b"1,2.5,2020-01-01,x\n2,3.5,2021-02-02,y\n")
        assert main(["infer", str(path)]) == 0
        out = capsys.readouterr().out
        assert "int8" in out and "float64" in out
        assert "date" in out and "string" in out


class TestSimulateCommand:
    def test_step_breakdown(self, capsys):
        assert main(["simulate", "--dataset", "yelp",
                     "--size-mb", "64"]) == 0
        out = capsys.readouterr().out
        assert "parse" in out and "convert" in out
        assert "GB/s" in out
        assert "streamed end-to-end" in out

    def test_taxi_slower_than_yelp(self, capsys):
        main(["simulate", "--dataset", "yelp", "--size-mb", "512"])
        yelp_out = capsys.readouterr().out
        main(["simulate", "--dataset", "taxi", "--size-mb", "512"])
        taxi_out = capsys.readouterr().out

        def total_ms(out: str) -> float:
            for line in out.splitlines():
                if line.strip().startswith("total"):
                    return float(line.split()[1])
            raise AssertionError("no total line")

        assert total_ms(taxi_out) > total_ms(yelp_out)
