"""Tests for the adoption-facing conveniences: Table.filter, file
streaming, and the chunk-size optimiser."""

import numpy as np
import pytest

from repro import (
    DataType,
    Field,
    ParPaRawParser,
    ParseOptions,
    Schema,
    StreamingParser,
    parse_bytes,
)
from repro.errors import SchemaError, StreamingError
from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats
from repro.workloads import TAXI_SCHEMA, generate_taxi_like

MB = 1024 ** 2


class TestTableFilter:
    def test_filters_rows(self):
        table = parse_bytes(b"a,1\nbb,2\nccc,3\n").table
        filtered = table.filter([True, False, True])
        assert filtered.to_pylist() == [
            {"col0": "a", "col1": "1"}, {"col0": "ccc", "col1": "3"}]

    def test_filter_typed_columns(self):
        schema = Schema([Field("n", DataType.INT64),
                         Field("s", DataType.STRING)])
        table = parse_bytes(b"1,x\n2,y\n3,z\n", schema=schema).table
        values = np.array(table.column("n").to_list())
        filtered = table.filter(values > 1)
        assert filtered.column("s").to_list() == ["y", "z"]

    def test_filter_preserves_nulls(self):
        table = parse_bytes(b"a,\nb,x\n").table
        filtered = table.filter([True, True])
        assert filtered.to_pylist() == table.to_pylist()

    def test_filter_nothing(self):
        table = parse_bytes(b"a\nb\n").table
        assert table.filter([False, False]).num_rows == 0

    def test_mask_length_checked(self):
        table = parse_bytes(b"a\n").table
        with pytest.raises(SchemaError):
            table.filter([True, False])


class TestParseFile:
    def test_matches_batch(self, tmp_path):
        data = generate_taxi_like(60_000, seed=11)
        path = tmp_path / "trips.csv"
        path.write_bytes(data)
        options = ParseOptions(schema=TAXI_SCHEMA)
        table = StreamingParser.parse_file(path, options,
                                           partition_bytes=7_000)
        batch = ParPaRawParser(options).parse(data).table
        assert table.to_pylist() == batch.to_pylist()

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_bytes(b"")
        options = ParseOptions(schema=Schema.all_strings(2))
        table = StreamingParser.parse_file(path, options)
        assert table.num_rows == 0

    def test_rejects_bad_partition(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_bytes(b"a\n")
        with pytest.raises(StreamingError):
            StreamingParser.parse_file(
                path, ParseOptions(schema=Schema.all_strings(1)),
                partition_bytes=0)


class TestSuggestChunkSize:
    def test_lands_near_paper_default(self):
        model = PipelineCostModel()
        best = model.suggest_chunk_size(WorkloadStats.yelp_like, 512 * MB)
        # §5.1: best performance at 31 bytes; the model must pick an odd
        # (conflict-free) size in that neighbourhood.
        assert best % 4 != 0
        assert 23 <= best <= 63

    def test_avoids_conflict_strides(self):
        model = PipelineCostModel()
        best = model.suggest_chunk_size(WorkloadStats.taxi_like, 512 * MB,
                                        candidates=range(28, 41))
        assert best not in (28, 32, 36, 40)

    def test_empty_candidates(self):
        from repro.errors import SimulationError
        model = PipelineCostModel()
        with pytest.raises(SimulationError):
            model.suggest_chunk_size(WorkloadStats.yelp_like, MB,
                                     candidates=range(0))
