"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dfa import Dialect, dialect_dfa, rfc4180_dfa


@pytest.fixture(scope="session")
def csv_dfa():
    """The paper's six-state RFC 4180 automaton."""
    return rfc4180_dfa()


@pytest.fixture(scope="session")
def comment_dfa():
    """CSV automaton extended with '#' line comments."""
    return dialect_dfa(Dialect.csv_with_comments())


@pytest.fixture(scope="session")
def paper_example() -> bytes:
    """The worked example of Figures 3-5."""
    return b'1941,199.99,"Bookcase"\n1938,19.99,"Frame\n""Ribba"", black"\n'


#: A corpus of small adversarial inputs used by several equivalence tests.
TRICKY_INPUTS = [
    b"",
    b"\n",
    b"\n\n",
    b"a",
    b"a\n",
    b"a,b\n",
    b"a,b",
    b",\n",
    b",,\n",
    b"a,\n,b\n",
    b'""\n',
    b'"",""\n',
    b'"a"\n',
    b'"a,b"\n',
    b'"a\nb"\n',
    b'"a""b"\n',
    b'""""\n',
    b'"",\n',
    b',""\n',
    b"x,y,z\n1,2,3\n",
    b'a,"b\nc",d\ne,f,g\n',
    b'"start\n"mid",end\n',   # quote after closing quote -> invalid tail
    b"trailing,record",
    b'"unclosed\neverything,is,data',
    b"1,2\n3,4,5\n6\n",       # varying column counts
    b"long" * 100 + b",x\n",
    b'"' + b"huge " * 200 + b'",tail\n',
]


@pytest.fixture(params=TRICKY_INPUTS,
                ids=[f"tricky{i}" for i in range(len(TRICKY_INPUTS))])
def tricky_input(request) -> bytes:
    return request.param


def as_uint8(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8)
