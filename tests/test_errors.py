"""Tests for the exception hierarchy and error metadata."""

import pytest

from repro.errors import (
    CapacityError,
    ConversionError,
    DfaError,
    DialectError,
    ParseError,
    ReproError,
    SchemaError,
    SimulationError,
    StreamingError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        DialectError, DfaError, ParseError, ConversionError, SchemaError,
        CapacityError, SimulationError, StreamingError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise ParseError("boom")


class TestMetadata:
    def test_parse_error_location(self):
        error = ParseError("bad", byte_offset=42, record=3)
        assert error.byte_offset == 42
        assert error.record == 3
        assert "bad" in str(error)

    def test_parse_error_defaults(self):
        error = ParseError("bad")
        assert error.byte_offset is None
        assert error.record is None

    def test_conversion_error_context(self):
        error = ConversionError("nope", column=2, record=7, text="xyz")
        assert (error.column, error.record, error.text) == (2, 7, "xyz")


class TestErrorsSurfaceInApi:
    def test_strict_parse_error_carries_offset(self):
        from repro import parse_bytes
        with pytest.raises(ParseError) as info:
            parse_bytes(b'ok\nbad"x\n', strict=True)
        assert info.value.byte_offset is not None
        # The offending quote is at offset 6; the automaton sits in INV
        # from the following byte.
        assert 6 <= info.value.byte_offset <= 8

    def test_strict_conversion_error_carries_text(self):
        from repro import DataType, Field, Schema, parse_bytes
        from repro.errors import ConversionError
        schema = Schema([Field("n", DataType.INT64)])
        with pytest.raises(ConversionError) as info:
            parse_bytes(b"1\nnope\n", schema=schema, strict=True)
        assert info.value.text == "nope"
