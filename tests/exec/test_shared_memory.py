"""Shared-memory input shipping in the sharded executor.

On a real process pool the raw input travels to workers once, through a
POSIX shared-memory block, instead of being pickled shard by shard for
each of the two worker phases.  These tests prove the fast path and the
fallback produce identical results, and that the bytes-shipped metrics
make the difference observable.
"""

import numpy as np
import pytest

from repro import Dialect, ParPaRawParser, ParseOptions
from repro.exec import SerialExecutor, ShardedExecutor
from repro.obs import MetricsRegistry

DATA = b"".join(b"%d,%d.25,item-%d\n" % (i, i, i) for i in range(600))
OPTIONS = ParseOptions(dialect=Dialect(strip_carriage_return=False))


def parse_with(executor, metrics=None):
    parser = ParPaRawParser(OPTIONS, executor=executor,
                            metrics=metrics or MetricsRegistry())
    return parser.parse(DATA)


@pytest.fixture(scope="module")
def serial_result():
    return ParPaRawParser(OPTIONS, executor=SerialExecutor()).parse(DATA)


@pytest.mark.parametrize("shared_input", [True, False])
def test_pool_results_identical_either_path(shared_input, serial_result):
    executor = ShardedExecutor(workers=2, shard_bytes=len(DATA) // 3,
                               use_processes=True,
                               shared_input=shared_input)
    result = parse_with(executor)
    assert result.table.to_pylist() == serial_result.table.to_pylist()
    assert result.num_records == serial_result.num_records
    np.testing.assert_array_equal(result.validation.field_counts,
                                  serial_result.validation.field_counts)


def test_shared_memory_ships_no_input_bytes():
    metrics = MetricsRegistry()
    executor = ShardedExecutor(workers=2, shard_bytes=len(DATA) // 3,
                               use_processes=True, shared_input=True)
    parse_with(executor, metrics)
    assert metrics.gauges["sharded.input.shared_memory"] == 1.0
    assert metrics.counters["sharded.input.bytes.shipped"] == 0


def test_fallback_ships_every_shard_twice():
    metrics = MetricsRegistry()
    executor = ShardedExecutor(workers=2, shard_bytes=len(DATA) // 3,
                               use_processes=True, shared_input=False)
    parse_with(executor, metrics)
    assert metrics.gauges["sharded.input.shared_memory"] == 0.0
    # Both worker phases (contexts + tags) pickle the full input.
    assert metrics.counters["sharded.input.bytes.shipped"] == 2 * len(DATA)


def test_inline_mode_never_uses_shared_memory():
    metrics = MetricsRegistry()
    executor = ShardedExecutor(workers=2, shard_bytes=len(DATA) // 3,
                               use_processes=False, shared_input=True)
    parse_with(executor, metrics)
    # Inline shards are plain array views; nothing crosses a process
    # boundary, and nothing is counted as shipped either way.
    assert metrics.gauges["sharded.input.shared_memory"] == 0.0
