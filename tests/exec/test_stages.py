"""The stage pipeline: structure, contracts, and timing behaviour."""

import numpy as np
import pytest

from repro import ParPaRawParser, ParseOptions
from repro.core.stages import (
    ChunkedInput,
    ConvertedOutput,
    PipelineContext,
    RawInput,
    StagePipeline,
    TaggedInput,
    default_pipeline,
)
from repro.core.tagging import tag_global
from repro.exec import SerialExecutor, ShardedExecutor
from repro.utils.timing import StepTimer

DATA = b'a,b\n"x,y",2\n1,2\n'


def make_ctx(options: ParseOptions | None = None) -> PipelineContext:
    options = options or ParseOptions()
    return PipelineContext(options=options, dfa=options.resolved_dfa(),
                           timer=StepTimer())


def raw_payload(data: bytes) -> RawInput:
    raw = np.frombuffer(data, dtype=np.uint8)
    return RawInput(raw=raw, input_bytes=raw.size)


class TestPipelineStructure:
    def test_stage_names_in_paper_order(self):
        assert default_pipeline().stage_names == (
            "prune", "chunk", "stv", "scan", "tag", "validate",
            "partition", "convert")

    def test_timer_steps_are_the_paper_vocabulary(self):
        steps = {stage.name: stage.timer_step
                 for stage in default_pipeline().stages}
        assert steps == {
            "prune": "prune",
            "chunk": None,
            "stv": "parse",
            "scan": "scan",
            "tag": "tag",
            "validate": None,
            "partition": "partition",
            "convert": "convert",
        }

    def test_declared_payload_types_chain(self):
        stages = default_pipeline().stages
        for producer, consumer in zip(stages, stages[1:]):
            assert issubclass(producer.output_type, consumer.input_type), \
                (producer.name, consumer.name)

    def test_unknown_stage_name_raises(self):
        with pytest.raises(KeyError):
            default_pipeline().stage("fuse")

    def test_until_before_start_raises(self):
        with pytest.raises(ValueError):
            default_pipeline().run(make_ctx(), raw_payload(DATA),
                                   start="tag", until="chunk")

    def test_duplicate_stage_names_rejected(self):
        stage = default_pipeline().stage("chunk")
        with pytest.raises(ValueError):
            StagePipeline([stage, stage])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            StagePipeline([])


class TestPartialExecution:
    def test_until_chunk_yields_grid(self):
        ctx = make_ctx()
        payload = default_pipeline().run(ctx, raw_payload(DATA),
                                         until="chunk")
        assert isinstance(payload, ChunkedInput)
        assert payload.groups.shape[1] == ctx.options.chunk_size

    def test_until_tag_matches_direct_tagging(self):
        ctx = make_ctx(ParseOptions(chunk_size=5))
        payload = default_pipeline().run(ctx, raw_payload(DATA),
                                         until="tag")
        assert isinstance(payload, TaggedInput)
        # Independent oracle: global tagging over the serial emissions.
        full = default_pipeline().run(make_ctx(ParseOptions(chunk_size=5)),
                                      raw_payload(DATA), until="tag")
        oracle = tag_global(full.tags.emissions, full.tags.final_state)
        np.testing.assert_array_equal(payload.tags.record_ids,
                                      oracle.record_ids)
        np.testing.assert_array_equal(payload.tags.column_ids,
                                      oracle.column_ids)

    def test_resume_from_validate(self):
        ctx = make_ctx()
        tagged = default_pipeline().run(ctx, raw_payload(DATA), until="tag")
        out = default_pipeline().run(ctx, tagged, start="validate")
        assert isinstance(out, ConvertedOutput)
        assert out.num_rows == 3

    def test_executor_until_tag(self):
        for executor in (SerialExecutor(),
                         ShardedExecutor(workers=2, shard_bytes=4,
                                         use_processes=False)):
            tagged = executor.execute(make_ctx(), raw_payload(DATA),
                                      until="tag")
            assert isinstance(tagged, TaggedInput)
            assert tagged.tags.num_records == 3


class TestTimingBehaviour:
    def test_step_names_unchanged_from_monolith(self):
        result = ParPaRawParser().parse(DATA)
        assert sorted(result.step_seconds()) == [
            "convert", "parse", "partition", "scan", "tag"]

    def test_prune_timed_only_when_active(self):
        without = ParPaRawParser().parse(DATA)
        assert "prune" not in without.step_seconds()
        with_prune = ParPaRawParser(
            ParseOptions(skip_rows=frozenset({0}))).parse(DATA)
        assert "prune" in with_prune.step_seconds()

    def test_each_timed_stage_recorded_once(self):
        result = ParPaRawParser().parse(DATA)
        assert all(count == 1
                   for count in result.timer.counts().values())

    def test_sharded_reports_same_step_names(self):
        executor = ShardedExecutor(workers=3, shard_bytes=4,
                                   use_processes=False)
        result = ParPaRawParser(executor=executor).parse(DATA)
        assert sorted(result.step_seconds()) == [
            "convert", "parse", "partition", "scan", "tag"]


class TestExecutorDefaults:
    def test_serial_is_the_default(self):
        assert isinstance(ParPaRawParser().executor, SerialExecutor)

    def test_context_manager_closes_pool(self):
        with ShardedExecutor(workers=2, shard_bytes=4) as executor:
            ParPaRawParser(executor=executor).parse(DATA)
            assert executor._pool is not None
        assert executor._pool is None

    def test_invalid_configuration_rejected(self):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            ShardedExecutor(workers=0)
        with pytest.raises(ParseError):
            ShardedExecutor(shard_bytes=0)
