"""Executor equivalence: the sharded backend must be invisible.

For any input, any shard size (including shards smaller than a chunk),
any worker count — :class:`ShardedExecutor` must produce results
bit-identical to :class:`SerialExecutor`, which in turn is cross-checked
against the stdlib ``csv`` oracle on inputs where the semantics are
comparable.  Shard boundaries are arbitrary byte positions: the
composition scan resolves a shard entering mid-record, mid-quote or
mid-field exactly like it resolves a chunk doing the same.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ColumnCountPolicy,
    Dialect,
    ParPaRawParser,
    ParseOptions,
    Schema,
    StreamingParser,
    TaggingImpl,
    TaggingMode,
)
from repro.baselines import stdlib_csv_rows
from repro.dfa.logformats import common_log_format_dfa, \
    extended_log_format_dfa
from repro.exec import SerialExecutor, ShardedExecutor
from repro.workloads import (
    CsvGenerator,
    TAXI_SCHEMA,
    YELP_SCHEMA,
    generate_clf,
    generate_elf,
    generate_taxi_like,
    generate_yelp_like,
    skew_dataset,
)
from tests.conftest import TRICKY_INPUTS

NO_CR = Dialect(strip_carriage_return=False)

#: (workers, shard_bytes) shapes: shard smaller than the chunk size,
#: equal to it, larger but misaligned, and the even worker split.
SHARD_SHAPES = [
    (1, None),
    (2, None),
    (4, None),
    (2, 3),       # far smaller than any chunk
    (3, 5),
    (2, 8),       # == chunk_size used by the matrix tests
    (4, 21),      # larger than a chunk, not a multiple of it
    (2, 1 << 14),  # one shard swallows everything
]


def sharded(workers: int, shard_bytes: int | None) -> ShardedExecutor:
    """Inline-mode sharded executor: full shard data path, no pool."""
    return ShardedExecutor(workers=workers, shard_bytes=shard_bytes,
                           use_processes=False)


def assert_results_match(data: bytes, options: ParseOptions,
                         executor: ShardedExecutor):
    serial = ParPaRawParser(options).parse(data)
    parallel = ParPaRawParser(options, executor=executor).parse(data)
    assert parallel.table.to_pylist() == serial.table.to_pylist()
    assert parallel.num_records == serial.num_records
    assert parallel.num_rows == serial.num_rows
    assert parallel.rejected_records == serial.rejected_records
    assert parallel.validation.final_state == serial.validation.final_state
    assert parallel.validation.invalid_position \
        == serial.validation.invalid_position
    assert parallel.validation.end_accepted == serial.validation.end_accepted
    np.testing.assert_array_equal(parallel.validation.field_counts,
                                  serial.validation.field_counts)
    return parallel


class TestTrickyCorpus:
    @pytest.mark.parametrize("workers,shard_bytes", SHARD_SHAPES)
    def test_all_tricky_inputs(self, workers, shard_bytes):
        executor = sharded(workers, shard_bytes)
        for data in TRICKY_INPUTS:
            assert_results_match(data, ParseOptions(dialect=NO_CR,
                                                    chunk_size=8),
                                 executor)

    def test_empty_input(self):
        for workers, shard_bytes in SHARD_SHAPES:
            result = assert_results_match(
                b"", ParseOptions(dialect=NO_CR, chunk_size=8),
                sharded(workers, shard_bytes))
            assert result.num_records == 0

    def test_unterminated_trailing_record(self):
        data = b'head,er\n1,"two\nlines"\ntail,"unclosed quote'
        for workers, shard_bytes in SHARD_SHAPES:
            result = assert_results_match(
                data, ParseOptions(dialect=NO_CR, chunk_size=8),
                sharded(workers, shard_bytes))
            assert result.num_records == 3
            assert not result.validation.end_accepted

    @pytest.mark.parametrize("impl", list(TaggingImpl))
    def test_both_tagging_impls(self, impl):
        executor = sharded(3, 5)
        for data in TRICKY_INPUTS:
            assert_results_match(
                data, ParseOptions(dialect=NO_CR, chunk_size=4,
                                   tagging_impl=impl), executor)


class TestOptionsZoo:
    """Sharding composes with every §4 capability switch."""

    UNIFORM = b"10,alpha,1.5\n20,beta,2.5\n30,gamma,3.5\n40,delta,4.5\n"

    @pytest.mark.parametrize("options", [
        ParseOptions(dialect=NO_CR, chunk_size=8,
                     tagging_mode=TaggingMode.INLINE),
        ParseOptions(dialect=NO_CR, chunk_size=8,
                     tagging_mode=TaggingMode.DELIMITED),
        ParseOptions(dialect=NO_CR, chunk_size=8, infer_types=True),
        ParseOptions(dialect=NO_CR, chunk_size=8,
                     select_columns=(0, 2)),
        ParseOptions(dialect=NO_CR, chunk_size=8,
                     skip_rows=frozenset({1})),
        ParseOptions(dialect=NO_CR, chunk_size=8,
                     skip_records=frozenset({0, 2})),
        ParseOptions(dialect=NO_CR, chunk_size=8,
                     null_literals=("beta",)),
        ParseOptions(dialect=NO_CR, chunk_size=8,
                     schema=Schema.all_strings(3),
                     column_count_policy=ColumnCountPolicy.REJECT),
        ParseOptions(dialect=NO_CR, chunk_size=8,
                     vectorized_conversion=False, infer_types=True),
    ], ids=["inline", "delimited", "infer", "select", "skip-rows",
            "skip-records", "nulls", "reject", "scalar-convert"])
    def test_option_equivalence(self, options):
        for workers, shard_bytes in ((2, 5), (3, 17), (4, None)):
            assert_results_match(self.UNIFORM, options,
                                 sharded(workers, shard_bytes))

    def test_comment_dialect(self):
        data = b"# leading comment\na,b\n# interlude\nc,d\n"
        options = ParseOptions(dialect=Dialect.csv_with_comments(),
                               chunk_size=8)
        for workers, shard_bytes in ((2, 3), (3, 7)):
            assert_results_match(data, options, sharded(workers,
                                                        shard_bytes))


class TestWorkloadGenerators:
    """Acceptance bar: identical results on every generator in
    :mod:`repro.workloads`."""

    def test_yelp_like(self):
        data = generate_yelp_like(96_000)
        options = ParseOptions(schema=YELP_SCHEMA)
        assert_results_match(data, options, sharded(4, None))
        assert_results_match(data, options, sharded(2, 10_001))

    def test_taxi_like(self):
        data = generate_taxi_like(64_000)
        options = ParseOptions(schema=TAXI_SCHEMA)
        assert_results_match(data, options, sharded(4, None))

    def test_skew(self):
        data = skew_dataset(b"1,short\n2,rows\n", 5_000)
        assert_results_match(data, ParseOptions(), sharded(3, 999))

    def test_clf(self):
        data = generate_clf(200)
        options = ParseOptions(dfa=common_log_format_dfa())
        assert_results_match(data, options, sharded(4, 1_000))

    def test_elf(self):
        data = generate_elf(200, directive_every=10)
        options = ParseOptions(dfa=extended_log_format_dfa())
        assert_results_match(data, options, sharded(4, 1_000))

    def test_csv_generator(self):
        gen = CsvGenerator(seed=13, num_columns=5, numeric_columns=(0, 3),
                           embedded_delim_probability=0.5)
        data = gen.generate(300)
        assert_results_match(data, ParseOptions(infer_types=True),
                             sharded(4, 777))

    def test_stdlib_csv_oracle(self):
        """Serial, sharded and the third-party oracle all agree."""
        gen = CsvGenerator(seed=21, num_columns=4, empty_probability=0.0)
        data = gen.generate(250)
        expected = stdlib_csv_rows(data)
        for executor in (SerialExecutor(), sharded(3, 512)):
            result = ParPaRawParser(ParseOptions(),
                                    executor=executor).parse(data)
            rows = [["" if value is None else value
                     for value in row.values()]
                    for row in result.table.to_pylist()]
            assert rows == expected


class TestPropertyEquivalence:
    @given(st.text(alphabet=st.sampled_from(list('ab",\n')), max_size=150),
           st.integers(1, 40), st.integers(1, 4))
    @settings(max_examples=150, deadline=None)
    def test_random_csvish(self, text, shard_bytes, workers):
        data = text.encode()
        assert_results_match(data,
                             ParseOptions(dialect=NO_CR, chunk_size=7),
                             sharded(workers, shard_bytes))

    @given(st.binary(max_size=120), st.integers(1, 23))
    @settings(max_examples=75, deadline=None)
    def test_arbitrary_bytes(self, data, shard_bytes):
        data = data.replace(b"\r", b"")  # quote-free CR semantics aside
        assert_results_match(data,
                             ParseOptions(dialect=NO_CR, chunk_size=5),
                             sharded(3, shard_bytes))


class TestProcessPool:
    """The real multiprocess path (the inline tests cover the math)."""

    def test_tricky_corpus_with_processes(self):
        with ShardedExecutor(workers=2, shard_bytes=6) as executor:
            for data in TRICKY_INPUTS:
                assert_results_match(
                    data, ParseOptions(dialect=NO_CR, chunk_size=8),
                    executor)

    def test_yelp_with_processes(self):
        data = generate_yelp_like(64_000)
        with ShardedExecutor(workers=2) as executor:
            assert_results_match(data, ParseOptions(schema=YELP_SCHEMA),
                                 executor)

    def test_pool_reuse_across_parses(self):
        with ShardedExecutor(workers=2, shard_bytes=16) as executor:
            parser = ParPaRawParser(executor=executor)
            first = parser.parse(b"a,b\nc,d\n" * 20)
            pool = executor._pool
            second = parser.parse(b"e,f\ng,h\n" * 20)
            assert executor._pool is pool
            assert first.num_rows == second.num_rows == 40


class TestStreamingWithExecutors:
    def test_streamed_sharded_equals_whole_serial(self):
        gen = CsvGenerator(seed=5, num_columns=3,
                           embedded_delim_probability=0.6)
        data = gen.generate(200)
        options = ParseOptions(schema=Schema.all_strings(3))
        whole = ParPaRawParser(options).parse(data).table.to_pylist()

        stream = StreamingParser(options, executor=sharded(3, 257))
        for start in range(0, len(data), 997):
            stream.feed(data[start:start + 997])
        assert stream.finish().to_pylist() == whole
