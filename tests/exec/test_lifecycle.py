"""Executor lifecycle: close is idempotent, closed executors refuse work."""

import pytest

from repro.core.parser import ParPaRawParser
from repro.errors import ExecutorError
from repro.exec import SerialExecutor, ShardedExecutor

DATA = b"a,b\n1,2\n3,4\n"


@pytest.fixture(params=["serial", "sharded"])
def executor(request):
    if request.param == "serial":
        ex = SerialExecutor()
    else:
        ex = ShardedExecutor(workers=2, shard_bytes=5, use_processes=False)
    yield ex
    ex.close()


class TestClose:
    def test_close_is_idempotent(self, executor):
        executor.close()
        executor.close()
        executor.close()
        assert executor.closed

    def test_fresh_executor_is_open(self, executor):
        assert not executor.closed

    def test_closed_executor_raises_on_reuse(self, executor):
        parser = ParPaRawParser(executor=executor)
        assert parser.parse(DATA).num_rows == 3
        executor.close()
        with pytest.raises(ExecutorError, match="closed"):
            parser.parse(DATA)

    def test_closed_error_names_the_executor_class(self, executor):
        executor.close()
        with pytest.raises(ExecutorError,
                           match=type(executor).__name__):
            ParPaRawParser(executor=executor).parse(DATA)


class TestContextManager:
    def test_context_manager_closes(self):
        with SerialExecutor() as ex:
            assert ParPaRawParser(executor=ex).parse(DATA).num_rows == 3
        assert ex.closed
        with pytest.raises(ExecutorError):
            ParPaRawParser(executor=ex).parse(DATA)

    def test_context_manager_releases_process_pool(self):
        with ShardedExecutor(workers=2, shard_bytes=4,
                             use_processes=True) as ex:
            result = ParPaRawParser(executor=ex).parse(DATA)
            assert result.num_rows == 3
            assert ex._pool is not None, "pool should be live mid-context"
        assert ex._pool is None, "pool must be released on exit"
        assert ex.closed

    def test_context_manager_closes_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with ShardedExecutor(workers=2, use_processes=False) as ex:
                raise RuntimeError("boom")
        assert ex.closed


class TestReuse:
    def test_executor_survives_multiple_parses(self, executor):
        parser = ParPaRawParser(executor=executor)
        for _ in range(3):
            assert parser.parse(DATA).num_rows == 3

    def test_sharded_pool_reused_across_parses(self):
        with ShardedExecutor(workers=2, shard_bytes=4,
                             use_processes=True) as ex:
            parser = ParPaRawParser(executor=ex)
            parser.parse(DATA)
            pool = ex._pool
            parser.parse(DATA)
            assert ex._pool is pool, "pool must be reused, not rebuilt"
