"""Executor lifecycle: close is idempotent, closed executors refuse work."""

import pytest

from repro.core.parser import ParPaRawParser
from repro.errors import ExecutorError
from repro.exec import SerialExecutor, ShardedExecutor

DATA = b"a,b\n1,2\n3,4\n"


@pytest.fixture(params=["serial", "sharded"])
def executor(request):
    if request.param == "serial":
        ex = SerialExecutor()
    else:
        ex = ShardedExecutor(workers=2, shard_bytes=5, use_processes=False)
    yield ex
    ex.close()


class TestClose:
    def test_close_is_idempotent(self, executor):
        executor.close()
        executor.close()
        executor.close()
        assert executor.closed

    def test_fresh_executor_is_open(self, executor):
        assert not executor.closed

    def test_closed_executor_raises_on_reuse(self, executor):
        parser = ParPaRawParser(executor=executor)
        assert parser.parse(DATA).num_rows == 3
        executor.close()
        with pytest.raises(ExecutorError, match="closed"):
            parser.parse(DATA)

    def test_closed_error_names_the_executor_class(self, executor):
        executor.close()
        with pytest.raises(ExecutorError,
                           match=type(executor).__name__):
            ParPaRawParser(executor=executor).parse(DATA)


class TestContextManager:
    def test_context_manager_closes(self):
        with SerialExecutor() as ex:
            assert ParPaRawParser(executor=ex).parse(DATA).num_rows == 3
        assert ex.closed
        with pytest.raises(ExecutorError):
            ParPaRawParser(executor=ex).parse(DATA)

    def test_context_manager_releases_process_pool(self):
        with ShardedExecutor(workers=2, shard_bytes=4,
                             use_processes=True) as ex:
            result = ParPaRawParser(executor=ex).parse(DATA)
            assert result.num_rows == 3
            assert ex._pool is not None, "pool should be live mid-context"
        assert ex._pool is None, "pool must be released on exit"
        assert ex.closed

    def test_context_manager_closes_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with ShardedExecutor(workers=2, use_processes=False) as ex:
                raise RuntimeError("boom")
        assert ex.closed


class TestParseFileOwnership:
    """StreamingParser.parse_file must not leak implicitly created
    executors: the default-executor pool it builds when ``executor=None``
    is closed on every path (success and failure)."""

    @pytest.fixture()
    def created(self, monkeypatch):
        """Record every default executor parse_file implicitly creates."""
        from repro.core import parser as parser_module
        instances = []
        original = parser_module._default_executor_factory

        def recording_factory():
            executor = original()
            instances.append(executor)
            return executor

        monkeypatch.setattr(parser_module, "_default_executor_factory",
                            recording_factory)
        return instances

    def _csv(self, tmp_path, data=b"a,b\n1,2\n3,4\n"):
        path = tmp_path / "stream.csv"
        path.write_bytes(data)
        return path

    def test_parse_file_closes_owned_executor(self, tmp_path, created):
        from repro import ParseOptions, Schema
        from repro.streaming import StreamingParser
        options = ParseOptions(schema=Schema.all_strings(2))
        table = StreamingParser.parse_file(self._csv(tmp_path), options,
                                           partition_bytes=5)
        assert table.num_rows == 3
        assert created, "parse_file should have built a default executor"
        assert all(ex.closed for ex in created), \
            "implicitly created executors must be closed"

    def test_parse_file_closes_owned_executor_on_error(self, tmp_path,
                                                       created):
        from repro import ParseOptions, Schema
        from repro.errors import StreamingError
        from repro.streaming import StreamingParser
        # An unterminated quote overflows a tiny carry bound mid-file;
        # the owned executor must still be released.
        path = self._csv(tmp_path, b'a,"' + b"x" * 64)
        options = ParseOptions(schema=Schema.all_strings(2))

        class TinyCarryStream(StreamingParser):
            def __init__(self, *args, **kwargs):
                kwargs["max_carry_bytes"] = 8
                super().__init__(*args, **kwargs)

        with pytest.raises(StreamingError):
            TinyCarryStream.parse_file(path, options, partition_bytes=16)
        assert created and all(ex.closed for ex in created)

    def test_parse_file_leaves_caller_executor_open(self, tmp_path,
                                                    created):
        from repro import ParseOptions, Schema
        from repro.streaming import StreamingParser
        options = ParseOptions(schema=Schema.all_strings(2))
        with SerialExecutor() as executor:
            StreamingParser.parse_file(self._csv(tmp_path), options,
                                       partition_bytes=5,
                                       executor=executor)
            assert not executor.closed, \
                "parse_file must not close a caller-owned executor"
        assert not created, "no default executor should be built"


class TestConcurrentUse:
    def test_concurrent_parses_share_one_pool(self):
        # Several threads (the ingest service's dispatchers) racing the
        # lazy pool creation must end up with exactly one pool and
        # correct results.
        from concurrent.futures import ThreadPoolExecutor

        with ShardedExecutor(workers=2, shard_bytes=4,
                             use_processes=True) as ex:
            parser = ParPaRawParser(executor=ex)
            with ThreadPoolExecutor(max_workers=6) as threads:
                results = list(threads.map(
                    lambda _: parser.parse(DATA).num_rows, range(12)))
            assert results == [3] * 12
            assert ex._pool is not None
        assert ex._pool is None


class TestReuse:
    def test_executor_survives_multiple_parses(self, executor):
        parser = ParPaRawParser(executor=executor)
        for _ in range(3):
            assert parser.parse(DATA).num_rows == 3

    def test_sharded_pool_reused_across_parses(self):
        with ShardedExecutor(workers=2, shard_bytes=4,
                             use_processes=True) as ex:
            parser = ParPaRawParser(executor=ex)
            parser.parse(DATA)
            pool = ex._pool
            parser.parse(DATA)
            assert ex._pool is pool, "pool must be reused, not rebuilt"
