"""Tests for branchless SWAR symbol matching, incl. the Table 2 example."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dfa.builder import DfaBuilder
from repro.dfa.csv import dialect_dfa, rfc4180_dfa
from repro.dfa.dialects import Dialect
from repro.dfa.automaton import Emission
from repro.gpusim.swar import SwarMatcher, mycroft_null_byte_mask


class TestMycroftMask:
    def test_detects_null_bytes(self):
        # H(x) sets the MSB of each zero byte.
        assert mycroft_null_byte_mask(0x00112200) == 0x80000080
        assert mycroft_null_byte_mask(0x11223344) == 0

    def test_all_zero(self):
        assert mycroft_null_byte_mask(0) == 0x80808080

    @given(st.lists(st.integers(0, 0x7F), min_size=4, max_size=4))
    def test_per_byte_detection(self, byte_values):
        # For ASCII-range bytes (high bit clear, as XOR of equal ASCII
        # yields), H flags exactly the zero bytes.
        word = sum(b << (8 * i) for i, b in enumerate(byte_values))
        mask = mycroft_null_byte_mask(word)
        for i, b in enumerate(byte_values):
            flagged = bool(mask & (0x80 << (8 * i)))
            assert flagged == (b == 0)


class TestTable2WorkedExample:
    """The exact walk-through of the paper's Table 2."""

    def build_matcher(self) -> SwarMatcher:
        # Table 2 distinguishes \n, ", ,, |, \t with groups 0,1,2,2,2 and
        # catch-all 3.
        builder = (DfaBuilder()
                   .state("S", accepting=True)
                   .group("g0", b"\n")
                   .group("g1", b'"')
                   .group("g2", b",|\t")
                   .catch_all("g3"))
        for group in ("g0", "g1", "g2", "g3"):
            builder.transition("S", group, "S", Emission.DATA)
        return SwarMatcher(builder.start("S").build())

    def test_lu_register_layout(self):
        matcher = self.build_matcher()
        # Distinguished bytes in ascending byte order: \t(0x09), \n(0x0A),
        # "(0x22), ,(0x2C), |(0x7C) -> first register packs the first four.
        assert matcher.lu_registers[0] == (0x09 | (0x0A << 8)
                                           | (0x22 << 16) | (0x2C << 24))
        assert matcher.lu_registers[1] == 0x7C

    def test_read_comma_trace(self):
        matcher = self.build_matcher()
        trace = matcher.match_index(ord(","), trace=True)
        assert trace.s_register == 0x2C2C2C2C
        # Register 0 XOR: bytes 25 26 0E 00 from high to low in the
        # paper's table ordering; the zero byte is lane 3.
        assert trace.xors[0] == (0x09 ^ 0x2C) | ((0x0A ^ 0x2C) << 8) \
            | ((0x22 ^ 0x2C) << 16)
        assert trace.masks[0] == 0x80000000
        assert trace.indexes[0] == 3
        assert trace.matched_index == 3  # lane 3 of register 0

    def test_comma_group(self):
        matcher = self.build_matcher()
        assert matcher.group_of(ord(",")) == 2
        assert matcher.group_of(ord("|")) == 2
        assert matcher.group_of(ord("\t")) == 2
        assert matcher.group_of(ord("\n")) == 0
        assert matcher.group_of(ord('"')) == 1

    def test_no_match_folds_to_catch_all(self):
        matcher = self.build_matcher()
        trace = matcher.match_index(ord("x"), trace=True)
        assert trace.matched_index == SwarMatcher.NO_MATCH_INDEX
        assert matcher.group_of(ord("x")) == 3


class TestEquivalenceWithLookup:
    @pytest.mark.parametrize("dialect", [
        Dialect.csv(), Dialect.tsv(), Dialect.pipe(),
        Dialect.csv_with_comments(), Dialect(escape=b"\\"),
    ], ids=["csv", "tsv", "pipe", "comments", "escape"])
    def test_all_256_bytes(self, dialect):
        dfa = dialect_dfa(dialect)
        matcher = SwarMatcher(dfa)
        for byte in range(256):
            assert matcher.group_of(byte) == dfa.group_of(byte), byte

    def test_vectorised_path_matches_scalar(self):
        dfa = rfc4180_dfa()
        matcher = SwarMatcher(dfa)
        data = np.arange(256, dtype=np.uint8)
        out = matcher.groups_of(data)
        assert out.tolist() == [dfa.group_of(b) for b in range(256)]

    @given(st.binary(max_size=300))
    def test_vectorised_on_random_payloads(self, payload):
        dfa = rfc4180_dfa()
        matcher = SwarMatcher(dfa)
        data = np.frombuffer(payload, dtype=np.uint8)
        assert matcher.groups_of(data).tolist() \
            == dfa.symbol_groups[data].tolist()


class TestConstraints:
    def test_register_budget_enforced(self):
        builder = DfaBuilder().state("S", accepting=True)
        builder.group("big", bytes(range(64)))
        builder.catch_all("rest")
        builder.transition("S", "big", "S", Emission.DATA)
        builder.transition("S", "rest", "S", Emission.DATA)
        dfa = builder.start("S").build()
        with pytest.raises(ValueError):
            SwarMatcher(dfa, max_registers=8)
        # A larger budget accommodates it.
        assert SwarMatcher(dfa, max_registers=16).group_of(0) == 0
