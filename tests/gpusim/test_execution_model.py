"""Tests for device specs, kernel/occupancy, memory, and warp models."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.device import GTX_1080, TITAN_X_PASCAL, V100, DeviceSpec
from repro.gpusim.kernel import KernelLaunch, KernelModel
from repro.gpusim.memory import GlobalMemoryModel, SharedMemoryModel
from repro.gpusim.warp import WarpExecutionModel


class TestDeviceSpec:
    def test_titan_x_matches_paper(self):
        # Paper §5: 3 584 cores, 12 GB, 1 417 MHz base clock.
        assert TITAN_X_PASCAL.num_cores == 3584
        assert TITAN_X_PASCAL.memory_bytes == 12 * 1024 ** 3
        assert TITAN_X_PASCAL.clock_hz == pytest.approx(1.417e9)

    def test_v100_core_count(self):
        # Paper §1: "as much as 5 120 cores on a single chip".
        assert V100.num_cores == 5120

    def test_scaled_device(self):
        doubled = TITAN_X_PASCAL.scaled(2.0)
        assert doubled.num_sms == 56
        assert doubled.memory_bandwidth \
            == pytest.approx(2 * TITAN_X_PASCAL.memory_bandwidth)
        # PCIe does not scale with the die.
        assert doubled.pcie_bandwidth == TITAN_X_PASCAL.pcie_bandwidth

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            TITAN_X_PASCAL.scaled(0)


class TestSharedMemoryModel:
    @pytest.mark.parametrize("stride,degree", [
        (31, 1),   # odd strides are conflict free
        (15, 1),
        (32, 8),   # the Figure 9 spike strides
        (48, 4),
        (64, 16),
        (128, 32),
    ])
    def test_conflict_degrees(self, stride, degree):
        assert SharedMemoryModel().conflict_degree(stride) == degree

    def test_slowdown_monotone_in_degree(self):
        model = SharedMemoryModel()
        assert model.conflict_slowdown(31) < model.conflict_slowdown(32) \
            < model.conflict_slowdown(64)

    def test_rejects_bad_stride(self):
        with pytest.raises(SimulationError):
            SharedMemoryModel().conflict_degree(0)


class TestGlobalMemoryModel:
    def test_stream_time_proportional(self):
        model = GlobalMemoryModel(TITAN_X_PASCAL)
        assert model.stream_time(2e9) == pytest.approx(
            2 * model.stream_time(1e9))

    def test_scatter_slower_than_stream(self):
        model = GlobalMemoryModel(TITAN_X_PASCAL)
        assert model.scatter_time(1e9) > model.stream_time(1e9)

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            GlobalMemoryModel(TITAN_X_PASCAL).stream_time(-1)


class TestKernelModel:
    def test_launch_overhead_in_paper_range(self):
        # §5.1 estimates 5-10 µs per invocation.
        model = KernelModel(TITAN_X_PASCAL)
        assert 5e-6 <= model.launch_overhead(1) <= 10e-6

    def test_occupancy_full_for_light_kernels(self):
        model = KernelModel(TITAN_X_PASCAL)
        launch = KernelLaunch("light", 10 ** 6, registers_per_thread=32)
        assert model.occupancy(launch) == 1.0

    def test_occupancy_drops_with_registers(self):
        model = KernelModel(TITAN_X_PASCAL)
        heavy = KernelLaunch("heavy", 10 ** 6, registers_per_thread=255)
        assert model.occupancy(heavy) < 0.5

    def test_occupancy_drops_with_shared_memory(self):
        model = KernelModel(TITAN_X_PASCAL)
        smem = KernelLaunch("smem", 10 ** 6, shared_bytes_per_block=48 * 1024)
        assert model.occupancy(smem) < 1.0

    def test_impossible_block_raises(self):
        model = KernelModel(TITAN_X_PASCAL)
        # One block needing more shared memory than the SM owns.
        bad = KernelLaunch("bad", 1, shared_bytes_per_block=10 ** 9)
        with pytest.raises(SimulationError):
            model.occupancy(bad)

    def test_thread_setup_scales_with_threads(self):
        model = KernelModel(TITAN_X_PASCAL)
        small = KernelLaunch("s", 10 ** 5)
        large = KernelLaunch("l", 10 ** 7)
        assert model.thread_setup_time(large) == pytest.approx(
            100 * model.thread_setup_time(small))


class TestWarpModel:
    def test_converged_warp(self):
        assert WarpExecutionModel().warp_serialisation([0] * 32) == 1

    def test_fully_divergent(self):
        assert WarpExecutionModel().warp_serialisation(list(range(32))) == 32

    def test_average_over_launch(self):
        model = WarpExecutionModel(warp_size=4)
        # Two warps: converged + two-way divergent.
        paths = [0, 0, 0, 0, 0, 1, 0, 1]
        assert model.average_serialisation(paths) == pytest.approx(1.5)

    def test_divergence_penalty_single_path(self):
        model = WarpExecutionModel()
        assert model.divergence_penalty({0: 1.0}) == 1.0

    def test_row_order_conversion_diverges_more(self):
        """The §3.3 argument: converting in row order (types interleaved)
        serialises warps; converting after partitioning does not."""
        model = WarpExecutionModel()
        # 17 taxi columns in row order: near-uniform path mix.
        row_order = {i: 1 / 17 for i in range(17)}
        partitioned = {0: 1.0}
        assert model.divergence_penalty(row_order) \
            > 10 * model.divergence_penalty(partitioned)

    def test_penalty_requires_probabilities(self):
        with pytest.raises(SimulationError):
            WarpExecutionModel().divergence_penalty({0: 0.4})
