"""Tests for the PTX-style bit intrinsics."""

import pytest
from hypothesis import given, strategies as st

from repro.gpusim.bitfield import NOT_FOUND, bfe, bfi, bfind, brev, popc

u32 = st.integers(min_value=0, max_value=2 ** 32 - 1)


class TestBfi:
    def test_basic_insert(self):
        assert bfi(0b101, 0, 4, 3) == 0b1010000

    def test_preserves_other_bits(self):
        assert bfi(0b11, 0xFF00, 4, 2) == 0xFF30

    def test_zero_length_is_identity(self):
        assert bfi(0xFF, 0x12345678, 8, 0) == 0x12345678

    def test_offset_beyond_register(self):
        assert bfi(0xFF, 0xABCD, 32, 8) == 0xABCD

    def test_clamps_at_register_boundary(self):
        # Inserting 8 bits at offset 28 keeps only the low 4.
        assert bfi(0xFF, 0, 28, 8) == 0xF0000000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bfi(1, 0, -1, 4)
        with pytest.raises(ValueError):
            bfi(-1, 0, 0, 4)

    @given(u32, u32, st.integers(0, 31), st.integers(1, 32))
    def test_roundtrip_with_bfe(self, source, target, offset, length):
        inserted = bfi(source, target, offset, length)
        effective = min(length, 32 - offset)
        assert bfe(inserted, offset, length) \
            == source & ((1 << effective) - 1)


class TestBfe:
    def test_basic_extract(self):
        assert bfe(0x50, 4, 3) == 5

    def test_reads_zero_beyond_register(self):
        assert bfe(0xFFFFFFFF, 32, 8) == 0

    def test_zero_length(self):
        assert bfe(0xFF, 0, 0) == 0

    @given(u32)
    def test_full_extract_is_identity(self, value):
        assert bfe(value, 0, 32) == value


class TestBfind:
    def test_zero_returns_not_found(self):
        assert bfind(0) == NOT_FOUND == 0xFFFFFFFF

    def test_msb(self):
        assert bfind(0x80000000) == 31
        assert bfind(1) == 0

    @given(st.integers(min_value=1, max_value=2 ** 32 - 1))
    def test_matches_bit_length(self, value):
        assert bfind(value) == value.bit_length() - 1

    def test_sentinel_shift_trick(self):
        # Table 2: bfind(no-match) >> 3 gives the 0x1FFFFFFF sentinel.
        assert bfind(0) >> 3 == 0x1FFFFFFF


class TestPopcBrev:
    @given(u32)
    def test_popc(self, value):
        assert popc(value) == bin(value).count("1")

    @given(u32)
    def test_brev_involution(self, value):
        assert brev(brev(value)) == value

    def test_brev_basic(self):
        assert brev(1) == 0x80000000
        assert brev(0xF0000000) == 0x0000000F
