"""Tests pinning the cost model to the paper's observations.

These tests encode the *shape* constraints of Figures 9-11: calibration
points near the paper's reported values, monotonicities, spike locations,
and dataset sensitivities.  If a refactor breaks one of these, a benchmark
figure has silently changed shape.
"""

import pytest

from repro.gpusim.cost_model import PipelineCostModel, StepCosts, \
    WorkloadStats
from repro.gpusim.device import TITAN_X_PASCAL, V100

MiB = 1024 ** 2
GB = 1e9


@pytest.fixture(scope="module")
def model():
    return PipelineCostModel(TITAN_X_PASCAL)


class TestWorkloadStats:
    def test_yelp_record_size(self):
        stats = WorkloadStats.yelp_like(512 * MiB)
        assert stats.num_records == pytest.approx(512 * MiB / 721.4, rel=0.01)
        assert stats.num_columns == 9

    def test_taxi_field_density(self):
        stats = WorkloadStats.taxi_like(512 * MiB)
        # ~5.2 bytes per field (paper §5).
        assert stats.input_bytes / stats.num_fields \
            == pytest.approx(5.2, rel=0.01)

    def test_num_chunks(self):
        stats = WorkloadStats.yelp_like(100, chunk_size=31)
        assert stats.num_chunks == 4

    def test_validation(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            WorkloadStats(input_bytes=-1, chunk_size=31, num_states=6,
                          num_columns=1, num_records=1, num_fields=1,
                          numeric_field_fraction=0.5)


class TestCalibrationPoints:
    def test_peak_rate_order_of_magnitude(self, model):
        """Paper: up to 14.2 GB/s on-GPU (yelp).  The robust record-tagged
        mode lands ~10 GB/s and the lean inline mode above 14 GB/s; both
        must bracket the right decade."""
        tagged = model.parsing_rate(WorkloadStats.yelp_like(512 * MiB))
        inline = model.parsing_rate(
            WorkloadStats.yelp_like(512 * MiB, record_tag_bytes=0.0))
        assert 8e9 < tagged < 14e9
        assert 12e9 < inline < 20e9

    def test_small_input_rate(self, model):
        """Paper §5.1: >2.7 GB/s (yelp) and >2.1 GB/s (taxi) at 1 MB."""
        yelp = model.parsing_rate(WorkloadStats.yelp_like(1 * MiB))
        taxi = model.parsing_rate(WorkloadStats.taxi_like(1 * MiB))
        assert 1.8e9 < yelp < 4.5e9
        assert 1.3e9 < taxi < 3.5e9

    def test_ten_megabytes_yelp(self, model):
        """Paper §5.1: ~9.75 GB/s parsing 10 MB of yelp."""
        rate = model.parsing_rate(WorkloadStats.yelp_like(10 * MiB))
        assert 6e9 < rate < 12e9

    def test_convert_share(self, model):
        """Figure 9: conversion ≈1/3 of total for taxi, ≈20% for yelp."""
        yelp = model.step_costs(WorkloadStats.yelp_like(512 * MiB))
        taxi = model.step_costs(WorkloadStats.taxi_like(512 * MiB))
        assert yelp.convert / yelp.total < 0.25
        assert 0.25 < taxi.convert / taxi.total < 0.45

    def test_scan_share_tiny(self, model):
        """§5.1: the scan takes <2% of total for most chunk sizes."""
        costs = model.step_costs(WorkloadStats.yelp_like(512 * MiB))
        assert costs.scan / costs.total < 0.05

    def test_non_convert_steps_dataset_agnostic(self, model):
        """Figure 11: except conversion, steps cost ~the same on both."""
        yelp = model.step_costs(WorkloadStats.yelp_like(512 * MiB))
        taxi = model.step_costs(WorkloadStats.taxi_like(512 * MiB))
        for step in ("parse", "scan", "tag", "partition"):
            assert getattr(yelp, step) \
                == pytest.approx(getattr(taxi, step), rel=0.05), step


class TestChunkSizeShape:
    def test_tiny_chunks_slower(self, model):
        """Figure 9: chunk sizes below ~16 bytes degrade."""
        t4 = model.total_seconds(WorkloadStats.yelp_like(512 * MiB, 4))
        t31 = model.total_seconds(WorkloadStats.yelp_like(512 * MiB, 31))
        assert t4 > 1.15 * t31

    @pytest.mark.parametrize("spike", [32, 48, 64])
    def test_bank_conflict_spikes(self, model, spike):
        """Figure 9: spikes at 32/48/64-byte chunks vs their neighbours."""
        at_spike = model.total_seconds(
            WorkloadStats.yelp_like(512 * MiB, spike))
        neighbour = model.total_seconds(
            WorkloadStats.yelp_like(512 * MiB, spike - 1))
        assert at_spike > neighbour

    def test_31_is_near_optimal(self, model):
        """§5.1: best performance at 31 bytes per chunk."""
        t31 = model.total_seconds(WorkloadStats.yelp_like(512 * MiB, 31))
        for chunk in (4, 8, 16, 32, 48, 64):
            t = model.total_seconds(WorkloadStats.yelp_like(512 * MiB,
                                                            chunk))
            assert t31 <= t * 1.02, chunk


class TestInputSizeShape:
    def test_rate_increases_with_size(self, model):
        """Figure 10: parsing rate grows with input size, flattening."""
        rates = [model.parsing_rate(WorkloadStats.yelp_like(s * MiB))
                 for s in (1, 2, 4, 8, 16, 64, 256, 512)]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_half_peak_around_5mb(self, model):
        """§5.1: at ~5 MB either dataset reaches roughly 50% of peak."""
        peak = model.parsing_rate(WorkloadStats.yelp_like(512 * MiB))
        at5 = model.parsing_rate(WorkloadStats.yelp_like(5 * MiB))
        assert 0.35 * peak < at5 < 0.85 * peak

    def test_launch_overhead_hurts_taxi_more(self, model):
        """More columns -> more conversion kernel launches (§5.1)."""
        yelp = model.parsing_rate(WorkloadStats.yelp_like(1 * MiB))
        taxi = model.parsing_rate(WorkloadStats.taxi_like(1 * MiB))
        assert taxi < yelp


class TestTaggingModes:
    def test_record_tags_slowest(self, model):
        """Figure 11: record-tagged > inline/vector-delimited cost."""
        sizes = {}
        for name, tag_bytes in (("tagged", 4.0), ("inline", 0.0),
                                ("delimited", 0.125)):
            sizes[name] = model.total_seconds(
                WorkloadStats.yelp_like(512 * MiB,
                                        record_tag_bytes=tag_bytes))
        assert sizes["tagged"] > sizes["delimited"] > sizes["inline"]

    def test_mode_affects_tag_partition_convert(self, model):
        tagged = model.step_costs(WorkloadStats.yelp_like(512 * MiB))
        inline = model.step_costs(
            WorkloadStats.yelp_like(512 * MiB, record_tag_bytes=0.0))
        assert tagged.tag > inline.tag
        assert tagged.partition > inline.partition
        assert tagged.convert > inline.convert
        # Parse and scan are mode independent.
        assert tagged.parse == pytest.approx(inline.parse)
        assert tagged.scan == pytest.approx(inline.scan)


class TestDeviceScaling:
    def test_more_cores_faster(self):
        """§6: the design keeps gaining from added cores."""
        titan = PipelineCostModel(TITAN_X_PASCAL)
        big = PipelineCostModel(TITAN_X_PASCAL.scaled(2.0))
        stats = WorkloadStats.yelp_like(512 * MiB)
        assert big.total_seconds(stats) < titan.total_seconds(stats)

    def test_v100_beats_titan(self):
        titan = PipelineCostModel(TITAN_X_PASCAL)
        v100 = PipelineCostModel(V100)
        stats = WorkloadStats.taxi_like(512 * MiB)
        assert v100.total_seconds(stats) < titan.total_seconds(stats)


class TestStepCosts:
    def test_addition(self):
        a = StepCosts(parse=1, scan=2, tag=3, partition=4, convert=5)
        b = StepCosts(parse=1, scan=1, tag=1, partition=1, convert=1)
        total = a + b
        assert total.total == pytest.approx(20)
        assert set(total.as_dict()) == {"parse", "scan", "tag",
                                        "partition", "convert"}
