"""Tests for the device-memory footprint model (§5.1's 512 MB ceiling)."""

import pytest

from repro.gpusim.cost_model import PipelineCostModel, WorkloadStats
from repro.gpusim.device import TITAN_X_PASCAL

MB = 1024 ** 2
GiB = 1024 ** 3


@pytest.fixture(scope="module")
def model():
    return PipelineCostModel(TITAN_X_PASCAL)


class TestFootprint:
    def test_grows_with_input(self, model):
        small = model.device_memory_bytes(WorkloadStats.yelp_like(64 * MB))
        large = model.device_memory_bytes(WorkloadStats.yelp_like(512 * MB))
        assert large > 7 * small

    def test_record_tags_dominate(self, model):
        """Record-tagged mode carries ~4 B/symbol extra through tagging
        and sorting — the memory pressure §4.1 motivates removing."""
        tagged = model.device_memory_bytes(
            WorkloadStats.yelp_like(512 * MB, record_tag_bytes=4.0))
        inline = model.device_memory_bytes(
            WorkloadStats.yelp_like(512 * MB, record_tag_bytes=0.0))
        assert tagged > 1.8 * inline

    def test_paper_evaluation_ceiling(self, model):
        """§5.1 evaluates the first 512 MB of each dataset 'to be able to
        evaluate all tagging modes before running out of device memory':
        one tagged parse of ~512 MB-1 GB must fit in 12 GB, ~2 GB+ must
        not fit three-modes-resident."""
        ceiling = model.max_input_for_device(WorkloadStats.yelp_like)
        # Single-parse ceiling comfortably above 512 MB...
        assert ceiling > 512 * MB
        # ...but within the same order of magnitude (not ~12 GB: the
        # intermediates are a small multiple of the input).
        assert ceiling < 2 * GiB

    def test_512mb_tagged_fits(self, model):
        footprint = model.device_memory_bytes(
            WorkloadStats.yelp_like(512 * MB))
        assert footprint < TITAN_X_PASCAL.memory_bytes

    def test_monotone_in_tag_width(self, model):
        footprints = [model.device_memory_bytes(
            WorkloadStats.yelp_like(256 * MB, record_tag_bytes=w))
            for w in (0.0, 0.125, 4.0)]
        assert footprints[0] < footprints[1] < footprints[2]
