"""Edge coverage for the kernel/launch model."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.device import TITAN_X_PASCAL
from repro.gpusim.kernel import KernelLaunch, KernelModel


class TestKernelLaunch:
    def test_rejects_negative_threads(self):
        with pytest.raises(SimulationError):
            KernelLaunch("x", -1)

    def test_rejects_zero_block(self):
        with pytest.raises(SimulationError):
            KernelLaunch("x", 1, block_size=0)


class TestKernelModel:
    def test_launch_overhead_scales(self):
        model = KernelModel(TITAN_X_PASCAL)
        assert model.launch_overhead(10) \
            == pytest.approx(10 * model.launch_overhead(1))

    def test_launch_overhead_rejects_negative(self):
        with pytest.raises(SimulationError):
            KernelModel(TITAN_X_PASCAL).launch_overhead(-1)

    def test_compute_time_scales_with_cycles(self):
        model = KernelModel(TITAN_X_PASCAL)
        launch = KernelLaunch("k", 10 ** 6)
        assert model.compute_time(launch, 200.0) \
            == pytest.approx(2 * model.compute_time(launch, 100.0))

    def test_low_occupancy_slows_compute(self):
        model = KernelModel(TITAN_X_PASCAL)
        light = KernelLaunch("light", 10 ** 6, registers_per_thread=32)
        heavy = KernelLaunch("heavy", 10 ** 6, registers_per_thread=240)
        assert model.compute_time(heavy, 100.0) \
            > model.compute_time(light, 100.0)

    def test_zero_threads_costs_nothing_per_thread(self):
        model = KernelModel(TITAN_X_PASCAL)
        launch = KernelLaunch("empty", 0)
        assert model.thread_setup_time(launch) == 0.0
