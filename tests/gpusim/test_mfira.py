"""Tests for the multi-fragment in-register array (Figure 8)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CapacityError
from repro.gpusim.mfira import Mfira


class TestFigure8Geometry:
    """The paper's worked example: 10 items of 5 bits."""

    def test_parameters(self):
        array = Mfira(capacity=10, item_bits=5)
        assert array.available_bits == 3      # floor(32 / 10)
        assert array.fragment_bits == 2       # 2^floor(log2 3)
        assert array.num_fragments == 3       # ceil(5 / 2)
        assert len(array.registers) == 3

    def test_figure8_values_roundtrip(self):
        values = [5, 7, 31, 20, 10, 0, 26, 3, 15, 16]
        array = Mfira.from_values(values, item_bits=5)
        assert array.to_list() == values

    def test_physical_layout(self):
        # Item i's fragment f occupies bits [2i, 2i+2) of register f,
        # low fragment first.
        array = Mfira(capacity=10, item_bits=5)
        array.set(1, 0b10110)
        # fragments of 0b10110: low 2 bits 0b10, middle 0b01, high 0b1.
        assert (array.registers[0] >> 2) & 0b11 == 0b10
        assert (array.registers[1] >> 2) & 0b11 == 0b01
        assert (array.registers[2] >> 2) & 0b11 == 0b1


class TestGeometry:
    @pytest.mark.parametrize("capacity,item_bits,frag_bits,fragments", [
        (32, 1, 1, 1),       # a 32-entry bit array in one register
        (16, 8, 2, 4),
        (8, 6, 4, 2),
        (4, 8, 8, 1),
        (2, 16, 16, 1),
        (1, 32, 32, 1),
        (6, 3, 4, 1),        # available=5 -> fragment 4 (power of two)
    ])
    def test_parameters(self, capacity, item_bits, frag_bits, fragments):
        array = Mfira(capacity, item_bits)
        assert array.fragment_bits == frag_bits
        assert array.num_fragments == fragments

    def test_fragment_bits_power_of_two(self):
        # The offset computation must be a shift (paper Figure 8).
        for capacity in range(1, 33):
            array = Mfira(capacity, 1)
            assert array.fragment_bits & (array.fragment_bits - 1) == 0
            assert 1 << array.fragment_shift == array.fragment_bits

    def test_rejects_over_capacity(self):
        with pytest.raises(CapacityError):
            Mfira(capacity=33, item_bits=1)
        with pytest.raises(CapacityError):
            Mfira(capacity=0, item_bits=4)
        with pytest.raises(CapacityError):
            Mfira(capacity=4, item_bits=33)

    def test_for_values_sizing(self):
        array = Mfira.for_values(capacity=6, num_values=6)
        assert array.item_bits == 3


class TestAccess:
    def test_out_of_range_index(self):
        array = Mfira(4, 4)
        with pytest.raises(IndexError):
            array.get(4)
        with pytest.raises(IndexError):
            array.set(-1, 0)

    def test_value_too_wide(self):
        array = Mfira(4, 4)
        with pytest.raises(ValueError):
            array.set(0, 16)

    def test_dunder_access(self):
        array = Mfira(4, 4)
        array[2] = 9
        assert array[2] == 9
        assert len(array) == 4
        assert list(array) == [0, 0, 9, 0]

    @given(st.data())
    def test_roundtrip_random_geometry(self, data):
        capacity = data.draw(st.integers(1, 32))
        item_bits = data.draw(st.integers(1, 32))
        array = Mfira(capacity, item_bits)
        values = data.draw(st.lists(
            st.integers(0, 2 ** item_bits - 1),
            min_size=capacity, max_size=capacity))
        for i, v in enumerate(values):
            array.set(i, v)
        assert array.to_list() == values

    @given(st.data())
    def test_overwrite_is_isolated(self, data):
        """Writing one slot never disturbs its neighbours."""
        capacity = data.draw(st.integers(2, 16))
        item_bits = data.draw(st.integers(1, 16))
        array = Mfira(capacity, item_bits)
        baseline = data.draw(st.lists(
            st.integers(0, 2 ** item_bits - 1),
            min_size=capacity, max_size=capacity))
        for i, v in enumerate(baseline):
            array.set(i, v)
        target = data.draw(st.integers(0, capacity - 1))
        new_value = data.draw(st.integers(0, 2 ** item_bits - 1))
        array.set(target, new_value)
        expected = list(baseline)
        expected[target] = new_value
        assert array.to_list() == expected


class TestAsTransitionVectorBacking:
    def test_six_state_stv(self, csv_dfa):
        """MFIRA can back the RFC 4180 state-transition vector."""
        array = Mfira.for_values(capacity=csv_dfa.num_states,
                                 num_values=csv_dfa.num_states)
        # Simulate a chunk symbol by symbol, all 6 DFA instances in MFIRA.
        for i in range(csv_dfa.num_states):
            array.set(i, i)
        for byte in b'9,"Bookcas':
            group = csv_dfa.group_of(byte)
            for i in range(csv_dfa.num_states):
                array.set(i, int(csv_dfa.transitions[group, array.get(i)]))
        assert tuple(array.to_list()) \
            == csv_dfa.transition_vector(b'9,"Bookcas')
