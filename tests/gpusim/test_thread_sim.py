"""Tests for the register-level thread simulation of phase 1 (§4.5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chunking import chunk_groups
from repro.core.context import compute_transition_vectors
from repro.dfa import rfc4180_dfa
from repro.dfa.csv import dialect_dfa
from repro.dfa.dialects import Dialect
from repro.errors import SimulationError
from repro.gpusim.thread_sim import GpuThread, simulate_block


class TestGpuThread:
    def test_stv_matches_dfa(self, csv_dfa):
        thread = GpuThread(csv_dfa)
        chunk = b'1941,199.9'
        assert thread.run(chunk) == csv_dfa.transition_vector(chunk)

    def test_resources_accounted(self, csv_dfa):
        thread = GpuThread(csv_dfa)
        thread.run(b"abc")
        res = thread.resources
        assert res.swar_matches == 3
        # 3 bitfield ops per state per symbol.
        assert res.bitfield_ops == 3 * csv_dfa.num_states * 3
        assert res.total_registers > 0

    def test_register_budget_is_tiny(self, csv_dfa):
        """The §4.5 point: the whole thread context is a handful of
        registers (STV + packed table + LU), far under a 255-register
        thread budget."""
        thread = GpuThread(csv_dfa)
        assert thread.resources.total_registers <= 16

    @given(st.binary(max_size=64))
    @settings(max_examples=60)
    def test_property_equivalence(self, chunk):
        dfa = rfc4180_dfa()
        thread = GpuThread(dfa)
        assert thread.run(chunk) == dfa.transition_vector(chunk)

    def test_comment_dialect(self):
        dfa = dialect_dfa(Dialect.csv_with_comments())
        thread = GpuThread(dfa)
        chunk = b'#x",\nab'
        assert thread.run(chunk) == dfa.transition_vector(chunk)


class TestSimulateBlock:
    def test_matches_vectorised_phase1(self, csv_dfa, paper_example):
        chunk_size = 10
        vectors, totals = simulate_block(csv_dfa, paper_example, chunk_size)

        data = np.frombuffer(paper_example, dtype=np.uint8)
        groups, chunking, padded = chunk_groups(data, csv_dfa, chunk_size)
        expected = compute_transition_vectors(groups, padded)
        for i, vector in enumerate(vectors):
            assert vector == tuple(expected[i].tolist()), i

    def test_totals(self, csv_dfa):
        _, totals = simulate_block(csv_dfa, b"abcdef", 3)
        assert totals.swar_matches == 6

    def test_rejects_bad_chunk_size(self, csv_dfa):
        with pytest.raises(SimulationError):
            simulate_block(csv_dfa, b"x", 0)
