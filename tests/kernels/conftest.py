"""Kernel suite: run under the zero-copy read-only guard.

Mirrors ``tests/core/conftest.py`` — the kernel parity tests exercise
the same fused buffer hand-outs, so they too run with
:mod:`repro.columnar.guard` enabled.
"""

import os

import pytest

from repro.columnar import guard


@pytest.fixture(autouse=True, scope="session")
def readonly_guard():
    was_enabled = guard.enabled()
    had_env = os.environ.get("REPRO_READONLY_GUARD")
    os.environ["REPRO_READONLY_GUARD"] = "1"
    guard.enable()
    yield
    if had_env is None:
        os.environ.pop("REPRO_READONLY_GUARD", None)
    else:
        os.environ["REPRO_READONLY_GUARD"] = had_env
    if not was_enabled:
        guard.disable()
