"""Strided-table construction checked against the scalar DFA walk.

The precomposed tables claim to *be* the k-fold composition of the base
automaton.  Every claim is checked cell by cell against ``Dfa.step``:
the k-step transition, all k per-symbol emissions, and the block-local
index of the first symbol read in the INV sink.
"""

import numpy as np
import pytest

from repro import ParPaRawParser, ParseOptions
from repro.dfa import Dialect, dialect_dfa, rfc4180_dfa
from repro.errors import ParseError
from repro.kernels import (
    DEFAULT_TABLE_BUDGET,
    StridedTables,
    build_plan,
    build_tables,
    pack_kgrams,
    pick_stride,
    plan_nbytes,
    plan_segments,
    resolve_stride,
    table_nbytes,
)
from repro.kernels.strided import _EMISSION_WORD_DTYPES, SUPPORTED_STRIDES
from repro.obs import MetricsRegistry


def unpack_kgram(kgram: int, k: int, num_groups: int) -> list[int]:
    """Big-endian digits of a packed k-gram (inverse of the packing)."""
    digits = []
    for _ in range(k):
        digits.append(kgram % num_groups)
        kgram //= num_groups
    return digits[::-1]


def scalar_block(dfa, state: int, groups: list[int]):
    """Reference walk: (end state, emissions, first index read in INV)."""
    emissions = []
    first_invalid = -1
    for i, g in enumerate(groups):
        emissions.append(int(dfa.emissions[state, g]))
        if dfa.invalid_state is not None and state == dfa.invalid_state \
                and first_invalid < 0:
            first_invalid = i
        state = int(dfa.transitions[g, state])
    return state, emissions, first_invalid


@pytest.fixture(scope="module")
def padded_csv_dfa():
    return rfc4180_dfa().with_padding_group()


@pytest.mark.parametrize("k", [1, 2, 3, 4, 8])
def test_tables_match_scalar_walk(padded_csv_dfa, k):
    dfa = padded_csv_dfa
    tables = build_tables(dfa, k)
    num_kgrams = dfa.num_groups ** k
    assert tables.transitions.shape == (num_kgrams, dfa.num_states)
    assert tables.emissions.shape == (num_kgrams, dfa.num_states, k)

    rng = np.random.default_rng(k)
    kgrams = np.arange(num_kgrams) if num_kgrams <= 200 \
        else rng.choice(num_kgrams, size=200, replace=False)
    for kgram in kgrams:
        block = unpack_kgram(int(kgram), k, dfa.num_groups)
        for state in range(dfa.num_states):
            end, emissions, first_invalid = scalar_block(dfa, state, block)
            assert int(tables.transitions[kgram, state]) == end
            assert tables.emissions[kgram, state].tolist() == emissions
            assert int(tables.first_invalid[kgram, state]) == first_invalid


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_emission_words_alias_emission_bytes(padded_csv_dfa, k):
    tables = build_tables(padded_csv_dfa, k)
    words = tables.emission_words
    assert words is not None
    assert words.dtype.itemsize == k
    assert words.shape == tables.emissions.shape[:2]
    # The word view must contain exactly the k emission bytes, in the
    # same native order a word buffer re-viewed as bytes produces.
    round_trip = np.ascontiguousarray(words).view(np.uint8).reshape(
        tables.emissions.shape)
    np.testing.assert_array_equal(round_trip, tables.emissions)


def test_no_emission_words_for_odd_strides(padded_csv_dfa):
    assert build_tables(padded_csv_dfa, 3).emission_words is None


def test_first_invalid_none_without_sink():
    # A dialect whose automaton accepts every byte has no INV sink.
    dfa = dialect_dfa(Dialect(quote=None, strip_carriage_return=False))
    padded = dfa.with_padding_group()
    if padded.invalid_state is None:
        tables = build_tables(padded, 2)
        assert tables.first_invalid is None


def test_table_nbytes_predicts_build(padded_csv_dfa):
    for k in (1, 2, 3):
        tables = build_tables(padded_csv_dfa, k)
        assert tables.nbytes == table_nbytes(
            padded_csv_dfa.num_groups, padded_csv_dfa.num_states, k)


def test_build_rejects_bad_stride(padded_csv_dfa):
    with pytest.raises(ParseError):
        build_tables(padded_csv_dfa, 0)


class TestStrideSelection:
    def test_auto_prefers_largest_fitting(self, padded_csv_dfa):
        assert pick_stride(padded_csv_dfa, DEFAULT_TABLE_BUDGET) == 4

    def test_auto_degrades_with_budget(self, padded_csv_dfa):
        dfa = padded_csv_dfa
        k2 = table_nbytes(dfa.num_groups, dfa.num_states, 2)
        k4 = table_nbytes(dfa.num_groups, dfa.num_states, 4)
        assert pick_stride(dfa, k4 - 1) == 2
        assert pick_stride(dfa, k2 - 1) == 1

    def test_resolve_auto_and_explicit(self, padded_csv_dfa):
        assert resolve_stride(None, padded_csv_dfa) == \
            pick_stride(padded_csv_dfa)
        assert resolve_stride(1, padded_csv_dfa) == 1
        assert resolve_stride(3, padded_csv_dfa) == 3

    def test_resolve_rejects_nonpositive(self, padded_csv_dfa):
        with pytest.raises(ParseError):
            resolve_stride(0, padded_csv_dfa)

    def test_resolve_rejects_absurd_tables(self, padded_csv_dfa):
        with pytest.raises(ParseError):
            resolve_stride(64, padded_csv_dfa)


def test_pack_kgrams_big_endian():
    groups = np.array([[0, 1, 2, 3, 4, 5, 1]], dtype=np.uint8)
    packed = pack_kgrams(groups, 3, 6)
    # Two full blocks; the trailing symbol is left for the tail sweep.
    assert packed.shape == (1, 2)
    assert packed[0, 0] == 0 * 36 + 1 * 6 + 2
    assert packed[0, 1] == 3 * 36 + 4 * 6 + 5


def test_tables_are_frozen(padded_csv_dfa):
    tables = build_tables(padded_csv_dfa, 2)
    assert isinstance(tables, StridedTables)
    with pytest.raises(AttributeError):
        tables.k = 3


class TestSupportedStrides:
    """Satellite: the supported strides are derived from one place — the
    SWAR word-dtype table — and everything that enumerates strides
    (picker, planner, word views) must stay consistent with it."""

    def test_derived_from_word_dtypes(self):
        assert SUPPORTED_STRIDES == tuple(sorted(
            (k for k in _EMISSION_WORD_DTYPES if k > 1), reverse=True))
        assert SUPPORTED_STRIDES == (8, 4, 2)

    def test_word_views_exist_exactly_for_supported(self, padded_csv_dfa):
        for k in SUPPORTED_STRIDES:
            assert build_tables(padded_csv_dfa, k).emission_words \
                is not None
        # ...and for no other stride in the practical range.
        for k in (3, 5, 6, 7):
            assert build_tables(padded_csv_dfa, k).emission_words is None

    def test_pick_stride_only_returns_supported_or_unit(self,
                                                        padded_csv_dfa):
        dfa = padded_csv_dfa
        for budget in (1, 10_000, 100_000, DEFAULT_TABLE_BUDGET, 1 << 30):
            assert pick_stride(dfa, budget) in SUPPORTED_STRIDES + (1,)

    def test_plan_segments_use_only_supported_strides(self):
        for chunk_size in range(1, 70):
            segments, unit_tail = plan_segments(chunk_size, 8)
            covered = 0
            for offset, stride in segments:
                assert stride in SUPPORTED_STRIDES
                assert offset == covered
                covered += stride
            assert covered + unit_tail == chunk_size

    def test_paper_chunk_decomposition(self):
        # 31 = 8+8+8+4+2 plus a 1-byte unit tail: 5 table gathers where
        # uniform k=4 needs 7 (and leaves a 3-byte tail).
        segments, unit_tail = plan_segments(31, 8)
        assert segments == ((0, 8), (8, 8), (16, 8), (24, 4), (28, 2))
        assert unit_tail == 1

    def test_plan_nbytes_covers_the_ladder(self, padded_csv_dfa):
        g, s = padded_csv_dfa.num_groups, padded_csv_dfa.num_states
        assert plan_nbytes(g, s, 8) == sum(
            table_nbytes(g, s, k) for k in (8, 4, 2))
        assert plan_nbytes(g, s, 2) == table_nbytes(g, s, 2)
        assert plan_nbytes(g, s, 1) == 0

    def test_build_plan_materialises_the_ladder(self, padded_csv_dfa):
        plan = build_plan(padded_csv_dfa, 8, 31)
        assert set(plan.tables) == {8, 4, 2}
        assert plan.unit_tail == 1
        assert plan.nbytes == plan_nbytes(
            padded_csv_dfa.num_groups, padded_csv_dfa.num_states, 8)


class TestTableBudgetOption:
    """Satellite: ``ParseOptions.kernel_table_budget`` reaches the auto
    stride picker and is observable as a gauge."""

    DATA = b"a,b,c\n" * 40

    def _stride_used(self, options: ParseOptions) -> float:
        metrics = MetricsRegistry()
        ParPaRawParser(options, metrics=metrics).parse(self.DATA)
        return metrics.gauges["stage.stv.stride"], \
            metrics.gauges["kernels.table_budget"]

    def test_default_budget_is_observable(self):
        stride, budget = self._stride_used(ParseOptions())
        assert budget == float(DEFAULT_TABLE_BUDGET)
        assert stride >= 2

    def test_shrunken_budget_narrows_the_stride(self):
        wide, _ = self._stride_used(ParseOptions())
        narrow, budget = self._stride_used(
            ParseOptions(kernel_table_budget=1))
        assert budget == 1.0
        assert narrow == 1.0 < wide

    def test_explicit_stride_over_budget_rejected_up_front(self):
        with pytest.raises(ParseError, match="kernel_table_budget"):
            ParseOptions(kernel_stride=2, kernel_table_budget=1)

    def test_explicit_stride_honoured_when_budget_fits(self):
        stride, _ = self._stride_used(ParseOptions(kernel_stride=2))
        assert stride == 2.0

    def test_budget_must_be_positive(self):
        with pytest.raises(ParseError):
            ParseOptions(kernel_table_budget=0)
