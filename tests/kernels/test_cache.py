"""The process-wide table cache: keying, LRU behaviour, observability."""

import pytest

from repro.dfa import Dialect, dialect_dfa, rfc4180_dfa
from repro.kernels import cache as cache_module
from repro.kernels import (
    build_tables,
    cache_info,
    clear_cache,
    dfa_fingerprint,
    get_tables,
)
from repro.obs import MetricsRegistry


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture()
def padded():
    return rfc4180_dfa().with_padding_group()


def test_second_lookup_is_a_hit(padded):
    first = get_tables(padded, 2)
    second = get_tables(padded, 2)
    assert first is second
    info = cache_info()
    assert info["misses"] == 1
    assert info["hits"] == 1
    assert info["entries"] == 1


def test_fingerprint_is_behavioural():
    # Two independently constructed automata for the same dialect must
    # share one cache entry; a different dialect must not.
    a = dialect_dfa(Dialect.csv()).with_padding_group()
    b = dialect_dfa(Dialect.csv()).with_padding_group()
    c = dialect_dfa(Dialect.tsv()).with_padding_group()
    assert dfa_fingerprint(a) == dfa_fingerprint(b)
    assert dfa_fingerprint(a) != dfa_fingerprint(c)
    assert get_tables(a, 2) is get_tables(b, 2)
    assert cache_info()["entries"] == 1
    get_tables(c, 2)
    assert cache_info()["entries"] == 2


def test_distinct_strides_are_distinct_entries(padded):
    t2 = get_tables(padded, 2)
    t4 = get_tables(padded, 4)
    assert t2.k == 2 and t4.k == 4
    assert cache_info() == {"entries": 2, "hits": 0, "misses": 2,
                            "evictions": 0}


def test_lru_eviction(padded, monkeypatch):
    monkeypatch.setattr(cache_module, "MAX_CACHED_TABLES", 2)
    get_tables(padded, 1)
    get_tables(padded, 2)
    get_tables(padded, 1)          # refresh k=1: k=2 is now the LRU entry
    get_tables(padded, 3)          # evicts k=2
    info = cache_info()
    assert info["entries"] == 2
    assert info["evictions"] == 1
    get_tables(padded, 1)          # still cached
    assert cache_info()["hits"] == 2


def test_metrics_record_cache_traffic(padded):
    metrics = MetricsRegistry()
    get_tables(padded, 2, metrics)
    get_tables(padded, 2, metrics)
    assert metrics.counters["kernels.cache.misses"] == 1
    assert metrics.counters["kernels.cache.hits"] == 1
    assert "kernels.table_build.seconds" in metrics.histograms
    expected = build_tables(padded, 2).nbytes
    assert metrics.gauges["kernels.table.bytes"] == expected
