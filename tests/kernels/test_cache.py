"""The process-wide table cache: keying, LRU behaviour, observability."""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.dfa import Dialect, dialect_dfa, rfc4180_dfa
from repro.kernels import cache as cache_module
from repro.kernels import (
    build_tables,
    cache_info,
    clear_cache,
    dfa_fingerprint,
    get_tables,
)
from repro.obs import MetricsRegistry


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture()
def padded():
    return rfc4180_dfa().with_padding_group()


def test_second_lookup_is_a_hit(padded):
    first = get_tables(padded, 2)
    second = get_tables(padded, 2)
    assert first is second
    info = cache_info()
    assert info["misses"] == 1
    assert info["hits"] == 1
    assert info["entries"] == 1


def test_fingerprint_is_behavioural():
    # Two independently constructed automata for the same dialect must
    # share one cache entry; a different dialect must not.
    a = dialect_dfa(Dialect.csv()).with_padding_group()
    b = dialect_dfa(Dialect.csv()).with_padding_group()
    c = dialect_dfa(Dialect.tsv()).with_padding_group()
    assert dfa_fingerprint(a) == dfa_fingerprint(b)
    assert dfa_fingerprint(a) != dfa_fingerprint(c)
    assert get_tables(a, 2) is get_tables(b, 2)
    assert cache_info()["entries"] == 1
    get_tables(c, 2)
    assert cache_info()["entries"] == 2


def test_distinct_strides_are_distinct_entries(padded):
    t2 = get_tables(padded, 2)
    t4 = get_tables(padded, 4)
    assert t2.k == 2 and t4.k == 4
    assert cache_info() == {"entries": 2, "hits": 0, "misses": 2,
                            "evictions": 0}


def test_lru_eviction(padded, monkeypatch):
    monkeypatch.setattr(cache_module, "MAX_CACHED_TABLES", 2)
    get_tables(padded, 1)
    get_tables(padded, 2)
    get_tables(padded, 1)          # refresh k=1: k=2 is now the LRU entry
    get_tables(padded, 3)          # evicts k=2
    info = cache_info()
    assert info["entries"] == 2
    assert info["evictions"] == 1
    get_tables(padded, 1)          # still cached
    assert cache_info()["hits"] == 2


def _same_tables(a, b) -> bool:
    """Content equality: the cache may legitimately hand out distinct
    objects for one key (duplicate-build race), never different tables."""
    return (a.k == b.k
            and np.array_equal(a.transitions, b.transitions)
            and np.array_equal(a.emissions, b.emissions))


class TestConcurrentHammer:
    """The cache under the serve workload: many threads, mixed dialects.

    The ingest service's dispatcher threads all call ``get_tables``
    concurrently with whatever dialect each tenant brought; these tests
    hammer that path and check the three things that matter: every call
    gets the *right* table, the hit/miss/eviction accounting stays
    consistent, and the duplicate-build race stays benign.
    """

    DIALECTS = [
        Dialect.csv(),
        Dialect.tsv(),
        Dialect(delimiter=b";"),
        Dialect(delimiter=b"|", quote=None),
        Dialect(delimiter=b",", comment=b"#"),
        Dialect(delimiter=b":", quote=b"'"),
    ]

    def _corpus(self, strides=(1, 2)):
        """``(key, dfa, k, reference_tables)`` for every (dialect, k).

        Distinct dialects may share a key: the fingerprint is
        *behavioural* over symbol groups, and e.g. ``;``-delimited
        quoted data drives the same group-level automaton as CSV (only
        the byte→group map differs, and that lives outside the tables).
        Such sharing is correct — the references per shared key are
        identical — so accounting assertions count distinct keys.
        """
        corpus = []
        for dialect in self.DIALECTS:
            dfa = dialect_dfa(dialect).with_padding_group()
            for k in strides:
                corpus.append((
                    (dfa_fingerprint(dfa), k), dfa, k,
                    build_tables(dfa, k)))
        return corpus

    @staticmethod
    def _distinct_keys(corpus):
        return {key for key, _, _, _ in corpus}

    def test_hammer_mixed_dialects_accounting_consistent(self):
        corpus = self._corpus()
        calls_per_thread = 40
        threads = 8

        def hammer(seed):
            rng = random.Random(seed)
            wrong = 0
            for _ in range(calls_per_thread):
                _, dfa, k, reference = rng.choice(corpus)
                if not _same_tables(get_tables(dfa, k), reference):
                    wrong += 1
            return wrong

        with ThreadPoolExecutor(max_workers=threads) as pool:
            wrong = sum(pool.map(hammer, range(threads)))
        assert wrong == 0

        info = cache_info()
        total = threads * calls_per_thread
        keys = self._distinct_keys(corpus)
        # Every call is exactly one hit or one miss...
        assert info["hits"] + info["misses"] == total
        # ...each distinct key was built at least once (a duplicate-build
        # race may build it more than once, which is benign)...
        assert info["misses"] >= len(keys)
        # ...and entries tracks inserts minus evictions, except that a
        # racing duplicate insert overwrites in place (no size change).
        assert info["entries"] == len(keys) <= cache_module.MAX_CACHED_TABLES
        assert info["evictions"] == 0
        assert info["misses"] - info["evictions"] >= info["entries"]

    def test_duplicate_build_race_is_benign(self, padded):
        threads = 8
        barrier = threading.Barrier(threads)
        results = []

        def build():
            barrier.wait()   # maximise the chance of a genuine race
            return get_tables(padded, 2)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(pool.map(lambda _: build(), range(threads)))

        reference = build_tables(padded, 2)
        assert all(_same_tables(t, reference) for t in results)
        info = cache_info()
        assert info["hits"] + info["misses"] == threads
        assert 1 <= info["misses"] <= threads
        assert info["entries"] == 1
        # Later lookups converge on one cached object.
        assert get_tables(padded, 2) is get_tables(padded, 2)

    def test_eviction_pressure_never_serves_the_wrong_table(
            self, monkeypatch):
        monkeypatch.setattr(cache_module, "MAX_CACHED_TABLES", 3)
        corpus = self._corpus(strides=(1, 2))   # 6 distinct keys > capacity
        calls_per_thread = 60
        threads = 6

        def hammer(seed):
            rng = random.Random(1000 + seed)
            wrong = 0
            for _ in range(calls_per_thread):
                _, dfa, k, reference = rng.choice(corpus)
                if not _same_tables(get_tables(dfa, k), reference):
                    wrong += 1
            return wrong

        with ThreadPoolExecutor(max_workers=threads) as pool:
            wrong = sum(pool.map(hammer, range(threads)))
        assert wrong == 0

        info = cache_info()
        assert info["evictions"] > 0
        assert info["entries"] <= 3
        assert info["hits"] + info["misses"] == threads * calls_per_thread


def test_metrics_record_cache_traffic(padded):
    metrics = MetricsRegistry()
    get_tables(padded, 2, metrics)
    get_tables(padded, 2, metrics)
    assert metrics.counters["kernels.cache.misses"] == 1
    assert metrics.counters["kernels.cache.hits"] == 1
    assert "kernels.table_build.seconds" in metrics.histograms
    expected = build_tables(padded, 2).nbytes
    assert metrics.gauges["kernels.table.bytes"] == expected


def _redundant_rfc4180():
    """RFC 4180 behaviour, different structure: states declared in a
    different order plus a duplicate plain-field state (``FLD2``) that
    minimisation must merge with ``FLD``."""
    from repro.dfa import DfaBuilder, Emission

    b = DfaBuilder()
    b.state("EOR", accepting=True)
    b.state("FLD", accepting=True)
    b.state("FLD2", accepting=True)     # behavioural twin of FLD
    b.state("ENC")
    b.state("EOF", accepting=True)
    b.state("ESC", accepting=True)
    b.invalid_state("INV")
    b.group("EOL", b"\n")
    b.group("QUOTE", b'"')
    b.group("DELIM", b",")
    b.catch_all("OTHER")
    data, control = Emission.DATA, Emission.CONTROL
    for state in ("EOR", "FLD", "FLD2", "EOF", "ESC"):
        b.transition(state, "EOL", "EOR", Emission.RECORD_DELIMITER)
        b.transition(state, "DELIM", "EOF", Emission.FIELD_DELIMITER)
    b.transition("EOR", "OTHER", "FLD", data)
    b.transition("EOR", "QUOTE", "ENC", control)
    b.transition("EOF", "OTHER", "FLD2", data)   # twin entry point
    b.transition("EOF", "QUOTE", "ENC", control)
    for fld in ("FLD", "FLD2"):
        b.transition(fld, "OTHER", fld, data)
        b.transition(fld, "QUOTE", "INV", control)
    b.transition("ENC", "EOL", "ENC", data)
    b.transition("ENC", "DELIM", "ENC", data)
    b.transition("ENC", "OTHER", "ENC", data)
    b.transition("ENC", "QUOTE", "ESC", control)
    b.transition("ESC", "QUOTE", "ENC", data)
    b.start("EOR")
    return b.build()


class TestBehaviouralSharing:
    """Satellite: behaviourally equivalent, structurally different
    automata share one kernel-cache entry once minimisation folds them
    onto the same canonical form."""

    def test_equivalent_automata_share_tables(self):
        from repro.dfa import equivalent

        a = rfc4180_dfa()
        b = _redundant_rfc4180()
        assert a.num_states != b.num_states          # structurally apart
        assert equivalent(a, b)                      # behaviourally equal
        from repro.dfa.minimize import canonicalize
        pa = canonicalize(a).dfa.with_padding_group()
        pb = canonicalize(b).dfa.with_padding_group()
        assert dfa_fingerprint(pa) == dfa_fingerprint(pb)
        assert get_tables(pa, 2) is get_tables(pb, 2)
        assert cache_info() == {"entries": 1, "hits": 1, "misses": 1,
                                "evictions": 0}

    def test_second_dialect_parse_hits_the_cache(self):
        """Pipeline-level: parsing with the redundant automaton after the
        canonical one records only hits — kernels.cache.hits increments,
        no new tables are built."""
        from repro import ParPaRawParser, ParseOptions

        data = b"a,b\nc,d\n" * 8
        first = MetricsRegistry()
        ParPaRawParser(ParseOptions(dfa=rfc4180_dfa()),
                       metrics=first).parse(data)
        assert first.counters.get("kernels.cache.misses", 0) >= 1
        entries_before = cache_info()["entries"]

        second = MetricsRegistry()
        ParPaRawParser(ParseOptions(dfa=_redundant_rfc4180()),
                       metrics=second).parse(data)
        assert second.counters.get("kernels.cache.hits", 0) >= 1
        assert second.counters.get("kernels.cache.misses", 0) == 0
        assert cache_info()["entries"] == entries_before
