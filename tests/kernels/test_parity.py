"""Parity: strided kernels must be bit-identical to the unit-stride sweeps.

The acceptance bar of the strided layer: for every stride, dialect,
chunk geometry and input — including inputs whose length is not a
multiple of the chunk size, chunk sizes that are not a multiple of k,
and invalid bytes falling mid-block or inside the padded tail — the
strided sweeps return exactly what the unit-stride sweeps return: same
STVs, same emission stream, same final state, same ``invalid_position``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Dialect, ParPaRawParser, ParseOptions
from repro.core.chunking import chunk_groups
from repro.core.context import chunk_start_states, compute_transition_vectors
from repro.core.tagging import compute_emissions
from repro.dfa import dialect_dfa
from repro.exec import ShardedExecutor
from repro.kernels import (
    build_plan,
    compute_emissions_plan,
    compute_emissions_strided,
    compute_transition_vectors_plan,
    compute_transition_vectors_strided,
    get_tables,
    pack_plan,
)
from repro.dfa.minimize import canonicalize
from repro.kernels.strided import plan_nbytes, table_nbytes
from tests.conftest import TRICKY_INPUTS
from tests.exec.test_executors import assert_results_match

STRIDES = (1, 2, 4, 8)

#: Raw (unminimised) k=8 tables are only exercised where they stay
#: affordable — G**8 rows explode for group-rich automata (csv-with-CR
#: is 123 MB, csv-with-comments 484 MB); those dialects cover k=8
#: through the parser path, which minimises first.
_K8_RAW_TABLE_CAP = 32 << 20

DIALECTS = [
    Dialect(strip_carriage_return=False),
    Dialect.csv(),
    Dialect.tsv(),
    Dialect.pipe(),
    Dialect.csv_with_comments(),
    Dialect(escape=b"\\", quote=None, strip_carriage_return=False),
]


def strides_for(padded) -> tuple[int, ...]:
    """The strides whose raw tables are affordable for this automaton."""
    return tuple(k for k in STRIDES if k < 8 or table_nbytes(
        padded.num_groups, padded.num_states, 8) <= _K8_RAW_TABLE_CAP)


def both_sweeps(raw: np.ndarray, dfa, chunk_size: int, k: int):
    """(unit, strided) results of the full phase-1+2 sweep pair."""
    groups, chunking, padded = chunk_groups(raw, dfa, chunk_size)
    tables = get_tables(padded, k)  # process cache amortises k=8 builds

    unit_vectors = compute_transition_vectors(groups, padded)
    strided_vectors = compute_transition_vectors_strided(groups, tables)

    starts = chunk_start_states(unit_vectors, padded)
    unit = compute_emissions(groups, starts, padded, chunking)
    strided = compute_emissions_strided(groups, starts, tables, chunking)
    return (unit_vectors, unit), (strided_vectors, strided)


def plan_sweeps(raw: np.ndarray, dfa, chunk_size: int, k: int):
    """(unit, plan) results — the mixed-stride ladder path of
    :class:`~repro.kernels.strided.KernelPlan`."""
    groups, chunking, padded = chunk_groups(raw, dfa, chunk_size)
    plan = build_plan(padded, k, chunk_size)
    packed = pack_plan(groups, plan)

    unit_vectors = compute_transition_vectors(groups, padded)
    plan_vectors = compute_transition_vectors_plan(groups, plan, packed)

    starts = chunk_start_states(unit_vectors, padded)
    unit = compute_emissions(groups, starts, padded, chunking)
    planned = compute_emissions_plan(groups, starts, plan, chunking, packed)
    return (unit_vectors, unit), (plan_vectors, planned)


def assert_sweeps_equal(raw: np.ndarray, dfa, chunk_size: int, k: int):
    (uv, (ue, uf, ui)), (sv, (se, sf, si)) = both_sweeps(
        raw, dfa, chunk_size, k)
    np.testing.assert_array_equal(uv, sv)
    np.testing.assert_array_equal(ue, se)
    assert uf == sf
    assert ui == si


@pytest.mark.parametrize("dialect", DIALECTS,
                         ids=lambda d: f"{d.delimiter!r}-{d.quote!r}")
@pytest.mark.parametrize("chunk_size", [3, 5, 8, 31])
def test_tricky_inputs_all_strides(dialect, chunk_size):
    dfa = dialect_dfa(dialect)
    padded = dfa.with_padding_group()
    for data in TRICKY_INPUTS:
        raw = np.frombuffer(data, dtype=np.uint8)
        for k in strides_for(padded):
            assert_sweeps_equal(raw, dfa, chunk_size, k)


@pytest.mark.parametrize("k", [2, 4, 8])
def test_invalid_at_every_block_offset(k):
    """The INV sink must be reported at the same byte whether it is hit
    at a block boundary, mid-block, or in the unit-stride tail."""
    dfa = dialect_dfa(Dialect(strip_carriage_return=False))
    for prefix_len in range(14):
        # A stray quote after unquoted data drives RFC 4180 into INV at
        # a position controlled by the prefix length.
        data = b"x" * prefix_len + b'a"suffix,more\ndata,rows\n'
        raw = np.frombuffer(data, dtype=np.uint8)
        for chunk_size in (5, 7, 31):
            assert_sweeps_equal(raw, dfa, chunk_size, k)
            # And the reported position is the real one, not merely equal.
            _, (_, (_, _, invalid)) = both_sweeps(raw, dfa, chunk_size, k)
            assert invalid is not None
            assert invalid > prefix_len


class TestPaddedTail:
    """Satellite: striding over the padded tail of the chunk grid.

    Inputs whose length is not a multiple of the chunk size leave a
    partially padded final chunk; chunk sizes that are not a multiple of
    k leave a unit-stride tail in *every* chunk.  Neither may leak
    padding into the emission stream or the invalid position.
    """

    DFA = dialect_dfa(Dialect(strip_carriage_return=False))

    @pytest.mark.parametrize("k", [2, 4, 8])
    @pytest.mark.parametrize("chunk_size", [5, 6, 7, 31])
    def test_length_not_multiple_of_chunk(self, k, chunk_size):
        for extra in range(1, chunk_size):
            data = (b"aa,bb\n" * 8)[:8 * 6 - chunk_size + extra]
            raw = np.frombuffer(data, dtype=np.uint8)
            assert_sweeps_equal(raw, self.DFA, chunk_size, k)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_chunk_not_multiple_of_stride(self, k):
        # chunk sizes with every possible tail length 0..k-1
        for chunk_size in range(k, 3 * k + 1):
            data = b"f0,f1,f2\nv0,v1,v2\n" * 3
            raw = np.frombuffer(data, dtype=np.uint8)
            assert_sweeps_equal(raw, self.DFA, chunk_size, k)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_emissions_cover_exactly_the_input(self, k):
        data = b"a,b\nc,d\ne"
        raw = np.frombuffer(data, dtype=np.uint8)
        groups, chunking, padded = chunk_groups(raw, self.DFA, 4)
        tables = get_tables(padded, k)
        starts = chunk_start_states(
            compute_transition_vectors(groups, padded), padded)
        emissions, _, invalid = compute_emissions_strided(
            groups, starts, tables, chunking)
        assert emissions.shape == (len(data),)
        assert invalid is None

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_invalid_only_in_padding_is_not_reported(self, k):
        # An unclosed quote ends the input mid-string: the padding group
        # keeps the DFA in the quoted state, never INV, and nothing
        # beyond the input length may surface.
        data = b'a,"unclosed'
        raw = np.frombuffer(data, dtype=np.uint8)
        for chunk_size in (4, 7, 31):
            (_, (ue, uf, ui)), (_, (se, sf, si)) = both_sweeps(
                raw, self.DFA, chunk_size, k)
            assert ui is None and si is None
            assert uf == sf
            np.testing.assert_array_equal(ue, se)


class TestPlanParity:
    """The mixed-stride ladder (:func:`repro.kernels.build_plan`) must be
    bit-identical to the unit sweep too — this is the path the pipeline
    actually runs, and at k=8 it exercises the 8+8+8+4+2(+1) cascade the
    paper's 31-byte chunk decomposes into."""

    @pytest.mark.parametrize("dialect", DIALECTS,
                             ids=lambda d: f"{d.delimiter!r}-{d.quote!r}")
    @pytest.mark.parametrize("chunk_size", [5, 8, 31])
    def test_tricky_inputs(self, dialect, chunk_size):
        dfa = dialect_dfa(dialect)
        padded = dfa.with_padding_group()
        for data in TRICKY_INPUTS:
            raw = np.frombuffer(data, dtype=np.uint8)
            for k in strides_for(padded):
                if k < 2:
                    continue  # plans exist for k >= 2 only
                (uv, (ue, uf, ui)), (pv, (pe, pf, pi)) = plan_sweeps(
                    raw, dfa, chunk_size, k)
                np.testing.assert_array_equal(uv, pv)
                np.testing.assert_array_equal(ue, pe)
                assert uf == pf
                assert ui == pi

    def test_invalid_position_recovered_across_segments(self):
        """A stray quote driving RFC 4180 into INV must be located at the
        same byte whichever ladder segment consumes it."""
        dfa = dialect_dfa(Dialect(strip_carriage_return=False))
        for prefix_len in range(18):
            data = b"x" * prefix_len + b'a"suffix,more\ndata,rows\n'
            raw = np.frombuffer(data, dtype=np.uint8)
            for chunk_size in (7, 31):
                (_, (_, _, ui)), (_, (_, _, pi)) = plan_sweeps(
                    raw, dfa, chunk_size, 8)
                assert ui == pi and pi is not None


ALPHABET = b'ab,"\n\\|#\t '


@given(
    data=st.lists(st.sampled_from(list(ALPHABET)), max_size=160).map(bytes),
    dialect_index=st.integers(min_value=0, max_value=len(DIALECTS) - 1),
    chunk_size=st.integers(min_value=1, max_value=40),
    k=st.sampled_from(STRIDES),
)
@settings(max_examples=120, deadline=None)
def test_parity_property(data, dialect_index, chunk_size, k):
    dfa = dialect_dfa(DIALECTS[dialect_index])
    padded = dfa.with_padding_group()
    if k not in strides_for(padded):
        k = 4  # group-rich automata keep k=8 coverage via the parser path
    raw = np.frombuffer(data, dtype=np.uint8)
    assert_sweeps_equal(raw, dfa, chunk_size, k)


def _canonical_plan_k8_affordable(dialect) -> bool:
    padded = canonicalize(dialect_dfa(dialect)).dfa.with_padding_group()
    return plan_nbytes(padded.num_groups, padded.num_states,
                       8) <= _K8_RAW_TABLE_CAP


#: Dialects whose *canonical* k=8 plan stays affordable — what an
#: explicit ``kernel_stride=8`` would really build.  Group-rich automata
#: (csv-with-CR, csv-with-comments) are auto-capped to narrower strides
#: in production and keep their k≤4 coverage above.
PLAN_K8_DIALECTS = [d for d in DIALECTS if _canonical_plan_k8_affordable(d)]


@given(
    data=st.lists(st.sampled_from(list(ALPHABET)), max_size=160).map(bytes),
    dialect_index=st.integers(min_value=0,
                              max_value=len(PLAN_K8_DIALECTS) - 1),
    chunk_size=st.integers(min_value=2, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_plan_parity_property_k8(data, dialect_index, chunk_size):
    """Property leg for the production path: minimised first (shrinking
    G**8), then swept with the full k=8 ladder."""
    options = ParseOptions(dialect=PLAN_K8_DIALECTS[dialect_index],
                           chunk_size=chunk_size, kernel_stride=8,
                           kernel_table_budget=_K8_RAW_TABLE_CAP)
    baseline = options.with_(kernel_stride=1)
    a = ParPaRawParser(baseline).parse(bytes(data))
    b = ParPaRawParser(options).parse(bytes(data))
    assert a.table.to_pylist() == b.table.to_pylist()
    assert a.validation.invalid_position == b.validation.invalid_position
    assert a.validation.final_state == b.validation.final_state


# -- full-parser parity, serial and sharded ----------------------------------

@pytest.mark.parametrize("k", STRIDES)
def test_parser_output_identical_across_strides(k):
    baseline = ParseOptions(dialect=Dialect(strip_carriage_return=False),
                            kernel_stride=1)
    strided = ParseOptions(dialect=Dialect(strip_carriage_return=False),
                           kernel_stride=k,
                           kernel_table_budget=_K8_RAW_TABLE_CAP)
    for data in TRICKY_INPUTS:
        a = ParPaRawParser(baseline).parse(data)
        b = ParPaRawParser(strided).parse(data)
        assert a.table.to_pylist() == b.table.to_pylist()
        assert a.num_records == b.num_records
        assert a.validation.invalid_position \
            == b.validation.invalid_position
        assert a.validation.final_state == b.validation.final_state


@pytest.mark.parametrize("dialect", DIALECTS,
                         ids=lambda d: f"{d.delimiter!r}-{d.quote!r}")
def test_minimised_matches_unminimised(dialect):
    """Tentpole acceptance: parsing over the canonical minimised
    automaton is bit-identical to parsing over the raw dialect DFA.
    ``final_state`` is compared up to state class — the minimised path
    reports the class representative, which is behaviourally (name
    string aside) the same parsing context."""
    dfa = dialect_dfa(dialect)
    state_map = canonicalize(dfa).state_map
    for data in TRICKY_INPUTS:
        raw_opts = ParseOptions(dialect=dialect, chunk_size=8,
                                minimize_dfa=False)
        min_opts = raw_opts.with_(minimize_dfa=True)
        a = ParPaRawParser(raw_opts).parse(data)
        b = ParPaRawParser(min_opts).parse(data)
        assert a.table.to_pylist() == b.table.to_pylist()
        assert a.num_records == b.num_records
        assert a.validation.invalid_position \
            == b.validation.invalid_position
        assert a.validation.end_accepted == b.validation.end_accepted
        assert state_map[a.validation.final_state] \
            == state_map[b.validation.final_state]


@pytest.mark.parametrize("k", STRIDES)
def test_sharded_matches_serial_with_stride(k):
    options = ParseOptions(dialect=Dialect(strip_carriage_return=False),
                           chunk_size=8, kernel_stride=k,
                           kernel_table_budget=_K8_RAW_TABLE_CAP)
    executor = ShardedExecutor(workers=3, shard_bytes=21,
                               use_processes=False)
    for data in TRICKY_INPUTS:
        assert_results_match(data, options, executor)


def test_sharded_process_pool_with_stride():
    """Workers resolve the same stride and produce identical results."""
    data = b"".join(b"%d,%d.5,w%d\n" % (i, i, i) for i in range(400))
    options = ParseOptions(dialect=Dialect(strip_carriage_return=False),
                           kernel_stride=2)
    executor = ShardedExecutor(workers=2, shard_bytes=len(data) // 3,
                               use_processes=True)
    assert_results_match(data, options, executor)
