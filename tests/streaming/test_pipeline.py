"""Tests for the streaming pipeline simulator (Figure 7 / Figure 12)."""

import pytest

from repro.errors import StreamingError
from repro.gpusim.cost_model import WorkloadStats
from repro.streaming.buffers import DoubleBuffer
from repro.streaming.pcie import PcieLink
from repro.streaming.pipeline import StreamingPipeline

GB = 1e9
MB = 1024 ** 2


@pytest.fixture(scope="module")
def pipeline():
    return StreamingPipeline()


class TestPcieLink:
    def test_transfer_time(self):
        link = PcieLink(bandwidth=10e9, latency=1e-5)
        assert link.transfer_seconds(10e9) == pytest.approx(1.0, rel=1e-3)

    def test_paper_sanity_check(self):
        """§6: transferring 4.8 GB alone takes ≈0.41 s on PCIe 3 x16."""
        link = PcieLink()
        assert link.min_transfer_time(4.823e9) == pytest.approx(0.41,
                                                                rel=0.05)

    def test_rejects_bad_config(self):
        with pytest.raises(StreamingError):
            PcieLink(bandwidth=0)


class TestDoubleBufferHazards:
    def test_write_after_read_ok(self):
        buffers = DoubleBuffer()
        buffers.read(0, "input", 0.0, 1.0)
        buffers.write(0, "input", 1.0, 2.0)  # fine: readers done

    def test_write_during_read_raises(self):
        buffers = DoubleBuffer()
        buffers.read(0, "input", 0.0, 2.0)
        with pytest.raises(StreamingError, match="corrupt"):
            buffers.write(0, "input", 1.0, 3.0)

    def test_read_before_write_completes_raises(self):
        buffers = DoubleBuffer()
        buffers.write(1, "carry", 0.0, 2.0)
        with pytest.raises(StreamingError, match="precedes"):
            buffers.read(1, "carry", 1.0, 3.0)

    def test_unknown_region(self):
        with pytest.raises(StreamingError):
            DoubleBuffer().read(0, "nope", 0, 1)

    def test_side_mapping(self):
        buffers = DoubleBuffer()
        assert buffers.side(0) == 0
        assert buffers.side(3) == 1


class TestSchedule:
    def test_stages_present(self, pipeline):
        schedule = pipeline.simulate(int(0.5 * GB), 64 * MB)
        stages = {r.stage for r in schedule.records}
        assert stages == {"transfer", "parse", "copy", "return"}

    def test_serial_channels(self, pipeline):
        schedule = pipeline.simulate(int(1 * GB), 64 * MB)
        for stage in ("transfer", "return", "parse"):
            records = sorted(schedule.stage_records(stage),
                             key=lambda r: r.start)
            for a, b in zip(records, records[1:]):
                assert b.start >= a.end - 1e-12, stage

    def test_parse_waits_for_transfer(self, pipeline):
        schedule = pipeline.simulate(int(1 * GB), 64 * MB)
        transfers = {r.partition: r for r in
                     schedule.stage_records("transfer")}
        for parse in schedule.stage_records("parse"):
            assert parse.start >= transfers[parse.partition].end - 1e-12

    def test_overlap_hides_latency(self, pipeline):
        """Streaming must beat the sequential transfer+parse+return sum —
        the entire point of §4.4."""
        total = int(4.823 * GB)
        streamed = pipeline.end_to_end_seconds(total, 128 * MB)
        naive = pipeline.non_streaming_seconds(total)
        assert streamed < 0.6 * naive

    def test_overlap_efficiency_near_one(self, pipeline):
        schedule = pipeline.simulate(int(4.823 * GB), 128 * MB)
        assert schedule.overlap_efficiency() > 0.85

    def test_rejects_bad_sizes(self, pipeline):
        with pytest.raises(StreamingError):
            pipeline.simulate(0, 1)


class TestFigure12Shape:
    def test_u_shape_yelp(self, pipeline):
        """Figure 12: duration falls with partition size, bottoms out
        around 64-256 MB, grows again at 512 MB (fill/drain cost)."""
        total = int(4.823 * GB)
        times = {p: pipeline.end_to_end_seconds(total, p * MB)
                 for p in (4, 16, 64, 128, 256, 512)}
        assert times[4] > times[16] > times[64]
        assert times[512] > min(times.values())
        best = min(times, key=times.get)
        assert best in (64, 128, 256)

    def test_end_to_end_yelp_near_paper(self, pipeline):
        """Paper: 4.8 GB of yelp in ≈0.44 s at the best partition size."""
        best = min(pipeline.end_to_end_seconds(int(4.823 * GB), p * MB)
                   for p in (64, 128, 256))
        assert 0.40 < best < 0.60

    def test_end_to_end_taxi_near_paper(self, pipeline):
        """Paper: 9.1 GB of taxi in ≈0.9 s."""
        best = min(pipeline.end_to_end_seconds(
            int(9.073 * GB), p * MB, WorkloadStats.taxi_like)
            for p in (128, 256, 512))
        assert 0.75 < best < 1.40

    def test_pcie_bound(self, pipeline):
        """§6: end-to-end time ≈ the bare input transfer time — the bus,
        not the parser, is the bottleneck."""
        total = int(4.823 * GB)
        best = pipeline.end_to_end_seconds(total, 128 * MB)
        bare = pipeline.pcie.min_transfer_time(total)
        assert best < 1.35 * bare
