"""Tests for the working streaming parser: stream ≡ batch, always."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ParPaRawParser, ParseOptions, Schema, StreamingParser
from repro.columnar.schema import DataType, Field
from repro.errors import ParseError, StreamingError
from repro.workloads.yelp import YELP_SCHEMA, generate_yelp_like

csv_like = st.text(alphabet=st.sampled_from(list('ab",\n')),
                   max_size=120).map(lambda s: s.encode())


def stream_parse(data: bytes, partition: int, options: ParseOptions):
    stream = StreamingParser(options)
    for i in range(0, max(len(data), 1), partition):
        stream.feed(data[i:i + partition])
    return stream.finish()


class TestEquivalence:
    @given(csv_like, st.integers(1, 40))
    @settings(max_examples=100, deadline=None)
    def test_stream_equals_batch(self, data, partition):
        options = ParseOptions(schema=Schema.all_strings(3))
        batch = ParPaRawParser(options).parse(data).table
        streamed = stream_parse(data, partition, options)
        assert streamed.to_pylist() == batch.to_pylist()

    @pytest.mark.parametrize("partition", [1, 3, 7, 100, 10_000])
    def test_yelp_partitions(self, partition):
        data = generate_yelp_like(5_000)
        options = ParseOptions(schema=YELP_SCHEMA)
        batch = ParPaRawParser(options).parse(data).table
        streamed = stream_parse(data, partition, options)
        assert streamed.to_pylist() == batch.to_pylist()

    def test_partition_smaller_than_record(self):
        # Carry-over must accumulate across multiple partitions when a
        # record exceeds the partition size (§4.4 carry-over semantics).
        data = b'id,"' + b"x" * 500 + b'"\n2,b\n'
        options = ParseOptions(schema=Schema.all_strings(2))
        streamed = stream_parse(data, 64, options)
        batch = ParPaRawParser(options).parse(data).table
        assert streamed.to_pylist() == batch.to_pylist()

    def test_typed_streaming(self):
        schema = Schema([Field("n", DataType.INT64),
                         Field("s", DataType.STRING)])
        options = ParseOptions(schema=schema)
        data = b"1,a\n2,b\n3,c"
        streamed = stream_parse(data, 4, options)
        assert streamed.to_pylist() == [
            {"n": 1, "s": "a"}, {"n": 2, "s": "b"}, {"n": 3, "s": "c"}]


class TestCarryOver:
    def test_carry_sizes_recorded(self):
        options = ParseOptions(schema=Schema.all_strings(2))
        stream = StreamingParser(options)
        stream.feed(b"a,b\nc,")
        assert stream.carry_sizes == [2]  # 'c,' held back
        stream.feed(b"d\n")
        assert stream.carry_sizes == [2, 0]
        stream.finish()

    def test_quoted_newline_not_a_boundary(self):
        options = ParseOptions(schema=Schema.all_strings(2))
        stream = StreamingParser(options)
        stream.feed(b'a,"x\n')   # newline inside quotes: no boundary
        assert stream.records_parsed == 0
        stream.feed(b'y"\n')
        assert stream.records_parsed == 1
        table = stream.finish()
        assert table.to_pylist() == [{"col0": "a", "col1": "x\ny"}]

    def test_empty_feeds(self):
        options = ParseOptions(schema=Schema.all_strings(1))
        stream = StreamingParser(options)
        assert stream.feed(b"") == 0
        stream.feed(b"x\n")
        assert stream.finish().num_rows == 1


class TestFinishRetry:
    def test_failed_flush_preserves_carry_and_allows_retry(self, monkeypatch):
        # A ParseError while flushing the final carry must not mark the
        # stream finished: the carry survives and a retry succeeds.
        options = ParseOptions(schema=Schema.all_strings(2))
        stream = StreamingParser(options)
        stream.feed(b"a,b\nc,d")          # 'c,d' held back as carry
        assert stream._carry == b"c,d"

        real_parse = stream._parser.parse
        calls = {"n": 0}

        def flaky_parse(data):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ParseError("transient failure")
            return real_parse(data)

        monkeypatch.setattr(stream._parser, "parse", flaky_parse)
        with pytest.raises(ParseError):
            stream.finish()
        assert stream._carry == b"c,d", "failed flush must keep the carry"
        table = stream.finish()            # retry succeeds, no 'called twice'
        assert table.to_pylist() == [{"col0": "a", "col1": "b"},
                                     {"col0": "c", "col1": "d"}]
        with pytest.raises(StreamingError, match="twice"):
            stream.finish()

    def test_failed_flush_allows_feeding_more(self, monkeypatch):
        options = ParseOptions(schema=Schema.all_strings(2))
        stream = StreamingParser(options)
        stream.feed(b"a,b\nc,")
        real_parse = stream._parser.parse
        monkeypatch.setattr(
            stream._parser, "parse",
            lambda data: (_ for _ in ()).throw(ParseError("boom")))
        with pytest.raises(ParseError):
            stream.finish()
        monkeypatch.setattr(stream._parser, "parse", real_parse)
        stream.feed(b"d\n")                # stream still live after failure
        assert stream.finish().to_pylist() == [
            {"col0": "a", "col1": "b"}, {"col0": "c", "col1": "d"}]


class TestCarryBound:
    def test_quote_spanning_corpus_trips_the_bound(self):
        # An unterminated quoted field makes every partition extend the
        # carry; the bound must fire with byte-offset diagnostics instead
        # of growing (and re-tagging) the carry forever.
        options = ParseOptions(schema=Schema.all_strings(2))
        stream = StreamingParser(options, max_carry_bytes=64)
        stream.feed(b"ok,1\nok,2\n")       # sane prefix flushes normally
        flushed = stream.bytes_fed
        stream.feed(b'bad,"unterminated ')
        with pytest.raises(StreamingError) as exc_info:
            for _ in range(10):
                stream.feed(b"x" * 32)     # quote never closes
        err = exc_info.value
        assert err.carry_bytes is not None and err.carry_bytes > 64
        assert err.byte_offset == flushed, \
            "diagnostics must point at the first unflushable byte"
        assert "unterminated quoted field" in str(err)
        assert str(err.byte_offset) in str(err)

    def test_bound_ignores_multi_partition_records_below_it(self):
        # Records larger than a partition but below the bound still work.
        data = b'id,"' + b"x" * 500 + b'"\n2,b\n'
        options = ParseOptions(schema=Schema.all_strings(2))
        stream = StreamingParser(options, max_carry_bytes=1024)
        for i in range(0, len(data), 64):
            stream.feed(data[i:i + 64])
        batch = ParPaRawParser(options).parse(data).table
        assert stream.finish().to_pylist() == batch.to_pylist()

    def test_unbounded_when_none(self):
        options = ParseOptions(schema=Schema.all_strings(1))
        stream = StreamingParser(options, max_carry_bytes=None)
        stream.feed(b'"' + b"y" * 4096)    # would trip any small bound
        assert stream.records_parsed == 0

    def test_rejects_nonpositive_bound(self):
        options = ParseOptions(schema=Schema.all_strings(1))
        with pytest.raises(StreamingError, match="max_carry_bytes"):
            StreamingParser(options, max_carry_bytes=0)


class TestExecutorOwnership:
    def test_close_releases_owned_default_executor(self):
        options = ParseOptions(schema=Schema.all_strings(1))
        stream = StreamingParser(options)
        assert not stream._executor.closed
        stream.close()
        assert stream._executor.closed
        stream.close()                     # idempotent

    def test_close_leaves_caller_executor_open(self):
        from repro.exec import SerialExecutor
        options = ParseOptions(schema=Schema.all_strings(1))
        with SerialExecutor() as executor:
            stream = StreamingParser(options, executor=executor)
            stream.close()
            assert not executor.closed, \
                "caller-owned executors must survive stream.close()"


class TestApiGuards:
    def test_requires_schema(self):
        with pytest.raises(StreamingError):
            StreamingParser(ParseOptions())

    def test_rejects_skips(self):
        options = ParseOptions(schema=Schema.all_strings(1),
                               skip_rows=frozenset({0}))
        with pytest.raises(StreamingError):
            StreamingParser(options)

    def test_finish_twice(self):
        options = ParseOptions(schema=Schema.all_strings(1))
        stream = StreamingParser(options)
        stream.finish()
        with pytest.raises(StreamingError):
            stream.finish()

    def test_feed_after_finish(self):
        options = ParseOptions(schema=Schema.all_strings(1))
        stream = StreamingParser(options)
        stream.finish()
        with pytest.raises(StreamingError):
            stream.feed(b"x")

    def test_empty_stream(self):
        options = ParseOptions(schema=Schema.all_strings(2))
        table = StreamingParser(options).finish()
        assert table.num_rows == 0
        assert table.num_columns == 2
