"""Tests for the working streaming parser: stream ≡ batch, always."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ParPaRawParser, ParseOptions, Schema, StreamingParser
from repro.columnar.schema import DataType, Field
from repro.errors import StreamingError
from repro.workloads.yelp import YELP_SCHEMA, generate_yelp_like

csv_like = st.text(alphabet=st.sampled_from(list('ab",\n')),
                   max_size=120).map(lambda s: s.encode())


def stream_parse(data: bytes, partition: int, options: ParseOptions):
    stream = StreamingParser(options)
    for i in range(0, max(len(data), 1), partition):
        stream.feed(data[i:i + partition])
    return stream.finish()


class TestEquivalence:
    @given(csv_like, st.integers(1, 40))
    @settings(max_examples=100, deadline=None)
    def test_stream_equals_batch(self, data, partition):
        options = ParseOptions(schema=Schema.all_strings(3))
        batch = ParPaRawParser(options).parse(data).table
        streamed = stream_parse(data, partition, options)
        assert streamed.to_pylist() == batch.to_pylist()

    @pytest.mark.parametrize("partition", [1, 3, 7, 100, 10_000])
    def test_yelp_partitions(self, partition):
        data = generate_yelp_like(5_000)
        options = ParseOptions(schema=YELP_SCHEMA)
        batch = ParPaRawParser(options).parse(data).table
        streamed = stream_parse(data, partition, options)
        assert streamed.to_pylist() == batch.to_pylist()

    def test_partition_smaller_than_record(self):
        # Carry-over must accumulate across multiple partitions when a
        # record exceeds the partition size (§4.4 carry-over semantics).
        data = b'id,"' + b"x" * 500 + b'"\n2,b\n'
        options = ParseOptions(schema=Schema.all_strings(2))
        streamed = stream_parse(data, 64, options)
        batch = ParPaRawParser(options).parse(data).table
        assert streamed.to_pylist() == batch.to_pylist()

    def test_typed_streaming(self):
        schema = Schema([Field("n", DataType.INT64),
                         Field("s", DataType.STRING)])
        options = ParseOptions(schema=schema)
        data = b"1,a\n2,b\n3,c"
        streamed = stream_parse(data, 4, options)
        assert streamed.to_pylist() == [
            {"n": 1, "s": "a"}, {"n": 2, "s": "b"}, {"n": 3, "s": "c"}]


class TestCarryOver:
    def test_carry_sizes_recorded(self):
        options = ParseOptions(schema=Schema.all_strings(2))
        stream = StreamingParser(options)
        stream.feed(b"a,b\nc,")
        assert stream.carry_sizes == [2]  # 'c,' held back
        stream.feed(b"d\n")
        assert stream.carry_sizes == [2, 0]
        stream.finish()

    def test_quoted_newline_not_a_boundary(self):
        options = ParseOptions(schema=Schema.all_strings(2))
        stream = StreamingParser(options)
        stream.feed(b'a,"x\n')   # newline inside quotes: no boundary
        assert stream.records_parsed == 0
        stream.feed(b'y"\n')
        assert stream.records_parsed == 1
        table = stream.finish()
        assert table.to_pylist() == [{"col0": "a", "col1": "x\ny"}]

    def test_empty_feeds(self):
        options = ParseOptions(schema=Schema.all_strings(1))
        stream = StreamingParser(options)
        assert stream.feed(b"") == 0
        stream.feed(b"x\n")
        assert stream.finish().num_rows == 1


class TestApiGuards:
    def test_requires_schema(self):
        with pytest.raises(StreamingError):
            StreamingParser(ParseOptions())

    def test_rejects_skips(self):
        options = ParseOptions(schema=Schema.all_strings(1),
                               skip_rows=frozenset({0}))
        with pytest.raises(StreamingError):
            StreamingParser(options)

    def test_finish_twice(self):
        options = ParseOptions(schema=Schema.all_strings(1))
        stream = StreamingParser(options)
        stream.finish()
        with pytest.raises(StreamingError):
            stream.finish()

    def test_feed_after_finish(self):
        options = ParseOptions(schema=Schema.all_strings(1))
        stream = StreamingParser(options)
        stream.finish()
        with pytest.raises(StreamingError):
            stream.feed(b"x")

    def test_empty_stream(self):
        options = ParseOptions(schema=Schema.all_strings(2))
        table = StreamingParser(options).finish()
        assert table.num_rows == 0
        assert table.num_columns == 2
