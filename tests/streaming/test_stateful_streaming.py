"""Stateful property test: the streaming parser as a state machine.

Hypothesis drives arbitrary interleavings of feeds (random partition
contents and sizes, including empty feeds) and checks at teardown that the
accumulated streamed output equals one batch parse of everything fed —
the §4.4 carry-over invariant under adversarial schedules.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import ParPaRawParser, ParseOptions, Schema, StreamingParser

OPTIONS = ParseOptions(schema=Schema.all_strings(3))

csv_fragment = st.text(alphabet=st.sampled_from(list('ab",\n')),
                       max_size=40).map(lambda s: s.encode())


class StreamingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.stream = StreamingParser(OPTIONS)
        self.fed = b""
        self.finished = False

    @rule(fragment=csv_fragment)
    def feed(self, fragment):
        if self.finished:
            return
        self.stream.feed(fragment)
        self.fed += fragment

    @rule()
    def feed_empty(self):
        if self.finished:
            return
        assert self.stream.feed(b"") == 0

    @invariant()
    def records_never_exceed_batch(self):
        if self.finished:
            return
        batch = ParPaRawParser(OPTIONS).parse(self.fed)
        # The stream may lag (carry-over holds the tail) but never leads.
        assert self.stream.records_parsed <= batch.num_rows

    def teardown(self):
        if self.finished:
            return
        table = self.stream.finish()
        batch = ParPaRawParser(OPTIONS).parse(self.fed).table
        assert table.to_pylist() == batch.to_pylist()


TestStreamingMachine = StreamingMachine.TestCase
TestStreamingMachine.settings = __import__("hypothesis").settings(
    max_examples=40, stateful_step_count=20, deadline=None)
