"""Tests for pipeline schedule analysis (bottleneck, fill/drain, Gantt)."""

import pytest

from repro.gpusim.cost_model import WorkloadStats
from repro.streaming import StreamingPipeline

GB = 1e9
MB = 1024 ** 2


@pytest.fixture(scope="module")
def schedule():
    return StreamingPipeline().simulate(int(2 * GB), 128 * MB,
                                        WorkloadStats.yelp_like)


class TestAnalysis:
    def test_bottleneck_identified(self, schedule):
        assert schedule.bottleneck() in ("transfer", "parse", "return")
        busiest = schedule.busy_time(schedule.bottleneck())
        for stage in ("transfer", "parse", "return"):
            assert schedule.busy_time(stage) <= busiest + 1e-12

    def test_fill_drain_grows_with_partition(self):
        pipeline = StreamingPipeline()
        small = pipeline.simulate(int(2 * GB), 32 * MB,
                                  WorkloadStats.yelp_like)
        large = pipeline.simulate(int(2 * GB), 512 * MB,
                                  WorkloadStats.yelp_like)
        assert large.fill_drain_seconds() > 4 * small.fill_drain_seconds()

    def test_fill_drain_below_makespan(self, schedule):
        assert 0 < schedule.fill_drain_seconds() < schedule.makespan

    def test_memory_guard(self):
        """A partition whose double buffer exceeds device memory refuses
        to schedule (the Figure 7 allocation must fit)."""
        from repro.errors import StreamingError
        pipeline = StreamingPipeline()
        with pytest.raises(StreamingError, match="device memory"):
            pipeline.simulate(int(20 * GB), int(4 * GB))


class TestGantt:
    def test_renders_rows(self, schedule):
        art = schedule.render_gantt(width=60)
        lines = art.splitlines()
        assert lines[0].startswith("HtD ")
        assert lines[1].startswith("GPU ")
        assert lines[2].startswith("DtH ")
        assert "T" in lines[0] and "P" in lines[1] and "R" in lines[2]

    def test_double_buffer_visible(self, schedule):
        """Alternating case encodes partition parity."""
        art = schedule.render_gantt(width=72)
        assert "T" in art and "t" in art

    def test_empty_schedule(self):
        from repro.streaming.pipeline import PipelineSchedule
        assert "empty" in PipelineSchedule().render_gantt()

    def test_max_partitions_limits_output(self, schedule):
        full = schedule.render_gantt(width=60, max_partitions=None)
        limited = schedule.render_gantt(width=60, max_partitions=2)
        # The limited chart shows fewer busy cells.
        assert sum(c != " " for c in limited) \
            < sum(c != " " for c in full)
