"""Tests for pipeline schedule analysis (bottleneck, fill/drain, Gantt)."""

import pytest

from repro.gpusim.cost_model import WorkloadStats
from repro.streaming import StreamingPipeline
from repro.streaming.pipeline import (
    RESOURCES,
    PipelineSchedule,
    StageRecord,
)

GB = 1e9
MB = 1024 ** 2


@pytest.fixture(scope="module")
def schedule():
    return StreamingPipeline().simulate(int(2 * GB), 128 * MB,
                                        WorkloadStats.yelp_like)


def copy_heavy_schedule() -> PipelineSchedule:
    """A schedule whose GPU time is dominated by carry-over copies.

    Per partition: a 1s transfer, a 1s parse and a 3s copy — the GPU is
    busy 4s per partition, so aggregating by *step* instead of *resource*
    would misreport the transfer/parse/return maximum (2s of returns) as
    the bottleneck.
    """
    records = []
    t = 0.0
    for i in range(3):
        records.append(StageRecord("transfer", i, t, t + 1.0))
        records.append(StageRecord("parse", i, t + 1.0, t + 2.0))
        records.append(StageRecord("copy", i, t + 2.0, t + 5.0))
        records.append(StageRecord("return", i, t + 2.0, t + 4.0))
        t += 5.0
    return PipelineSchedule(records=records)


class TestAnalysis:
    def test_bottleneck_identified(self, schedule):
        assert schedule.bottleneck() in RESOURCES
        busiest = schedule.resource_busy_time(schedule.bottleneck())
        for resource in RESOURCES:
            assert schedule.resource_busy_time(resource) \
                <= busiest + 1e-12

    def test_copy_time_counts_toward_gpu(self, schedule):
        """GPU busy time includes the carry-over copies, not just parse."""
        assert schedule.resource_busy_time("GPU") \
            > schedule.busy_time("parse")
        assert schedule.resource_busy_time("GPU") == pytest.approx(
            schedule.busy_time("parse") + schedule.busy_time("copy"))

    def test_copy_heavy_bottleneck_is_gpu(self):
        """Regression: a copy-dominated schedule must report the GPU.

        Busy times: HtD 3s, GPU 3x(1+3)=12s, DtH 6s.  The old
        per-step aggregation over ``("transfer", "parse", "return")``
        ignored ``copy`` and called ``return`` the bottleneck with an
        overlap efficiency of 6/15.
        """
        schedule = copy_heavy_schedule()
        assert schedule.bottleneck() == "GPU"
        assert schedule.resource_busy_time("GPU") == pytest.approx(12.0)
        assert schedule.makespan == pytest.approx(15.0)
        assert schedule.overlap_efficiency() == pytest.approx(12.0 / 15.0)

    def test_overlap_efficiency_uses_resource_busy_time(self, schedule):
        expected = max(schedule.resource_busy_time(r)
                       for r in RESOURCES) / schedule.makespan
        assert schedule.overlap_efficiency() == pytest.approx(expected)

    def test_fill_drain_grows_with_partition(self):
        pipeline = StreamingPipeline()
        small = pipeline.simulate(int(2 * GB), 32 * MB,
                                  WorkloadStats.yelp_like)
        large = pipeline.simulate(int(2 * GB), 512 * MB,
                                  WorkloadStats.yelp_like)
        assert large.fill_drain_seconds() > 4 * small.fill_drain_seconds()

    def test_fill_drain_below_makespan(self, schedule):
        assert 0 < schedule.fill_drain_seconds() < schedule.makespan

    def test_memory_guard(self):
        """A partition whose double buffer exceeds device memory refuses
        to schedule (the Figure 7 allocation must fit)."""
        from repro.errors import StreamingError
        pipeline = StreamingPipeline()
        with pytest.raises(StreamingError, match="device memory"):
            pipeline.simulate(int(20 * GB), int(4 * GB))


class TestGantt:
    def test_renders_rows(self, schedule):
        art = schedule.render_gantt(width=60)
        lines = art.splitlines()
        assert lines[0].startswith("HtD ")
        assert lines[1].startswith("GPU ")
        assert lines[2].startswith("DtH ")
        assert "T" in lines[0] and "P" in lines[1] and "R" in lines[2]

    def test_double_buffer_visible(self, schedule):
        """Alternating case encodes partition parity."""
        art = schedule.render_gantt(width=72)
        assert "T" in art and "t" in art

    def test_empty_schedule(self):
        from repro.streaming.pipeline import PipelineSchedule
        assert "empty" in PipelineSchedule().render_gantt()

    def test_max_partitions_limits_output(self, schedule):
        full = schedule.render_gantt(width=60, max_partitions=None)
        limited = schedule.render_gantt(width=60, max_partitions=2)
        # The limited chart shows fewer busy cells.
        assert sum(c != " " for c in limited) \
            < sum(c != " " for c in full)

    @pytest.mark.parametrize("width", [-5, 0, 1, 2, 5, 13, 14, 15])
    def test_small_widths_render(self, schedule, width):
        """Regression: width < 14 used to multiply ``'.'`` by a negative
        count (silently dropping the axis) and tiny widths could index
        past the row."""
        art = schedule.render_gantt(width=width)
        lines = art.splitlines()
        assert len(lines) == 4
        effective = max(1, width)
        for line in lines[:3]:
            assert len(line) == 4 + effective
        # The axis footer always carries both endpoints.
        assert "0s" in lines[3] and "s" in lines[3]

    def test_rows_never_overrun(self):
        """Bars must stay inside the row even when a record ends exactly
        at the makespan."""
        schedule = copy_heavy_schedule()
        for width in (1, 2, 3, 7, 50):
            for line in schedule.render_gantt(width=width).splitlines()[:3]:
                assert len(line) == 4 + max(1, width)


class TestScheduleTrace:
    def test_spans_one_per_record(self, schedule):
        spans = schedule.spans()
        assert len(spans) == len(schedule.records)
        assert {s.tid for s in spans} <= set(RESOURCES)

    def test_chrome_trace_valid(self, schedule):
        from repro.obs import validate_chrome_trace
        doc = schedule.to_chrome_trace()
        assert validate_chrome_trace(doc) == []
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(schedule.records)
        # One labelled track per resource.
        labels = {e["args"]["name"] for e in doc["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        assert labels == set(RESOURCES)
