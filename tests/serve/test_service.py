"""The ingest service core: admission, dispatch, deadlines, drain."""

import threading
import time

import pytest

from repro.columnar.schema import Schema
from repro.core.options import ParseOptions
from repro.core.parser import ParPaRawParser
from repro.errors import AdmissionError, ServeError, StreamingError
from repro.kernels import clear_cache
from repro.serve.service import (
    CANCELLED,
    DONE,
    IngestService,
    ServiceConfig,
    TenantPolicy,
    TIMEOUT,
)
from repro.serve.status import health_flags, render_batches, \
    render_checkhealth, render_status

DATA = b"a,b,c\n1,2,3\n4,5,6\n7,8,9\n"


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture()
def service():
    svc = IngestService(ServiceConfig(workers=1))
    yield svc
    svc.close()


class TestParsePath:
    def test_parse_matches_direct_parser(self, service):
        direct = ParPaRawParser().parse(DATA)
        served = service.parse(DATA)
        assert served.table.to_pylist() == direct.table.to_pylist()
        assert served.num_rows == direct.num_rows

    def test_submit_ticket_lifecycle(self, service):
        ticket = service.submit(DATA)
        result = ticket.result(timeout=30)
        assert ticket.state == DONE
        assert ticket.done
        assert result.num_rows == 4

    def test_parse_failure_propagates(self, service):
        from repro.core.options import ColumnCountPolicy
        from repro.errors import ParseError
        strict = ParseOptions(
            column_count_policy=ColumnCountPolicy.STRICT)
        with pytest.raises(ParseError):
            # Ragged input under the strict policy fails inside the
            # dispatcher; the ticket re-raises for the waiter.
            service.parse(b"1,2\n3\n", options=strict)
        status = service.status()
        assert status["requests"]["failed"] == 1

    def test_requests_from_many_threads(self, service):
        direct = ParPaRawParser().parse(DATA).table.to_pylist()
        errors = []

        def worker():
            try:
                for _ in range(5):
                    assert service.parse(DATA).table.to_pylist() == direct
            except Exception as error:   # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert service.status()["requests"]["completed"] == 30


class TestAdmission:
    def test_oversized_request_rejected(self):
        with IngestService(ServiceConfig(max_request_bytes=8)) as svc:
            with pytest.raises(AdmissionError) as info:
                svc.parse(b"x" * 100)
            assert info.value.reason == "oversized"
            status = svc.status()
            assert status["requests"]["rejected"] == 1
            assert status["tenants"]["default"]["rejects"] == 1

    def test_tenant_size_limit_overrides_default(self):
        config = ServiceConfig(
            max_request_bytes=1024,
            tenants={"small": TenantPolicy(max_request_bytes=4)})
        with IngestService(config) as svc:
            svc.parse(DATA)                       # default tenant: fine
            with pytest.raises(AdmissionError):
                svc.parse(DATA, tenant="small")   # same body, tighter cap
            status = svc.status()
            assert status["tenants"]["small"]["rejects"] == 1
            assert status["tenants"]["default"].get("rejects", 0) == 0

    def test_queue_full_rejects_with_retry_after(self):
        # One dispatcher blocked on a slow request + a full queue behind
        # it forces the queue-full path deterministically.
        config = ServiceConfig(workers=1, dispatchers=1, queue_capacity=1)
        svc = IngestService(config)
        release = threading.Event()
        originals = []

        def slow_parse(data):
            release.wait(30)
            return originals[0](data)

        try:
            import repro.serve.service as service_module
            original_parser = service_module.ParPaRawParser

            class SlowParser(original_parser):
                def parse(self, data):
                    release.wait(30)
                    return super().parse(data)

            service_module.ParPaRawParser = SlowParser
            try:
                blocker = svc.submit(DATA)       # occupies the dispatcher
                time.sleep(0.05)
                queued = svc.submit(DATA)        # fills the queue
                with pytest.raises(AdmissionError) as info:
                    svc.submit(DATA)             # bounces
                assert info.value.reason == "queue-full"
                assert info.value.retry_after > 0
            finally:
                service_module.ParPaRawParser = original_parser
                release.set()
            assert blocker.result(timeout=30).num_rows == 4
            assert queued.result(timeout=30).num_rows == 4
        finally:
            release.set()
            svc.close()

    def test_submit_after_close_rejected(self):
        svc = IngestService(ServiceConfig())
        svc.close()
        with pytest.raises(AdmissionError) as info:
            svc.submit(DATA)
        assert info.value.reason == "closed"


class TestAdmissionPricing:
    """Planner-priced admission: cost budgets and drain-scaled hints."""

    def test_tickets_carry_estimated_cost(self, service):
        ticket = service.submit(DATA)
        assert ticket.estimated_cost > 0
        assert ticket.result(timeout=30).num_rows == 4

    def test_over_budget_request_rejected(self):
        config = ServiceConfig(
            tenants={"tiny": TenantPolicy(max_cost_seconds=1e-12)})
        with IngestService(config) as svc:
            with pytest.raises(AdmissionError) as info:
                svc.parse(DATA, tenant="tiny")
            assert info.value.reason == "over-budget"
            assert "max_cost_seconds" in str(info.value)
            assert svc.metrics.counters[
                "serve.admission.rejects.over_budget"] == 1
            assert svc.status()["tenants"]["tiny"]["rejects"] == 1
            # The default tenant has no cost budget: same body admitted.
            assert svc.parse(DATA).num_rows == 4

    def test_status_reports_planner_calibration(self, service):
        service.parse(DATA)
        planner_status = service.status()["planner"]
        assert planner_status["calibration_version"] > 0
        assert planner_status["fingerprints"] >= 1

    def _queue_full_retry_after(self, body: bytes) -> float:
        """Fill a capacity-2 queue behind a blocked dispatcher with
        ``body`` and return the queue-full hint for the overflow."""
        config = ServiceConfig(workers=1, dispatchers=1, queue_capacity=2)
        svc = IngestService(config)
        release = threading.Event()
        import repro.serve.service as service_module
        original_parser = service_module.ParPaRawParser

        class SlowParser(original_parser):
            def parse(self, data):
                release.wait(30)
                return super().parse(data)

        service_module.ParPaRawParser = SlowParser
        try:
            blocker = svc.submit(DATA)           # occupies the dispatcher
            time.sleep(0.05)
            queued = [svc.submit(body) for _ in range(2)]
            with pytest.raises(AdmissionError) as info:
                svc.submit(DATA)                 # bounces
            assert info.value.reason == "queue-full"
            return_value = info.value.retry_after
        finally:
            service_module.ParPaRawParser = original_parser
            release.set()
        assert blocker.result(timeout=30).num_rows == 4
        for ticket in queued:
            ticket.result(timeout=30)
        svc.close()
        return return_value

    def test_retry_after_scales_with_queued_work(self):
        """A queue of large requests yields a larger hint than a queue
        of small ones — the hint prices the estimated drain time."""
        small_hint = self._queue_full_retry_after(DATA)
        large_hint = self._queue_full_retry_after(DATA * 20000)
        assert small_hint > 0
        assert large_hint > small_hint


class TestDeadlinesAndCancel:
    def test_expired_in_queue_never_runs(self):
        svc = IngestService(ServiceConfig(dispatchers=1))
        import repro.serve.service as service_module
        original_parser = service_module.ParPaRawParser
        release = threading.Event()

        class SlowParser(original_parser):
            def parse(self, data):
                release.wait(30)
                return super().parse(data)

        service_module.ParPaRawParser = SlowParser
        try:
            blocker = svc.submit(DATA)
            time.sleep(0.05)
            doomed = svc.submit(DATA, timeout=0.01)
            with pytest.raises(TimeoutError):
                doomed.result(timeout=30)
            assert doomed.state == TIMEOUT
        finally:
            service_module.ParPaRawParser = original_parser
            release.set()
            blocker.result(timeout=30)
            svc.close()
        assert svc.status()["requests"]["timeout"] == 1

    def test_cancel_queued_request(self):
        svc = IngestService(ServiceConfig(dispatchers=1))
        import repro.serve.service as service_module
        original_parser = service_module.ParPaRawParser
        release = threading.Event()

        class SlowParser(original_parser):
            def parse(self, data):
                release.wait(30)
                return super().parse(data)

        service_module.ParPaRawParser = SlowParser
        try:
            blocker = svc.submit(DATA)
            time.sleep(0.05)
            victim = svc.submit(DATA)
            assert victim.cancel()
            assert victim.state == CANCELLED
            assert not victim.cancel()           # settle-once
            with pytest.raises(ServeError, match="cancelled"):
                victim.result(timeout=30)
        finally:
            service_module.ParPaRawParser = original_parser
            release.set()
            blocker.result(timeout=30)
            svc.close()

    def test_wait_budget_is_absolute(self, service):
        # A wait budget shorter than the request must give up on time,
        # not be restarted by wakeups.
        import repro.serve.service as service_module
        original_parser = service_module.ParPaRawParser
        release = threading.Event()

        class SlowParser(original_parser):
            def parse(self, data):
                release.wait(30)
                return super().parse(data)

        service_module.ParPaRawParser = SlowParser
        try:
            ticket = service.submit(DATA)
            start = time.monotonic()
            assert ticket.wait(timeout=0.1) is False
            assert time.monotonic() - start < 5
        finally:
            service_module.ParPaRawParser = original_parser
            release.set()
        ticket.result(timeout=30)


class TestStreams:
    def test_stream_session_accounts_per_tenant(self, service):
        options = ParseOptions(schema=Schema.all_strings(2))
        session = service.open_stream(tenant="edge", options=options)
        session.feed(b"a,b\nc,")
        session.feed(b"d\ne,f\n")
        table = session.finish()
        assert table.num_rows == 3
        status = service.status()
        tenant = status["tenants"]["edge"]
        assert tenant["streams"] == 1
        assert tenant["bytes"] == len(b"a,b\nc,") + len(b"d\ne,f\n")
        assert tenant["records"] == 3
        assert status["batches"][-1]["outcome"] == "stream"

    def test_stream_oversized_partition_rejected(self):
        config = ServiceConfig(
            tenants={"small": TenantPolicy(max_request_bytes=4)})
        with IngestService(config) as svc:
            session = svc.open_stream(
                tenant="small",
                options=ParseOptions(schema=Schema.all_strings(1)))
            with pytest.raises(AdmissionError) as info:
                session.feed(b"long,partition\n")
            assert info.value.reason == "oversized"
            assert svc.status()["tenants"]["small"]["rejects"] == 1

    def test_stream_carry_bound_from_tenant_policy(self):
        config = ServiceConfig(
            tenants={"tight": TenantPolicy(max_carry_bytes=8)})
        with IngestService(config) as svc:
            session = svc.open_stream(
                tenant="tight",
                options=ParseOptions(schema=Schema.all_strings(1)))
            with pytest.raises(StreamingError):
                session.feed(b'"unterminated quote ')


class TestStatusAndReports:
    def test_status_shape(self, service):
        service.parse(DATA)
        status = service.status()
        assert status["state"] == "running"
        assert status["warm"] is True
        assert status["queue"]["capacity"] == 64
        assert status["requests"]["submitted"] == 1
        assert status["requests"]["completed"] == 1
        assert status["kernel_cache"]["misses"] >= 1
        tenant = status["tenants"]["default"]
        assert tenant["bytes"] == len(DATA)
        assert tenant["mean_seconds"] > 0
        batch = status["batches"][-1]
        assert batch["outcome"] == DONE and batch["records"] == 4

    def test_renderers_accept_live_status(self, service):
        service.parse(DATA)
        status = service.status()
        assert "ingest service status" in render_status(status)
        assert "default" in render_batches(status)
        health = render_checkhealth(status)
        assert health.startswith("ingest service health: OK")
        assert all(sev in ("ok", "warn", "error")
                   for sev, _ in health_flags(status))

    def test_health_flags_warn_on_rejects(self):
        with IngestService(ServiceConfig(max_request_bytes=4)) as svc:
            with pytest.raises(AdmissionError):
                svc.parse(DATA)
            flags = dict(health_flags(svc.status()))
            # dict() keeps the last flag per severity; just scan.
            messages = [m for _, m in health_flags(svc.status())]
            assert any("rejected" in m for m in messages)

    def test_closed_status_is_error_flagged(self):
        svc = IngestService(ServiceConfig())
        svc.close()
        status = svc.status()
        assert status["state"] == "closed"
        assert any(sev == "error" for sev, _ in health_flags(status))
        assert "FAIL" in render_checkhealth(status)


class TestDrain:
    def test_drain_completes_queued_work(self):
        svc = IngestService(ServiceConfig(dispatchers=1))
        tickets = [svc.submit(DATA) for _ in range(5)]
        svc.close(drain=True)
        assert all(t.state == DONE for t in tickets)
        assert svc.closed
        assert svc.status()["state"] == "closed"

    def test_close_without_drain_cancels_queued(self):
        svc = IngestService(ServiceConfig(dispatchers=1))
        import repro.serve.service as service_module
        original_parser = service_module.ParPaRawParser
        release = threading.Event()

        class SlowParser(original_parser):
            def parse(self, data):
                release.wait(30)
                return super().parse(data)

        service_module.ParPaRawParser = SlowParser
        try:
            running = svc.submit(DATA)
            time.sleep(0.05)
            queued = [svc.submit(DATA) for _ in range(3)]
            closer = threading.Thread(
                target=lambda: svc.close(drain=False))
            closer.start()
            time.sleep(0.05)
            release.set()
            closer.join(30)
        finally:
            service_module.ParPaRawParser = original_parser
            release.set()
        assert running.done
        assert all(t.state == CANCELLED for t in queued)
        assert svc.status()["requests"]["cancelled"] == 3

    def test_close_is_idempotent(self):
        svc = IngestService(ServiceConfig())
        svc.close()
        svc.close()
        assert svc.closed

    def test_drain_closes_owned_executor(self):
        svc = IngestService(ServiceConfig(workers=1))
        executor = svc.executor
        svc.close()
        assert executor.closed

    def test_caller_executor_survives_close(self):
        from repro.exec import SerialExecutor
        executor = SerialExecutor()
        svc = IngestService(ServiceConfig(), executor=executor)
        svc.parse(DATA)
        svc.close()
        assert not executor.closed
        executor.close()
