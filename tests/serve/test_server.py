"""The socket front end: wire ops, error mapping, connection reuse."""

import socket

import pytest

from repro.core.options import ParseOptions
from repro.core.parser import ParPaRawParser
from repro.dfa import Dialect
from repro.errors import AdmissionError, ServeError
from repro.serve import IngestServer, IngestService, RemoteClient, \
    ServiceConfig
from repro.serve.protocol import read_frame, write_frame

DATA = b"a,b,c\n1,2,3\n4,5,6\n"


@pytest.fixture()
def server():
    service = IngestService(ServiceConfig(workers=1,
                                          max_request_bytes=1024))
    srv = IngestServer(service, own_service=True).start()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    return RemoteClient(server.host, server.port)


class TestOps:
    def test_ping(self, client):
        assert client.ping() is True

    def test_ping_dead_port_is_false(self):
        # Bind-then-close to get a port that refuses connections.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert RemoteClient("127.0.0.1", port,
                            connect_timeout=0.5).ping() is False

    def test_parse_roundtrip_matches_direct(self, client):
        direct = ParPaRawParser().parse(DATA).table
        remote = client.parse(DATA)
        assert remote.to_pylist() == direct.to_pylist()
        assert remote.schema.names == direct.schema.names

    def test_parse_info_carries_counts(self, client):
        header, table = client.parse_info(DATA)
        assert header["records"] == 3
        assert header["rows"] == 3
        assert table.num_rows == 3

    def test_parse_with_wire_options(self, client):
        data = b"x;y\n1;2\n"
        options = ParseOptions(dialect=Dialect(delimiter=b";"))
        direct = ParPaRawParser(options).parse(data).table
        remote = client.parse(data, options=options)
        assert remote.to_pylist() == direct.to_pylist()

    def test_status_op(self, client):
        client.parse(DATA)
        status = client.status()
        assert status["state"] == "running"
        assert status["requests"]["completed"] >= 1
        assert status["executor"] in ("SerialExecutor", "ShardedExecutor")

    def test_tenant_travels(self, server):
        RemoteClient(server.host, server.port, tenant="acme").parse(DATA)
        tenants = server.service.status()["tenants"]
        assert tenants["acme"]["requests"] == 1


class TestErrorMapping:
    def test_oversized_rejected_with_reason(self, client):
        # Over the 1 KiB service cap but under the framing ceiling, so
        # admission (not the protocol layer) rejects it, per-tenant.
        with pytest.raises(AdmissionError) as info:
            client.parse(b"x" * 2000)
        assert info.value.reason == "oversized"

    def test_malformed_options_is_serve_error(self, server):
        # Send a parse frame with unusable options by hand; the server
        # answers with status=error rather than dropping the connection.
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as conn:
            with conn.makefile("rwb") as stream:
                write_frame(stream, {"op": "parse",
                                     "options": {"tagging_mode": "bogus"}},
                            DATA)
                header, _ = read_frame(stream)
        assert header["status"] == "error"
        assert "malformed options" in header["error"]

    def test_unknown_op(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as conn:
            with conn.makefile("rwb") as stream:
                write_frame(stream, {"op": "frobnicate"})
                header, _ = read_frame(stream)
        assert header["status"] == "error"
        assert "unknown op" in header["error"]

    def test_garbage_bytes_answered_with_error_frame(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as conn:
            conn.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 64)
            conn.shutdown(socket.SHUT_WR)
            with conn.makefile("rb") as stream:
                header, _ = read_frame(stream)
        assert header["status"] == "error"

    def test_grossly_oversized_body_cut_at_framing(self, server):
        # Over 2x the service cap: the framing layer refuses before
        # reading the body.
        cap = server.service.config.max_request_bytes
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as conn:
            with conn.makefile("rwb") as stream:
                write_frame(stream, {"op": "parse"}, b"x" * (cap * 4))
                header, _ = read_frame(stream)
        assert header["status"] == "error"
        assert "exceeds" in header["error"]

    def test_client_maps_error_status_to_serve_error(self, server):
        from repro.core.options import ColumnCountPolicy
        client = RemoteClient(server.host, server.port)
        strict = ParseOptions(
            column_count_policy=ColumnCountPolicy.STRICT)
        with pytest.raises(ServeError):
            client.parse(b"1,2\n3\n", options=strict)


class TestConnectionReuse:
    def test_many_frames_one_connection(self, server):
        direct = ParPaRawParser().parse(DATA).table.to_pylist()
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as conn:
            with conn.makefile("rwb") as stream:
                for _ in range(4):
                    write_frame(stream, {"op": "parse"}, DATA)
                    header, body = read_frame(stream)
                    assert header["status"] == "ok"
                from repro.columnar.serialize import read_feather
                assert read_feather(body).to_pylist() == direct
        assert server.service.status()["requests"]["completed"] == 4

    def test_server_survives_abrupt_disconnect(self, server):
        conn = socket.create_connection((server.host, server.port),
                                        timeout=10)
        conn.close()                       # no frame at all
        assert RemoteClient(server.host, server.port).ping()
