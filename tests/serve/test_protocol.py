"""The serve wire format: framing limits and the options codec."""

import io

import pytest

from repro.core.options import ColumnCountPolicy, ParseOptions, \
    PartitionStrategy, TaggingMode
from repro.columnar.schema import DataType, Field, Schema
from repro.dfa import Dialect, rfc4180_dfa
from repro.errors import ProtocolError, ServeError
from repro.serve.protocol import (
    MAGIC,
    MAX_HEADER_BYTES,
    options_from_wire,
    options_to_wire,
    read_frame,
    write_frame,
)


def roundtrip(header, body=b"", max_body=None):
    buffer = io.BytesIO()
    write_frame(buffer, header, body)
    buffer.seek(0)
    if max_body is None:
        return read_frame(buffer)
    return read_frame(buffer, max_body=max_body)


class TestFraming:
    def test_roundtrip(self):
        header, body = roundtrip({"op": "parse", "tenant": "t"}, b"a,b\n")
        assert header == {"op": "parse", "tenant": "t"}
        assert body == b"a,b\n"

    def test_empty_body(self):
        header, body = roundtrip({"op": "ping"})
        assert header["op"] == "ping"
        assert body == b""

    def test_back_to_back_frames(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"n": 1}, b"one")
        write_frame(buffer, {"n": 2}, b"two")
        buffer.seek(0)
        assert read_frame(buffer) == ({"n": 1}, b"one")
        assert read_frame(buffer) == ({"n": 2}, b"two")

    def test_bad_magic(self):
        buffer = io.BytesIO(b"XXXX" + b"\x00" * 32)
        with pytest.raises(ProtocolError, match="magic"):
            read_frame(buffer)

    def test_bad_version(self):
        buffer = io.BytesIO()
        write_frame(buffer, {}, b"")
        raw = bytearray(buffer.getvalue())
        raw[len(MAGIC)] = 99
        with pytest.raises(ProtocolError, match="version"):
            read_frame(io.BytesIO(bytes(raw)))

    def test_truncated_frame(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"op": "parse"}, b"payload")
        truncated = buffer.getvalue()[:-3]
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame(io.BytesIO(truncated))

    def test_oversized_body_rejected_before_read(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            roundtrip({"op": "parse"}, b"x" * 100, max_body=10)

    def test_oversized_header_rejected(self):
        with pytest.raises(ProtocolError, match="header"):
            write_frame(io.BytesIO(),
                        {"pad": "y" * (MAX_HEADER_BYTES + 1)})

    def test_non_dict_header_rejected(self):
        buffer = io.BytesIO()
        # Hand-build a frame whose header JSON is a list.
        import json
        import struct
        header_json = json.dumps([1, 2]).encode()
        buffer.write(MAGIC)
        buffer.write(struct.pack("<HI", 1, len(header_json)))
        buffer.write(header_json)
        buffer.write(struct.pack("<Q", 0))
        buffer.seek(0)
        with pytest.raises(ProtocolError, match="JSON object"):
            read_frame(buffer)


class TestOptionsCodec:
    def test_none_passes_through(self):
        assert options_from_wire(None) is None

    def test_default_options_roundtrip(self):
        options = ParseOptions()
        decoded = options_from_wire(options_to_wire(options))
        assert decoded.dialect == options.dialect
        assert decoded.chunk_size == options.chunk_size
        assert decoded.tagging_mode == options.tagging_mode
        assert decoded.column_count_policy == options.column_count_policy
        assert decoded.schema is None

    def test_exotic_options_roundtrip(self):
        options = ParseOptions(
            dialect=Dialect(delimiter=b";", quote=b"'", comment=b"#",
                            strip_carriage_return=False),
            chunk_size=17,
            kernel_stride=2,
            tagging_mode=TaggingMode.DELIMITED,
            partition_strategy=PartitionStrategy.FIELD_RUN,
            column_count_policy=ColumnCountPolicy.STRICT,
            infer_types=True,
            schema=Schema([Field(name="id", dtype=DataType.INT64),
                           Field(name="name", dtype=DataType.STRING)]),
        )
        decoded = options_from_wire(options_to_wire(options))
        assert decoded.dialect == options.dialect
        assert decoded.chunk_size == 17
        assert decoded.kernel_stride == 2
        assert decoded.tagging_mode == TaggingMode.DELIMITED
        assert decoded.partition_strategy == PartitionStrategy.FIELD_RUN
        assert decoded.column_count_policy == ColumnCountPolicy.STRICT
        assert decoded.infer_types is True
        assert [(f.name, f.dtype) for f in decoded.schema] == \
            [("id", DataType.INT64), ("name", DataType.STRING)]

    def test_columns_shorthand(self):
        decoded = options_from_wire({"schema": {"columns": 3}})
        assert len(list(decoded.schema)) == 3

    def test_custom_dfa_cannot_travel(self):
        options = ParseOptions(dfa=rfc4180_dfa())
        with pytest.raises(ServeError, match="in-process"):
            options_to_wire(options)

    def test_malformed_options_raise_protocol_error(self):
        with pytest.raises(ProtocolError, match="malformed options"):
            options_from_wire({"tagging_mode": "no-such-mode"})
        with pytest.raises(ProtocolError, match="malformed options"):
            options_from_wire({"delimiter": 5})
