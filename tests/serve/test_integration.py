"""The acceptance path: many concurrent clients, one warm executor.

This is the ISSUE's end-to-end criterion, verbatim: at least eight
concurrent clients pushing different inputs through one warm
``ShardedExecutor``-backed service must get tables bit-identical to a
direct ``ParPaRawParser.parse``, the kernel-table cache must be serving
hits from the second request of a dialect on, admission rejects must be
observable per tenant, and a graceful drain must leave no pool
processes or shared-memory segments behind.
"""

import glob
import multiprocessing
import threading

import pytest

from repro.core.parser import ParPaRawParser
from repro.errors import AdmissionError
from repro.exec import ShardedExecutor
from repro.kernels import clear_cache
from repro.serve import Client, IngestService, ServiceConfig, TenantPolicy

CLIENTS = 8
REQUESTS_PER_CLIENT = 3


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _corpus(client_id: int) -> bytes:
    """A distinct, quote-bearing input per client (records vary too)."""
    rows = [
        b'id,name,score',
        b'%d,"client %d",%d.5' % (client_id, client_id, client_id),
        b'%d,"multi\nline ""%d""",-%d' % (client_id, client_id, client_id),
    ]
    rows += [b'%d,plain,%d' % (i, i) for i in range(client_id + 2)]
    return b"\n".join(rows) + b"\n"


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/wnsm_*"))


def test_concurrent_clients_share_one_warm_executor():
    shm_before = _shm_segments()
    # Small shards force real multi-shard schedules even on tiny input.
    executor = ShardedExecutor(workers=2, shard_bytes=16)
    config = ServiceConfig(
        workers=2, dispatchers=3,
        tenants={"small": TenantPolicy(max_request_bytes=8)})
    service = IngestService(config, executor=executor)
    direct = {i: ParPaRawParser().parse(_corpus(i)) for i in range(CLIENTS)}

    mismatches = []
    errors = []
    barrier = threading.Barrier(CLIENTS)

    def run_client(client_id: int):
        client = Client(service, tenant=f"tenant-{client_id % 4}")
        barrier.wait()   # all clients hit the service at once
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                served = client.parse(_corpus(client_id))
                expected = direct[client_id]
                if served.table.to_pylist() != expected.table.to_pylist() \
                        or served.num_records != expected.num_records \
                        or served.num_rows != expected.num_rows:
                    mismatches.append(client_id)
        except Exception as error:   # pragma: no cover - diagnostic
            errors.append((client_id, error))

    threads = [threading.Thread(target=run_client, args=(i,))
               for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)

    try:
        assert not errors
        assert not mismatches

        status = service.status()
        total = CLIENTS * REQUESTS_PER_CLIENT
        assert status["requests"]["completed"] == total
        assert status["warm"] is True
        assert status["executor"] == "ShardedExecutor"

        # One dialect, many requests: everything after the first build
        # of each (fingerprint, stride) key is a cache hit.  The serial
        # stages hit the parent's cache and — because the service keeps
        # real metrics, so workers observe — pool workers merge their
        # hits home too.
        assert service.metrics.counters.get("kernels.cache.hits", 0) > 0

        # Admission rejects are observable per tenant.
        with pytest.raises(AdmissionError) as info:
            service.parse(_corpus(0), tenant="small")
        assert info.value.reason == "oversized"
        status = service.status()
        assert status["tenants"]["small"]["rejects"] == 1
        assert status["requests"]["rejected"] == 1
    finally:
        service.close()
        executor.close()

    # Graceful drain: no pool processes, no shared-memory segments.
    assert service.closed
    for child in multiprocessing.active_children():
        child.join(10)
    assert multiprocessing.active_children() == []
    assert _shm_segments() <= shm_before


def test_second_request_onward_hits_kernel_cache():
    # The narrow version of the acceptance bullet: request 1 misses,
    # request 2 of the same dialect hits.
    with IngestService(ServiceConfig(workers=1)) as service:
        service.parse(_corpus(1))
        hits_after_first = \
            service.metrics.counters.get("kernels.cache.hits", 0)
        service.parse(_corpus(2))
        hits_after_second = \
            service.metrics.counters.get("kernels.cache.hits", 0)
    assert service.metrics.counters["kernels.cache.misses"] >= 1
    assert hits_after_second > hits_after_first


def test_remote_clients_bit_identical_over_the_wire():
    from repro.serve import IngestServer, RemoteClient
    from repro.columnar.serialize import write_feather

    service = IngestService(ServiceConfig(workers=1))
    server = IngestServer(service, own_service=True).start()
    try:
        errors = []
        barrier = threading.Barrier(CLIENTS)

        def run_client(client_id: int):
            data = _corpus(client_id)
            expected = write_feather(ParPaRawParser().parse(data).table)
            client = RemoteClient(server.host, server.port,
                                  tenant=f"tenant-{client_id}")
            barrier.wait()
            try:
                table = client.parse(data)
                # Bit-identical: re-encoding the served table yields the
                # exact bytes the direct parse serialises to.
                if write_feather(table) != expected:
                    errors.append((client_id, "payload mismatch"))
            except Exception as error:   # pragma: no cover
                errors.append((client_id, error))

        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors
        assert service.status()["requests"]["completed"] == CLIENTS
    finally:
        server.close()
    assert service.closed
