"""Tests for symbol-group compression of transition tables."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dfa.compression import expand_table, group_symbols, is_minimal
from repro.dfa.csv import dialect_dfa
from repro.dfa.dialects import Dialect
from repro.errors import DfaError


class TestGroupSymbols:
    def test_csv_collapses_to_four_groups(self, csv_dfa):
        full = expand_table(csv_dfa)
        compressed = group_symbols(full)
        assert compressed.num_groups == 4

    def test_roundtrip(self, csv_dfa):
        full = expand_table(csv_dfa)
        compressed = group_symbols(full)
        rebuilt = compressed.transitions[compressed.symbol_groups]
        assert np.array_equal(rebuilt, full)

    def test_rejects_bad_shape(self):
        with pytest.raises(DfaError):
            group_symbols(np.zeros((10, 3), dtype=np.uint8))

    @given(st.integers(min_value=1, max_value=6))
    def test_constant_table_one_group(self, num_states):
        full = np.ones((256, num_states), dtype=np.uint8) % num_states
        compressed = group_symbols(full)
        assert compressed.num_groups == 1

    def test_group_numbering_deterministic(self):
        full = np.zeros((256, 2), dtype=np.uint8)
        full[ord("a")] = [1, 0]
        full[ord("z")] = [1, 0]
        compressed = group_symbols(full)
        # Byte 0's row appears first -> group 0; 'a' and 'z' share group 1.
        assert compressed.symbol_groups[0] == 0
        assert compressed.symbol_groups[ord("a")] == 1
        assert compressed.symbol_groups[ord("z")] == 1


class TestIsMinimal:
    def test_paper_dfas_minimal(self, csv_dfa, comment_dfa):
        assert is_minimal(csv_dfa)
        assert is_minimal(comment_dfa)

    def test_log_dfas_minimal(self):
        from repro.dfa.logformats import common_log_format_dfa, \
            extended_log_format_dfa
        assert is_minimal(common_log_format_dfa())
        assert is_minimal(extended_log_format_dfa())

    def test_all_dialects_minimal(self):
        for dialect in (Dialect.csv(), Dialect.tsv(), Dialect.pipe(),
                        Dialect.csv_with_comments(),
                        Dialect(escape=b"\\")):
            assert is_minimal(dialect_dfa(dialect)), dialect
