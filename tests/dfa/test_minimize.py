"""DFA minimisation: partitions, canonical forms, equivalence, inclusion.

The tentpole machinery of :mod:`repro.dfa.minimize` carries three
load-bearing claims, each tested here: (1) both partition engines —
Hopcroft's worklist and the data-parallel scan-shaped refinement —
compute the *coarsest* Mealy-consistent partition and agree with each
other; (2) :func:`canonicalize` is a behaviour-preserving idempotent
normal form, so behaviourally equivalent automata get bit-identical
canonical tables; (3) :func:`equivalent` / :func:`included` decide
byte-level behavioural equality/ordering exactly.
"""

import numpy as np
import pytest

from repro.dfa import (
    Dfa,
    DfaBuilder,
    Dialect,
    Emission,
    dialect_dfa,
    rfc4180_dfa,
)
from repro.dfa.minimize import (
    Minimization,
    canonicalize,
    equivalent,
    hopcroft_partition,
    included,
    is_canonical,
    minimize,
    parallel_partition,
    same_partition,
    structural_digest,
)
ALL_DIALECTS = [
    Dialect(strip_carriage_return=False),
    Dialect.csv(),
    Dialect.tsv(),
    Dialect.pipe(),
    Dialect.csv_with_comments(),
    Dialect(escape=b"\\", quote=None, strip_carriage_return=False),
    Dialect(delimiter=b";", comment=b"#"),
]


def simulate_bytes(dfa: Dfa, data: bytes):
    """Scalar reference run: (final state, emission list, first invalid)."""
    state = dfa.start_state
    emissions = []
    first_invalid = None
    for i, byte in enumerate(data):
        if dfa.invalid_state is not None and state == dfa.invalid_state \
                and first_invalid is None:
            first_invalid = i
        group = int(dfa.symbol_groups[byte])
        emissions.append(int(dfa.emissions[state, group]))
        state = int(dfa.transitions[group, state])
    return state, emissions, first_invalid


CORPUS = [
    b"",
    b"a,b\nc,d\n",
    b'"a,b","c\nd"\n',
    b'a"bad\n',
    b"x|y\tz\n",
    b"# comment\nv,w\n",
    b"a\\,b\n",
    b"trailing,",
]


class TestPartitionEngines:
    @pytest.mark.parametrize("dialect", ALL_DIALECTS,
                             ids=lambda d: f"{d.delimiter!r}-{d.quote!r}"
                                           f"-{d.comment!r}")
    def test_engines_agree(self, dialect):
        dfa = dialect_dfa(dialect)
        assert same_partition(parallel_partition(dfa),
                              hopcroft_partition(dfa))

    def test_rfc4180_merges_eor_eof(self):
        # EOR and EOF behave identically in RFC 4180 (Table 1 rows are
        # equal); the coarsest partition must merge them.
        dfa = rfc4180_dfa()
        labels = parallel_partition(dfa)
        names = dfa.state_names
        assert labels[names.index("EOR")] == labels[names.index("EOF")]
        assert labels[names.index("EOR")] != labels[names.index("FLD")]

    def test_single_state_collapse(self):
        # A quote-less no-CR automaton distinguishes states only through
        # emissions; all of EOR/FLD/EOF behave identically.
        dfa = dialect_dfa(Dialect(delimiter=b"|", quote=None,
                                  strip_carriage_return=False))
        labels = parallel_partition(dfa)
        assert int(labels.max()) + 1 < dfa.num_states

    def test_partition_never_merges_across_emissions(self):
        dfa = rfc4180_dfa()
        labels = parallel_partition(dfa)
        for a in range(dfa.num_states):
            for b in range(a + 1, dfa.num_states):
                if labels[a] == labels[b]:
                    np.testing.assert_array_equal(dfa.emissions[a],
                                                  dfa.emissions[b])


class TestCanonicalForm:
    @pytest.mark.parametrize("dialect", ALL_DIALECTS,
                             ids=lambda d: f"{d.delimiter!r}-{d.quote!r}"
                                           f"-{d.comment!r}")
    def test_behaviour_preserved(self, dialect):
        source = dialect_dfa(dialect)
        canon = canonicalize(source)
        assert equivalent(source, canon.dfa)
        for data in CORPUS:
            sf, se, si = simulate_bytes(source, data)
            cf, ce, ci = simulate_bytes(canon.dfa, data)
            assert se == ce
            assert si == ci
            # Final states correspond through the class maps.
            assert canon.state_map[sf] == cf
            assert int(canon.state_rep[cf]) in \
                np.flatnonzero(canon.state_map == cf)

    @pytest.mark.parametrize("dialect", ALL_DIALECTS,
                             ids=lambda d: f"{d.delimiter!r}-{d.quote!r}"
                                           f"-{d.comment!r}")
    def test_idempotent(self, dialect):
        canon = canonicalize(dialect_dfa(dialect))
        assert is_canonical(canon.dfa)
        again = minimize(canon.dfa)
        assert again.states_merged == 0
        assert again.groups_merged == 0

    def test_start_state_is_zero(self):
        for dialect in ALL_DIALECTS:
            assert canonicalize(dialect_dfa(dialect)).dfa.start_state == 0

    def test_rfc4180_canonical_shape(self):
        canon = canonicalize(rfc4180_dfa())
        assert canon.source.num_states == 6
        assert canon.dfa.num_states == 5       # EOR+EOF merged
        assert canon.states_merged == 1
        assert canon.dfa.num_groups == 4

    def test_pipe_collapses_to_one_state(self):
        dfa = dialect_dfa(Dialect(delimiter=b"|", quote=None,
                                  strip_carriage_return=False))
        canon = canonicalize(dfa)
        assert canon.dfa.num_states == 1
        assert canon.dfa.num_groups == 3       # EOL, DELIM, OTHER
        assert canon.dfa.invalid_state is None

    def test_unreachable_states_pruned(self):
        b = DfaBuilder()
        b.state("A", accepting=True)
        b.state("ORPHAN")                      # nothing reaches it
        b.group("X", b"x")
        b.catch_all("REST")
        b.transition("A", "X", "A", Emission.DATA)
        b.transition("A", "REST", "A", Emission.DATA)
        b.transition("ORPHAN", "X", "A", Emission.CONTROL)
        b.transition("ORPHAN", "REST", "ORPHAN", Emission.DATA)
        b.start("A")
        canon = canonicalize(b.build())
        assert canon.dfa.num_states == 1
        assert canon.state_map[1] == -1        # ORPHAN pruned

    def test_equivalent_sources_get_identical_tables(self):
        # Structurally different, behaviourally equal automata must end
        # on bit-identical canonical transition/emission tables.
        a = canonicalize(rfc4180_dfa()).dfa
        b = canonicalize(dialect_dfa(Dialect(strip_carriage_return=False))
                         ).dfa
        np.testing.assert_array_equal(a.transitions, b.transitions)
        np.testing.assert_array_equal(a.emissions, b.emissions)
        np.testing.assert_array_equal(a.symbol_groups, b.symbol_groups)

    def test_canonicalize_is_cached(self):
        dfa = rfc4180_dfa()
        assert canonicalize(dfa) is canonicalize(dfa)

    def test_digest_distinguishes_structure(self):
        a = rfc4180_dfa()
        b = dialect_dfa(Dialect.csv())
        assert structural_digest(a) != structural_digest(b)
        assert structural_digest(a) == structural_digest(rfc4180_dfa())

    def test_method_selection(self):
        dfa = rfc4180_dfa()
        p = minimize(dfa, method="parallel")
        h = minimize(dfa, method="hopcroft")
        assert isinstance(p, Minimization) and isinstance(h, Minimization)
        np.testing.assert_array_equal(p.state_map, h.state_map)
        with pytest.raises(ValueError):
            minimize(dfa, method="brzozowski")


class TestEquivalence:
    def test_reflexive(self):
        for dialect in ALL_DIALECTS:
            dfa = dialect_dfa(dialect)
            assert equivalent(dfa, dfa)

    def test_distinguishes_dialects(self):
        assert not equivalent(dialect_dfa(Dialect.csv()),
                              dialect_dfa(Dialect.tsv()))

    def test_cr_handling_matters(self):
        # rfc4180 (no CR group) classifies \r as DATA; the CR-stripping
        # variant treats it as control — behaviourally different.
        assert not equivalent(rfc4180_dfa(), dialect_dfa(Dialect.csv()))
        assert equivalent(
            rfc4180_dfa(),
            dialect_dfa(Dialect(strip_carriage_return=False)))

    def test_detects_single_emission_change(self):
        base = rfc4180_dfa()
        emissions = base.emissions.copy()
        emissions[2, 3] = Emission.CONTROL.value  # FLD/OTHER flipped
        twisted = Dfa(
            state_names=base.state_names,
            symbol_groups=base.symbol_groups.copy(),
            group_names=base.group_names,
            transitions=base.transitions.copy(),
            emissions=emissions,
            start_state=base.start_state,
            accepting=base.accepting,
            invalid_state=base.invalid_state,
        )
        assert not equivalent(base, twisted)


class TestInclusion:
    def test_every_dfa_includes_itself(self):
        dfa = rfc4180_dfa()
        assert included(dfa, dfa)

    def test_strict_superset(self):
        strict = rfc4180_dfa()
        lenient_dialect = dialect_dfa(
            Dialect(quote=None, strip_carriage_return=False))
        # Quote-less CSV treats '"' as data — but it also treats quoted
        # delimiters as real delimiters, so neither includes the other.
        assert not included(strict, lenient_dialect)
        assert not included(lenient_dialect, strict)

    def test_inclusion_is_ordered(self):
        from repro.analysis.dfaproofs import lenient_rfc4180_dfa
        strict = rfc4180_dfa()
        lenient = lenient_rfc4180_dfa()
        assert included(strict, lenient)
        assert not included(lenient, strict)
