"""Tests for the fluent DFA builder."""

import pytest

from repro.dfa.automaton import Emission
from repro.dfa.builder import DfaBuilder
from repro.errors import DfaError


def parity_builder() -> DfaBuilder:
    return (DfaBuilder()
            .state("EVEN", accepting=True)
            .state("ODD")
            .group("flip", b"a")
            .catch_all("other")
            .transition("EVEN", "flip", "ODD", Emission.DATA)
            .transition("ODD", "flip", "EVEN", Emission.DATA)
            .transition("EVEN", "other", "EVEN", Emission.DATA)
            .transition("ODD", "other", "ODD", Emission.DATA)
            .start("EVEN"))


class TestBuild:
    def test_docstring_example(self):
        dfa = parity_builder().build()
        state, _ = dfa.simulate(b"abca")
        assert dfa.state_names[state] == "EVEN"

    def test_missing_start(self):
        builder = parity_builder()
        builder._start = None
        with pytest.raises(DfaError):
            builder.build()

    def test_duplicate_state(self):
        with pytest.raises(DfaError):
            DfaBuilder().state("A").state("A")

    def test_duplicate_group(self):
        with pytest.raises(DfaError):
            DfaBuilder().group("g", b"a").group("g", b"b")

    def test_byte_in_two_groups(self):
        builder = (DfaBuilder().state("A").group("g1", b"a")
                   .group("g2", b"a").catch_all("rest").start("A"))
        with pytest.raises(DfaError):
            builder.build()

    def test_duplicate_transition(self):
        builder = parity_builder()
        with pytest.raises(DfaError):
            builder.transition("EVEN", "flip", "EVEN")

    def test_unknown_references(self):
        builder = DfaBuilder().state("A").group("g", b"a")
        with pytest.raises(DfaError):
            builder.transition("X", "g", "A")
        with pytest.raises(DfaError):
            builder.transition("A", "nope", "A")
        with pytest.raises(DfaError):
            builder.start("X")

    def test_missing_transition_without_invalid(self):
        builder = (DfaBuilder().state("A").group("g", b"a")
                   .catch_all("rest").start("A")
                   .transition("A", "g", "A"))
        with pytest.raises(DfaError):
            builder.build()  # "rest" transition undefined, no INV

    def test_missing_transitions_default_to_invalid(self):
        dfa = (DfaBuilder().state("A", accepting=True)
               .invalid_state("BAD")
               .group("g", b"a").catch_all("rest")
               .transition("A", "g", "A", Emission.DATA)
               .start("A").build())
        state, _ = dfa.simulate(b"ax")
        assert dfa.state_names[state] == "BAD"
        assert dfa.invalid_state == dfa.state_index("BAD")

    def test_invalid_state_is_forced_sink(self):
        dfa = (DfaBuilder().state("A").invalid_state("BAD")
               .group("g", b"a").catch_all("rest")
               .transition("A", "g", "A")
               # Even an explicit escape from BAD is overridden:
               .transition("BAD", "g", "A")
               .start("A").build())
        inv = dfa.state_index("BAD")
        assert all(int(dfa.transitions[g, inv]) == inv
                   for g in range(dfa.num_groups))

    def test_catch_all_covers_everything(self):
        dfa = parity_builder().build()
        # "flip" is group 0, the catch-all "other" is group 1.
        assert dfa.group_of(ord("a")) == 0
        assert dfa.group_of(0) == 1
        assert dfa.group_of(255) == 1

    def test_no_catch_all_requires_full_coverage(self):
        builder = DfaBuilder().state("A").group("g", bytes(range(256)))
        builder.transition("A", "g", "A").start("A")
        dfa = builder.build()
        assert dfa.num_groups == 1

    def test_group_accepts_int_iterable(self):
        dfa = (DfaBuilder().state("A").group("g", [0x61, 0x62])
               .catch_all("rest")
               .transition("A", "g", "A")
               .transition("A", "rest", "A")
               .start("A").build())
        assert dfa.group_of(0x61) == dfa.group_of(0x62) == 0

    def test_group_rejects_out_of_range(self):
        with pytest.raises(DfaError):
            DfaBuilder().group("g", [300])
