"""Property tests: parallel UTF-8 validation ≡ Python's strict decoder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfa.utf8 import utf8_validation_dfa, validate_utf8


def python_accepts(data: bytes) -> bool:
    try:
        data.decode("utf-8", errors="strict")
        return True
    except UnicodeDecodeError:
        return False


class TestAutomaton:
    def test_nine_states_twelve_groups(self):
        dfa = utf8_validation_dfa()
        assert dfa.num_states == 9
        assert dfa.num_groups == 12

    def test_minimal(self):
        from repro.dfa.compression import is_minimal
        assert is_minimal(utf8_validation_dfa())


class TestKnownCases:
    @pytest.mark.parametrize("data", [
        b"",
        b"plain ascii",
        "grüße".encode(),
        "日本語".encode(),
        "😀🎉".encode(),
        b"\xf4\x8f\xbf\xbf",          # U+10FFFF, the maximum
        b"\xed\x9f\xbf",              # U+D7FF, last before surrogates
        b"\xee\x80\x80",              # U+E000, first after surrogates
    ])
    def test_valid(self, data):
        assert validate_utf8(data)

    @pytest.mark.parametrize("data", [
        b"\x80",                      # bare continuation
        b"\xc3",                      # truncated 2-byte
        b"\xe0\x80\x80",              # overlong 3-byte
        b"\xc0\xaf",                  # overlong 2-byte (C0 banned)
        b"\xed\xa0\x80",              # UTF-16 high surrogate
        b"\xf4\x90\x80\x80",          # beyond U+10FFFF
        b"\xf5\x80\x80\x80",          # banned lead F5
        b"ok then \xff",              # stray invalid byte
        b"\xe2\x82",                  # truncated 3-byte
        b"\xc3\xc3\xa9",              # continuation missing
    ])
    def test_invalid(self, data):
        assert not validate_utf8(data)


class TestEquivalenceWithPython:
    @given(st.binary(max_size=120), st.integers(1, 17))
    @settings(max_examples=250)
    def test_arbitrary_bytes(self, data, chunk_size):
        assert validate_utf8(data, chunk_size) == python_accepts(data)

    @given(st.text(max_size=60), st.integers(1, 17))
    @settings(max_examples=100)
    def test_valid_text_accepted(self, text, chunk_size):
        assert validate_utf8(text.encode("utf-8"), chunk_size)

    @given(st.text(min_size=1, max_size=40), st.integers(0, 100))
    @settings(max_examples=100)
    def test_corruption_detected_like_python(self, text, position):
        data = bytearray(text.encode("utf-8"))
        position = position % len(data)
        data[position] ^= 0x80  # flip the high bit of one byte
        assert validate_utf8(bytes(data)) == python_accepts(bytes(data))


class TestChunkIndependence:
    @given(st.binary(max_size=80))
    @settings(max_examples=80)
    def test_all_chunk_sizes_agree(self, data):
        results = {validate_utf8(data, cs) for cs in (1, 2, 5, 31, 1000)}
        assert len(results) == 1
