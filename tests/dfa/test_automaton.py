"""Tests for the DFA data model."""

import numpy as np
import pytest

from repro.dfa.automaton import Dfa, Emission
from repro.errors import DfaError


def tiny_dfa() -> Dfa:
    """Two states toggled by byte 'a'; everything else self-loops."""
    groups = np.zeros(256, dtype=np.uint8)
    groups[ord("a")] = 1
    return Dfa(
        state_names=("EVEN", "ODD"),
        symbol_groups=groups,
        group_names=("other", "flip"),
        transitions=np.array([[0, 1], [1, 0]], dtype=np.uint8),
        emissions=np.zeros((2, 2), dtype=np.uint8),
        start_state=0,
        accepting=frozenset({0}),
    )


class TestConstruction:
    def test_tiny_builds(self):
        dfa = tiny_dfa()
        assert dfa.num_states == 2
        assert dfa.num_groups == 2

    def test_rejects_bad_transition_shape(self):
        with pytest.raises(DfaError):
            Dfa(state_names=("A",),
                symbol_groups=np.zeros(256, dtype=np.uint8),
                group_names=("g",),
                transitions=np.zeros((2, 1), dtype=np.uint8),
                emissions=np.zeros((1, 1), dtype=np.uint8),
                start_state=0, accepting=frozenset())

    def test_rejects_out_of_range_state(self):
        with pytest.raises(DfaError):
            Dfa(state_names=("A",),
                symbol_groups=np.zeros(256, dtype=np.uint8),
                group_names=("g",),
                transitions=np.array([[3]], dtype=np.uint8),
                emissions=np.zeros((1, 1), dtype=np.uint8),
                start_state=0, accepting=frozenset())

    def test_rejects_non_sink_invalid(self):
        with pytest.raises(DfaError):
            Dfa(state_names=("A", "INV"),
                symbol_groups=np.zeros(256, dtype=np.uint8),
                group_names=("g",),
                transitions=np.array([[1, 0]], dtype=np.uint8),
                emissions=np.zeros((2, 1), dtype=np.uint8),
                start_state=0, accepting=frozenset(),
                invalid_state=1)

    def test_tables_frozen(self):
        dfa = tiny_dfa()
        with pytest.raises(ValueError):
            dfa.transitions[0, 0] = 1

    def test_state_index(self):
        dfa = tiny_dfa()
        assert dfa.state_index("ODD") == 1
        with pytest.raises(DfaError):
            dfa.state_index("MISSING")


class TestSimulation:
    def test_toggle(self):
        dfa = tiny_dfa()
        state, emissions = dfa.simulate(b"aa")
        assert state == 0
        state, _ = dfa.simulate(b"aba")
        assert state == 0
        state, _ = dfa.simulate(b"ab")
        assert state == 1

    def test_custom_start_state(self):
        dfa = tiny_dfa()
        state, _ = dfa.simulate(b"b", start_state=1)
        assert state == 1

    def test_transition_vector(self):
        dfa = tiny_dfa()
        assert dfa.transition_vector(b"a") == (1, 0)
        assert dfa.transition_vector(b"aa") == (0, 1)
        assert dfa.transition_vector(b"") == (0, 1)

    def test_is_accepting(self):
        dfa = tiny_dfa()
        assert dfa.is_accepting(0)
        assert not dfa.is_accepting(1)


class TestPaperTable1:
    """The RFC 4180 automaton must reproduce Table 1 exactly."""

    EXPECTED = {
        # group -> transitions for (EOR, ENC, FLD, EOF, ESC, INV)
        "EOL": ("EOR", "ENC", "EOR", "EOR", "EOR", "INV"),
        "QUOTE": ("ENC", "ESC", "INV", "ENC", "ENC", "INV"),
        "DELIM": ("EOF", "ENC", "EOF", "EOF", "EOF", "INV"),
        "OTHER": ("FLD", "ENC", "FLD", "FLD", "INV", "INV"),
    }

    def test_table(self, csv_dfa):
        for g, gname in enumerate(csv_dfa.group_names):
            expected = self.EXPECTED[gname]
            for s in range(csv_dfa.num_states):
                target = csv_dfa.state_names[int(csv_dfa.transitions[g, s])]
                assert target == expected[s], (gname, csv_dfa.state_names[s])

    def test_six_states(self, csv_dfa):
        assert csv_dfa.state_names == ("EOR", "ENC", "FLD", "EOF", "ESC",
                                       "INV")

    def test_four_groups(self, csv_dfa):
        assert csv_dfa.group_names == ("EOL", "QUOTE", "DELIM", "OTHER")

    def test_symbol_group_assignment(self, csv_dfa):
        assert csv_dfa.group_of(ord("\n")) == 0
        assert csv_dfa.group_of(ord('"')) == 1
        assert csv_dfa.group_of(ord(",")) == 2
        assert csv_dfa.group_of(ord("x")) == 3

    def test_format_transition_table(self, csv_dfa):
        rendered = csv_dfa.format_transition_table()
        assert "EOL" in rendered and "EOR" in rendered


class TestPaddingGroup:
    def test_padding_is_identity(self, csv_dfa):
        padded = csv_dfa.with_padding_group()
        pad = padded.num_groups - 1
        assert padded.group_names[-1] == "PAD"
        for s in range(padded.num_states):
            assert int(padded.transitions[pad, s]) == s
            assert padded.emissions[s, pad] == int(Emission.COMMENT)

    def test_original_groups_untouched(self, csv_dfa):
        padded = csv_dfa.with_padding_group()
        assert np.array_equal(padded.transitions[:-1], csv_dfa.transitions)
        assert np.array_equal(padded.symbol_groups, csv_dfa.symbol_groups)
