"""Tests for dialect validation."""

import pytest

from repro.dfa.dialects import Dialect
from repro.errors import DialectError


class TestDialectValidation:
    def test_default_is_rfc4180(self):
        d = Dialect.csv()
        assert d.delimiter == b"," and d.quote == b'"'
        assert d.doubled_quote

    def test_rejects_multibyte_delimiter(self):
        with pytest.raises(DialectError):
            Dialect(delimiter=b",,")

    def test_rejects_empty_delimiter(self):
        with pytest.raises(DialectError):
            Dialect(delimiter=b"")

    def test_rejects_clashing_bytes(self):
        with pytest.raises(DialectError):
            Dialect(delimiter=b",", quote=b",")
        with pytest.raises(DialectError):
            Dialect(comment=b"\n")
        with pytest.raises(DialectError):
            Dialect(escape=b'"')

    def test_rejects_non_bytes(self):
        with pytest.raises(DialectError):
            Dialect(delimiter=",")  # type: ignore[arg-type]

    def test_special_bytes(self):
        d = Dialect.csv_with_comments()
        special = d.special_bytes()
        assert {ord(","), ord("\n"), ord('"'), ord("#"), 0x0D} <= special

    def test_byte_properties(self):
        d = Dialect.tsv()
        assert d.delimiter_byte == ord("\t")
        assert d.quote_byte is None
        assert d.comment_byte is None

    def test_convenience_constructors(self):
        assert Dialect.pipe().delimiter == b"|"
        assert Dialect.csv_with_comments(b";").comment == b";"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Dialect().delimiter = b";"  # type: ignore[misc]
