"""Tests for the log-format DFAs against realistic log lines."""

from repro.baselines.sequential import sequential_rows
from repro.dfa.logformats import common_log_format_dfa, \
    extended_log_format_dfa


class TestCommonLogFormat:
    LINE = (b'127.0.0.1 - frank [10/Oct/2000:13:55:36 -0700] '
            b'"GET /apache_pb.gif HTTP/1.0" 200 2326\n')

    def test_fields(self):
        dfa = common_log_format_dfa()
        rows, state, _ = sequential_rows(self.LINE, dfa)
        assert len(rows) == 1
        assert rows[0] == [b"127.0.0.1", b"-", b"frank",
                           b"10/Oct/2000:13:55:36 -0700",
                           b"GET /apache_pb.gif HTTP/1.0",
                           b"200", b"2326"]
        assert dfa.state_names[state] == "EOR"

    def test_spaces_inside_brackets_are_data(self):
        dfa = common_log_format_dfa()
        rows, _, _ = sequential_rows(b"[a b c] x\n", dfa)
        assert rows == [[b"a b c", b"x"]]

    def test_spaces_inside_quotes_are_data(self):
        dfa = common_log_format_dfa()
        rows, _, _ = sequential_rows(b'"GET / HTTP/1.1" 200\n', dfa)
        assert rows == [[b"GET / HTTP/1.1", b"200"]]

    def test_multiple_lines(self):
        dfa = common_log_format_dfa()
        rows, _, _ = sequential_rows(b"a b\nc d\n", dfa)
        assert rows == [[b"a", b"b"], [b"c", b"d"]]

    def test_quote_inside_bare_field_invalid(self):
        dfa = common_log_format_dfa()
        state, _ = dfa.simulate(b'ab"cd')
        assert dfa.state_names[state] == "INV"


class TestExtendedLogFormat:
    def test_directives_produce_no_records(self):
        dfa = extended_log_format_dfa()
        data = (b"#Version: 1.0\n"
                b"#Fields: date time cs-uri\n"
                b"2018-01-01 00:00:01 /index.html\n")
        rows, _, _ = sequential_rows(data, dfa)
        assert rows == [[b"2018-01-01", b"00:00:01", b"/index.html"]]

    def test_quotes_inside_directive_do_not_poison(self):
        # The quote-counting killer: an odd number of quotes on a
        # directive line must not flip quotation scope for later lines.
        dfa = extended_log_format_dfa()
        data = (b'#Remark: "unbalanced\n'
                b"2018-01-01 00:00:01 /a\n")
        rows, _, _ = sequential_rows(data, dfa)
        assert rows == [[b"2018-01-01", b"00:00:01", b"/a"]]

    def test_quoted_field_with_spaces(self):
        dfa = extended_log_format_dfa()
        rows, _, _ = sequential_rows(b'"Mozilla 5.0" 200\n', dfa)
        assert rows == [[b"Mozilla 5.0", b"200"]]

    def test_hash_mid_line_is_data(self):
        dfa = extended_log_format_dfa()
        rows, _, _ = sequential_rows(b"a b#c\n", dfa)
        assert rows == [[b"a", b"b#c"]]
