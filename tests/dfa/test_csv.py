"""Tests for the CSV dialect DFAs: emission semantics over real inputs."""

import pytest

from repro.dfa.automaton import Emission
from repro.dfa.csv import dialect_dfa, rfc4180_dfa
from repro.dfa.dialects import Dialect
from repro.errors import DialectError

D = Emission.DATA
F = Emission.FIELD_DELIMITER
R = Emission.RECORD_DELIMITER
C = Emission.CONTROL
M = Emission.COMMENT


def emissions_of(dfa, data: bytes) -> list[Emission]:
    _, emissions = dfa.simulate(data)
    return emissions


class TestRfc4180Emissions:
    def test_plain_record(self, csv_dfa):
        assert emissions_of(csv_dfa, b"ab,c\n") == [D, D, F, D, R]

    def test_quoted_field(self, csv_dfa):
        # Quotes are control; the enclosed comma is data.
        assert emissions_of(csv_dfa, b'"a,b"\n') == [C, D, D, D, C, R]

    def test_enclosed_newline_is_data(self, csv_dfa):
        assert emissions_of(csv_dfa, b'"a\nb"\n') == [C, D, D, D, C, R]

    def test_doubled_quote_second_is_data(self, csv_dfa):
        # 'a""b' -> a, control, data-quote, b
        assert emissions_of(csv_dfa, b'"a""b"\n') == [C, D, C, D, D, C, R]

    def test_empty_quoted(self, csv_dfa):
        assert emissions_of(csv_dfa, b'""\n') == [C, C, R]

    def test_quote_in_plain_field_goes_invalid(self, csv_dfa):
        state, emissions = csv_dfa.simulate(b'a"b')
        assert csv_dfa.state_names[state] == "INV"

    def test_garbage_after_closing_quote_invalid(self, csv_dfa):
        state, _ = csv_dfa.simulate(b'"a"x')
        assert csv_dfa.state_names[state] == "INV"

    def test_end_states(self, csv_dfa):
        for data, expected in [(b"a,b\n", "EOR"), (b"a,b", "FLD"),
                               (b"a,", "EOF"), (b'"a"', "ESC"),
                               (b'"a', "ENC")]:
            state, _ = csv_dfa.simulate(data)
            assert csv_dfa.state_names[state] == expected, data

    def test_accepting_states(self, csv_dfa):
        # ENC (unclosed quote) and INV are the non-accepting states.
        names = {csv_dfa.state_names[s] for s in range(csv_dfa.num_states)
                 if csv_dfa.is_accepting(s)}
        assert names == {"EOR", "FLD", "EOF", "ESC"}


class TestCommentDialect:
    def test_comment_line_all_comment(self, comment_dfa):
        emissions = emissions_of(comment_dfa, b"#x\n")
        assert emissions == [M, M, M]

    def test_quote_inside_comment_ignored(self, comment_dfa):
        state, emissions = comment_dfa.simulate(b'#"\na,b\n')
        assert emissions[:3] == [M, M, M]
        assert comment_dfa.state_names[state] == "EOR"

    def test_hash_mid_field_is_data(self, comment_dfa):
        assert emissions_of(comment_dfa, b"a#b\n") == [D, D, D, R]

    def test_hash_after_delimiter_is_data(self, comment_dfa):
        assert emissions_of(comment_dfa, b"a,#b\n") == [D, F, D, D, R]


class TestCrlfDialect:
    def test_crlf_record(self):
        dfa = dialect_dfa(Dialect())  # strip_carriage_return=True
        assert emissions_of(dfa, b"a\r\n") == [D, C, R]

    def test_cr_inside_quotes_is_data(self):
        dfa = dialect_dfa(Dialect())
        assert emissions_of(dfa, b'"a\rb"\n') == [C, D, D, D, C, R]

    def test_lone_cr_goes_invalid(self):
        dfa = dialect_dfa(Dialect())
        state, _ = dfa.simulate(b"a\rb")
        assert dfa.state_names[state] == "INV"


class TestEscapeDialect:
    def test_backslash_escapes_delimiter(self):
        dfa = dialect_dfa(Dialect(escape=b"\\", quote=None,
                                  doubled_quote=False,
                                  strip_carriage_return=False))
        assert emissions_of(dfa, b"a\\,b\n") == [D, C, D, D, R]

    def test_backslash_escapes_newline(self):
        dfa = dialect_dfa(Dialect(escape=b"\\", quote=None,
                                  doubled_quote=False,
                                  strip_carriage_return=False))
        assert emissions_of(dfa, b"a\\\nb\n") == [D, C, D, D, R]

    def test_escape_inside_quotes(self):
        dfa = dialect_dfa(Dialect(escape=b"\\",
                                  strip_carriage_return=False))
        assert emissions_of(dfa, b'"a\\"b"\n') == [C, D, C, D, D, C, R]


class TestUnquotedDialects:
    def test_tsv(self):
        dfa = dialect_dfa(Dialect.tsv())
        assert emissions_of(dfa, b"a\tb\n") == [D, F, D, R]

    def test_pipe(self):
        dfa = dialect_dfa(Dialect.pipe())
        assert emissions_of(dfa, b"a|b\n") == [D, F, D, R]

    def test_no_quote_states(self):
        dfa = dialect_dfa(Dialect.tsv())
        assert "ENC" not in dfa.state_names
        assert "ESC" not in dfa.state_names


class TestRfc4180Factory:
    def test_exact_states(self):
        dfa = rfc4180_dfa()
        assert dfa.state_names == ("EOR", "ENC", "FLD", "EOF", "ESC", "INV")
        assert dfa.start_state == 0
        assert dfa.invalid_state == dfa.state_index("INV")

    def test_figure3_transition_vectors(self):
        # Thread 5 of Figure 3 reads '"' + ',?black"?'-style content; the
        # key checked property: an STV entry per start state.
        dfa = rfc4180_dfa()
        vector = dfa.transition_vector(b'",')
        assert len(vector) == 6
