"""Tests for STV algebra: the §3.1 parsing-context reconstruction."""

from hypothesis import given, strategies as st

from repro.dfa.transitions import compose, identity_vector, \
    transition_vector


class TestCompose:
    def test_identity(self):
        assert compose(identity_vector(4), (3, 2, 1, 0)) == (3, 2, 1, 0)
        assert compose((3, 2, 1, 0), identity_vector(4)) == (3, 2, 1, 0)

    @given(st.data())
    def test_matches_sequential_simulation(self, data):
        """∀ split points: stv(whole) == stv(left) ∘ stv(right)."""
        from repro.dfa.csv import rfc4180_dfa
        dfa = rfc4180_dfa()
        payload = data.draw(st.binary(max_size=40))
        cut = data.draw(st.integers(min_value=0, max_value=len(payload)))
        whole = transition_vector(dfa, payload)
        left = transition_vector(dfa, payload[:cut])
        right = transition_vector(dfa, payload[cut:])
        assert compose(left, right) == whole


class TestTransitionVectorSemantics:
    def test_entry_i_is_end_state_from_start_i(self, csv_dfa):
        chunk = b'9,"Bookcas'
        vector = transition_vector(csv_dfa, chunk)
        for start in range(csv_dfa.num_states):
            end, _ = csv_dfa.simulate(chunk, start_state=start)
            assert vector[start] == end

    def test_figure3_style_quote_chunk(self, csv_dfa):
        # A chunk consisting of a single quote: EOR->ENC, ENC->ESC,
        # FLD->INV, EOF->ENC, ESC->ENC, INV->INV.
        names = csv_dfa.state_names
        vector = transition_vector(csv_dfa, b'"')
        mapped = [names[s] for s in vector]
        assert mapped == ["ENC", "ESC", "INV", "ENC", "ENC", "INV"]
