"""Tests for dialect sniffing."""

import pytest

from repro import ParPaRawParser, ParseOptions
from repro.dfa.sniffer import sniff_dialect
from repro.errors import DialectError
from repro.workloads import generate_clf, generate_taxi_like, \
    generate_yelp_like


class TestSniffDelimiters:
    @pytest.mark.parametrize("delimiter", [b",", b"\t", b";", b"|"])
    def test_detects_delimiter(self, delimiter):
        rows = [delimiter.join([b"alpha", b"42", b"x"]) for _ in range(20)]
        sample = b"\n".join(rows) + b"\n"
        result = sniff_dialect(sample)
        assert result.dialect.delimiter == delimiter
        assert result.num_columns == 3
        assert result.consistency > 0.9

    def test_taxi_like(self):
        sample = generate_taxi_like(8_000, seed=11)
        result = sniff_dialect(sample)
        assert result.dialect.delimiter == b","
        assert result.num_columns == 17

    def test_yelp_like_quoted(self):
        sample = generate_yelp_like(20_000, seed=7)
        result = sniff_dialect(sample)
        assert result.dialect.delimiter == b","
        assert result.dialect.quote == b'"'
        assert result.num_columns == 9

    def test_space_delimited_logs(self):
        sample = generate_clf(30, seed=3)
        result = sniff_dialect(sample)
        assert result.dialect.delimiter == b" "


class TestSniffFeatures:
    def test_detects_comments(self):
        sample = b"#header\n1,2\n#note\n3,4\n" * 5
        result = sniff_dialect(sample)
        assert result.dialect.comment == b"#"
        parsed = ParPaRawParser(
            ParseOptions(dialect=result.dialect)).parse(sample)
        assert parsed.num_rows == 10

    def test_quotes_disabled_when_unused(self):
        sample = b"a,b\nc,d\n" * 10
        result = sniff_dialect(sample)
        # Either choice parses this sample; sniffing must still return a
        # working dialect with the right delimiter.
        assert result.dialect.delimiter == b","

    def test_quoted_fields_with_embedded_delimiters(self):
        sample = b'"a,long,one",2\n"more,commas",4\n' * 8
        result = sniff_dialect(sample)
        assert result.dialect.quote == b'"'
        assert result.num_columns == 2

    def test_trailing_partial_line_tolerated(self):
        sample = b"a,b\nc,d\npartial,li"
        result = sniff_dialect(sample)
        assert result.num_columns == 2


class TestSniffErrors:
    def test_empty_sample(self):
        with pytest.raises(DialectError):
            sniff_dialect(b"")

    def test_single_column_fallback(self):
        # No delimiter at all: 1-column verdict, low consistency claim OK.
        result = sniff_dialect(b"justoneword\nanother\n")
        assert result.num_columns == 1


class TestEndToEnd:
    def test_sniff_then_parse(self):
        sample = b"id;name;qty\n1;bolt;10\n2;nut;20\n"
        result = sniff_dialect(sample)
        parsed = ParPaRawParser(
            ParseOptions(dialect=result.dialect)).parse(sample)
        assert parsed.table.num_columns == 3
        assert parsed.table.row(1) == ("1", "bolt", "10")
