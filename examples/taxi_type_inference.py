#!/usr/bin/env python
"""Numeric-heavy workload: taxi-trips-like CSV, type inference and
column selection.

The NYC taxi dataset (paper §5) stresses type conversion: 17 short
numeric/temporal fields per record.  This example parses it three ways:

1. with the full declared schema;
2. with *type inference* (§4.3) — no schema given, numeric types inferred
   from the data;
3. with *column selection* (§4.3) — materialising only three columns.

Run: ``python examples/taxi_type_inference.py``
"""

from repro import ParPaRawParser, ParseOptions
from repro.workloads import TAXI_SCHEMA, generate_taxi_like


def main() -> None:
    data = generate_taxi_like(150_000, seed=11)

    # 1. Declared schema.
    result = ParPaRawParser(ParseOptions(schema=TAXI_SCHEMA)).parse(data)
    print(f"{result.num_rows} trips, {result.table.num_columns} columns, "
          f"{result.total_rejected_fields} conversion rejects")
    fares = result.table.column("fare_amount").to_list()
    tips = result.table.column("tip_amount").to_list()
    print(f"avg fare: ${sum(fares) / len(fares) / 100:.2f}   "
          f"avg tip: ${sum(tips) / len(tips) / 100:.2f}  (DECIMAL scale 2)")

    # 2. Type inference: no schema at all.
    inferred = ParPaRawParser(ParseOptions(infer_types=True)).parse(data)
    print("\ninferred column types (§4.3):")
    for field in inferred.table.schema:
        print(f"  {field.name:<6} -> {field.dtype.value}")

    # 3. Column selection: only pickup time, distance and total.
    selected = ParPaRawParser(ParseOptions(
        schema=TAXI_SCHEMA,
        select_columns=(1, 4, 16))).parse(data)
    print(f"\nselected columns: {selected.table.schema.names}")
    print("first trips:")
    for row in list(selected.table.rows())[:3]:
        print("  ", row)

    # Conversion collaboration stats (all thread-level for short fields).
    stats = result.collaboration
    print(f"\ncollaboration levels (§3.3): thread={stats.thread_fields} "
          f"block={stats.block_fields} device={stats.device_fields}")


if __name__ == "__main__":
    main()
