#!/usr/bin/env python
"""Quickstart: parse CSV with ParPaRaw and read the columnar result.

Demonstrates the one-call API, typed schemas, the per-step timing
breakdown, and the validation report — the essentials of the library.

Run: ``python examples/quickstart.py``
"""

from repro import (
    DataType,
    Field,
    ParPaRawParser,
    ParseOptions,
    Schema,
    parse_bytes,
)

RAW = b"""\
1941,199.99,"Bookcase"
1938,19.99,"Frame
""Ribba"", black"
2001,5.50,"Lamp, small"
"""


def untyped() -> None:
    """Schema-less parsing: every column is a string."""
    result = parse_bytes(RAW)
    print(f"parsed {result.num_rows} records, "
          f"{result.table.num_columns} columns")
    for row in result.table.rows():
        print("  ", row)


def typed() -> None:
    """Parsing against a typed schema (the paper's Figure 5 pipeline)."""
    schema = Schema([
        Field("article_id", DataType.INT64),
        Field("price", DataType.DECIMAL, decimal_scale=2),
        Field("name", DataType.STRING),
    ])
    result = ParPaRawParser(ParseOptions(schema=schema)).parse(RAW)

    print("\ntyped columns:")
    for field in result.table.schema:
        column = result.table.column(field.name)
        print(f"  {field.name:<12} {field.dtype.value:<8} "
              f"{column.to_list()}")

    print("\nvalidation:",
          f"end state {result.validation.final_state_name!r},",
          f"columns {result.validation.min_columns}"
          f"..{result.validation.max_columns}")

    print("step breakdown (the paper's Figure 9 steps):")
    for step, seconds in sorted(result.step_seconds().items()):
        print(f"  {step:<10} {seconds * 1e6:8.1f} µs")


def main() -> None:
    untyped()
    typed()


if __name__ == "__main__":
    main()
