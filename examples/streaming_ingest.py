#!/usr/bin/env python
"""End-to-end streaming: partitioned parsing with record carry-over (§4.4).

Feeds a dataset to :class:`repro.StreamingParser` in small partitions —
records routinely straddle partition boundaries and are carried over —
then shows the simulated device-side pipeline (Figure 7) and the partition
-size trade-off (Figure 12) on the GPU cost model.

Run: ``python examples/streaming_ingest.py``
"""

from repro import ParPaRawParser, ParseOptions, StreamingParser
from repro.gpusim.cost_model import WorkloadStats
from repro.streaming import StreamingPipeline
from repro.workloads import YELP_SCHEMA, generate_yelp_like

MB = 1024 ** 2
GB = 1e9


def functional_streaming() -> None:
    data = generate_yelp_like(120_000, seed=21)
    options = ParseOptions(schema=YELP_SCHEMA)

    stream = StreamingParser(options)
    partition_size = 8 * 1024
    partitions = 0
    for start in range(0, len(data), partition_size):
        stream.feed(data[start:start + partition_size])
        partitions += 1
    table = stream.finish()

    batch = ParPaRawParser(options).parse(data).table
    assert table.to_pylist() == batch.to_pylist()
    print(f"streamed {len(data):,} bytes in {partitions} partitions "
          f"of {partition_size // 1024} KiB -> {table.num_rows} records, "
          f"identical to the batch parse ✓")
    carried = stream.carry_sizes
    print(f"carry-over per partition: min={min(carried)} "
          f"max={max(carried)} avg={sum(carried) / len(carried):.0f} bytes")


def simulated_pipeline() -> None:
    print("\nFigure 12 on the device model — 4.8 GB yelp-like input:")
    pipeline = StreamingPipeline()
    total = int(4.823 * GB)
    print(f"  {'partition':>10} {'end-to-end':>12}")
    for partition_mb in (4, 8, 16, 32, 64, 128, 256, 512):
        seconds = pipeline.end_to_end_seconds(
            total, partition_mb * MB, WorkloadStats.yelp_like)
        print(f"  {partition_mb:>8}MB {seconds:>11.3f}s")
    naive = pipeline.non_streaming_seconds(total)
    bare = pipeline.pcie.min_transfer_time(total)
    print(f"  without overlapping: {naive:.3f}s; "
          f"bare PCIe transfer alone: {bare:.3f}s")
    print("  -> streaming hides parsing almost entirely behind the bus "
          "(paper §6)")


def main() -> None:
    functional_streaming()
    simulated_pipeline()


if __name__ == "__main__":
    main()
