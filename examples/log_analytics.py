#!/usr/bin/env python
"""Log-file analytics with custom DFAs (the paper's second use case, §1).

Parses Common Log Format and Extended Log Format data using the DFAs from
:mod:`repro.dfa.logformats` — formats where symbols change meaning with
context (spaces inside ``[...]``/``"..."`` are data; ``#`` directive lines
produce no records) and where quote-counting parsers break.

Run: ``python examples/log_analytics.py``
"""

from collections import Counter

from repro import DataType, Field, ParPaRawParser, ParseOptions, Schema
from repro.baselines import QuoteCountParser
from repro.dfa.logformats import common_log_format_dfa, \
    extended_log_format_dfa
from repro.workloads import generate_clf, generate_elf

CLF_SCHEMA = Schema([
    Field("host", DataType.STRING),
    Field("ident", DataType.STRING),
    Field("user", DataType.STRING),
    Field("time", DataType.STRING),
    Field("request", DataType.STRING),
    Field("status", DataType.INT16),
    Field("bytes", DataType.INT64),
])

ELF_SCHEMA = Schema([
    Field("date", DataType.DATE),
    Field("time", DataType.STRING),
    Field("client_ip", DataType.STRING),
    Field("method", DataType.STRING),
    Field("uri", DataType.STRING),
    Field("status", DataType.INT16),
    Field("time_taken", DataType.INT32),
])


def common_log() -> None:
    data = generate_clf(2_000, seed=3)
    options = ParseOptions(dfa=common_log_format_dfa(), schema=CLF_SCHEMA)
    result = ParPaRawParser(options).parse(data)
    print(f"CLF: parsed {result.num_rows} lines, "
          f"{result.total_rejected_fields} rejects")

    statuses = Counter(result.table.column("status").to_list())
    print("  status distribution:",
          dict(sorted(statuses.items())))
    total_bytes = sum(result.table.column("bytes").to_list())
    print(f"  bytes served: {total_bytes:,}")
    errors = statuses.get(500, 0) + statuses.get(404, 0)
    print(f"  error rate: {errors / result.num_rows:.1%}")


def extended_log() -> None:
    data = generate_elf(2_000, seed=5, directive_every=25)
    options = ParseOptions(dfa=extended_log_format_dfa(),
                           schema=ELF_SCHEMA)
    result = ParPaRawParser(options).parse(data)
    directive_lines = sum(1 for line in data.split(b"\n")
                          if line.startswith(b"#"))
    print(f"\nELF: {result.num_rows} records from "
          f"{data.count(chr(10).encode())} lines "
          f"({directive_lines} directives ignored)")

    taken = result.table.column("time_taken").to_list()
    print(f"  p50 time-taken ~ {sorted(taken)[len(taken) // 2]} ms")

    # Why an FSM matters: quote parity is poisoned by directives.
    naive = QuoteCountParser()
    naive_rows = naive.parse_rows(data.replace(b" ", b","))
    print(f"  quote-count parser on the same stream: {len(naive_rows)} "
          f"'records' (directives with quotes corrupt its speculation)")


def main() -> None:
    common_log()
    extended_log()


if __name__ == "__main__":
    main()
