#!/usr/bin/env python
"""In-situ analytics over raw files — the use case motivating the paper.

The introduction motivates fast parsing with "in-situ querying of raw
data" (NoDB and friends, §1): run analytical queries directly over CSV
without a load phase.  This example implements a small query over raw
taxi-like data three ways and checks they agree:

1. **full parse** then filter/aggregate on the columnar result;
2. **projected parse** — ParPaRaw's column selection (§4.3) materialises
   only the three columns the query touches;
3. **streaming parse** — the query runs incrementally over partitions,
   never holding the whole table.

Query: average tip percentage and trip count per passenger_count,
for trips longer than 2 miles.

Run: ``python examples/insitu_query.py``
"""

from collections import defaultdict

from repro import ParPaRawParser, ParseOptions, StreamingParser
from repro.workloads import TAXI_SCHEMA, generate_taxi_like

# Columns used by the query: passenger_count(3), trip_distance(4),
# fare_amount(10), tip_amount(13).
QUERY_COLUMNS = (3, 4, 10, 13)


def aggregate(table) -> dict[int, tuple[int, float]]:
    """count + avg tip% per passenger count, distance > 2 miles."""
    passengers = table.column("passenger_count").to_list()
    distances = table.column("trip_distance").to_list()
    fares = table.column("fare_amount").to_list()
    tips = table.column("tip_amount").to_list()
    sums: dict[int, list[float]] = defaultdict(lambda: [0, 0.0])
    for p, d, f, t in zip(passengers, distances, fares, tips):
        if d is None or d <= 2.0 or f in (None, 0) or t is None:
            continue
        bucket = sums[p]
        bucket[0] += 1
        bucket[1] += t / f
    return {p: (int(c), s / c) for p, (c, s) in sums.items() if c}


def main() -> None:
    data = generate_taxi_like(400_000, seed=11)
    print(f"raw input: {len(data):,} bytes")

    # 1. Full parse.
    full = ParPaRawParser(ParseOptions(schema=TAXI_SCHEMA)).parse(data)
    result_full = aggregate(full.table)

    # 2. Projected parse: only the query's columns are materialised.
    projected = ParPaRawParser(ParseOptions(
        schema=TAXI_SCHEMA, select_columns=QUERY_COLUMNS)).parse(data)
    assert projected.table.num_columns == len(QUERY_COLUMNS)
    result_projected = aggregate(projected.table)

    # 3. Streaming parse: aggregate partition by partition.
    stream = StreamingParser(ParseOptions(schema=TAXI_SCHEMA,
                                          select_columns=QUERY_COLUMNS))
    merged: dict[int, list[float]] = defaultdict(lambda: [0, 0.0])
    for start in range(0, len(data), 64 * 1024):
        stream.feed(data[start:start + 64 * 1024])
    table = stream.finish()
    result_streaming = aggregate(table)

    assert result_full == result_projected == result_streaming
    print("full == projected == streaming ✓\n")
    print(f"{'passengers':>10} {'trips':>8} {'avg tip %':>10}")
    for passengers in sorted(result_full):
        count, tip = result_full[passengers]
        print(f"{passengers:>10} {count:>8} {tip * 100:>9.1f}%")

    saved = 1 - projected.table.num_columns / full.table.num_columns
    print(f"\nprojection materialised {len(QUERY_COLUMNS)}/17 columns "
          f"({saved:.0%} fewer) — irrelevant symbols are dropped at the "
          f"partitioning step (paper §4.3).")


if __name__ == "__main__":
    main()
