#!/usr/bin/env python
"""Custom parsing rules: dialects and hand-built DFAs.

ParPaRaw's flexibility comes from expressing the format as a DFA (§3.1).
This example shows the three levels of customisation:

1. tweaking a :class:`repro.Dialect` (separator, comments, escapes);
2. inspecting the compiled automaton (states, symbol groups — Table 1);
3. building a DFA from scratch with :class:`repro.DfaBuilder` for a format
   the dialect model cannot express (INI-style ``key = value`` lines with
   ``[section]`` headers skipped).

Run: ``python examples/custom_dialect_dfa.py``
"""

from repro import (
    DfaBuilder,
    Dialect,
    ParPaRawParser,
    ParseOptions,
    dialect_dfa,
)
from repro.dfa.automaton import Emission


def dialects() -> None:
    semi = Dialect(delimiter=b";", comment=b"#")
    data = b"# semicolon separated with comments\nx;1\ny;2\n"
    result = ParPaRawParser(ParseOptions(dialect=semi)).parse(data)
    print("semicolon dialect:", result.table.to_pylist())

    escaped = Dialect(escape=b"\\", quote=None, doubled_quote=False)
    data = b"a\\,with\\,commas,b\n"
    result = ParPaRawParser(ParseOptions(dialect=escaped)).parse(data)
    print("backslash escapes:", result.table.to_pylist())


def inspect_automaton() -> None:
    dfa = dialect_dfa(Dialect.csv_with_comments())
    print(f"\ncompiled automaton: {dfa.num_states} states, "
          f"{dfa.num_groups} symbol groups")
    print(dfa.format_transition_table())


def ini_like() -> None:
    """An INI-ish format: 'key = value' records, [section] lines ignored."""
    b = DfaBuilder()
    b.state("LINE_START", accepting=True)
    b.state("KEY", accepting=False)
    b.state("VALUE", accepting=True)
    b.state("SECTION")
    b.invalid_state("INV")

    b.group("EOL", b"\n")
    b.group("EQ", b"=")
    b.group("LBRACKET", b"[")
    b.group("RBRACKET", b"]")
    b.catch_all("CHAR")

    data, fdel, rdel = Emission.DATA, Emission.FIELD_DELIMITER, \
        Emission.RECORD_DELIMITER
    ctrl, cmnt = Emission.CONTROL, Emission.COMMENT

    b.transition("LINE_START", "CHAR", "KEY", data)
    b.transition("LINE_START", "LBRACKET", "SECTION", cmnt)
    b.transition("LINE_START", "EOL", "LINE_START", cmnt)  # blank line
    b.transition("KEY", "CHAR", "KEY", data)
    b.transition("KEY", "EQ", "VALUE", fdel)
    b.transition("VALUE", "CHAR", "VALUE", data)
    b.transition("VALUE", "EQ", "VALUE", data)
    b.transition("VALUE", "LBRACKET", "VALUE", data)
    b.transition("VALUE", "RBRACKET", "VALUE", data)
    b.transition("VALUE", "EOL", "LINE_START", rdel)
    b.transition("SECTION", "CHAR", "SECTION", cmnt)
    b.transition("SECTION", "RBRACKET", "SECTION", cmnt)
    b.transition("SECTION", "EOL", "LINE_START", cmnt)
    dfa = b.start("LINE_START").build()

    ini = (b"[server]\n"
           b"host=db.example.com\n"
           b"port=5432\n"
           b"\n"
           b"[auth]\n"
           b"user=repro\n")
    result = ParPaRawParser(ParseOptions(dfa=dfa)).parse(ini)
    print("\nINI-style records (sections skipped):")
    for row in result.table.rows():
        print("  ", row)


def main() -> None:
    dialects()
    inspect_automaton()
    ini_like()


if __name__ == "__main__":
    main()
