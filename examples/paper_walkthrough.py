#!/usr/bin/env python
"""The paper's worked example (Figures 3-5), executed live.

Walks the exact input from the paper's figures —

    1941,199.99,"Bookcase"
    1938,19.99,"Frame
    ""Ribba"", black"

— through every pipeline stage, printing the intermediate artefacts the
figures show: per-thread state-transition vectors and recovered start
states (Figure 3), per-chunk record counts and rel/abs column offsets with
their scans (Figure 4), and the partitioned per-column symbol strings with
their indexes (Figure 5).

Run: ``python examples/paper_walkthrough.py``
"""

import numpy as np

from repro import rfc4180_dfa
from repro.core.chunking import chunk_groups
from repro.core.context import compute_transition_vectors, \
    chunk_start_states
from repro.core.offsets import compute_chunk_offsets
from repro.core.partition import partition_by_column
from repro.core.css import tagged_index
from repro.core.tagging import compute_emissions, tag_global

DATA = b'1941,199.99,"Bookcase"\n1938,19.99,"Frame\n""Ribba"", black"\n'
CHUNK = 10  # the figures use six ~10-byte chunks


def show(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(1, 60 - len(title)))


def main() -> None:
    dfa = rfc4180_dfa()
    print("input:", DATA)
    print("transition table (paper Table 1):")
    print(dfa.format_transition_table())

    raw = np.frombuffer(DATA, dtype=np.uint8)
    groups, chunking, padded = chunk_groups(raw, dfa, CHUNK)

    show("Figure 3: state-transition vectors per thread")
    vectors = compute_transition_vectors(groups, padded)
    starts = chunk_start_states(vectors, padded)
    names = dfa.state_names
    for c in range(chunking.num_chunks):
        lo, hi = c * CHUNK, min((c + 1) * CHUNK, len(DATA))
        stv = " ".join(f"{names[s]:>3}" for s in vectors[c])
        print(f"thread {c}: {DATA[lo:hi]!r:>16}  stv=[{stv}]  "
              f"start={names[starts[c]]}")

    show("Figure 4: record counts, rel/abs column offsets, scans")
    emissions, final, _ = compute_emissions(groups, starts, padded,
                                            chunking)
    tags = tag_global(emissions, final)
    padded_em = np.full(chunking.num_chunks * CHUNK, 4, dtype=np.uint8)
    padded_em[:len(DATA)] = emissions
    grid = padded_em.reshape(chunking.num_chunks, CHUNK)
    offsets = compute_chunk_offsets(grid == 2, grid == 1)
    for c in range(chunking.num_chunks):
        kind = "abs" if offsets.column_kinds[c] else "rel"
        print(f"thread {c}: records={int(offsets.record_counts[c])} "
              f"column-offset={kind} {int(offsets.column_values[c])}  "
              f"-> entering record={int(offsets.record_offsets[c])}, "
              f"column={int(offsets.entering_column_offsets[c])}")
    print("\ncolumn-tags:", tags.column_ids.tolist())
    print("record-tags:", tags.record_ids.tolist())

    show("Figure 5: partitioning into per-column CSSs + indexes")
    part = partition_by_column(raw, tags.data_mask, tags.column_ids,
                               tags.record_ids, num_columns=3)
    print("column offsets:", part.column_offsets.tolist())
    for column in range(3):
        css = part.column_css(column)
        index = tagged_index(part.column_record_tags(column))
        print(f"column {column}: CSS={css.tobytes()!r}")
        print(f"          records={index.records.tolist()} "
              f"offsets={index.offsets.tolist()} "
              f"lengths={index.lengths.tolist()}")

    show("typed result")
    from repro import DataType, Field, ParseOptions, ParPaRawParser, Schema
    schema = Schema([Field("id", DataType.INT64),
                     Field("price", DataType.DECIMAL),
                     Field("name", DataType.STRING)])
    result = ParPaRawParser(ParseOptions(schema=schema,
                                         chunk_size=CHUNK)).parse(DATA)
    for row in result.table.rows():
        print("  ", row)


if __name__ == "__main__":
    main()
