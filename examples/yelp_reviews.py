#!/usr/bin/env python
"""Text-heavy workload: yelp-reviews-like CSV with embedded delimiters.

This is the paper's adversarial dataset (§5): every field is quoted and
review texts contain commas, newlines and doubled quotes.  The example
shows why context-free parallel splitting fails here — and that ParPaRaw
does not — by comparing against the Instant-Loading-style baseline in both
its unsafe and safe modes.

Run: ``python examples/yelp_reviews.py``
"""

from repro import Dialect, ParPaRawParser, ParseOptions
from repro.baselines import InstantLoadingParser, SequentialParser
from repro.workloads import YELP_SCHEMA, generate_yelp_like

NO_CR = Dialect(strip_carriage_return=False)


def main() -> None:
    data = generate_yelp_like(200_000, seed=7)
    options = ParseOptions(dialect=NO_CR, schema=YELP_SCHEMA)

    result = ParPaRawParser(options).parse(data)
    print(f"input: {len(data):,} bytes, {result.num_rows} reviews "
          f"(~{len(data) // max(result.num_rows, 1)} B/record)")

    reference = SequentialParser(options).parse(data)
    assert result.table.to_pylist() == reference.to_pylist()
    print("ParPaRaw output == sequential reference ✓")

    stars = result.table.column("stars").to_list()
    texts = result.table.column("text").to_list()
    print(f"avg stars: {sum(stars) / len(stars):.2f}; "
          f"avg review length: "
          f"{sum(len(t) for t in texts) / len(texts):.0f} chars")
    multiline = sum("\n" in t for t in texts)
    print(f"reviews containing record delimiters: {multiline} "
          f"({100 * multiline / len(texts):.0f}%)")

    # The baseline comparison the paper makes in §5.2:
    unsafe = InstantLoadingParser(NO_CR, num_threads=8)
    unsafe_rows = unsafe.parse_rows(data)
    expected_rows = SequentialParser(options).parse_rows(data)
    print(f"\nInstant Loading (unsafe, 8 threads): "
          f"{len(unsafe_rows)} records "
          f"{'(WRONG — quoted newlines split records)' if unsafe_rows != expected_rows else ''}")

    safe = InstantLoadingParser(NO_CR, num_threads=8, safe_mode=True)
    safe_rows = safe.parse_rows(data)
    assert safe_rows == expected_rows
    print(f"Instant Loading (safe mode): {len(safe_rows)} records, "
          f"correct — but {safe.serial_fraction():.0%} of bytes were "
          f"touched serially, capping speed-up at "
          f"{safe.amdahl_speedup(3584):.1f}x on 3 584 cores (Amdahl)")
    print("ParPaRaw performs no serial work at all (paper §3.1).")


if __name__ == "__main__":
    main()
