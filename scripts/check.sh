#!/bin/sh
# Lightweight pre-merge gate: byte-compile the package, then run the
# test suite.  Usage: scripts/check.sh [extra pytest args...]
set -eu
cd "$(dirname "$0")/.."

# The example scripts run as subprocesses and need the package on the
# path too (pytest's `pythonpath` setting only covers its own process).
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

python -m compileall -q src
python -m pytest "$@"
