#!/bin/sh
# Lightweight pre-merge gate: byte-compile the package, run the parlint
# static checkers, prove the scan-operator laws, then run the test
# suite.  Usage: scripts/check.sh [extra pytest args...]
set -eu
cd "$(dirname "$0")/.."

# The example scripts run as subprocesses and need the package on the
# path too (pytest's `pythonpath` setting only covers its own process).
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

python -m compileall -q src
python -m repro lint src
# Dataflow tier: the buffer-ownership analysis must prove src/repro free
# of unwaived borrowed-view mutations and escapes (PPR6xx) — the static
# half of the zero-copy safety argument (the runtime half is the
# read-only guard the parity suites enable).
python -m repro lint src/repro --select PPR6
# Lint self-test smoke: the known-bad corpus must still fail, and the
# dataflow corpus must trip both new checkers.
if python -m repro lint tests/analysis/corpus > /dev/null 2>&1; then
    echo "parlint corpus unexpectedly clean" >&2
    exit 1
fi
corpus_codes="$(python -m repro lint tests/analysis/corpus \
    --select PPR6 || true)"
for code in PPR601 PPR602 PPR603 PPR604 PPR605 PPR606; do
    case "$corpus_codes" in
        *"$code"*) ;;
        *) echo "parlint corpus smoke: $code not caught" >&2; exit 1 ;;
    esac
done
echo "parlint corpus smoke: PPR601-606 all caught"
# Law tier: exhaustive associativity+identity proofs for every
# registered scan operator (licenses the parallel scans of paper §2).
python -m pytest tests/analysis/test_operator_laws.py -q
# DFA proof tier: minimisation must preserve behaviour for every shipped
# automaton (equivalence vs the canonical form, idempotence, Hopcroft vs
# data-parallel engine agreement, registry distinctness, strict
# inclusion) — what licenses running sweeps on the minimised automaton.
python -m pytest tests/analysis/test_dfa_proofs.py -q
# Kernel tier: strided sweeps (uniform k and the mixed-stride k=8 SWAR
# ladder) must be bit-identical to unit stride (STVs, emissions, final
# state, invalid position; both executors; minimised and raw automata).
python -m pytest tests/kernels/test_parity.py -q
# Partition tier: the field-run strategy must be bit-identical to the
# stable radix sort (css, record tags, offsets, order) across dialects,
# tagging modes and executors.
python -m pytest tests/core/test_partition.py \
    tests/core/test_partition_parity.py -q
# Columnar tier: the fused zero-copy convert must be bit-identical to
# the copy path (dialects x tagging modes x executors), string columns
# must alias the CSS, and the buffer layer/feather round-trips hold.
python -m pytest tests/core/test_columnar_parity.py \
    tests/columnar -q

# Observability smoke: a sharded CLI parse must emit a Chrome trace that
# the repo's own validator accepts, with worker spans and merged metrics.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
python - "$OBS_TMP" <<'EOF'
import sys, pathlib
rows = b"".join(
    b"%d,%d.25,item-%d\n" % (i, i, i) for i in range(200))
pathlib.Path(sys.argv[1], "smoke.csv").write_bytes(rows)
EOF
python -m repro parse "$OBS_TMP/smoke.csv" --workers 4 \
    --trace "$OBS_TMP/trace.json" --metrics > /dev/null
python - "$OBS_TMP/trace.json" <<'EOF'
import json, sys
from repro.obs import validate_chrome_trace
doc = json.load(open(sys.argv[1]))
problems = validate_chrome_trace(doc)
assert not problems, problems
names = {e.get("name") for e in doc["traceEvents"]}
assert "parse" in names and "sharded:contexts" in names, sorted(names)
assert doc["metrics"]["counters"]["records"] == 200, doc["metrics"]
print("obs smoke: trace valid,", len(doc["traceEvents"]), "events")
EOF

# Strided-kernel smoke: an explicitly strided sharded parse must still
# produce a valid trace and report the stride it ran with.
python -m repro parse "$OBS_TMP/smoke.csv" --stride 2 --workers 2 \
    --trace "$OBS_TMP/trace_strided.json" --metrics > /dev/null
python - "$OBS_TMP/trace_strided.json" <<'EOF'
import json, sys
from repro.obs import validate_chrome_trace
doc = json.load(open(sys.argv[1]))
problems = validate_chrome_trace(doc)
assert not problems, problems
assert doc["metrics"]["gauges"]["stage.stv.stride"] == 2.0, doc["metrics"]
assert doc["metrics"]["counters"]["records"] == 200, doc["metrics"]
print("kernels smoke: strided trace valid")
EOF

# k=8 SWAR smoke: a pipe-delimited unquoted parse minimises to a single
# state, so the full k=8 ladder fits easily; a sharded --stride 8 run
# must report stride 8 and the default table budget.
python - "$OBS_TMP" <<'EOF'
import sys, pathlib
rows = b"".join(b"%d|%d.25|item-%d\n" % (i, i, i) for i in range(200))
pathlib.Path(sys.argv[1], "smoke_pipe.csv").write_bytes(rows)
EOF
python -m repro parse "$OBS_TMP/smoke_pipe.csv" --delimiter '|' \
    --quote '' --no-crlf --stride 8 --workers 2 \
    --trace "$OBS_TMP/trace_k8.json" --metrics > /dev/null
python - "$OBS_TMP/trace_k8.json" <<'EOF'
import json, sys
from repro.kernels import DEFAULT_TABLE_BUDGET
from repro.obs import validate_chrome_trace
doc = json.load(open(sys.argv[1]))
problems = validate_chrome_trace(doc)
assert not problems, problems
assert doc["metrics"]["gauges"]["stage.stv.stride"] == 8.0, doc["metrics"]
assert doc["metrics"]["gauges"]["kernels.table_budget"] \
    == float(DEFAULT_TABLE_BUDGET), doc["metrics"]
assert doc["metrics"]["counters"]["records"] == 200, doc["metrics"]
print("kernels smoke: k=8 sharded trace valid")
EOF

# Minimisation proof smoke: the registry-wide proof sweep must be clean,
# and a shrunken --table-budget must narrow the auto-picked stride.
python - <<'EOF'
from repro.analysis.dfaproofs import verify_all
broken = {s: [str(v) for v in vs] for s, vs in verify_all().items() if vs}
assert not broken, broken
print("dfa proofs smoke: registry sweep clean")
EOF
python -m repro parse "$OBS_TMP/smoke.csv" --table-budget 1 \
    --trace "$OBS_TMP/trace_budget.json" --metrics > /dev/null
python - "$OBS_TMP/trace_budget.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["metrics"]["gauges"]["stage.stv.stride"] == 1.0, doc["metrics"]
assert doc["metrics"]["gauges"]["kernels.table_budget"] == 1.0, \
    doc["metrics"]
print("kernels smoke: shrunken table budget degrades to unit stride")
EOF

# Partition-strategy smoke: an explicit field-run sharded parse must
# still produce a valid trace and report the strategy it ran with.
python -m repro parse "$OBS_TMP/smoke.csv" --partition-strategy field-run \
    --workers 2 --trace "$OBS_TMP/trace_fieldrun.json" --metrics > /dev/null
python - "$OBS_TMP/trace_fieldrun.json" <<'EOF'
import json, sys
from repro.obs import validate_chrome_trace
doc = json.load(open(sys.argv[1]))
problems = validate_chrome_trace(doc)
assert not problems, problems
assert doc["metrics"]["gauges"]["stage.partition.strategy"] == 1.0, \
    doc["metrics"]
assert doc["metrics"]["gauges"]["partition.fields"] > 0, doc["metrics"]
assert doc["metrics"]["counters"]["records"] == 200, doc["metrics"]
print("partition smoke: field-run trace valid")
EOF

# Columnar export smoke: a sharded parse must write a feather-style
# file that the repo's own reader round-trips.
python -m repro parse "$OBS_TMP/smoke.csv" --workers 2 \
    --output "$OBS_TMP/out.feather" --output-format feather > /dev/null
python - "$OBS_TMP/out.feather" <<'EOF'
import sys
from repro.columnar import read_feather
table = read_feather(sys.argv[1])
assert table.num_rows == 200, table
assert table.num_columns == 3, table
assert table.column(2).value(199) == "item-199", table.row(199)
print("columnar smoke: feather round-trip,", table.num_rows, "rows")
EOF

# Bench smoke: the stride sweep must run end to end and emit the
# machine-readable rows (tiny input; the committed BENCH_kernels.json
# is produced by the full benchmark run).
python benchmarks/bench_kernels.py --bytes 65536 --repeats 1 \
    --out "$OBS_TMP/bench_kernels.json" > /dev/null
python - "$OBS_TMP/bench_kernels.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
strides = {r["stride"] for r in doc["rows"]}
assert {"1", "2", "4", "8", "auto"} <= strides, strides
workloads = {r["workload"] for r in doc["rows"]}
assert {"yelp", "taxi", "logs"} <= workloads, workloads
assert all({"workload", "seconds", "mb_per_s", "resolved_stride"}
           <= r.keys() for r in doc["rows"])
# The logs automaton minimises to one state: auto must reach k=8 there.
logs_auto = next(r for r in doc["rows"]
                 if r["workload"] == "logs" and r["stride"] == "auto")
assert logs_auto["resolved_stride"] == 8, logs_auto
print("bench smoke:", len(doc["rows"]), "sweep rows")
EOF

# Partition bench smoke: the strategy sweep must run end to end and
# emit both the stage rows and the kernel radix_bits sweep rows.
python benchmarks/bench_partition.py --bytes 65536 --repeats 1 \
    --out "$OBS_TMP/bench_partition.json" > /dev/null
python - "$OBS_TMP/bench_partition.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
strategies = {r["strategy"] for r in doc["stage_rows"]}
assert {"radix", "field-run", "auto"} <= strategies, strategies
bits = {r["radix_bits"] for r in doc["kernel_rows"]}
assert {1, 2, 4, 8, None} <= bits, bits
print("partition bench smoke:", len(doc["stage_rows"]), "stage rows,",
      len(doc["kernel_rows"]), "kernel rows")
EOF

# Columnar bench smoke: the export sweep must run end to end and emit
# fused/copy path rows with the zero-copy counters.
python benchmarks/bench_columnar_export.py --bytes 65536 --repeats 1 \
    --out "$OBS_TMP/bench_columnar.json" > /dev/null
python - "$OBS_TMP/bench_columnar.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
paths = {r["path"] for r in doc["path_rows"]}
assert {"fused", "copy", "write_feather"} <= paths, paths
fused = [r for r in doc["path_rows"] if r["path"] == "fused"]
assert all(r["zero_copy_columns"] > 0 for r in fused), fused
print("columnar bench smoke:", len(doc["path_rows"]), "path rows")
EOF

# Planner smoke: a --plan auto CLI parse must emit a valid Chrome trace
# carrying the plan.* spans and metrics of the decision it made.
python -m repro parse "$OBS_TMP/smoke.csv" --plan auto \
    --trace "$OBS_TMP/trace_plan.json" --metrics > /dev/null
python - "$OBS_TMP/trace_plan.json" <<'EOF'
import json, sys
from repro.obs import validate_chrome_trace
doc = json.load(open(sys.argv[1]))
problems = validate_chrome_trace(doc)
assert not problems, problems
names = {e.get("name") for e in doc["traceEvents"]}
assert {"plan.probe", "plan.decide", "parse"} <= names, sorted(names)
assert doc["metrics"]["counters"]["plan.decisions"] == 1, doc["metrics"]
assert doc["metrics"]["gauges"]["plan.chunk_size"] > 0, doc["metrics"]
assert doc["metrics"]["counters"]["records"] == 200, doc["metrics"]
print("planner smoke: --plan auto trace valid, chunk",
      int(doc["metrics"]["gauges"]["plan.chunk_size"]), "stride",
      int(doc["metrics"]["gauges"]["plan.kernel_stride"]))
EOF

# Planner admission smoke: a tenant with a tiny cost budget must bounce
# at admission (priced by the planner), while the default tenant parses.
python - "$OBS_TMP" <<'EOF'
import pathlib, sys
from repro.errors import AdmissionError
from repro.serve.service import IngestService, ServiceConfig, TenantPolicy

data = pathlib.Path(sys.argv[1], "smoke.csv").read_bytes()
config = ServiceConfig(
    tenants={"tiny": TenantPolicy(max_cost_seconds=1e-12)})
with IngestService(config) as svc:
    try:
        svc.parse(data, tenant="tiny")
        raise SystemExit("over-budget request was accepted")
    except AdmissionError as error:
        assert error.reason == "over-budget", error.reason
    assert svc.parse(data).num_rows == 200
    rejects = svc.metrics.counters["serve.admission.rejects.over_budget"]
    assert rejects == 1, rejects
print("planner smoke: over-budget tenant rejected at admission")
EOF

# Plan bench smoke: the auto-vs-fixed sweep must run end to end and
# embed the chosen plan with its rationale (tiny input; the committed
# BENCH_plan.json is produced by the full benchmark run).
python benchmarks/bench_plan.py --bytes 65536 --repeats 1 --rounds 2 \
    --out "$OBS_TMP/bench_plan.json" > /dev/null
python - "$OBS_TMP/bench_plan.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
workloads = {r["workload"] for r in doc["rows"]}
assert {"yelp", "taxi", "logs"} <= workloads, workloads
autos = [r for r in doc["rows"] if r["config"] == "auto"]
assert len(autos) == 3, autos
for row in autos:
    decision = row["decision"]
    assert decision["rationale"], row["workload"]
    assert decision["chosen"]["chunk_size"] == row["chunk"], row
print("plan bench smoke:", len(doc["rows"]), "cells,",
      sum(len(r["decision"]["candidates"]) for r in autos),
      "candidates scored")
EOF

# Serve smoke: start the ingest service on an ephemeral port, hit it
# with concurrent clients (one oversized request that must bounce at
# admission with a per-tenant reject), require the served tables to be
# bit-identical to a direct parse, then shut down cleanly via SIGTERM.
python - "$OBS_TMP" <<'EOF'
import pathlib, re, signal, subprocess, sys, threading

tmp = sys.argv[1]
data = pathlib.Path(tmp, "smoke.csv").read_bytes()

server = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", "--port", "0",
     "--max-request-mb", "1"],
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
banner = server.stdout.readline()
port = int(re.search(r":(\d+) ", banner).group(1))

from repro.columnar.serialize import write_feather
from repro.core.parser import ParPaRawParser
from repro.errors import AdmissionError
from repro.serve import RemoteClient

expected = write_feather(ParPaRawParser().parse(data).table)
failures = []

def good_client(name):
    try:
        table = RemoteClient("127.0.0.1", port, tenant=name).parse(data)
        if write_feather(table) != expected:
            failures.append(f"{name}: payload not bit-identical")
    except Exception as error:
        failures.append(f"{name}: {error!r}")

def oversized_client():
    try:
        RemoteClient("127.0.0.1", port, tenant="big").parse(
            b"x" * (1024 * 1024 + 1))
        failures.append("oversized request was accepted")
    except AdmissionError as error:
        if error.reason != "oversized":
            failures.append(f"wrong reject reason: {error.reason}")
    except Exception as error:
        failures.append(f"oversized: wrong error {error!r}")

threads = [threading.Thread(target=good_client, args=(f"t{i}",))
           for i in range(2)] + [threading.Thread(target=oversized_client)]
for t in threads: t.start()
for t in threads: t.join(60)

status = RemoteClient("127.0.0.1", port).status()
assert status["requests"]["completed"] == 2, status["requests"]
assert status["requests"]["rejected"] == 1, status["requests"]
assert status["tenants"]["big"]["rejects"] == 1, status["tenants"]

server.send_signal(signal.SIGTERM)
out, _ = server.communicate(timeout=60)
assert server.returncode == 0, (server.returncode, out)
assert "drained cleanly" in out, out
assert not failures, failures
print("serve smoke: 3 concurrent clients, 1 admission reject, "
      "bit-identical payloads, clean drain")
EOF

python -m pytest "$@"
