#!/bin/sh
# Lightweight pre-merge gate: byte-compile the package, run the parlint
# static checkers, prove the scan-operator laws, then run the test
# suite.  Usage: scripts/check.sh [extra pytest args...]
set -eu
cd "$(dirname "$0")/.."

# The example scripts run as subprocesses and need the package on the
# path too (pytest's `pythonpath` setting only covers its own process).
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

python -m compileall -q src
python -m repro lint src
# Law tier: exhaustive associativity+identity proofs for every
# registered scan operator (licenses the parallel scans of paper §2).
python -m pytest tests/analysis/test_operator_laws.py -q
python -m pytest "$@"
