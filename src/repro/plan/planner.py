"""The self-tuning planner: probe, enumerate, score, adapt.

Static half: :meth:`Planner.plan` probes the input
(:func:`~repro.plan.stats.probe_input`), enumerates candidates over the
knob space — ``chunk_size`` × ``kernel_stride`` × ``partition_strategy``
(plus a ``workers`` recommendation and the cost model's ``radix_bits``)
— filters strides by table-budget feasibility
(:func:`~repro.kernels.strided.plan_nbytes` against
``kernel_table_budget``, the same arithmetic as
:func:`~repro.kernels.strided.pick_stride`), scores the survivors with
the calibrated :class:`~repro.gpusim.cost_model.PipelineCostModel`, and
materialises the winner as concrete :class:`ParseOptions`.  The
:class:`PlanDecision` keeps every candidate with its score and the
reason it lost.

Online half: :meth:`Planner.observe` folds a finished parse's measured
step seconds into the :class:`~repro.plan.calibration.CalibrationStore`,
so the next :meth:`plan` — the next partition of a stream, the next
request of a service — scores candidates against observed rather than
modelled costs.  :meth:`Planner.refine` closes the loop actively by
running the most promising unexplored candidates once each.

Every decision emits ``plan.*`` spans and metrics (see
``docs/PLANNER.md`` for the full name list).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.options import (
    ParseOptions,
    PartitionStrategy,
    TaggingImpl,
)
from repro.gpusim.cost_model import PipelineCostModel, StepCosts
from repro.kernels.strided import SUPPORTED_STRIDES, plan_nbytes, \
    resolve_stride
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.plan.calibration import CalibrationStore, STEPS, chunk_bucket, \
    config_key
from repro.plan.stats import InputStats, probe_input, workload_fingerprint

__all__ = ["Planner", "PlanDecision", "PlanCandidate",
           "CHUNK_CANDIDATES", "WORKERS_INPUT_THRESHOLD"]

MiB = 1024 ** 2

#: Chunk sizes every enumeration considers (plus the configured size and
#: the cost model's own suggestion).  Spans the paper's 4-64 B range and
#: the larger sizes the vectorised substrate rewards; calibration decides
#: between them once measurements exist.
CHUNK_CANDIDATES = (16, 31, 64, 128)

#: Modelled stv+tag speedup of a k-stride sweep over unit stride is
#: ``k**EXPONENT`` — sublinear, matching the measured BENCH_kernels
#: speedups (table gathers amortise dispatch but not bandwidth).
STRIDE_SPEEDUP_EXPONENT = 0.5

#: Modelled partition-cost factor of the ``O(n + fields)`` field-run
#: strategy relative to the radix sort (BENCH_columnar measures 3-5x).
FIELD_RUN_PARTITION_FACTOR = 0.35

#: Inputs below this run serial: a process pool's spawn/ship overhead
#: needs tens of megabytes of byte-bound work to amortise.
WORKERS_INPUT_THRESHOLD = 64 * MiB

#: Worker-count ceiling the planner will recommend.
MAX_PLAN_WORKERS = 4


def _sweep_automaton(options: ParseOptions):
    """The padded automaton the strided sweeps will actually run with."""
    return options._sweep_dfa()


def _strategy_of(options: ParseOptions) -> str:
    """The partition strategy a parse with ``options`` resolves to."""
    if options.partition_strategy is not None:
        return options.partition_strategy.value
    return PartitionStrategy.FIELD_RUN.value \
        if options.tagging_impl is TaggingImpl.GLOBAL \
        else PartitionStrategy.RADIX.value


@dataclass(frozen=True)
class PlanCandidate:
    """One point of the knob space, scored (or ruled out)."""

    chunk_size: int
    stride: int
    strategy: str
    feasible: bool
    #: Calibrated modelled seconds; ``None`` for infeasible candidates.
    modelled_seconds: float | None
    #: ``True`` when the score used per-configuration observed evidence.
    calibrated: bool
    chosen: bool
    #: Why the candidate lost (or ``"chosen"``).
    reason: str

    def as_dict(self) -> dict:
        return {
            "chunk_size": self.chunk_size,
            "kernel_stride": self.stride,
            "partition_strategy": self.strategy,
            "feasible": self.feasible,
            "modelled_seconds": self.modelled_seconds,
            "calibrated": self.calibrated,
            "chosen": self.chosen,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class PlanDecision:
    """A planning verdict: the winner, and why everyone else lost."""

    chosen: ParseOptions
    workers: int
    fingerprint: str
    stats: InputStats
    candidates: tuple[PlanCandidate, ...]
    modelled_seconds: float
    calibrated: bool
    #: Largest input the simulated device could parse at this shape
    #: (:meth:`PipelineCostModel.max_input_for_device`).
    device_ceiling_bytes: int
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def winner(self) -> PlanCandidate:
        return next(c for c in self.candidates if c.chosen)

    def rationale(self) -> list[str]:
        """Human-readable decision log (embedded in bench artefacts)."""
        w = self.winner
        lines = [
            f"fingerprint {self.fingerprint}: chose chunk_size="
            f"{w.chunk_size} kernel_stride={w.stride} "
            f"partition_strategy={w.strategy} workers={self.workers} "
            f"({self.modelled_seconds * 1e3:.2f} ms modelled"
            f"{', calibrated' if self.calibrated else ''})"]
        for c in self.candidates:
            if c.chosen:
                continue
            lines.append(
                f"  rejected chunk={c.chunk_size} k={c.stride} "
                f"{c.strategy}: {c.reason}")
        lines.extend(f"  note: {note}" for note in self.notes)
        return lines

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "chosen": {
                "chunk_size": self.chosen.chunk_size,
                "kernel_stride": self.chosen.kernel_stride,
                "partition_strategy":
                    _strategy_of(self.chosen),
                "workers": self.workers,
            },
            "modelled_seconds": self.modelled_seconds,
            "calibrated": self.calibrated,
            "device_ceiling_bytes": self.device_ceiling_bytes,
            "candidates": [c.as_dict() for c in self.candidates],
            "rationale": self.rationale(),
        }


class Planner:
    """Self-tuning configuration planner (see module docstring).

    One planner instance accumulates calibration across every parse it
    plans or observes — share it (a service shares one across requests;
    the CLI builds one per invocation; the parser facade falls back to a
    process-wide default).
    """

    def __init__(self, model: PipelineCostModel | None = None,
                 store: CalibrationStore | None = None,
                 tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS):
        self.model = model if model is not None else PipelineCostModel()
        self.store = store if store is not None else CalibrationStore()
        self.tracer = tracer
        self.metrics = metrics
        #: fingerprint -> last PlanDecision (re-plan change detection).
        self._decisions: dict[str, PlanDecision] = {}
        #: fingerprint -> last InputStats (admission pricing shape).
        self._shapes: dict[str, InputStats] = {}
        self._default_shape: InputStats | None = None

    # -- scoring -----------------------------------------------------------

    def _modelled(self, stats: InputStats, input_bytes: int,
                  chunk_size: int, stride: int,
                  strategy: str) -> StepCosts:
        """Model prediction for one configuration (before calibration)."""
        base = self.model.step_costs(
            stats.stats_factory()(max(1, input_bytes),
                                  chunk_size=chunk_size))
        sweep = float(stride) ** -STRIDE_SPEEDUP_EXPONENT
        partition = FIELD_RUN_PARTITION_FACTOR \
            if strategy == PartitionStrategy.FIELD_RUN.value else 1.0
        return StepCosts(parse=base.parse * sweep, scan=base.scan,
                         tag=base.tag * sweep,
                         partition=base.partition * partition,
                         convert=base.convert)

    def _score(self, stats: InputStats, fingerprint: str,
               input_bytes: int, chunk_size: int, stride: int,
               strategy: str) -> tuple[float, bool]:
        """(calibrated seconds, used-per-config-evidence) for one cell."""
        costs = self._modelled(stats, input_bytes, chunk_size, stride,
                               strategy)
        key = config_key(fingerprint, chunk_size, stride, strategy)
        calibrated = self.store.observed(key)
        return self.store.apply(costs, key, fingerprint).total, calibrated

    # -- static planning ----------------------------------------------------

    def plan(self, data, options: ParseOptions | None = None,
             tracer: Tracer | None = None,
             metrics: MetricsRegistry | None = None) -> PlanDecision:
        """Probe ``data`` and pick a configuration for ``options``."""
        tracer = tracer if tracer is not None else self.tracer
        metrics = metrics if metrics is not None else self.metrics
        base = options if options is not None else ParseOptions()

        if tracer.enabled:
            with tracer.span("plan.probe",
                             input_bytes=int(len(data))):
                stats = probe_input(data, base)
        else:
            stats = probe_input(data, base)
        fingerprint = stats.fingerprint()
        self._shapes[fingerprint] = stats
        self._default_shape = stats

        decision = self._decide(stats, fingerprint, base)
        previous = self._decisions.get(fingerprint)
        self._decisions[fingerprint] = decision

        w = decision.winner
        if metrics.enabled:
            metrics.count("plan.decisions")
            metrics.gauge("plan.chunk_size", w.chunk_size)
            metrics.gauge("plan.kernel_stride", w.stride)
            metrics.gauge("plan.workers", decision.workers)
            metrics.observe("plan.modelled.seconds",
                            decision.modelled_seconds)
        if tracer.enabled:
            with tracer.span("plan.decide", fingerprint=fingerprint,
                             chunk_size=w.chunk_size,
                             kernel_stride=w.stride,
                             partition_strategy=w.strategy,
                             workers=decision.workers,
                             calibrated=decision.calibrated,
                             modelled_ms=round(
                                 decision.modelled_seconds * 1e3, 3)):
                pass
        if previous is not None and previous.chosen != decision.chosen:
            if metrics.enabled:
                metrics.count("plan.replans")
            if tracer.enabled:
                with tracer.span("plan.replan", fingerprint=fingerprint,
                                 chunk_size=w.chunk_size,
                                 kernel_stride=w.stride,
                                 partition_strategy=w.strategy):
                    pass
        return decision

    def _decide(self, stats: InputStats, fingerprint: str,
                base: ParseOptions) -> PlanDecision:
        input_bytes = max(1, stats.input_bytes)
        automaton = _sweep_automaton(base)
        budget = base.kernel_table_budget
        notes: list[str] = []
        if not stats.sniffed_agrees:
            notes.append("dialect sniffer preferred a different "
                         "delimiter; planning with the configured one")

        # Stride candidates: the feasibility half of the knob space.
        strides: list[tuple[int, bool, str]] = []
        if base.kernel_stride is not None:
            strides.append((base.kernel_stride, True, "pinned by options"))
        else:
            for k in SUPPORTED_STRIDES:
                need = plan_nbytes(automaton.num_groups,
                                   automaton.num_states, k)
                if need <= budget:
                    strides.append((k, True, ""))
                else:
                    strides.append((k, False,
                                    f"k-gram plan needs {need} B > "
                                    f"table budget {budget} B"))
            strides.append((1, True, ""))

        # Partition-strategy candidates.
        if base.partition_strategy is not None:
            strategies = [base.partition_strategy.value]
        elif base.tagging_impl is TaggingImpl.CHUNKED:
            strategies = [PartitionStrategy.RADIX.value]
            notes.append("chunked tagging has no run-structured tags; "
                         "field-run not considered")
        else:
            strategies = [PartitionStrategy.FIELD_RUN.value,
                          PartitionStrategy.RADIX.value]

        # Chunk-size candidates: the configured size, the ladder, and
        # the cost model's own suggestion (suggest_chunk_size wired in).
        suggested = self.model.suggest_chunk_size(
            stats.stats_factory(), input_bytes)
        chunks = sorted({base.chunk_size, suggested, *CHUNK_CANDIDATES})

        scored: list[dict] = []
        for chunk in chunks:
            for stride, feasible, why in strides:
                for strategy in strategies:
                    if not feasible:
                        scored.append(dict(
                            chunk_size=chunk, stride=stride,
                            strategy=strategy, feasible=False,
                            seconds=None, calibrated=False, reason=why))
                        continue
                    seconds, calibrated = self._score(
                        stats, fingerprint, input_bytes, chunk, stride,
                        strategy)
                    scored.append(dict(
                        chunk_size=chunk, stride=stride,
                        strategy=strategy, feasible=True,
                        seconds=seconds, calibrated=calibrated,
                        reason=why))
        best = min((c for c in scored if c["feasible"]),
                   key=lambda c: c["seconds"])

        candidates = []
        for c in scored:
            chosen = c is best
            if chosen:
                reason = "chosen"
            elif not c["feasible"]:
                reason = c["reason"]
            else:
                reason = (f"modelled {c['seconds'] * 1e3:.2f} ms vs "
                          f"{best['seconds'] * 1e3:.2f} ms"
                          + (" (calibrated)" if c["calibrated"] else ""))
            candidates.append(PlanCandidate(
                chunk_size=c["chunk_size"], stride=c["stride"],
                strategy=c["strategy"], feasible=c["feasible"],
                modelled_seconds=c["seconds"],
                calibrated=c["calibrated"], chosen=chosen, reason=reason))

        chosen_options = base.with_(
            plan=None, chunk_size=best["chunk_size"],
            kernel_stride=best["stride"],
            partition_strategy=PartitionStrategy(best["strategy"]))

        workers = 1
        if stats.input_bytes >= WORKERS_INPUT_THRESHOLD:
            workers = min(MAX_PLAN_WORKERS, os.cpu_count() or 1)
            notes.append(f"input >= {WORKERS_INPUT_THRESHOLD >> 20} MiB: "
                         f"recommending {workers} shard workers")

        ceiling = self.model.max_input_for_device(
            stats.stats_factory(),
            record_tag_bytes=stats.record_tag_bytes)
        if stats.input_bytes > ceiling:
            notes.append(
                f"input exceeds the simulated device-memory ceiling "
                f"({ceiling} B); stream in partitions")

        return PlanDecision(
            chosen=chosen_options, workers=workers,
            fingerprint=fingerprint, stats=stats,
            candidates=tuple(candidates),
            modelled_seconds=best["seconds"],
            calibrated=best["calibrated"],
            device_ceiling_bytes=ceiling, notes=tuple(notes))

    def plan_options(self, data, options: ParseOptions | None = None,
                     tracer: Tracer | None = None,
                     metrics: MetricsRegistry | None = None
                     ) -> ParseOptions:
        """The one-call entry the parser facade uses for ``plan="auto"``."""
        return self.plan(data, options, tracer=tracer,
                         metrics=metrics).chosen

    # -- online adaptation ---------------------------------------------------

    def observe(self, result, metrics: MetricsRegistry | None = None
                ) -> str:
        """Fold a finished parse's measured stage seconds into the store.

        ``result`` is a :class:`~repro.core.result.ParseResult`; returns
        the fingerprint the observation calibrated.  Works identically
        for serial and sharded runs: the step timer survives the process
        boundary, so both calibrate the same fingerprint.
        """
        metrics = metrics if metrics is not None else self.metrics
        options = result.options
        ws = result.workload_stats()
        avg_record = result.input_bytes / max(1, result.num_rows)
        fingerprint = workload_fingerprint(
            options.dialect, ws.num_columns, avg_record,
            ws.numeric_field_fraction)
        measured = {step: seconds
                    for step, seconds in result.step_seconds().items()
                    if step in STEPS}
        if not measured or result.input_bytes == 0:
            return fingerprint

        stride = resolve_stride(options.kernel_stride,
                                _sweep_automaton(options),
                                options.kernel_table_budget)
        strategy = _strategy_of(options)
        stats = InputStats(
            input_bytes=result.input_bytes,
            sample_bytes=result.input_bytes, dialect=options.dialect,
            sniffed_agrees=True, num_columns=ws.num_columns,
            records_sampled=result.num_rows,
            avg_record_bytes=avg_record,
            fields_per_byte=ws.num_columns / max(1.0, avg_record),
            quote_rate=0.0,
            numeric_fraction=ws.numeric_field_fraction,
            num_states=ws.num_states,
            record_tag_bytes=ws.record_tag_bytes)
        modelled = self._modelled(stats, result.input_bytes,
                                  options.chunk_size, stride, strategy)
        key = config_key(fingerprint, options.chunk_size, stride,
                         strategy)
        self.store.observe(key, measured, modelled)
        self.store.observe(fingerprint, measured, modelled)
        self._shapes.setdefault(fingerprint, stats)
        if self._default_shape is None:
            self._default_shape = stats
        if metrics.enabled:
            metrics.count("plan.calibration.updates")
            metrics.gauge("plan.calibration.version", self.store.version)
        return fingerprint

    def refine(self, data, options: ParseOptions | None = None,
               rounds: int = 4, executor=None) -> PlanDecision:
        """Actively close the loop: measure promising candidates, re-plan.

        Each round plans, then runs the best-scored candidate whose
        configuration has no observed evidence yet (one real parse) and
        feeds the measurement back.  Chunk size is explored
        breadth-first: calibration extrapolates stride and partition
        scalings across chunk buckets via the workload-wide fallback,
        but each chunk bucket's cache behaviour must be measured — so
        every unmeasured bucket gets its best-modelled configuration
        timed before any round is spent on a stride/strategy variant of
        a bucket that already has evidence.  Stops early once the top
        candidates are all calibrated.  Returns the final,
        evidence-backed decision.
        """
        from repro.core.parser import ParPaRawParser
        base = options if options is not None else ParseOptions()
        decision = self.plan(data, base)
        for _ in range(max(0, rounds)):
            unexplored = [c for c in decision.candidates
                          if c.feasible and not c.calibrated]
            if not unexplored:
                break
            explored_buckets = {
                chunk_bucket(c.chunk_size)
                for c in decision.candidates if c.calibrated}
            fresh = [c for c in unexplored
                     if chunk_bucket(c.chunk_size) not in explored_buckets]
            target = min(fresh or unexplored,
                         key=lambda c: c.modelled_seconds)
            trial = base.with_(
                plan=None, chunk_size=target.chunk_size,
                kernel_stride=target.stride,
                partition_strategy=PartitionStrategy(target.strategy))
            result = ParPaRawParser(trial, executor=executor).parse(data)
            self.observe(result)
            decision = self.plan(data, base)
        return decision

    # -- admission pricing ---------------------------------------------------

    def estimate_cost(self, input_bytes: int,
                      options: ParseOptions | None = None,
                      fingerprint: str | None = None) -> float:
        """Estimated seconds to parse ``input_bytes`` at ``options``.

        Prices against the best shape evidence available: the requested
        fingerprint's remembered statistics, else the most recent shape
        this planner has seen, else a generic delimiter-file shape.
        Calibration sharpens the estimate as requests complete — the
        ingest service uses this to price ``retry_after`` hints and
        per-tenant cost budgets.
        """
        base = options if options is not None else _GENERIC_OPTIONS
        stats = None
        if fingerprint is not None:
            stats = self._shapes.get(fingerprint)
        if stats is None:
            stats = self._default_shape
        if stats is None:
            stats = _generic_shape(base)
        fp = fingerprint if fingerprint is not None \
            else stats.fingerprint()
        stride = resolve_stride(base.kernel_stride,
                                _sweep_automaton(base),
                                base.kernel_table_budget)
        strategy = _strategy_of(base)
        costs = self._modelled(stats, max(1, int(input_bytes)),
                               base.chunk_size, stride, strategy)
        key = config_key(fp, base.chunk_size, stride, strategy)
        estimate = self.store.apply(costs, key, fp).total
        if self.metrics.enabled:
            self.metrics.observe("plan.estimate.seconds", estimate)
        return estimate


_GENERIC_OPTIONS = ParseOptions()


def _generic_shape(options: ParseOptions) -> InputStats:
    """A nondescript delimiter-file shape for never-seen workloads."""
    return InputStats(
        input_bytes=0, sample_bytes=0, dialect=options.dialect,
        sniffed_agrees=True, num_columns=8, records_sampled=0,
        avg_record_bytes=100.0, fields_per_byte=0.08, quote_rate=0.0,
        numeric_fraction=0.25,
        num_states=options.resolved_dfa().num_states,
        record_tag_bytes=4.0)
