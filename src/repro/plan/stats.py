"""Input probing for the planner: cheap statistics from a bounded sample.

The planner never looks at the whole input — :func:`probe_input` parses a
bounded leading sample (64 KiB by default) with the configured dialect,
cross-checks the dialect against :func:`repro.dfa.sniffer.sniff_dialect`,
and condenses what it saw into an :class:`InputStats`: field density,
record length, quote rate, column count and the numeric-field fraction.
Those are exactly the axes of :class:`~repro.gpusim.cost_model.WorkloadStats`,
so the stats plug straight into the calibrated cost model
(:meth:`InputStats.workload` / :meth:`InputStats.stats_factory`).

Workload *fingerprints* (:func:`workload_fingerprint`) bucket the stats
coarsely — delimiter, quoting, column count, log2 record length, quartile
numeric fraction — so observations from one run calibrate every later
run of the same workload shape, regardless of input size or executor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.options import ParseOptions, TaggingMode
from repro.dfa.dialects import Dialect
from repro.errors import DialectError, ParseError
from repro.gpusim.cost_model import WorkloadStats

__all__ = ["InputStats", "probe_input", "workload_fingerprint",
           "DEFAULT_SAMPLE_BYTES"]

#: Leading bytes the probe parses.  Large enough for stable density
#: estimates on any sane record length, small enough that probing costs
#: a few milliseconds against partitions hundreds of times larger.
DEFAULT_SAMPLE_BYTES = 64 * 1024

#: Record-tag bytes per symbol by tagging mode (see ``WorkloadStats``).
_TAG_BYTES = {TaggingMode.TAGGED: 4.0, TaggingMode.INLINE: 0.0,
              TaggingMode.DELIMITED: 0.125}


def workload_fingerprint(dialect: Dialect, num_columns: int,
                         avg_record_bytes: float,
                         numeric_fraction: float) -> str:
    """A coarse, stable key identifying a workload *shape*.

    Buckets deliberately: record length by power of two, numeric fraction
    by quartile — so the 1 MB probe and the 512 MB production run of the
    same dataset share a calibration entry, while yelp-shaped and
    taxi-shaped workloads do not.
    """
    delim = dialect.delimiter.decode("latin-1")
    quoted = "q" if dialect.quote else "-"
    rec_bucket = 1 << max(0, round(math.log2(max(1.0, avg_record_bytes))))
    num_bucket = round(max(0.0, min(1.0, numeric_fraction)) * 4) / 4
    return f"d{delim!r}{quoted}c{num_columns}r{rec_bucket}n{num_bucket}"


@dataclass(frozen=True)
class InputStats:
    """What one probe learned about an input (the planner's raw material)."""

    #: Full input size (not just the sample).
    input_bytes: int
    #: Bytes the probe actually parsed.
    sample_bytes: int
    #: The dialect the probe parsed with (the configured one — the
    #: sniffer's verdict is advisory, see ``sniffed_agrees``).
    dialect: Dialect
    #: ``False`` when the sniffer confidently preferred a *different*
    #: delimiter than the configured dialect (surfaced in the decision
    #: rationale; the configured dialect always wins).
    sniffed_agrees: bool
    num_columns: int
    records_sampled: int
    avg_record_bytes: float
    #: Fields per input byte — the density driving tag/convert cost.
    fields_per_byte: float
    #: Fraction of sample bytes that are the quote character.
    quote_rate: float
    #: Fraction of columns needing numeric/temporal conversion.
    numeric_fraction: float
    #: States of the automaton the parse will simulate.
    num_states: int
    #: Record-tag bytes per symbol (by tagging mode).
    record_tag_bytes: float

    def fingerprint(self) -> str:
        return workload_fingerprint(self.dialect, self.num_columns,
                                    self.avg_record_bytes,
                                    self.numeric_fraction)

    def workload(self, input_bytes: int | None = None,
                 chunk_size: int = 31) -> WorkloadStats:
        """These statistics as cost-model :class:`WorkloadStats`."""
        return self.stats_factory()(
            self.input_bytes if input_bytes is None else input_bytes,
            chunk_size=chunk_size)

    def stats_factory(self):
        """A ``yelp_like``-shaped factory over this probe's densities.

        Matches the calling convention of
        :meth:`~repro.gpusim.cost_model.PipelineCostModel.suggest_chunk_size`
        and :meth:`~repro.gpusim.cost_model.PipelineCostModel.max_input_for_device`,
        so the dormant convenience API plans real inputs, not just the
        paper's datasets.
        """
        columns = max(1, self.num_columns)
        record_bytes = max(1.0, self.avg_record_bytes)
        states = max(1, self.num_states)
        default_tag = self.record_tag_bytes

        def factory(input_bytes: int, chunk_size: int = 31,
                    record_tag_bytes: float | None = None) -> WorkloadStats:
            records = max(1, round(input_bytes / record_bytes))
            return WorkloadStats(
                input_bytes=input_bytes, chunk_size=chunk_size,
                num_states=states, num_columns=columns,
                num_records=records, num_fields=records * columns,
                numeric_field_fraction=self.numeric_fraction,
                record_tag_bytes=default_tag if record_tag_bytes is None
                else record_tag_bytes,
                name="probe")

        return factory


def _as_bytes(data) -> bytes:
    if isinstance(data, np.ndarray):
        return data.tobytes()
    return bytes(data)


def probe_input(data, options: ParseOptions | None = None,
                sample_bytes: int = DEFAULT_SAMPLE_BYTES) -> InputStats:
    """One cheap pass over a bounded sample of ``data``.

    Parses the leading ``sample_bytes`` with the configured dialect and
    the caller's type settings (a configured schema prices its own
    numeric fraction; otherwise the caller's ``infer_types`` decides —
    an all-string parse has an all-string convert cost) and sniffs the
    sample as a cross-check.  Raises nothing for malformed tails: the
    probe runs lenient and unstrict.
    """
    options = options if options is not None else ParseOptions()
    total = len(data) if not isinstance(data, np.ndarray) else int(data.size)
    tag_bytes = _TAG_BYTES[options.tagging_mode]
    num_states = options.resolved_dfa().num_states
    if total == 0:
        return InputStats(
            input_bytes=0, sample_bytes=0, dialect=options.dialect,
            sniffed_agrees=True, num_columns=1, records_sampled=0,
            avg_record_bytes=1.0, fields_per_byte=0.0, quote_rate=0.0,
            numeric_fraction=0.0, num_states=num_states,
            record_tag_bytes=tag_bytes)

    sample = _as_bytes(data[:sample_bytes])
    if total > len(sample):
        # Trim the trailing partial record so densities are not skewed.
        cut = sample.rfind(b"\n")
        if cut > 0:
            sample = sample[:cut + 1]

    sniffed_agrees = True
    if options.dfa is None:
        try:
            from repro.dfa.sniffer import sniff_dialect
            verdict = sniff_dialect(sample)
            sniffed_agrees = \
                verdict.dialect.delimiter == options.dialect.delimiter
        except DialectError:
            pass

    from repro.core.parser import parse_bytes
    # The probe must fingerprint the parse the caller will actually run:
    # Planner.observe derives the numeric fraction from the result's
    # schema, so the probe mirrors the caller's type settings (not a
    # forced inference) or the two halves of the loop would calibrate
    # disjoint fingerprints.
    probe_options = options.with_(
        plan=None, schema=None, select_columns=None,
        skip_rows=frozenset(), skip_records=frozenset(), strict=False)
    from repro.columnar.schema import DataType
    try:
        result = parse_bytes(sample, probe_options)
        rows = result.num_rows
        columns = max(1, result.table.num_columns)
        if options.schema is not None:
            numeric = sum(1 for f in options.schema
                          if f.dtype is not DataType.STRING)
            numeric_fraction = numeric / max(1, len(options.schema))
        else:
            numeric = sum(1 for f in result.table.schema
                          if f.dtype is not DataType.STRING)
            numeric_fraction = numeric / columns
    except ParseError:
        # Unparseable sample: fall back to newline counting so the
        # planner still gets an order-of-magnitude record length.
        rows = sample.count(b"\n")
        columns, numeric_fraction = 1, 0.0

    avg_record = len(sample) / rows if rows else float(len(sample))
    quote = options.dialect.quote
    quote_rate = sample.count(quote) / len(sample) if quote else 0.0
    return InputStats(
        input_bytes=total, sample_bytes=len(sample),
        dialect=options.dialect, sniffed_agrees=sniffed_agrees,
        num_columns=columns, records_sampled=rows,
        avg_record_bytes=avg_record,
        fields_per_byte=columns / avg_record if avg_record else 0.0,
        quote_rate=quote_rate, numeric_fraction=numeric_fraction,
        num_states=num_states, record_tag_bytes=tag_bytes)
