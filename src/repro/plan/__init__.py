"""repro.plan: the self-tuning configuration planner.

Sits above ``repro.gpusim`` (the calibrated cost model scores candidate
configurations) and ``repro.obs`` (measured stage timings feed back into
the calibration store), and below ``repro.serve`` (admission pricing).
``repro.core`` never imports this package — the parser facade reaches a
shared default planner through the factory hook registered below, the
same inversion ``repro.exec`` uses for the default executor.
"""

from __future__ import annotations

from repro.core.parser import set_default_planner_factory
from repro.plan.calibration import CalibrationStore, config_key
from repro.plan.planner import PlanCandidate, PlanDecision, Planner
from repro.plan.stats import (
    DEFAULT_SAMPLE_BYTES,
    InputStats,
    probe_input,
    workload_fingerprint,
)

__all__ = [
    "Planner",
    "PlanDecision",
    "PlanCandidate",
    "CalibrationStore",
    "config_key",
    "InputStats",
    "probe_input",
    "workload_fingerprint",
    "DEFAULT_SAMPLE_BYTES",
]

_shared_planner: Planner | None = None


def shared_planner() -> Planner:
    """The process-wide default planner (one calibration store).

    Parses that say ``plan="auto"`` without supplying a planner all share
    this instance, so calibration accumulates across calls the same way
    it does inside a service.
    """
    global _shared_planner
    if _shared_planner is None:
        _shared_planner = Planner()
    return _shared_planner


set_default_planner_factory(shared_planner)
