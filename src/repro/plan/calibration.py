"""The calibration store: observed stage timings rescale the cost model.

The GPU cost model predicts the *shape* of the pipeline's costs; the
substrate this reproduction actually runs on (vectorised NumPy) has its
own constants.  The store closes that gap empirically: every finished
parse contributes its measured ``stage.*.seconds`` (equivalently the
:class:`~repro.utils.timing.StepTimer` totals, which survive the sharded
executor's process boundary), and the store keeps per-step **ratios**
``observed / modelled`` as exponentially weighted moving averages.

Two granularities, keyed by workload fingerprint
(:func:`~repro.plan.stats.workload_fingerprint`):

* a *workload-wide* scale per step — what :meth:`Planner.estimate_cost`
  uses to price requests it has never run at the requested shape;
* a *per-configuration* scale per step (fingerprint + chunk bucket +
  stride + partition strategy) — what candidate scoring prefers, so a
  configuration the planner has actually tried is ranked by what it
  measured, not what the model guessed.

The EWMA is monotone: under a constant observed workload each ratio —
and therefore the calibrated estimate — moves toward the measurement on
every update and never overshoots (tested in
``tests/plan/test_calibration.py``).
"""

from __future__ import annotations

from typing import Mapping

from repro.gpusim.cost_model import StepCosts

__all__ = ["CalibrationStore", "STEPS", "chunk_bucket", "config_key"]

#: The cost-model steps the store calibrates (the Figure 9 breakdown).
STEPS = ("parse", "scan", "tag", "partition", "convert")


def chunk_bucket(chunk_size: int) -> int:
    """Power-of-two calibration bucket: measurements at chunk 60 should
    inform a candidate at 64, while 16 and 64 stay distinct."""
    bucket = 1
    while bucket * 2 <= chunk_size:
        bucket *= 2
    return bucket


def config_key(fingerprint: str, chunk_size: int, stride: int,
               strategy: str) -> str:
    """The per-configuration calibration key."""
    return f"{fingerprint}|c{chunk_bucket(chunk_size)}k{stride}p{strategy}"


class CalibrationStore:
    """Per-fingerprint EWMA ratios of observed over modelled step cost."""

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        #: key -> step -> EWMA of observed/modelled.
        self._scales: dict[str, dict[str, float]] = {}
        #: Bumped on every observation; planners use it to notice that a
        #: cached decision predates newer evidence.
        self.version = 0

    # -- recording ---------------------------------------------------------

    def observe(self, key: str, measured: Mapping[str, float],
                modelled: StepCosts) -> None:
        """Fold one run's measured step seconds into ``key``'s scales."""
        scales = self._scales.setdefault(key, {})
        modelled_steps = modelled.as_dict()
        for step in STEPS:
            observed = measured.get(step)
            predicted = modelled_steps[step]
            if observed is None or observed <= 0.0 or predicted <= 0.0:
                continue
            ratio = observed / predicted
            previous = scales.get(step)
            scales[step] = ratio if previous is None \
                else self.alpha * ratio + (1.0 - self.alpha) * previous
        self.version += 1

    # -- lookup ------------------------------------------------------------

    def scale(self, key: str, step: str,
              fallback_key: str | None = None) -> float:
        """The scale for one step, falling back key -> fallback -> 1.0."""
        for candidate in (key, fallback_key):
            if candidate is None:
                continue
            scales = self._scales.get(candidate)
            if scales is not None and step in scales:
                return scales[step]
        return 1.0

    def observed(self, key: str) -> bool:
        return key in self._scales

    def apply(self, costs: StepCosts, key: str,
              fallback_key: str | None = None) -> StepCosts:
        """``costs`` rescaled by this store's evidence for ``key``."""
        return costs.scaled({step: self.scale(key, step, fallback_key)
                             for step in STEPS})

    def snapshot(self) -> dict[str, dict[str, float]]:
        """A JSON-friendly copy (benchmark artefacts, status endpoints)."""
        return {key: dict(scales) for key, scales in self._scales.items()}
