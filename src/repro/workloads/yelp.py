"""Yelp-reviews-like synthetic dataset (paper §5).

The original: 6.69 M reviews, 4.823 GB, average 721.4 B/record, nine
columns (identifiers, numeric ratings, a timestamp, and a long text review
"that may include field and record delimiters"), *all fields enclosed in
double-quotes*.  This generator reproduces those statistics: nine
quoted columns with a long review text embedding commas, newlines and
doubled quotes, padded so the mean record size lands near 721 bytes.
"""

from __future__ import annotations

import random

from repro.columnar.schema import DataType, Field, Schema
from repro.workloads.generators import random_field_text

__all__ = ["YELP_SCHEMA", "generate_yelp_like"]

#: Schema mirroring the yelp reviews CSV (9 columns: text-based,
#: numerical, and temporal types — paper §5).
YELP_SCHEMA = Schema([
    Field("review_id", DataType.STRING),
    Field("user_id", DataType.STRING),
    Field("business_id", DataType.STRING),
    Field("stars", DataType.INT8),
    Field("useful", DataType.INT32),
    Field("funny", DataType.INT32),
    Field("cool", DataType.INT32),
    Field("text", DataType.STRING),
    Field("date", DataType.TIMESTAMP),
])

_ID_ALPHABET = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"

#: Average record size of the real dataset (bytes) — paper §5.
TARGET_RECORD_BYTES = 721.4


def _random_id(rng: random.Random) -> str:
    return "".join(rng.choice(_ID_ALPHABET) for _ in range(22))


def _review_text(rng: random.Random, target_bytes: int) -> str:
    """Review text of roughly ``target_bytes``, with embedded delimiters."""
    parts: list[str] = []
    size = 0
    while size < target_bytes:
        sentence = random_field_text(rng, 4, 10)
        roll = rng.random()
        if roll < 0.25:
            sentence += ","           # embedded field delimiter
        elif roll < 0.35:
            sentence += ".\n"         # embedded record delimiter
        elif roll < 0.40:
            sentence = f'"{sentence}"'  # embedded (doubled) quotes
        else:
            sentence += "."
        parts.append(sentence)
        size += len(sentence) + 1
    return " ".join(parts)


def generate_yelp_like(target_bytes: int, seed: int = 7) -> bytes:
    """Generate approximately ``target_bytes`` of yelp-like CSV.

    Deterministic in ``seed``; every field is double-quoted, reviews embed
    commas, newlines and doubled quotes — the adversarial properties that
    make the real dataset "of particular interest" (paper §5).
    """
    rng = random.Random(seed)
    chunks: list[bytes] = []
    total = 0
    while total < target_bytes:
        review_target = max(40, int(rng.gauss(TARGET_RECORD_BYTES - 180,
                                              120.0)))
        text = _review_text(rng, review_target)
        text = text.replace('"', '""')
        date = (f"20{rng.randint(10, 19):02d}-{rng.randint(1, 12):02d}-"
                f"{rng.randint(1, 28):02d} {rng.randint(0, 23):02d}:"
                f"{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}")
        record = (
            f'"{_random_id(rng)}","{_random_id(rng)}","{_random_id(rng)}",'
            f'"{rng.randint(1, 5)}","{rng.randint(0, 99)}",'
            f'"{rng.randint(0, 99)}","{rng.randint(0, 99)}",'
            f'"{text}","{date}"\n'
        ).encode()
        chunks.append(record)
        total += len(record)
    return b"".join(chunks)
