"""NYC-taxi-trips-like synthetic dataset (paper §5).

The original: 102.8 M yellow-taxi trips from 2018, 9.073 GB, 17 columns of
numeric and temporal types, average 88.3 B/record and only 5.2 B/field —
"the majority of the fields are very short and of a numerical type,
putting the emphasis on data type conversion".
"""

from __future__ import annotations

import random

from repro.columnar.schema import DataType, Field, Schema

__all__ = ["TAXI_SCHEMA", "generate_taxi_like"]

#: Schema mirroring the 2018 yellow-taxi trip records (17 columns).
TAXI_SCHEMA = Schema([
    Field("vendor_id", DataType.INT8),
    Field("pickup_datetime", DataType.TIMESTAMP),
    Field("dropoff_datetime", DataType.TIMESTAMP),
    Field("passenger_count", DataType.INT8),
    Field("trip_distance", DataType.FLOAT64),
    Field("rate_code", DataType.INT8),
    Field("store_and_fwd", DataType.BOOL),
    Field("pu_location", DataType.INT16),
    Field("do_location", DataType.INT16),
    Field("payment_type", DataType.INT8),
    Field("fare_amount", DataType.DECIMAL),
    Field("extra", DataType.DECIMAL),
    Field("mta_tax", DataType.DECIMAL),
    Field("tip_amount", DataType.DECIMAL),
    Field("tolls_amount", DataType.DECIMAL),
    Field("improvement_surcharge", DataType.DECIMAL),
    Field("total_amount", DataType.DECIMAL),
])


def _timestamp(rng: random.Random) -> str:
    return (f"2018-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d} "
            f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:"
            f"{rng.randint(0, 59):02d}")


def generate_taxi_like(target_bytes: int, seed: int = 11) -> bytes:
    """Generate approximately ``target_bytes`` of taxi-like CSV.

    Unquoted, 17 short numeric/temporal fields per record — trivially
    splittable at newlines (every line break is a record delimiter), which
    is exactly why CPU baselines fare much better on it (paper §5.2).
    """
    rng = random.Random(seed)
    chunks: list[bytes] = []
    total = 0
    while total < target_bytes:
        fare = rng.uniform(2.5, 80.0)
        tip = fare * rng.uniform(0.0, 0.3)
        record = ",".join((
            str(rng.randint(1, 2)),
            _timestamp(rng),
            _timestamp(rng),
            str(rng.randint(1, 6)),
            f"{rng.uniform(0.3, 30.0):.2f}",
            str(rng.randint(1, 6)),
            rng.choice(("N", "Y")).replace("N", "0").replace("Y", "1"),
            str(rng.randint(1, 265)),
            str(rng.randint(1, 265)),
            str(rng.randint(1, 4)),
            f"{fare:.2f}",
            f"{rng.choice((0.0, 0.5, 1.0)):.2f}",
            "0.50",
            f"{tip:.2f}",
            f"{rng.choice((0.0, 0.0, 5.76)):.2f}",
            "0.30",
            f"{fare + tip + 0.8:.2f}",
        )).encode() + b"\n"
        chunks.append(record)
        total += len(record)
    return b"".join(chunks)
