"""Generic, deterministic CSV generation for tests and benchmarks.

:class:`CsvGenerator` produces RFC 4180 output with controllable column
types, quoting probability, embedded-delimiter probability, empty-field
probability, and optional comment lines — the knobs the correctness tests
sweep.  All randomness flows from an explicit seed, so every generated
dataset is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dfa.dialects import Dialect

__all__ = ["CsvGenerator", "random_field_text"]

_WORDS = (
    "frame shelf bookcase ribba billy kallax lack hemnes malm brimnes "
    "desk chair table lamp sofa rug plant mirror clock vase drawer "
    "red green blue black white oak birch walnut steel glass"
).split()


def random_field_text(rng: random.Random, min_words: int = 1,
                      max_words: int = 6) -> str:
    """A small, deterministic pseudo-English text fragment."""
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(_WORDS) for _ in range(count))


@dataclass
class CsvGenerator:
    """Configurable RFC 4180 data generator.

    Parameters
    ----------
    num_columns:
        Columns per record.
    quote_probability:
        Chance a text field is enclosed in quotes.
    embedded_delim_probability:
        Chance a *quoted* field embeds a field or record delimiter (the
        adversarial case for parallel parsers).
    empty_probability:
        Chance a field is empty.
    comment_probability:
        Chance of a comment line before a record (needs a dialect with a
        comment byte).
    numeric_columns:
        Column indexes generated as numbers rather than text.
    dialect:
        Output dialect; quoting requires ``dialect.quote``.
    seed:
        PRNG seed; same seed -> same bytes.
    """

    num_columns: int = 4
    quote_probability: float = 0.3
    embedded_delim_probability: float = 0.3
    empty_probability: float = 0.05
    comment_probability: float = 0.0
    numeric_columns: tuple[int, ...] = ()
    dialect: Dialect = field(default_factory=Dialect.csv)
    seed: int = 42

    def generate(self, num_records: int,
                 trailing_newline: bool = True) -> bytes:
        """Generate ``num_records`` records as raw bytes."""
        rng = random.Random(self.seed)
        out: list[bytes] = []
        newline = self.dialect.record_delimiter
        for _ in range(num_records):
            if (self.comment_probability > 0
                    and self.dialect.comment is not None
                    and rng.random() < self.comment_probability):
                out.append(self.dialect.comment
                           + random_field_text(rng).encode() + newline)
            fields = [self._field(rng, col)
                      for col in range(self.num_columns)]
            out.append(self.dialect.delimiter.join(fields) + newline)
        data = b"".join(out)
        if not trailing_newline and data.endswith(newline):
            data = data[:-len(newline)]
        return data

    # -- internals -----------------------------------------------------------

    def _field(self, rng: random.Random, column: int) -> bytes:
        if rng.random() < self.empty_probability:
            return b""
        if column in self.numeric_columns:
            if rng.random() < 0.5:
                return str(rng.randint(-10_000, 10_000)).encode()
            return f"{rng.uniform(-1000, 1000):.2f}".encode()
        text = random_field_text(rng)
        quote = self.dialect.quote
        if quote is not None and rng.random() < self.quote_probability:
            if rng.random() < self.embedded_delim_probability:
                insert = rng.choice([
                    self.dialect.delimiter.decode(),
                    self.dialect.record_delimiter.decode(),
                    quote.decode(),  # becomes a doubled quote when escaped
                ])
                cut = rng.randint(0, len(text))
                text = text[:cut] + insert + text[cut:]
            escaped = text.replace(quote.decode(), quote.decode() * 2)
            return quote + escaped.encode() + quote
        return text.encode()
