"""Skewed inputs (paper §5.1, Figure 11 right).

The paper demonstrates robustness by replacing part of the input with a
*single 200 MB record* while keeping the remaining records unchanged — the
pathological case for record-per-thread designs (one thread would own
200 MB) and the reason ParPaRaw partitions symbols, not records, and adds
block-/device-level collaboration for huge fields (§3.3).
"""

from __future__ import annotations

__all__ = ["skew_dataset"]


def skew_dataset(data: bytes, giant_record_bytes: int,
                 column: int = 0, num_columns: int | None = None,
                 quoted: bool = True) -> bytes:
    """Prepend one giant record to an existing CSV payload.

    Parameters
    ----------
    data:
        The original dataset (unchanged, appended after the giant record).
    giant_record_bytes:
        Approximate size of the injected record (the paper uses 200 MB at
        512 MB total; benchmarks scale this down proportionally).
    column:
        Which column receives the giant value.
    num_columns:
        Columns per record; inferred from the first line of ``data`` when
        omitted.
    quoted:
        Quote the giant value (and embed delimiters in it) — keeps the
        workload adversarial for context-free splitting.
    """
    if num_columns is None:
        first_line = data.split(b"\n", 1)[0]
        num_columns = first_line.count(b",") + 1
    if not 0 <= column < num_columns:
        raise ValueError("column out of range")

    filler = b"lorem ipsum dolor sit amet, consectetur adipiscing elit.\n"
    repeats = max(1, giant_record_bytes // len(filler))
    giant = filler * repeats
    if quoted:
        value = b'"' + giant.replace(b'"', b'""') + b'"'
    else:
        value = giant.replace(b",", b" ").replace(b"\n", b" ")
    fields = [b"0"] * num_columns
    fields[column] = value
    return b",".join(fields) + b"\n" + data
