"""Synthetic dataset generators matched to the paper's evaluation data.

The paper evaluates on *yelp reviews* (4.8 GB CSV, 9 columns, text-heavy
quoted reviews, ≈721.4 B/record) and *NYC taxi trips* (9.1 GB CSV, 17
numeric/temporal columns, ≈88.3 B/record, ≈5.2 B/field).  Neither dataset
ships here, so these generators produce deterministic synthetic equivalents
with the same statistical shape, at any size:

* :func:`~repro.workloads.yelp.generate_yelp_like` — reviews with embedded
  field/record delimiters inside quoted text (the property that breaks
  naive parallel parsers);
* :func:`~repro.workloads.taxi.generate_taxi_like` — many short numeric
  and temporal fields (stressing type conversion);
* :func:`~repro.workloads.skew.skew_dataset` — the Figure 11 variant with
  one record inflated to a configurable size;
* :func:`~repro.workloads.logs.generate_clf` /
  :func:`~repro.workloads.logs.generate_elf` — web-server log workloads
  for the log-format DFAs;
* :class:`~repro.workloads.generators.CsvGenerator` — a configurable
  generic generator for property tests.
"""

from repro.workloads.generators import CsvGenerator, random_field_text
from repro.workloads.yelp import generate_yelp_like, YELP_SCHEMA
from repro.workloads.taxi import generate_taxi_like, TAXI_SCHEMA
from repro.workloads.skew import skew_dataset
from repro.workloads.logs import generate_clf, generate_elf
from repro.workloads.writer import render_value, write_rows, write_table

__all__ = [
    "write_rows",
    "write_table",
    "render_value",
    "CsvGenerator",
    "random_field_text",
    "generate_yelp_like",
    "YELP_SCHEMA",
    "generate_taxi_like",
    "TAXI_SCHEMA",
    "skew_dataset",
    "generate_clf",
    "generate_elf",
]
