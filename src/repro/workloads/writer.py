"""Writing tables back to delimiter-separated text.

The inverse of the parser: render a :class:`~repro.columnar.table.Table`
(or raw rows) as RFC 4180-style output under any
:class:`~repro.dfa.dialects.Dialect`.  Besides being generally useful,
the writer closes the loop for the strongest end-to-end property test in
the suite: *any* table, written and re-parsed, must come back equal
(``tests/integration/test_roundtrip.py``).

Quoting policy: a field is enclosed iff it contains the field delimiter,
the record delimiter, a quote, a CR (when the dialect strips them), the
comment byte at position 0 of a record, or leading content that would
otherwise be misread.  NULL fields are rendered as the empty string —
which the parser maps back to NULL, keeping the round trip exact.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.columnar.schema import DataType
from repro.columnar.table import Table
from repro.dfa.dialects import Dialect
from repro.errors import DialectError

__all__ = ["write_rows", "write_table", "render_value"]


def render_value(value: Any, dtype: DataType,
                 decimal_scale: int = 2) -> bytes | None:
    """Render one typed value to field text (``None`` stays NULL)."""
    if value is None:
        return None
    if dtype is DataType.STRING:
        return str(value).encode("utf-8")
    if dtype is DataType.BOOL:
        return b"true" if value else b"false"
    if dtype is DataType.DECIMAL:
        scaled = int(value)
        sign = "-" if scaled < 0 else ""
        magnitude = abs(scaled)
        whole, frac = divmod(magnitude, 10 ** decimal_scale)
        if decimal_scale == 0:
            return f"{sign}{whole}".encode()
        return f"{sign}{whole}.{str(frac).zfill(decimal_scale)}".encode()
    if dtype is DataType.DATE:
        # Invert days_from_civil (Hinnant's civil_from_days).  The C++
        # original adjusts negative values before a *truncating* divide;
        # Python's floor division needs no adjustment.
        days = int(value) + 719468
        era = days // 146097
        day_of_era = days - era * 146097
        year_of_era = (day_of_era - day_of_era // 1460
                       + day_of_era // 36524
                       - day_of_era // 146096) // 365
        year = year_of_era + era * 400
        day_of_year = day_of_era - (365 * year_of_era + year_of_era // 4
                                    - year_of_era // 100)
        month_shifted = (5 * day_of_year + 2) // 153
        day = day_of_year - (153 * month_shifted + 2) // 5 + 1
        month = month_shifted + 3 if month_shifted < 10 \
            else month_shifted - 9
        year += month <= 2
        return f"{year:04d}-{month:02d}-{day:02d}".encode()
    if dtype is DataType.TIMESTAMP:
        seconds = int(value)
        days, rest = divmod(seconds, 86400)
        hour, rest = divmod(rest, 3600)
        minute, second = divmod(rest, 60)
        date_text = render_value(days, DataType.DATE)
        assert date_text is not None
        return date_text + f" {hour:02d}:{minute:02d}:{second:02d}".encode()
    if dtype in (DataType.FLOAT32, DataType.FLOAT64):
        return repr(float(value)).encode()
    return str(int(value)).encode()


def _needs_quoting(text: bytes, dialect: Dialect,
                   record_start: bool) -> bool:
    if dialect.quote is None:
        return False
    special = [dialect.delimiter, dialect.record_delimiter, dialect.quote]
    if dialect.strip_carriage_return:
        special.append(b"\r")
    if any(s in text for s in special):
        return True
    if record_start and dialect.comment is not None \
            and text.startswith(dialect.comment):
        return True
    return False


def _encode_field(text: bytes | None, dialect: Dialect,
                  record_start: bool) -> bytes:
    if text is None:
        return b""
    if _needs_quoting(text, dialect, record_start):
        quote = dialect.quote
        assert quote is not None
        if dialect.doubled_quote:
            escaped = text.replace(quote, quote + quote)
        elif dialect.escape is not None:
            escaped = text.replace(dialect.escape,
                                   dialect.escape + dialect.escape) \
                .replace(quote, dialect.escape + quote)
        else:
            raise DialectError(
                "field contains the quote byte but the dialect defines "
                "neither doubled quotes nor an escape byte")
        return quote + escaped + quote
    if dialect.quote is None:
        forbidden = [dialect.delimiter, dialect.record_delimiter]
        if any(s in text for s in forbidden):
            raise DialectError(
                "field contains a delimiter and the dialect has no "
                "quoting mechanism")
    return text


def write_rows(rows: Iterable[Sequence[bytes | None]],
               dialect: Dialect | None = None) -> bytes:
    """Render raw rows (bytes per field, ``None`` = NULL) to text."""
    dialect = dialect if dialect is not None else Dialect.csv()
    out: list[bytes] = []
    for row in rows:
        encoded = [
            _encode_field(field, dialect, record_start=(i == 0))
            for i, field in enumerate(row)
        ]
        out.append(dialect.delimiter.join(encoded))
        out.append(dialect.record_delimiter)
    return b"".join(out)


def write_table(table: Table, dialect: Dialect | None = None,
                header: bool = False) -> bytes:
    """Render a typed table to delimiter-separated text.

    With ``header=True`` the first line holds the column names.
    """
    dialect = dialect if dialect is not None else Dialect.csv()
    rows: list[list[bytes | None]] = []
    if header:
        rows.append([f.name.encode("utf-8") for f in table.schema])
    fields = table.schema.fields
    for row in table.rows():
        rows.append([
            render_value(value, field.dtype, field.decimal_scale)
            for value, field in zip(row, fields)
        ])
    return write_rows(rows, dialect)
