"""Web-server log workloads (paper §1's second motivating format).

Generates NCSA Common Log Format and W3C Extended Log Format data for the
log-format DFAs in :mod:`repro.dfa.logformats`.  The ELF generator
interleaves ``#`` directive lines — with quotes inside them — which is the
pattern that defeats quote-counting parsers and motivates the FSM
approach.
"""

from __future__ import annotations

import random

__all__ = ["generate_clf", "generate_elf"]

_PATHS = ("/index.html", "/api/v1/items", "/static/app.js", "/login",
          "/images/logo.png", "/search?q=shelf", "/cart", "/checkout")
_AGENTS = ("Mozilla/5.0 (X11; Linux)", "curl/7.88", "Googlebot/2.1")
_MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")


def _clf_line(rng: random.Random) -> str:
    host = (f"{rng.randint(1, 254)}.{rng.randint(0, 255)}."
            f"{rng.randint(0, 255)}.{rng.randint(1, 254)}")
    date = (f"[{rng.randint(1, 28):02d}/{rng.choice(_MONTHS)}/2018:"
            f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:"
            f"{rng.randint(0, 59):02d} +0000]")
    request = (f'"{rng.choice(("GET", "POST", "HEAD"))} '
               f'{rng.choice(_PATHS)} HTTP/1.1"')
    status = rng.choice((200, 200, 200, 301, 404, 500))
    size = rng.randint(100, 50_000)
    return f"{host} - frank {date} {request} {status} {size}\n"


def generate_clf(num_lines: int, seed: int = 3) -> bytes:
    """Common Log Format: space-delimited with ``[...]`` and ``"..."``."""
    rng = random.Random(seed)
    return "".join(_clf_line(rng) for _ in range(num_lines)).encode()


def generate_elf(num_lines: int, seed: int = 5,
                 directive_every: int = 40) -> bytes:
    """Extended Log Format with interleaved ``#`` directive lines.

    Directives contain quotes (``#Remark: "rotated"``) to exercise the
    quote-counting failure mode.
    """
    rng = random.Random(seed)
    out: list[str] = [
        "#Version: 1.0\n",
        "#Fields: date time c-ip cs-method cs-uri sc-status time-taken\n",
    ]
    for i in range(num_lines):
        if directive_every and i and i % directive_every == 0:
            out.append('#Remark: "log segment rotated", see "ops manual"\n')
        date = (f"2018-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}")
        time = (f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:"
                f"{rng.randint(0, 59):02d}")
        ip = (f"{rng.randint(1, 254)}.{rng.randint(0, 255)}."
              f"{rng.randint(0, 255)}.{rng.randint(1, 254)}")
        method = rng.choice(("GET", "POST"))
        uri = rng.choice(_PATHS)
        status = rng.choice((200, 200, 304, 404))
        taken = rng.randint(1, 900)
        out.append(f"{date} {time} {ip} {method} {uri} {status} {taken}\n")
    return "".join(out).encode()
