"""Wall-clock step timing for the parsing pipeline.

The paper reports per-step breakdowns (parse / scan / tag / partition /
convert — Figures 9 and 11).  :class:`StepTimer` accumulates named step
durations so the parser can expose the same breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["StepTimer"]


class StepTimer:
    """Accumulates wall-clock durations per named pipeline step.

    Example
    -------
    >>> timer = StepTimer()
    >>> with timer.step("parse"):
    ...     _ = sum(range(10))
    >>> sorted(timer.totals()) == ['parse']
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def step(self, name: str) -> Iterator[None]:
        """Context manager measuring one invocation of step ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Manually credit ``seconds`` to step ``name``."""
        if seconds < 0:
            raise ValueError("cannot add a negative duration")
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> dict[str, float]:
        """Total seconds per step (copy)."""
        return dict(self._totals)

    def counts(self) -> dict[str, int]:
        """Number of timed invocations per step (copy)."""
        return dict(self._counts)

    def total(self) -> float:
        """Sum over all steps, in seconds."""
        return sum(self._totals.values())

    def merge(self, other: "StepTimer") -> None:
        """Fold another timer's accumulated totals into this one."""
        for name, seconds in other._totals.items():
            self._totals[name] = self._totals.get(name, 0.0) + seconds
        for name, count in other._counts.items():
            self._counts[name] = self._counts.get(name, 0) + count

    def reset(self) -> None:
        """Drop all accumulated measurements."""
        self._totals.clear()
        self._counts.clear()

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v * 1e3:.2f}ms"
                          for k, v in sorted(self._totals.items()))
        return f"StepTimer({parts})"
