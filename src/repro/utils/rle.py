"""Run-length encoding helpers.

ParPaRaw generates the index into a column's concatenated symbol string (CSS)
by run-length encoding the column's record-tags: each run is one field, the
run value is the record it belongs to, and the run length is the field's
symbol count (paper §3.3, Figure 5).
"""

from __future__ import annotations

import numpy as np

__all__ = ["run_length_encode", "run_starts"]


def run_starts(values: np.ndarray) -> np.ndarray:
    """Indexes at which a new run begins in ``values``.

    Position 0 always starts a run (for non-empty input).

    >>> run_starts(np.array([7, 7, 8, 8, 8, 7])).tolist()
    [0, 2, 5]
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("run_starts expects a 1-D array")
    if values.size == 0:
        return np.empty(0, dtype=np.int64)
    changed = np.empty(values.size, dtype=bool)
    changed[0] = True
    np.not_equal(values[1:], values[:-1], out=changed[1:])
    return np.flatnonzero(changed).astype(np.int64)


def run_length_encode(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode a 1-D array.

    Returns ``(run_values, run_lengths)`` such that repeating each
    ``run_values[i]`` exactly ``run_lengths[i]`` times reconstructs the input.

    This is the data-parallel primitive used for CSS index generation: on the
    GPU it is implemented with a head-flag + prefix-sum; here the equivalent
    vectorised formulation uses :func:`run_starts` and a difference.

    >>> vals, lens = run_length_encode(np.array([0, 0, 0, 1, 1, 3]))
    >>> vals.tolist(), lens.tolist()
    ([0, 1, 3], [3, 2, 1])
    """
    values = np.asarray(values)
    starts = run_starts(values)
    if starts.size == 0:
        return values[:0].copy(), np.empty(0, dtype=np.int64)
    lengths = np.empty(starts.size, dtype=np.int64)
    lengths[:-1] = np.diff(starts)
    lengths[-1] = values.size - starts[-1]
    return values[starts], lengths
