"""Shared low-level utilities (bit manipulation, RLE, timing)."""

from repro.utils.bits import (
    popcount32,
    popcount64,
    popcount_array,
    bits_required,
    next_power_of_two,
    clear_bits_below,
    last_set_bit_position,
)
from repro.utils.rle import run_length_encode, run_starts
from repro.utils.timing import StepTimer

__all__ = [
    "popcount32",
    "popcount64",
    "popcount_array",
    "bits_required",
    "next_power_of_two",
    "clear_bits_below",
    "last_set_bit_position",
    "run_length_encode",
    "run_starts",
    "StepTimer",
]
