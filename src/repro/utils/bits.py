"""Bit-manipulation helpers used across the parsing pipeline.

The ParPaRaw paper leans on a handful of hardware bit intrinsics —
``popc`` (population count), finding the last set bit, masking bits below a
position — to compute per-chunk record counts and column offsets from the
delimiter bitmap indexes (paper §3.2).  This module provides the
software equivalents, both for Python integers (used by the scalar,
paper-faithful code paths) and for NumPy arrays (used by the vectorised
executor).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "popcount32",
    "popcount64",
    "popcount_array",
    "bits_required",
    "next_power_of_two",
    "clear_bits_below",
    "last_set_bit_position",
]

_U32 = 0xFFFFFFFF
_U64 = 0xFFFFFFFFFFFFFFFF


def popcount32(value: int) -> int:
    """Count the set bits in a 32-bit unsigned integer.

    Equivalent to CUDA's ``__popc`` intrinsic, which the paper uses to count
    record delimiters in a chunk's bitmap index (§3.2).

    >>> popcount32(0b1011)
    3
    """
    return int(value & _U32).bit_count()


def popcount64(value: int) -> int:
    """Count the set bits in a 64-bit unsigned integer (CUDA ``__popcll``).

    >>> popcount64((1 << 63) | 1)
    2
    """
    return int(value & _U64).bit_count()


def popcount_array(values: np.ndarray) -> np.ndarray:
    """Vectorised population count over an unsigned integer array.

    Uses the classic parallel bit-counting reduction (the same SWAR pattern a
    GPU without a ``popc`` unit would use), which keeps everything inside
    NumPy instead of falling back to a Python loop.

    Parameters
    ----------
    values:
        Array of an unsigned integer dtype (uint8/16/32/64).

    Returns
    -------
    np.ndarray
        ``int64`` array of per-element set-bit counts.
    """
    if values.dtype == np.uint8:
        v = values.astype(np.uint32)
    elif values.dtype in (np.uint16, np.uint32):
        v = values.astype(np.uint32)
    elif values.dtype == np.uint64:
        v = values.copy()
        v = v - ((v >> np.uint64(1)) & np.uint64(0x5555555555555555))
        v = (v & np.uint64(0x3333333333333333)) + (
            (v >> np.uint64(2)) & np.uint64(0x3333333333333333))
        v = (v + (v >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        v = (v * np.uint64(0x0101010101010101)) >> np.uint64(56)
        return v.astype(np.int64)
    else:
        raise TypeError(f"popcount_array requires an unsigned dtype, "
                        f"got {values.dtype}")
    v = v - ((v >> np.uint32(1)) & np.uint32(0x55555555))
    v = (v & np.uint32(0x33333333)) + ((v >> np.uint32(2)) & np.uint32(0x33333333))
    v = (v + (v >> np.uint32(4))) & np.uint32(0x0F0F0F0F)
    v = (v * np.uint32(0x01010101)) >> np.uint32(24)
    return v.astype(np.int64)


def bits_required(value: int) -> int:
    """Number of bits needed to represent ``value`` distinct values.

    Used to size the radix-sort key width and MFIRA item width.

    >>> bits_required(1)
    1
    >>> bits_required(17)
    5
    """
    if value <= 0:
        raise ValueError("bits_required expects a positive count")
    if value == 1:
        return 1
    return (value - 1).bit_length()


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value``.

    >>> next_power_of_two(5)
    8
    """
    if value <= 0:
        raise ValueError("next_power_of_two expects a positive value")
    return 1 << (value - 1).bit_length()


def clear_bits_below(value: int, position: int) -> int:
    """Zero all bits of ``value`` strictly below ``position``.

    The paper computes a chunk's absolute column offset by zeroing all field
    delimiter bits preceding the last record delimiter and popcounting the
    remainder (§3.2).

    >>> bin(clear_bits_below(0b1111, 2))
    '0b1100'
    """
    if position < 0:
        raise ValueError("position must be non-negative")
    return value & ~((1 << position) - 1)


def last_set_bit_position(value: int) -> int:
    """Position of the most significant set bit, or ``-1`` if none.

    Equivalent to CUDA's ``bfind`` for a non-zero operand.

    >>> last_set_bit_position(0b1000)
    3
    >>> last_set_bit_position(0)
    -1
    """
    if value == 0:
        return -1
    return value.bit_length() - 1
