"""ParPaRaw reproduction: massively parallel parsing of delimiter-separated
raw data.

Reproduces Stehle & Jacobsen, *ParPaRaw: Massively Parallel Parsing of
Delimiter-Separated Raw Data*, VLDB 2020 — a data-parallel DFA-based
parsing pipeline, here executed on a vectorised NumPy substrate with a
calibrated GPU cost model for the paper's performance experiments.

Quick start::

    from repro import parse_bytes

    result = parse_bytes(b'id,name\n1,"Billy, the bookcase"\n')
    print(result.table.to_pylist())

Main entry points:

* :func:`repro.parse_bytes` / :class:`repro.ParPaRawParser` — the parser;
* :class:`repro.ParseOptions` — dialects, schemas, tagging modes,
  capabilities;
* :class:`repro.StreamingParser` — incremental parsing with record
  carry-over;
* :class:`repro.Planner` / ``ParseOptions(plan="auto")`` — the
  self-tuning configuration planner (:mod:`repro.plan`);
* :mod:`repro.exec` — pluggable execution backends
  (:class:`repro.SerialExecutor`, :class:`repro.ShardedExecutor`);
* :mod:`repro.dfa` — custom parsing rules as DFAs;
* :mod:`repro.gpusim` — the GPU execution model and data structures
  (MFIRA, SWAR);
* :mod:`repro.baselines` — comparison parsers;
* :mod:`repro.workloads` — synthetic dataset generators.
"""

from repro.columnar import Column, DataType, Field, Schema, Table
from repro.core import (
    ParPaRawParser,
    ParseOptions,
    ParseResult,
    PartitionStrategy,
    TaggingImpl,
    TaggingMode,
    parse_bytes,
)
from repro.core.options import ColumnCountPolicy
from repro.dfa import Dialect, DfaBuilder, dialect_dfa, rfc4180_dfa
from repro.exec import Executor, SerialExecutor, ShardedExecutor
from repro.errors import (
    ConversionError,
    DfaError,
    DialectError,
    ParseError,
    ReproError,
    SchemaError,
)
from repro.plan import InputStats, PlanDecision, Planner
from repro.streaming import StreamingParser

__version__ = "1.0.0"

__all__ = [
    "parse_bytes",
    "ParPaRawParser",
    "ParseOptions",
    "ParseResult",
    "TaggingMode",
    "TaggingImpl",
    "PartitionStrategy",
    "ColumnCountPolicy",
    "StreamingParser",
    "Planner",
    "PlanDecision",
    "InputStats",
    "Executor",
    "SerialExecutor",
    "ShardedExecutor",
    "Dialect",
    "DfaBuilder",
    "dialect_dfa",
    "rfc4180_dfa",
    "Schema",
    "Field",
    "DataType",
    "Table",
    "Column",
    "ReproError",
    "ParseError",
    "DialectError",
    "DfaError",
    "SchemaError",
    "ConversionError",
    "__version__",
]
