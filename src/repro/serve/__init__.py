"""The multi-tenant ingest service: the parser running as a system.

ROADMAP item 1 ("millions of users"): this package promotes the
library-object parsers into a long-running front end.  Many concurrent
parse requests — from in-process callers or socket clients — are
multiplexed onto **one shared warm executor**: a single
:class:`~repro.exec.ShardedExecutor` whose process pool, shared-memory
shipping and process-wide kernel-table cache are reused across requests
instead of being rebuilt per call.  From the second request of a dialect
on, the strided tables are cache hits and the pool is already spawned.

Pieces:

* :class:`~repro.serve.service.IngestService` — admission queue with
  priorities and backpressure, dispatcher threads, per-request deadlines
  and cancellation, per-tenant :mod:`repro.obs` metrics, graceful drain;
* :class:`~repro.serve.client.Client` — the in-process API (one-shot
  ``parse``, async ``submit`` tickets, incremental ``stream`` sessions);
* :mod:`repro.serve.protocol` + :class:`~repro.serve.server.IngestServer`
  — a framed socket protocol (tables travel in the Feather framing of
  :mod:`repro.columnar.serialize`) behind ``python -m repro serve``, with
  :class:`~repro.serve.client.RemoteClient` as the wire client;
* :mod:`repro.serve.status` — the operability surface: batch history and
  health reports behind ``python -m repro batches`` / ``checkhealth``.

See ``docs/SERVICE.md`` for the architecture and protocol, and
``docs/OBSERVABILITY.md`` for the ``serve.*`` metric names.
"""

from repro.errors import AdmissionError, ProtocolError, ServeError
from repro.serve.client import Client, RemoteClient
from repro.serve.server import IngestServer
from repro.serve.service import (
    IngestService,
    ServiceConfig,
    TenantPolicy,
    Ticket,
)
from repro.serve.status import render_batches, render_checkhealth, \
    render_status

__all__ = [
    "IngestService",
    "ServiceConfig",
    "TenantPolicy",
    "Ticket",
    "Client",
    "RemoteClient",
    "IngestServer",
    "ServeError",
    "AdmissionError",
    "ProtocolError",
    "render_status",
    "render_batches",
    "render_checkhealth",
]
