"""Clients for the ingest service: in-process and over the wire.

:class:`Client` wraps an :class:`~repro.serve.service.IngestService`
living in the same process — zero serialisation, full API (tickets,
streaming sessions, custom-DFA options).  :class:`RemoteClient` speaks
the :mod:`repro.serve.protocol` framing to an
:class:`~repro.serve.server.IngestServer`, mapping wire rejections back
to the same exception types the in-process path raises, so calling code
is indifferent to which side of a socket the service lives on:

* ``status: rejected`` → :class:`~repro.errors.AdmissionError` (with the
  server's ``reason`` and ``retry_after`` backoff hint);
* ``status: timeout`` → :class:`TimeoutError`;
* ``status: error`` → :class:`~repro.errors.ServeError`.

A remote ``parse`` returns the decoded
:class:`~repro.columnar.table.Table` (the wire ships the table in
Feather framing, not the full in-memory :class:`ParseResult`).
"""

from __future__ import annotations

import json
import socket

from repro.columnar.serialize import read_feather
from repro.core.options import ParseOptions
from repro.errors import AdmissionError, ProtocolError, ServeError
from repro.serve.protocol import options_to_wire, read_frame, write_frame
from repro.serve.service import IngestService, StreamSession, Ticket

__all__ = ["Client", "RemoteClient"]


class Client:
    """The in-process client: a thin veneer over :class:`IngestService`.

    Exists so calling code written against a client object can swap in a
    :class:`RemoteClient` without restructuring; it also pins a default
    tenant, which the raw service API makes you repeat per call.
    """

    def __init__(self, service: IngestService, tenant: str = "default"):
        self.service = service
        self.tenant = tenant

    def parse(self, data: bytes, *, options: ParseOptions | None = None,
              priority: int | None = None, timeout: float | None = None):
        return self.service.parse(data, tenant=self.tenant,
                                  options=options, priority=priority,
                                  timeout=timeout)

    def submit(self, data: bytes, *, options: ParseOptions | None = None,
               priority: int | None = None,
               timeout: float | None = None) -> Ticket:
        return self.service.submit(data, tenant=self.tenant,
                                   options=options, priority=priority,
                                   timeout=timeout)

    def stream(self, *, options: ParseOptions | None = None
               ) -> StreamSession:
        return self.service.open_stream(tenant=self.tenant,
                                        options=options)

    def status(self) -> dict:
        return self.service.status()


class RemoteClient:
    """A wire client: one connection per request, no state between calls.

    Deliberately simple — the server multiplexes many connections onto
    one service, so clients gain nothing from connection pooling beyond
    a saved localhost handshake.
    """

    def __init__(self, host: str, port: int, tenant: str = "default",
                 connect_timeout: float = 10.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.connect_timeout = connect_timeout

    # -- plumbing ----------------------------------------------------------

    def _roundtrip(self, header: dict, body: bytes = b"",
                   timeout: float | None = None) -> tuple[dict, bytes]:
        # The socket deadline covers the whole exchange; the server
        # additionally enforces the request's own deadline server-side.
        budget = self.connect_timeout if timeout is None \
            else self.connect_timeout + timeout
        with socket.create_connection((self.host, self.port),
                                      timeout=budget) as conn:
            with conn.makefile("rwb") as stream:
                write_frame(stream, header, body)
                return read_frame(stream)

    @staticmethod
    def _raise_for_status(header: dict) -> None:
        status = header.get("status")
        if status == "ok":
            return
        message = header.get("error", "request failed")
        if status == "rejected":
            raise AdmissionError(message,
                                 reason=header.get("reason", "rejected"),
                                 retry_after=header.get("retry_after"))
        if status == "timeout":
            raise TimeoutError(message)
        raise ServeError(message)

    # -- API ---------------------------------------------------------------

    def parse(self, data: bytes, *, options: ParseOptions | None = None,
              priority: int | None = None, timeout: float | None = None):
        """Parse ``data`` remotely; returns the decoded ``Table``.

        Raises the same exceptions the in-process path would:
        :class:`AdmissionError` on rejection (check ``retry_after``),
        :class:`TimeoutError` past the deadline, :class:`ServeError` on
        server-side failure.
        """
        header = {"op": "parse", "tenant": self.tenant}
        if options is not None:
            header["options"] = options_to_wire(options)
        if priority is not None:
            header["priority"] = priority
        if timeout is not None:
            header["timeout"] = timeout
        reply, body = self._roundtrip(header, data, timeout=timeout)
        self._raise_for_status(reply)
        return read_feather(body)

    def parse_info(self, data: bytes, *,
                   options: ParseOptions | None = None,
                   priority: int | None = None,
                   timeout: float | None = None) -> tuple[dict, object]:
        """Like :meth:`parse` but also returns the response header
        (``records``/``rows``/``rejected_records`` counts)."""
        header = {"op": "parse", "tenant": self.tenant}
        if options is not None:
            header["options"] = options_to_wire(options)
        if priority is not None:
            header["priority"] = priority
        if timeout is not None:
            header["timeout"] = timeout
        reply, body = self._roundtrip(header, data, timeout=timeout)
        self._raise_for_status(reply)
        return reply, read_feather(body)

    def status(self) -> dict:
        """The remote service's status dict (see ``status.py``)."""
        reply, body = self._roundtrip({"op": "status"})
        self._raise_for_status(reply)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(
                f"malformed status payload: {error}") from None

    def ping(self) -> bool:
        """``True`` iff the server answers the ping op."""
        try:
            reply, _ = self._roundtrip({"op": "ping"})
        except (OSError, ProtocolError):
            return False
        return reply.get("status") == "ok"
