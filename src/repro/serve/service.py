"""The multi-tenant ingest service core.

One :class:`IngestService` owns one **warm executor** — by default a
:class:`~repro.exec.ShardedExecutor` whose process pool, shared-memory
input shipping and kernel-table cache persist across requests — and
multiplexes every request onto it:

* **admission** — a bounded priority queue.  A full queue rejects with
  :class:`~repro.errors.AdmissionError` carrying a ``retry_after`` hint
  (backpressure: the client backs off instead of the service buffering
  without limit).  Oversized bodies and submissions after shutdown are
  rejected outright.
* **dispatch** — a small pool of dispatcher threads pulls requests in
  priority order and runs them through the shared executor.  Parsing
  releases the GIL into the worker processes on the sharded path, so a
  handful of dispatchers keeps the pool busy without oversubscribing it.
* **deadlines & cancellation** — every request may carry a timeout.  A
  request whose deadline lapses while queued is never started; one that
  finishes past its deadline resolves to timeout (the result is
  discarded).  :meth:`Ticket.cancel` withdraws queued work.  All state
  transitions race through one atomic resolver, so a request settles
  exactly once.
* **observability** — per-tenant ``serve.*`` counters/histograms and a
  bounded batch history feed ``python -m repro batches``/``checkhealth``
  (see :mod:`repro.serve.status` and ``docs/OBSERVABILITY.md``).
* **drain** — :meth:`IngestService.close` stops admission, lets queued
  work finish (or cancels it with ``drain=False``), joins dispatchers
  and closes the owned executor, releasing pool processes and
  shared-memory segments.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.core.options import ParseOptions
from repro.core.parser import ParPaRawParser
from repro.core.result import ParseResult
from repro.errors import AdmissionError, ServeError
from repro.exec import SerialExecutor, ShardedExecutor
from repro.kernels import cache_info
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.plan import Planner
from repro.streaming import StreamingParser
from repro.streaming.stream_parser import DEFAULT_MAX_CARRY_BYTES

__all__ = ["IngestService", "ServiceConfig", "TenantPolicy", "Ticket",
           "StreamSession", "QUEUED", "RUNNING", "DONE", "FAILED",
           "TIMEOUT", "CANCELLED"]

#: Ticket states.  Strings (not an Enum) so they serialise verbatim into
#: status dicts and wire headers.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

_TERMINAL = frozenset({DONE, FAILED, TIMEOUT, CANCELLED})


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission limits and defaults.

    ``None`` fields inherit the service-wide default from
    :class:`ServiceConfig`.
    """

    #: Default priority for the tenant's requests (lower runs first).
    priority: int = 0
    #: Largest request body the tenant may submit.
    max_request_bytes: int | None = None
    #: Carry-over bound for the tenant's streaming sessions.
    max_carry_bytes: int | None = None
    #: Largest estimated parse cost (seconds, priced by the service's
    #: planner) the tenant may submit; ``None`` = no cost budget.
    max_cost_seconds: float | None = None


@dataclass(frozen=True)
class ServiceConfig:
    """Everything configurable about an :class:`IngestService`."""

    #: Worker processes for the shared executor; ``1`` runs serial.
    workers: int = 1
    #: Dispatcher threads pulling from the admission queue.
    dispatchers: int = 2
    #: Admission queue capacity; a full queue rejects with retry-after.
    queue_capacity: int = 64
    #: Service-wide request body ceiling.
    max_request_bytes: int = 64 * 1024 * 1024
    #: Service-wide streaming carry-over bound.
    max_carry_bytes: int = DEFAULT_MAX_CARRY_BYTES
    #: Default per-request timeout in seconds (``None`` = no deadline).
    default_timeout: float | None = None
    #: Base of the retry-after hint handed out on queue-full rejects.
    retry_after: float = 0.05
    #: Parse options used when a request carries none.
    default_options: ParseOptions | None = None
    #: Per-tenant overrides.
    tenants: dict[str, TenantPolicy] = field(default_factory=dict)
    #: Finished requests kept in the batch history ring.
    history: int = 256
    #: ``False`` runs the sharded schedule inline (tests/debugging).
    use_processes: bool = True

    def policy(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, _DEFAULT_POLICY)


_DEFAULT_POLICY = TenantPolicy()


class Ticket:
    """A submitted request: state, result, and the settle-once contract.

    All transitions go through :meth:`_resolve`, which lets exactly one
    terminal state win — a result arriving after the deadline, a cancel
    racing a dispatcher, and a timeout racing completion all settle
    deterministically.
    """

    def __init__(self, request_id: int, tenant: str, priority: int,
                 deadline: float | None, input_bytes: int,
                 estimated_cost: float = 0.0):
        self.id = request_id
        self.tenant = tenant
        self.priority = priority
        #: Monotonic deadline (``None`` = no timeout).
        self.deadline = deadline
        self.input_bytes = input_bytes
        #: Planner-priced parse estimate in seconds (queue drain hints).
        self.estimated_cost = estimated_cost
        self.state = QUEUED
        self.result_value: ParseResult | None = None
        self.error: BaseException | None = None
        self._done = threading.Event()
        self._lock = threading.Lock()
        #: Set by the service while the request runs (diagnostics).
        self.started_at: float | None = None

    # -- state machine -----------------------------------------------------

    def _resolve(self, state: str, result: ParseResult | None = None,
                 error: BaseException | None = None) -> bool:
        """Move to a terminal state; ``False`` if already settled."""
        with self._lock:
            if self.state in _TERMINAL:
                return False
            self.state = state
            self.result_value = result
            self.error = error
        self._done.set()
        return True

    def _begin(self) -> bool:
        """Dispatcher claim: QUEUED -> RUNNING, or ``False`` if settled."""
        with self._lock:
            if self.state != QUEUED:
                return False
            self.state = RUNNING
            self.started_at = time.monotonic()
            return True

    def _expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    # -- caller API --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL

    def cancel(self) -> bool:
        """Withdraw the request; ``True`` if it never ran (nor will)."""
        return self._resolve(CANCELLED,
                             error=ServeError("request cancelled"))

    def wait(self, timeout: float | None = None) -> bool:
        """Block until settled (or ``timeout``); enforces the deadline.

        When the request's own deadline lapses first, the waiter settles
        the ticket as :data:`TIMEOUT` — a dispatcher still chewing on it
        will find the ticket settled and discard its result.  ``False``
        means only the caller's wait budget lapsed; the request is still
        in flight.
        """
        wait_until = None if timeout is None \
            else time.monotonic() + timeout
        while not self._done.is_set():
            now = time.monotonic()
            if self.deadline is not None and now >= self.deadline:
                self._resolve(TIMEOUT, error=TimeoutError(
                    f"request {self.id} missed its deadline"))
                return True
            if wait_until is not None and now >= wait_until:
                return False
            horizons = [h for h in (self.deadline, wait_until)
                        if h is not None]
            self._done.wait(min(horizons) - now if horizons else None)
        return True

    def result(self, timeout: float | None = None) -> ParseResult:
        """The parse result; raises the failure for unhappy outcomes."""
        if not self.wait(timeout):
            raise TimeoutError(
                f"request {self.id} not finished within the wait timeout")
        if self.state == DONE:
            assert self.result_value is not None
            return self.result_value
        assert self.error is not None
        raise self.error


class StreamSession:
    """An incremental parse bound to the service's shared executor.

    The in-process analogue of a chunked upload: :meth:`feed` partitions
    as they arrive, :meth:`finish` for the combined table.  Sessions use
    the tenant's carry bound and per-partition admission size checks, and
    account into the same per-tenant metrics as one-shot requests.
    Feeds run on the caller's thread (ordering within a session is the
    caller's, as it must be) but share the warm executor — and therefore
    the kernel-table cache and worker pool — with everything else.
    """

    def __init__(self, service: "IngestService", tenant: str,
                 options: ParseOptions, max_carry_bytes: int | None,
                 max_partition_bytes: int):
        self._service = service
        self.tenant = tenant
        self._max_partition_bytes = max_partition_bytes
        self._stream = StreamingParser(
            options, executor=service._executor,
            tracer=service.tracer, metrics=service.metrics,
            max_carry_bytes=max_carry_bytes)

    def feed(self, partition: bytes) -> int:
        service = self._service
        if service.closing:
            raise ServeError("service is shutting down")
        if len(partition) > self._max_partition_bytes:
            service._count_reject(self.tenant, "oversized")
            raise AdmissionError(
                f"stream partition of {len(partition)} bytes exceeds the "
                f"tenant limit of {self._max_partition_bytes}",
                reason="oversized")
        records = self._stream.feed(partition)
        service._account_stream(self.tenant, len(partition), records)
        return records

    def finish(self):
        table = self._stream.finish()
        self._service._record_stream_batch(self)
        return table

    @property
    def records_parsed(self) -> int:
        return self._stream.records_parsed

    @property
    def bytes_fed(self) -> int:
        return self._stream.bytes_fed


class IngestService:
    """Multi-tenant parse front end over one shared warm executor."""

    def __init__(self, config: ServiceConfig | None = None,
                 executor=None, tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry | None = None):
        self.config = config if config is not None else ServiceConfig()
        self.tracer = tracer
        #: The service always keeps real metrics: status/checkhealth and
        #: the wire ``status`` op are built from them.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if executor is not None:
            self._executor = executor
            self._owns_executor = False
        elif self.config.workers > 1:
            self._executor = ShardedExecutor(
                workers=self.config.workers,
                use_processes=self.config.use_processes)
            self._owns_executor = True
        else:
            self._executor = SerialExecutor()
            self._owns_executor = True
        #: One planner per service: request parses feed its calibration
        #: store, so admission estimates sharpen as the service runs.
        self._planner = Planner(tracer=self.tracer, metrics=self.metrics)
        self._queue: queue.PriorityQueue = queue.PriorityQueue(
            maxsize=self.config.queue_capacity)
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._closing = False
        self._closed = False
        self._warm = False
        self._started = time.monotonic()
        self._started_wall = time.time()
        self._batches: deque[dict] = deque(maxlen=self.config.history)
        self._dispatchers = [
            threading.Thread(target=self._dispatch,
                             name=f"repro-serve-dispatch-{i}", daemon=True)
            for i in range(max(1, self.config.dispatchers))]
        for thread in self._dispatchers:
            thread.start()

    # -- admission ---------------------------------------------------------

    def submit(self, data: bytes, *, tenant: str = "default",
               options: ParseOptions | None = None,
               priority: int | None = None,
               timeout: float | None = None) -> Ticket:
        """Admit one parse request; returns its :class:`Ticket`.

        Raises :class:`~repro.errors.AdmissionError` when the request
        cannot be queued: service shutting down (``closed``), body over
        the tenant's size limit (``oversized``), estimated parse cost
        over the tenant's budget (``over-budget``), or admission queue
        full (``queue-full``, with a ``retry_after`` hint scaled by the
        estimated drain time of the queued work).
        """
        if self.closing:
            raise AdmissionError("service is shutting down",
                                 reason="closed")
        policy = self.config.policy(tenant)
        limit = policy.max_request_bytes \
            if policy.max_request_bytes is not None \
            else self.config.max_request_bytes
        size = len(data)
        if size > limit:
            self._count_reject(tenant, "oversized")
            raise AdmissionError(
                f"request body of {size} bytes exceeds the limit of "
                f"{limit} bytes for tenant {tenant!r}", reason="oversized")
        if options is None:
            options = self.config.default_options
        if priority is None:
            priority = policy.priority
        if timeout is None:
            timeout = self.config.default_timeout
        estimated = self._planner.estimate_cost(size, options)
        if policy.max_cost_seconds is not None \
                and estimated > policy.max_cost_seconds:
            self._count_reject(tenant, "over_budget")
            raise AdmissionError(
                f"estimated parse cost {estimated:.3f}s exceeds the "
                f"cost budget of {policy.max_cost_seconds:.3f}s for "
                f"tenant {tenant!r}; split the request or raise "
                f"max_cost_seconds", reason="over-budget")
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        ticket = Ticket(next(self._ids), tenant, int(priority), deadline,
                        size, estimated_cost=estimated)
        entry = (ticket.priority, next(self._seq), ticket, data, options)
        try:
            self._queue.put_nowait(entry)
        except queue.Full:
            depth = self._queue.qsize()
            # Price the hint by the estimated drain time of what is
            # actually queued, spread over the dispatchers — a queue of
            # large requests backs clients off for longer than a queue
            # of small ones at the same depth.
            with self._queue.mutex:
                queued_cost = sum(
                    e[2].estimated_cost for e in self._queue.queue
                    if e[2] is not None)
            retry_after = self.config.retry_after \
                + queued_cost / max(1, len(self._dispatchers))
            self._count_reject(tenant, "queue_full")
            raise AdmissionError(
                f"admission queue full ({depth} queued, estimated "
                f"{queued_cost:.3f}s of work); retry in "
                f"{retry_after:.3f}s", reason="queue-full",
                retry_after=retry_after) from None
        self.metrics.count("serve.requests")
        self.metrics.count(f"serve.tenant.{tenant}.requests")
        self.metrics.gauge("serve.queue.depth", self._queue.qsize())
        return ticket

    def parse(self, data: bytes, *, tenant: str = "default",
              options: ParseOptions | None = None,
              priority: int | None = None,
              timeout: float | None = None) -> ParseResult:
        """Submit and wait: the one-call request path."""
        return self.submit(data, tenant=tenant, options=options,
                           priority=priority, timeout=timeout).result()

    def open_stream(self, *, tenant: str = "default",
                    options: ParseOptions | None = None) -> StreamSession:
        """Open an incremental parse session for ``tenant``.

        Streaming requires a schema (see :class:`StreamingParser`); the
        session inherits the tenant's ``max_carry_bytes`` and per-feed
        size limit.
        """
        if self.closing:
            raise AdmissionError("service is shutting down",
                                 reason="closed")
        if options is None:
            options = self.config.default_options
        policy = self.config.policy(tenant)
        carry = policy.max_carry_bytes \
            if policy.max_carry_bytes is not None \
            else self.config.max_carry_bytes
        limit = policy.max_request_bytes \
            if policy.max_request_bytes is not None \
            else self.config.max_request_bytes
        self.metrics.count(f"serve.tenant.{tenant}.streams")
        return StreamSession(self, tenant, options, carry, limit)

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self) -> None:
        while True:
            entry = self._queue.get()
            ticket = entry[2]
            if ticket is None:          # shutdown sentinel
                self._queue.task_done()
                return
            self.metrics.gauge("serve.queue.depth", self._queue.qsize())
            try:
                self._run(ticket, entry[3], entry[4])
            finally:
                self._queue.task_done()

    def _run(self, ticket: Ticket, data: bytes,
             options: ParseOptions | None) -> None:
        if ticket._expired():
            # The waiter may have settled the timeout already; either
            # way this entry reaches dispatch exactly once, so account
            # for it here.
            ticket._resolve(TIMEOUT, error=TimeoutError(
                f"request {ticket.id} timed out in the queue"))
            self._finish_accounting(ticket, 0, 0.0)
            return
        if not ticket._begin():
            # Cancelled (or timed out by a waiter) while queued.
            self._finish_accounting(ticket, 0, 0.0)
            return
        start = time.monotonic()
        try:
            parser = ParPaRawParser(options, executor=self._executor,
                                    tracer=self.tracer,
                                    metrics=self.metrics,
                                    planner=self._planner)
            if self.tracer.enabled:
                with self.tracer.span("serve:request", tenant=ticket.tenant,
                                      request=ticket.id,
                                      priority=ticket.priority):
                    result = parser.parse(data)
            else:
                result = parser.parse(data)
        except Exception as error:
            if ticket._resolve(FAILED, error=error):
                self._finish_accounting(ticket, 0,
                                        time.monotonic() - start)
            return
        self._warm = True
        elapsed = time.monotonic() - start
        if ticket._expired():
            ticket._resolve(TIMEOUT, error=TimeoutError(
                f"request {ticket.id} finished after its deadline"))
            self._finish_accounting(ticket, 0, elapsed)
            return
        if ticket._resolve(DONE, result=result):
            self._finish_accounting(ticket, result.num_rows, elapsed)
        else:
            # A racing cancel/timeout settled the ticket first; the
            # completed work is discarded.
            self._finish_accounting(ticket, 0, elapsed)

    # -- accounting --------------------------------------------------------

    def _count_reject(self, tenant: str, kind: str) -> None:
        self.metrics.count("serve.admission.rejects")
        self.metrics.count(f"serve.admission.rejects.{kind}")
        self.metrics.count(f"serve.tenant.{tenant}.rejects")

    def _account_stream(self, tenant: str, nbytes: int,
                        records: int) -> None:
        self.metrics.count(f"serve.tenant.{tenant}.bytes", nbytes)
        self.metrics.count(f"serve.tenant.{tenant}.records", records)

    def _record_stream_batch(self, session: StreamSession) -> None:
        with self._lock:
            self._batches.append({
                "id": next(self._ids),
                "tenant": session.tenant,
                "outcome": "stream",
                "bytes": session.bytes_fed,
                "records": session.records_parsed,
                "seconds": 0.0,
                "finished_at": time.time(),
            })

    def _finish_accounting(self, ticket: Ticket, records: int,
                           seconds: float) -> None:
        outcome = ticket.state
        self.metrics.count(f"serve.requests.{outcome}")
        tenant = ticket.tenant
        if outcome == DONE:
            self.metrics.count(f"serve.tenant.{tenant}.bytes",
                               ticket.input_bytes)
            self.metrics.count(f"serve.tenant.{tenant}.records", records)
            self.metrics.observe("serve.request.seconds", seconds)
            self.metrics.observe(f"serve.tenant.{tenant}.seconds", seconds)
        with self._lock:
            self._batches.append({
                "id": ticket.id,
                "tenant": tenant,
                "outcome": outcome,
                "bytes": ticket.input_bytes,
                "records": records,
                "seconds": seconds,
                "finished_at": time.time(),
            })

    # -- introspection -----------------------------------------------------

    @property
    def closing(self) -> bool:
        return self._closing or self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def executor(self):
        """The shared warm executor (for tests and advanced callers)."""
        return self._executor

    @property
    def planner(self) -> Planner:
        """The service's planner (admission pricing + calibration)."""
        return self._planner

    def status(self) -> dict:
        """A JSON-friendly snapshot of the whole service (see status.py)."""
        counters = dict(self.metrics.counters)
        requests = {
            "submitted": counters.get("serve.requests", 0),
            "completed": counters.get("serve.requests.done", 0),
            "failed": counters.get("serve.requests.failed", 0),
            "timeout": counters.get("serve.requests.timeout", 0),
            "cancelled": counters.get("serve.requests.cancelled", 0),
            "rejected": counters.get("serve.admission.rejects", 0),
        }
        tenants: dict[str, dict] = {}
        prefix = "serve.tenant."
        for key, value in counters.items():
            if not key.startswith(prefix):
                continue
            tenant, metric = key[len(prefix):].rsplit(".", 1)
            tenants.setdefault(tenant, {})[metric] = value
        for name, summary in self.metrics.histograms.items():
            if name.startswith(prefix) and name.endswith(".seconds"):
                tenant = name[len(prefix):-len(".seconds")]
                count, total = summary[0], summary[1]
                tenants.setdefault(tenant, {})["mean_seconds"] = \
                    total / count if count else 0.0
        state = "closed" if self._closed else \
            "draining" if self._closing else "running"
        with self._lock:
            batches = list(self._batches)
        return {
            "state": state,
            "uptime_seconds": time.monotonic() - self._started,
            "started_at": self._started_wall,
            "workers": self.config.workers,
            "dispatchers": len(self._dispatchers),
            "executor": type(self._executor).__name__,
            "warm": self._warm,
            "queue": {"depth": self._queue.qsize(),
                      "capacity": self.config.queue_capacity},
            "requests": requests,
            "tenants": tenants,
            "kernel_cache": cache_info(),
            "planner": {
                "calibration_version": self._planner.store.version,
                "fingerprints": len(self._planner.store.snapshot()),
            },
            "batches": batches,
        }

    # -- shutdown ----------------------------------------------------------

    def close(self, drain: bool = True,
              timeout: float | None = None) -> None:
        """Stop admission and shut down; idempotent.

        ``drain=True`` (the default) lets already-queued requests run to
        completion before dispatchers exit; ``drain=False`` cancels all
        queued work first.  The owned executor — pool processes and any
        shared-memory segments with it — is closed once dispatchers are
        gone, so nothing leaks.
        """
        with self._lock:
            if self._closing:
                already = True
            else:
                already, self._closing = False, True
        if not already:
            start = time.monotonic()
            if not drain:
                self._cancel_queued()
            # Sentinels sort after every admitted priority, so queued
            # work drains before any dispatcher sees one.
            for _ in self._dispatchers:
                self._queue.put((float("inf"), next(self._seq), None,
                                 b"", None))
            for thread in self._dispatchers:
                thread.join(timeout)
            # A submit that raced the closing flag may have slipped an
            # entry in behind the sentinels; settle it rather than leave
            # its waiter hanging.
            self._cancel_queued()
            if self._owns_executor:
                self._executor.close()
            self.metrics.observe("serve.drain.seconds",
                                 time.monotonic() - start)
            self._closed = True

    def _cancel_queued(self) -> None:
        """Settle every request still sitting in the admission queue."""
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                return
            ticket = entry[2]
            if ticket is not None and ticket._resolve(
                    CANCELLED, error=ServeError(
                        "request cancelled by service shutdown")):
                self._finish_accounting(ticket, 0, 0.0)
            self._queue.task_done()

    def __enter__(self) -> "IngestService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
