"""Operability reports for the ingest service.

The service keeps a bounded batch history (one record per finished
request) and exposes a :meth:`~repro.serve.service.IngestService.status`
dict; this module renders that dict as the three operator-facing text
reports behind the CLI:

* ``python -m repro batches`` — recent request history (id, tenant,
  outcome, bytes, records, latency), newest first;
* ``python -m repro checkhealth`` — health flags derived from the same
  status dict (queue pressure, rejects, failures, executor state);
* the full ``render_status`` report printed by both on ``--full``.

All three work from the plain status dict, so they render identically
for an in-process service and for a remote one queried over the wire
(the ``status`` op ships the same dict as JSON).
"""

from __future__ import annotations

import time

__all__ = ["render_status", "render_batches", "render_checkhealth",
           "health_flags", "QUEUE_PRESSURE_THRESHOLD"]

#: Queue occupancy (depth / capacity) above which checkhealth warns.
QUEUE_PRESSURE_THRESHOLD = 0.8


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} GiB"


def _fmt_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s ago"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m ago"
    return f"{seconds / 3600:.1f}h ago"


def render_status(status: dict) -> str:
    """The full service status report (one string, newline-joined)."""
    queue = status["queue"]
    requests = status["requests"]
    cache = status.get("kernel_cache", {})
    lines = [
        "ingest service status",
        f"  state:     {status['state']}",
        f"  uptime:    {status['uptime_seconds']:.1f} s",
        f"  executor:  {status['executor']} "
        f"(workers={status['workers']}, warm={status['warm']})",
        f"  queue:     {queue['depth']}/{queue['capacity']} queued, "
        f"{status['dispatchers']} dispatchers",
        "  requests:  "
        + ", ".join(f"{requests.get(k, 0)} {k}"
                    for k in ("submitted", "completed", "failed",
                              "timeout", "cancelled", "rejected")),
        f"  kernel-table cache: {cache.get('entries', 0)} entries, "
        f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses "
        f"({cache.get('evictions', 0)} evictions)",
    ]
    tenants = status.get("tenants", {})
    if tenants:
        lines.append("  tenants:")
        lines.append(f"    {'tenant':<16} {'requests':>8} {'rejects':>8} "
                     f"{'bytes':>10} {'records':>10} {'mean ms':>9}")
        for name in sorted(tenants):
            t = tenants[name]
            mean_ms = t.get("mean_seconds", 0.0) * 1e3
            lines.append(
                f"    {name:<16} {t.get('requests', 0):>8} "
                f"{t.get('rejects', 0):>8} "
                f"{_fmt_bytes(t.get('bytes', 0)):>10} "
                f"{t.get('records', 0):>10} {mean_ms:>9.2f}")
    return "\n".join(lines)


def render_batches(status: dict, limit: int = 20) -> str:
    """Recent request history, newest first (Snippet-3 ``batches`` style)."""
    batches = status.get("batches", [])
    if not batches:
        return "no batches recorded yet"
    now = time.time()
    lines = [f"{'batch':>6}  {'tenant':<14} {'outcome':<9} {'bytes':>10} "
             f"{'records':>9} {'ms':>9}  {'finished':<10}"]
    for record in list(reversed(batches))[:limit]:
        lines.append(
            f"{record['id']:>6}  {record['tenant']:<14} "
            f"{record['outcome']:<9} {_fmt_bytes(record['bytes']):>10} "
            f"{record['records']:>9} {record['seconds'] * 1e3:>9.2f}  "
            f"{_fmt_age(now - record['finished_at']):<10}")
    remaining = len(batches) - limit
    if remaining > 0:
        lines.append(f"... ({remaining} older batches retained)")
    return "\n".join(lines)


def health_flags(status: dict) -> list[tuple[str, str]]:
    """``(severity, message)`` pairs; severity is ``ok``/``warn``/``error``.

    The empty-problem case still yields explicit ``ok`` lines, so the
    report always says what was checked.
    """
    flags: list[tuple[str, str]] = []
    queue = status["queue"]
    requests = status["requests"]

    if status["state"] != "running":
        flags.append(("error", f"service is {status['state']}"))
    else:
        flags.append(("ok", "service is running"))

    capacity = max(1, queue["capacity"])
    occupancy = queue["depth"] / capacity
    if occupancy >= QUEUE_PRESSURE_THRESHOLD:
        flags.append(("warn",
                      f"admission queue at {occupancy:.0%} capacity "
                      f"({queue['depth']}/{queue['capacity']}) — clients "
                      f"will start seeing retry-after rejects"))
    else:
        flags.append(("ok",
                      f"admission queue at {occupancy:.0%} capacity"))

    rejected = requests.get("rejected", 0)
    if rejected:
        flags.append(("warn", f"{rejected} requests rejected at admission "
                              f"(backpressure engaged)"))
    else:
        flags.append(("ok", "no admission rejects"))

    failed = requests.get("failed", 0)
    if failed:
        flags.append(("warn", f"{failed} requests failed"))
    else:
        flags.append(("ok", "no failed requests"))

    timeouts = requests.get("timeout", 0)
    if timeouts:
        flags.append(("warn", f"{timeouts} requests timed out"))

    cache = status.get("kernel_cache", {})
    evictions = cache.get("evictions", 0)
    if evictions:
        flags.append(("warn",
                      f"kernel-table cache evicted {evictions} entries — "
                      f"more live dialects than MAX_CACHED_TABLES; "
                      f"tables are being rebuilt"))
    else:
        flags.append(("ok", "kernel-table cache within capacity"))
    return flags


def render_checkhealth(status: dict) -> str:
    """The ``checkhealth`` report: one line per flag, worst first."""
    order = {"error": 0, "warn": 1, "ok": 2}
    flags = sorted(health_flags(status), key=lambda f: order[f[0]])
    worst = flags[0][0] if flags else "ok"
    lines = [f"ingest service health: "
             f"{'OK' if worst == 'ok' else worst.upper()}"]
    for severity, message in flags:
        marker = {"ok": " ok ", "warn": "WARN", "error": "FAIL"}[severity]
        lines.append(f"  [{marker}] {message}")
    return "\n".join(lines)
