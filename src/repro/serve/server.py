"""The socket front end: framed protocol requests into an IngestService.

A :class:`IngestServer` binds a TCP socket (``port=0`` picks an
ephemeral port, reported by :attr:`IngestServer.port`) and serves the
:mod:`repro.serve.protocol` framing: each connection may issue any
number of frames back to back; the connection closes on EOF, on a
protocol violation, or when the server drains.

The server thread pool is connection-handling only — actual parsing is
multiplexed through the shared :class:`~repro.serve.service.IngestService`
admission queue, so socket concurrency and parse concurrency are
independently bounded (many idle connections cost threads, not pool
workers; many hot connections hit admission backpressure and receive
retry-after rejects instead of piling onto the executor).

``python -m repro serve`` wraps this in a process: it prints the bound
address, serves until SIGINT/SIGTERM, then drains and exits 0.
"""

from __future__ import annotations

import json
import socketserver
import threading

from repro.columnar.serialize import write_feather
from repro.errors import AdmissionError, ProtocolError, ReproError
from repro.serve.protocol import options_from_wire, read_frame, write_frame
from repro.serve.service import IngestService

__all__ = ["IngestServer"]

#: Sockets idle longer than this are dropped (a dead peer must not pin a
#: handler thread forever).
CONNECTION_TIMEOUT = 60.0


class _Handler(socketserver.StreamRequestHandler):
    timeout = CONNECTION_TIMEOUT

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: "_Server" = self.server  # type: ignore[assignment]
        while True:
            # Clean EOF between frames ends the connection silently; a
            # closure mid-frame surfaces as a ProtocolError below.
            probe = self.rfile.read(1)
            if not probe:
                return
            try:
                header, body = _read_rest(self.rfile, probe,
                                          server.max_body)
            except ProtocolError as error:
                _safe_write(self.wfile,
                            {"status": "error", "error": str(error)})
                return
            if not server.ingest.handle(header, body, self.wfile):
                return


def _read_rest(stream, probe: bytes, max_body: int):
    """Finish reading a frame whose first byte was already consumed."""

    class _Stitched:
        def __init__(self):
            self._probe = probe

        def read(self, count):
            if self._probe:
                head, self._probe = self._probe, b""
                rest = stream.read(count - len(head)) \
                    if count > len(head) else b""
                return head + (rest or b"")
            return stream.read(count)

    return read_frame(_Stitched(), max_body=max_body)


def _safe_write(stream, header: dict, body: bytes = b"") -> None:
    try:
        write_frame(stream, header, body)
    except OSError:
        pass


class IngestServer:
    """TCP server multiplexing protocol frames into an ingest service.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.IngestService` handling the
        requests (owned by the caller; :meth:`close` only shuts the
        server down unless ``own_service=True``).
    host / port:
        Bind address; ``port=0`` (default) picks an ephemeral port.
    own_service:
        When set, :meth:`close` also drains and closes the service —
        the CLI uses this so one ``close()`` tears the whole system
        down.
    """

    def __init__(self, service: IngestService, host: str = "127.0.0.1",
                 port: int = 0, own_service: bool = False):
        self.service = service
        self.own_service = own_service
        self._server = _Server((host, port), _Handler, self)
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "IngestServer":
        """Serve in a background thread; returns self (chainable)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-accept", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close`."""
        self._server.serve_forever()

    def close(self, drain: bool = True) -> None:
        """Stop accepting, close the socket, optionally drain the service."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self.own_service:
            self.service.close(drain=drain)

    def __enter__(self) -> "IngestServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling --------------------------------------------------

    def handle(self, header: dict, body: bytes, wfile) -> bool:
        """Serve one decoded frame; ``False`` closes the connection."""
        op = header.get("op")
        if op == "ping":
            _safe_write(wfile, {"status": "ok", "server": "repro-serve"})
            return True
        if op == "status":
            payload = json.dumps(self.service.status()).encode("utf-8")
            _safe_write(wfile, {"status": "ok"}, payload)
            return True
        if op == "parse":
            self._handle_parse(header, body, wfile)
            return True
        _safe_write(wfile, {"status": "error",
                            "error": f"unknown op {op!r}"})
        return False

    def _handle_parse(self, header: dict, body: bytes, wfile) -> None:
        try:
            options = options_from_wire(header.get("options"))
            result = self.service.parse(
                body,
                tenant=str(header.get("tenant", "default")),
                options=options,
                priority=None if header.get("priority") is None
                else int(header["priority"]),
                timeout=None if header.get("timeout") is None
                else float(header["timeout"]))
        except AdmissionError as error:
            _safe_write(wfile, {
                "status": "rejected",
                "reason": error.reason,
                "retry_after": error.retry_after,
                "error": str(error),
            })
            return
        except TimeoutError as error:
            _safe_write(wfile, {"status": "timeout", "error": str(error)})
            return
        except (ReproError, ValueError) as error:
            _safe_write(wfile, {"status": "error", "error": str(error)})
            return
        _safe_write(wfile, {
            "status": "ok",
            "records": result.num_records,
            "rows": result.num_rows,
            "rejected_records": result.rejected_records,
        }, write_feather(result.table))


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, handler, ingest: IngestServer):
        self.ingest = ingest
        # Oversized bodies should reach admission and earn a proper
        # per-tenant "rejected/oversized" response; only grossly over
        # the service ceiling is cut off at the framing layer.
        self.max_body = \
            ingest.service.config.max_request_bytes * 2 + 1024
        super().__init__(address, handler)
