"""The serve wire protocol: framed requests over a byte stream.

One frame = one message, in either direction::

    magic  b"RPSV"
    u16    version (1)
    u32    header_json_length
    header JSON (utf-8)
    u64    body_length
    body   bytes (verbatim)

Request headers carry ``op`` plus op-specific fields; the body is the
raw input for ``parse`` and empty otherwise.  Response headers carry
``status`` (``ok``/``rejected``/``timeout``/``error``) plus outcome
fields; an ``ok`` parse response body is the table in the Feather-style
framing of :mod:`repro.columnar.serialize` (``write_feather``), a
``status`` response body is the service status dict as JSON.

Parse options travel as a JSON dict mirroring the CLI surface
(:func:`options_to_wire` / :func:`options_from_wire`): dialect fields,
chunk size, stride, tagging mode, partition strategy, column policy and
an optional schema — either ``{"columns": N}`` (N string columns) or
``{"fields": [[name, dtype], ...]}``.  Options backed by a custom DFA
object cannot travel by wire; use the in-process client for those.

Readers enforce limits before allocating: a header over
``MAX_HEADER_BYTES`` or a body over the reader's ``max_body`` raises
:class:`~repro.errors.ProtocolError`, so a malformed or hostile peer
cannot balloon the server.
"""

from __future__ import annotations

import json
import struct

from repro.columnar.schema import DataType, Field, Schema
from repro.core.options import ColumnCountPolicy, ParseOptions, \
    PartitionStrategy, TaggingMode
from repro.dfa.dialects import Dialect
from repro.errors import ProtocolError, ServeError
from repro.kernels.strided import DEFAULT_TABLE_BUDGET

__all__ = [
    "MAGIC",
    "VERSION",
    "MAX_HEADER_BYTES",
    "write_frame",
    "read_frame",
    "options_to_wire",
    "options_from_wire",
]

MAGIC = b"RPSV"
VERSION = 1

#: Headers are small JSON dicts; anything bigger is a broken peer.
MAX_HEADER_BYTES = 1 * 1024 * 1024

#: Default body ceiling for readers that do not pass their own.
DEFAULT_MAX_BODY_BYTES = 1 * 1024 * 1024 * 1024

_PREFIX = struct.Struct("<HI")   # version, header length
_BODY_LEN = struct.Struct("<Q")


# -- framing -----------------------------------------------------------------

def write_frame(stream, header: dict, body: bytes = b"") -> None:
    """Write one frame to a file-like ``stream`` (and flush it)."""
    header_json = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_json) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header of {len(header_json)} bytes exceeds "
            f"{MAX_HEADER_BYTES}")
    stream.write(MAGIC)
    stream.write(_PREFIX.pack(VERSION, len(header_json)))
    stream.write(header_json)
    stream.write(_BODY_LEN.pack(len(body)))
    if body:
        stream.write(body)
    stream.flush()


def _read_exact(stream, count: int, what: str) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({what}: expected "
                f"{count} bytes, missing {remaining})")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream, max_body: int = DEFAULT_MAX_BODY_BYTES
               ) -> tuple[dict, bytes]:
    """Read one frame; returns ``(header, body)``.

    Raises :class:`~repro.errors.ProtocolError` on bad magic, version
    mismatch, truncation, malformed header JSON, or a body length over
    ``max_body`` — checked *before* the body is read, so an oversized
    announcement costs nothing.
    """
    magic = _read_exact(stream, len(MAGIC), "magic")
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    version, header_len = _PREFIX.unpack(
        _read_exact(stream, _PREFIX.size, "prefix"))
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header of {header_len} bytes exceeds "
            f"{MAX_HEADER_BYTES}")
    try:
        header = json.loads(
            _read_exact(stream, header_len, "header").decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame header: {error}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    body_len, = _BODY_LEN.unpack(
        _read_exact(stream, _BODY_LEN.size, "body length"))
    if body_len > max_body:
        raise ProtocolError(
            f"frame body of {body_len} bytes exceeds the reader's "
            f"limit of {max_body}")
    body = _read_exact(stream, body_len, "body") if body_len else b""
    return header, body


# -- options on the wire -----------------------------------------------------

def _schema_to_wire(schema: Schema | None):
    if schema is None:
        return None
    return {"fields": [[f.name, f.dtype.value] for f in schema]}


def _schema_from_wire(spec) -> Schema | None:
    if spec is None:
        return None
    if "columns" in spec:
        return Schema.all_strings(int(spec["columns"]))
    return Schema([Field(name=name, dtype=DataType(dtype))
                   for name, dtype in spec["fields"]])


def options_to_wire(options: ParseOptions) -> dict:
    """Encode ``options`` as the JSON dict the protocol carries."""
    if options.dfa is not None:
        raise ServeError(
            "options backed by a custom DFA cannot travel by wire; "
            "use the in-process Client")
    dialect = options.dialect
    return {
        "delimiter": dialect.delimiter.decode("latin-1"),
        "quote": None if dialect.quote is None
        else dialect.quote.decode("latin-1"),
        "comment": None if dialect.comment is None
        else dialect.comment.decode("latin-1"),
        "strip_carriage_return": dialect.strip_carriage_return,
        "chunk_size": options.chunk_size,
        "kernel_stride": options.kernel_stride,
        "kernel_table_budget": options.kernel_table_budget,
        "minimize_dfa": options.minimize_dfa,
        "tagging_mode": options.tagging_mode.value,
        "partition_strategy": None if options.partition_strategy is None
        else options.partition_strategy.value,
        "column_count_policy": options.column_count_policy.value,
        "infer_types": options.infer_types,
        "schema": _schema_to_wire(options.schema),
    }


def options_from_wire(spec: dict | None) -> ParseOptions | None:
    """Decode a wire options dict (``None`` passes through)."""
    if spec is None:
        return None
    try:
        dialect = Dialect(
            delimiter=spec.get("delimiter", ",").encode("latin-1"),
            quote=None if spec.get("quote", '"') is None
            else spec.get("quote", '"').encode("latin-1"),
            comment=None if spec.get("comment") is None
            else spec["comment"].encode("latin-1"),
            strip_carriage_return=bool(
                spec.get("strip_carriage_return", True)),
        )
        strategy = spec.get("partition_strategy")
        return ParseOptions(
            dialect=dialect,
            schema=_schema_from_wire(spec.get("schema")),
            chunk_size=int(spec.get("chunk_size", 31)),
            kernel_stride=None if spec.get("kernel_stride") is None
            else int(spec["kernel_stride"]),
            kernel_table_budget=int(
                spec.get("kernel_table_budget", DEFAULT_TABLE_BUDGET)),
            minimize_dfa=bool(spec.get("minimize_dfa", True)),
            tagging_mode=TaggingMode(spec.get("tagging_mode", "tagged")),
            partition_strategy=None if strategy is None
            else PartitionStrategy(strategy),
            column_count_policy=ColumnCountPolicy(
                spec.get("column_count_policy", "lenient")),
            infer_types=bool(spec.get("infer_types", False)),
        )
    except (KeyError, ValueError, TypeError, AttributeError) as error:
        raise ProtocolError(f"malformed options: {error}") from None
