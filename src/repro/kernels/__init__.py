"""Strided kernels: multi-symbol steps for the byte-bound phases.

This package is the pipeline's kernel-optimisation layer.  It precomposes
the parsing DFA over k-symbol blocks (:mod:`repro.kernels.strided`) so the
two hot sweeps — STV simulation and the tagging/emission sweep — advance
``k`` symbols per vectorised gather instead of one, cutting their
Python-level loop counts by ``k``.  Precomposed tables are cached per
process (:mod:`repro.kernels.cache`) keyed on the automaton's fingerprint,
so dialect tables are built once and reused across parses, shards and
streaming partitions.

The layer is engaged through ``ParseOptions.kernel_stride`` (default
``None`` = automatic: the largest supported stride whose tables fit the
memory budget) and used by :class:`~repro.core.stages.StvStage` /
:class:`~repro.core.stages.TagStage` and the sharded executor's worker
tasks.  Future kernel work — SWAR-style packed matching, a fused
stv+tag single pass — plugs in here.
"""

from repro.kernels.cache import (
    cache_info,
    clear_cache,
    dfa_fingerprint,
    get_plan,
    get_tables,
)
from repro.kernels.strided import (
    DEFAULT_TABLE_BUDGET,
    SUPPORTED_STRIDES,
    KernelPlan,
    StridedTables,
    build_plan,
    build_tables,
    compute_emissions_plan,
    compute_emissions_strided,
    compute_transition_vectors_plan,
    compute_transition_vectors_strided,
    pack_kgrams,
    pack_plan,
    pick_stride,
    plan_nbytes,
    plan_segments,
    resolve_stride,
    table_nbytes,
)

__all__ = [
    "StridedTables",
    "KernelPlan",
    "SUPPORTED_STRIDES",
    "DEFAULT_TABLE_BUDGET",
    "build_tables",
    "build_plan",
    "table_nbytes",
    "plan_nbytes",
    "plan_segments",
    "pick_stride",
    "resolve_stride",
    "pack_kgrams",
    "pack_plan",
    "compute_transition_vectors_strided",
    "compute_transition_vectors_plan",
    "compute_emissions_strided",
    "compute_emissions_plan",
    "get_tables",
    "get_plan",
    "cache_info",
    "clear_cache",
    "dfa_fingerprint",
]
