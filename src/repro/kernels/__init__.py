"""Strided kernels: multi-symbol steps for the byte-bound phases.

This package is the pipeline's kernel-optimisation layer.  It precomposes
the parsing DFA over k-symbol blocks (:mod:`repro.kernels.strided`) so the
two hot sweeps — STV simulation and the tagging/emission sweep — advance
``k`` symbols per vectorised gather instead of one, cutting their
Python-level loop counts by ``k``.  Precomposed tables are cached per
process (:mod:`repro.kernels.cache`) keyed on the automaton's fingerprint,
so dialect tables are built once and reused across parses, shards and
streaming partitions.

The layer is engaged through ``ParseOptions.kernel_stride`` (default
``None`` = automatic: the largest supported stride whose tables fit the
memory budget) and used by :class:`~repro.core.stages.StvStage` /
:class:`~repro.core.stages.TagStage` and the sharded executor's worker
tasks.  Future kernel work — SWAR-style packed matching, a fused
stv+tag single pass — plugs in here.
"""

from repro.kernels.cache import (
    cache_info,
    clear_cache,
    dfa_fingerprint,
    get_tables,
)
from repro.kernels.strided import (
    DEFAULT_TABLE_BUDGET,
    SUPPORTED_STRIDES,
    StridedTables,
    build_tables,
    compute_emissions_strided,
    compute_transition_vectors_strided,
    pack_kgrams,
    pick_stride,
    resolve_stride,
    table_nbytes,
)

__all__ = [
    "StridedTables",
    "SUPPORTED_STRIDES",
    "DEFAULT_TABLE_BUDGET",
    "build_tables",
    "table_nbytes",
    "pick_stride",
    "resolve_stride",
    "pack_kgrams",
    "compute_transition_vectors_strided",
    "compute_emissions_strided",
    "get_tables",
    "cache_info",
    "clear_cache",
    "dfa_fingerprint",
]
