"""Multi-symbol strided kernels for the byte-bound phases.

The two hot loops of the pipeline — the STV simulation
(:func:`repro.core.context.compute_transition_vectors`) and the tagging
sweep (:func:`repro.core.tagging.compute_emissions`) — advance every
chunk by *one* symbol per Python-level iteration, so a chunk of ``n``
bytes pays ``n`` rounds of interpreter and NumPy-dispatch overhead on
top of the actual table gathers.  ParPaRaw's own answer to per-symbol
serial depth is to process several symbols per thread step: MFIRA packs
fragments into registers (paper §5.2) and SWAR matches multiple bytes
branchlessly (§5.3).  This module is the NumPy translation of that idea.

Given a DFA with ``G`` symbol groups and ``S`` states, a *stride* ``k``
and the packed k-gram ``g_0·G^(k-1) + … + g_{k-1}`` of ``k`` consecutive
symbols, :func:`build_tables` precomposes

* ``transitions[kgram, state]`` — the state after consuming all ``k``
  symbols (the k-fold composition of the base transition table);
* ``emissions[kgram, state, 0..k-1]`` — the :class:`Emission` code of
  every one of the ``k`` symbols, as emitted by the base Mealy table
  along the way — plus, for word-sized strides, a SWAR view of the same
  table packing the ``k`` codes into a single machine word, so the
  tagging sweep gathers one word per chunk per block instead of ``k``
  scattered bytes (the §5.3 trick: several symbols matched per
  register-width operation);
* ``first_invalid[kgram, state]`` — the block-local index of the first
  symbol that is *read in* the INV sink state (``-1`` if none), which is
  exactly the intermediate-state information the unit-stride sweep
  derives symbol by symbol.

With these tables both sweeps advance ``k`` symbols per gather, shrinking
the Python loop from ``chunk_size`` to ``chunk_size // k`` iterations
(plus a unit-stride tail of ``chunk_size % k`` symbols).  The outputs are
bit-identical to the unit-stride sweeps by construction — the tables are
*the same function*, memoised over k-grams — and the parity property
suite in ``tests/kernels`` proves it over random dialects and inputs.

The trade-off is table memory: ``G^k`` rows.  :func:`pick_stride`
selects the largest supported ``k`` whose tables fit a byte budget
(falling back to ``k = 1``, i.e. the unit-stride path), so small
automata stride wide while group-rich automata degrade gracefully.
Two refinements push the ceiling to the full ``k = 8`` SWAR word:

* the pipeline minimises the automaton first
  (:mod:`repro.dfa.minimize`), shrinking both ``G`` and ``S`` — a
  quote-less no-CR dialect collapses to one state and four groups,
  whose whole k=8 plan is ~0.7 MB;
* a :class:`KernelPlan` decomposes the chunk down the supported-stride
  ladder (``31 = 8+8+8+4+2+1``) instead of finishing ``chunk_size % k``
  symbols unit-stride, so wide strides help short chunks too.
"""

from __future__ import annotations

# parlint: hot-path -- strided byte-bound kernels; loops need waivers

from dataclasses import dataclass

import numpy as np

from repro.dfa.automaton import Dfa
from repro.errors import ParseError

__all__ = [
    "StridedTables",
    "KernelPlan",
    "SUPPORTED_STRIDES",
    "DEFAULT_TABLE_BUDGET",
    "build_tables",
    "build_plan",
    "table_nbytes",
    "plan_nbytes",
    "plan_segments",
    "pick_stride",
    "resolve_stride",
    "pack_kgrams",
    "pack_plan",
    "compute_transition_vectors_strided",
    "compute_transition_vectors_plan",
    "compute_emissions_strided",
    "compute_emissions_plan",
]

#: Strides whose k emission bytes fit one machine word (SWAR packing).
_EMISSION_WORD_DTYPES: dict[int, type] = {
    1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64,
}

#: Strides the auto-picker considers, best first — exactly the word
#: sizes the SWAR emission view supports, so the picker can never select
#: a stride :func:`build_tables` lacks a packed-word path for (and a new
#: word size added above is picked up everywhere at once).  Any
#: ``k >= 1`` is still legal to request explicitly.
SUPPORTED_STRIDES: tuple[int, ...] = tuple(sorted(
    (k for k in _EMISSION_WORD_DTYPES if k > 1), reverse=True))

#: Default ceiling for the precomposed tables of one ``(dfa, k)`` pair.
#: 4 MiB keeps every table well inside L2 — a table that spills out of
#: cache loses the very memory locality the striding is buying.
DEFAULT_TABLE_BUDGET = 4 << 20

#: Hard ceiling for explicitly requested strides: building a table this
#: large is always a configuration error, not a tuning choice.
_HARD_TABLE_CAP = 1 << 30


@dataclass(frozen=True)
class StridedTables:
    """Precomposed k-step DFA tables (see module docstring).

    Built once per ``(dfa, k)`` by :func:`build_tables` and cached
    process-wide by :mod:`repro.kernels.cache`; instances are immutable
    and safe to share across parses, shards and threads.
    """

    #: The automaton the tables were composed from (with padding group).
    dfa: Dfa
    #: Symbols advanced per table gather.
    k: int
    #: ``(G**k, S)`` uint8 — state after consuming a whole k-gram.
    transitions: np.ndarray
    #: ``(G**k, S, k)`` uint8 — emission of each symbol in the k-gram.
    emissions: np.ndarray
    #: ``(G**k, S)`` int16 — block-local index of the first symbol read
    #: in the INV sink (-1 = never); ``None`` when the DFA has no sink.
    first_invalid: np.ndarray | None
    #: ``(G**k, S)`` uint{8k} — the k emission bytes of each cell packed
    #: into one machine word (a zero-copy view of ``emissions``, native
    #: byte order); ``None`` when ``k`` is not a word size.  Lets the
    #: tagging sweep gather one word instead of ``k`` scattered bytes —
    #: the SWAR device of paper §5.3.
    emission_words: np.ndarray | None = None

    @property
    def num_kgrams(self) -> int:
        return self.transitions.shape[0]

    @property
    def nbytes(self) -> int:
        """Total table footprint in bytes."""
        invalid = self.first_invalid.nbytes if self.first_invalid is not None \
            else 0
        return self.transitions.nbytes + self.emissions.nbytes + invalid


def table_nbytes(num_groups: int, num_states: int, k: int) -> int:
    """Predicted footprint of :func:`build_tables` output (bytes)."""
    kgrams = num_groups ** k
    # transitions (1 B) + emissions (k B) + first_invalid (2 B) per
    # (kgram, state) cell.
    return kgrams * num_states * (1 + k + 2)


def _ladder(k: int) -> tuple[int, ...]:
    """The descending strides a ``k``-stride plan may use: ``k`` itself
    plus every supported stride below it (the remainder ladder)."""
    return tuple(sorted({k, *(s for s in SUPPORTED_STRIDES if s < k)},
                        reverse=True))


def plan_segments(chunk_size: int, k: int
                  ) -> tuple[tuple[tuple[int, int], ...], int]:
    """Greedy mixed-stride decomposition of a chunk.

    Returns ``(segments, unit_tail)`` where ``segments`` is a tuple of
    ``(offset, stride)`` blocks, largest strides first, and ``unit_tail``
    is the count of trailing symbols finished unit-stride.  E.g. the
    paper's 31-byte chunk at ``k = 8`` decomposes as ``8+8+8+4+2`` plus a
    1-byte tail — 6 table steps where uniform k=4 needs 10 — because the
    remainder after the widest blocks cascades down the supported-stride
    ladder instead of degrading straight to unit stride.
    """
    if k < 1:
        raise ParseError("stride must be >= 1")
    segments: list[tuple[int, int]] = []
    offset = 0
    for stride in _ladder(k):  # parlint: disable=PPR401 -- <= len(SUPPORTED_STRIDES)+1 ladder rungs, configuration-time arithmetic only
        if stride < 2:
            continue
        while offset + stride <= chunk_size:  # parlint: disable=PPR401 -- chunk_size // stride blocks, configuration-time arithmetic only
            segments.append((offset, stride))
            offset += stride
    return tuple(segments), chunk_size - offset


def plan_nbytes(num_groups: int, num_states: int, k: int) -> int:
    """Worst-case footprint of every table a ``k``-stride plan can
    materialise (the ``k`` table plus the whole remainder ladder below
    it).  Conservative and chunk-size-independent, so the auto-picker's
    verdict holds for every chunk size."""
    if k < 2:
        return 0
    return sum(table_nbytes(num_groups, num_states, stride)
               for stride in _ladder(k))


def pick_stride(dfa: Dfa, budget: int = DEFAULT_TABLE_BUDGET) -> int:
    """Largest supported stride whose plan fits ``budget`` bytes.

    Sized against :func:`plan_nbytes` — the whole mixed-stride ladder a
    plan may build, not just the headline ``k`` table.  Falls back to
    ``1`` (the unit-stride path, no tables at all) when even ``k = 2``
    would blow the budget — automata with very many symbol groups keep
    working, just without striding.
    """
    for k in SUPPORTED_STRIDES:  # parlint: disable=PPR401 -- len(SUPPORTED_STRIDES) candidates, configuration-time arithmetic only
        if plan_nbytes(dfa.num_groups, dfa.num_states, k) <= budget:
            return k
    return 1


def resolve_stride(requested: int | None, dfa: Dfa,
                   budget: int = DEFAULT_TABLE_BUDGET) -> int:
    """The stride a parse actually runs with.

    ``requested is None`` selects automatically via :func:`pick_stride`;
    an explicit stride is honoured (``1`` = force unit-stride) but
    rejected when its tables would be absurdly large.
    """
    if requested is None:
        return pick_stride(dfa, budget)
    if requested < 1:
        raise ParseError("kernel_stride must be >= 1")
    if requested > 1 and table_nbytes(dfa.num_groups, dfa.num_states,
                                      requested) > _HARD_TABLE_CAP:
        raise ParseError(
            f"kernel_stride={requested} needs a "
            f"{dfa.num_groups}**{requested}-row table; reduce the stride "
            f"or use kernel_stride=None for automatic selection")
    return requested


def build_tables(dfa: Dfa, k: int) -> StridedTables:
    """Precompose the DFA over all k-grams (see module docstring).

    The build iterates over the ``k`` positions of the block — never over
    input data — extending every (prefix, start-state) pair by all ``G``
    possible next symbols at once, so it costs ``O(G^k · S)`` table cells
    and is independent of input size.  The packed index of prefix ``p``
    extended by group ``g`` is ``p·G + g``, matching
    :func:`pack_kgrams`'s big-endian packing.
    """
    if k < 1:
        raise ParseError("stride must be >= 1")
    num_groups, num_states = dfa.num_groups, dfa.num_states
    transitions = dfa.transitions          # (G, S): group-major
    emission_table = dfa.emissions         # (S, G): state-major
    invalid = dfa.invalid_state

    groups = np.arange(num_groups)
    # State after the (initially empty) prefix, per (prefix, start state).
    prefix_states = np.broadcast_to(
        np.arange(num_states, dtype=np.uint8), (1, num_states)).copy()
    emissions = np.empty((1, num_states, 0), dtype=np.uint8)
    first_invalid = np.full((1, num_states), -1, dtype=np.int16) \
        if invalid is not None else None

    for i in range(k):  # parlint: disable=PPR401 -- loop over the k<=stride block positions, not over input; each body is a vectorised table extension
        num_prefixes = prefix_states.shape[0]
        # Symbol i is read in the prefix state; extension by group g
        # lands the (prefix*G + g) row of every table.
        step_emissions = emission_table[
            prefix_states[:, None, :], groups[None, :, None]]
        next_states = transitions[
            groups[None, :, None], prefix_states[:, None, :]]
        if first_invalid is not None:
            hit = prefix_states == invalid
            first_invalid = np.where(
                first_invalid >= 0, first_invalid,
                np.where(hit, np.int16(i), np.int16(-1)))
            first_invalid = np.repeat(first_invalid, num_groups, axis=0)
        emissions = np.concatenate([
            np.repeat(emissions, num_groups, axis=0),
            step_emissions.reshape(num_prefixes * num_groups,
                                   num_states)[:, :, None],
        ], axis=2)
        prefix_states = next_states.reshape(
            num_prefixes * num_groups, num_states)

    emissions = np.ascontiguousarray(emissions)
    word_dtype = _EMISSION_WORD_DTYPES.get(k)
    # The word view and the byte table alias the same memory; viewing in
    # native order on both the pack and unpack side makes the round trip
    # endianness-independent.
    emission_words = emissions.view(word_dtype)[:, :, 0] \
        if word_dtype is not None else None
    return StridedTables(
        dfa=dfa,
        k=k,
        transitions=np.ascontiguousarray(prefix_states),
        emissions=emissions,
        first_invalid=np.ascontiguousarray(first_invalid)
        if first_invalid is not None else None,
        emission_words=emission_words,
    )


def pack_kgrams(groups: np.ndarray, k: int, num_groups: int) -> np.ndarray:
    """Pack consecutive symbol groups into big-endian k-gram indexes.

    ``groups`` is the ``(num_chunks, chunk_size)`` symbol-group matrix;
    the result is ``(num_chunks, chunk_size // k)`` int32 where block
    ``b`` packs columns ``b*k .. b*k+k-1`` as
    ``g_0·G^(k-1) + … + g_{k-1}``.  Trailing columns beyond the last
    full block are ignored (the sweeps finish them unit-stride).

    The packing itself is ``k`` vectorised shift-adds over the whole
    matrix — one pass over the data, amortised across the
    ``chunk_size // k`` loop iterations it saves.
    """
    num_blocks = groups.shape[1] // k
    head = groups[:, :num_blocks * k]
    packed = head[:, 0::k].astype(np.int32)
    for i in range(1, k):  # parlint: disable=PPR401 -- k<=stride shift-add passes, each vectorised over the whole chunk grid
        packed *= num_groups
        packed += head[:, i::k]
    return packed


def compute_transition_vectors_strided(groups: np.ndarray,
                                       tables: StridedTables,
                                       packed: np.ndarray | None = None
                                       ) -> np.ndarray:
    """STVs for all chunks, ``k`` symbols per step (cf.
    :func:`repro.core.context.compute_transition_vectors`).

    Bit-identical to the unit-stride sweep: the k-step table *is* the
    k-fold composition of the base table, and composition is associative.
    ``packed`` may carry a precomputed :func:`pack_kgrams` result so the
    STV and tagging sweeps of one parse share a single packing pass.
    """
    if groups.ndim != 2:
        raise ValueError("expected a (num_chunks, chunk_size) matrix")
    dfa, k = tables.dfa, tables.k
    num_chunks, chunk_size = groups.shape
    num_blocks = chunk_size // k
    vectors = np.broadcast_to(
        np.arange(dfa.num_states, dtype=np.uint8),
        (num_chunks, dfa.num_states)).copy()
    if packed is None:
        packed = pack_kgrams(groups, k, dfa.num_groups)
    elif packed.shape != (num_chunks, num_blocks):
        raise ValueError("packed k-grams do not match the chunk grid")
    transitions_k = tables.transitions
    for b in range(num_blocks):  # parlint: disable=PPR401 -- chunk_size // k iterations (the strided serial depth); vectorised over the num_chunks axis
        vectors = transitions_k[packed[:, b, None], vectors]
    transitions = dfa.transitions
    for j in range(num_blocks * k, chunk_size):  # parlint: disable=PPR401 -- unit-stride tail of < k symbols
        vectors = transitions[groups[:, j, None], vectors]
    return vectors


def compute_emissions_strided(groups: np.ndarray, start_states: np.ndarray,
                              tables: StridedTables, chunking,
                              packed: np.ndarray | None = None
                              ) -> tuple[np.ndarray, int, int | None]:
    """Tagging sweep, ``k`` symbols per step (cf.
    :func:`repro.core.tagging.compute_emissions`).

    Returns the same ``(emissions, final_state, invalid_position)``
    triple as the unit-stride sweep, bit for bit.  INV detection exploits
    the sink property: once entered, INV is never left, so a chunk read a
    symbol in the sink iff its *end* state is the sink (or it entered on
    its very last transition, in which case the next chunk starts there
    and reads its first symbol in it).  The hot loop therefore carries no
    per-block invalid bookkeeping at all — it only records the block
    entry states — and the exact offset is recovered afterwards by a
    scalar replay of the single first affected chunk through the
    per-block ``first_invalid`` table.  That reproduces the unit-stride
    position also when it falls mid-block or inside the padded tail
    (where the ``position < input_bytes`` filter below discards it
    identically).  ``packed`` may carry a precomputed :func:`pack_kgrams`
    result (see :func:`compute_transition_vectors_strided`).
    """
    dfa, k = tables.dfa, tables.k
    num_chunks, chunk_size = groups.shape
    num_blocks = chunk_size // k
    states = start_states.astype(np.uint8).copy()
    emissions = np.empty((num_chunks, chunk_size), dtype=np.uint8)
    invalid = dfa.invalid_state

    if packed is None:
        packed = pack_kgrams(groups, k, dfa.num_groups)
    elif packed.shape != (num_chunks, num_blocks):
        raise ValueError("packed k-grams do not match the chunk grid")
    transitions_k = tables.transitions
    emissions_k = tables.emissions
    words_k = tables.emission_words
    invalid_k = tables.first_invalid
    entry_states = np.empty((num_chunks, num_blocks), dtype=np.uint8) \
        if invalid is not None else None
    if words_k is not None:
        # SWAR fast path (§5.3): one word gather per chunk per block
        # instead of k scattered bytes; the word buffer is re-viewed as
        # the emission bytes afterwards (same native order as the pack).
        out_words = np.empty((num_chunks, num_blocks), dtype=words_k.dtype)
    else:
        out_words = None
    for b in range(num_blocks):  # parlint: disable=PPR401 -- chunk_size // k iterations (the strided serial depth); vectorised over the num_chunks axis
        kgrams = packed[:, b]
        if out_words is not None:
            out_words[:, b] = words_k[kgrams, states]
        else:
            emissions[:, b * k:(b + 1) * k] = emissions_k[kgrams, states]
        if entry_states is not None:
            entry_states[:, b] = states
        states = transitions_k[kgrams, states]
    if out_words is not None and num_blocks:
        emissions[:, :num_blocks * k] = out_words.view(np.uint8).reshape(
            num_chunks, num_blocks * k)

    tail_entry = states.copy() if invalid is not None else None
    transitions = dfa.transitions
    emission_table = dfa.emissions
    for j in range(num_blocks * k, chunk_size):  # parlint: disable=PPR401 -- unit-stride tail of < k symbols
        g = groups[:, j]
        emissions[:, j] = emission_table[states, g]
        states = transitions[g, states]

    final_state = int(states[-1])
    flat = emissions.reshape(-1)[:chunking.input_bytes]

    invalid_position: int | None = None
    if invalid is not None:
        bad = np.flatnonzero(states == invalid)   # sink: end == visited
        if bad.size:
            chunk = int(bad[0])
            offset = -1
            for b in range(num_blocks):  # parlint: disable=PPR401 -- scalar replay of one chunk, <= chunk_size/k steps
                off = int(invalid_k[packed[chunk, b],
                                    entry_states[chunk, b]])
                if off >= 0:
                    offset = b * k + off
                    break
            if offset < 0:
                state = int(tail_entry[chunk])
                for j in range(num_blocks * k, chunk_size):  # parlint: disable=PPR401 -- scalar replay of one chunk tail, < k steps
                    if state == invalid:
                        offset = j
                        break
                    state = int(transitions[groups[chunk, j], state])
            if offset < 0:
                # Entered the sink on the chunk's very last transition:
                # the first symbol read in it is the next chunk's first.
                chunk += 1
                offset = 0 if chunk < num_chunks else -1
            if offset >= 0:
                position = chunk * chunk_size + offset
                if position < chunking.input_bytes:
                    invalid_position = position
    return flat, final_state, invalid_position


# -- mixed-stride plans ------------------------------------------------------

@dataclass(frozen=True)
class KernelPlan:
    """A chunk-shaped execution plan over mixed strides.

    Uniform-``k`` sweeps leave ``chunk_size % k`` symbols to the
    unit-stride tail — at the paper's 31-byte chunks a uniform k=8 sweep
    would pay 3 table steps *plus 7 scalar rounds*, no better than k=4.
    A plan instead decomposes the chunk down the supported-stride ladder
    (:func:`plan_segments`) and carries one :class:`StridedTables` per
    distinct stride, so every segment advances by the widest table that
    still fits.  Built by :func:`build_plan` (or the caching
    :func:`repro.kernels.cache.get_plan`); immutable and shareable like
    the tables it wraps.
    """

    #: The automaton the plan executes (with padding group).
    dfa: Dfa
    #: The headline stride the plan was built for.
    k: int
    #: The chunk width the segment decomposition is valid for.
    chunk_size: int
    #: ``(offset, stride)`` blocks, widest strides first, covering
    #: ``chunk_size - unit_tail`` symbols.
    segments: tuple[tuple[int, int], ...]
    #: Trailing symbols finished by the unit-stride scalar loop.
    unit_tail: int
    #: Precomposed tables keyed by stride, one per distinct segment width.
    tables: dict[int, StridedTables]

    @property
    def nbytes(self) -> int:
        """Total footprint of the plan's tables in bytes."""
        return sum(t.nbytes for t in self.tables.values())


def build_plan(dfa: Dfa, k: int, chunk_size: int,
               table_source=build_tables) -> KernelPlan:
    """Build the mixed-stride plan for ``(dfa, k, chunk_size)``.

    ``table_source(dfa, stride)`` supplies the per-stride tables —
    :func:`build_tables` by default; the kernel cache passes its caching
    getter so plans share tables process-wide.
    """
    if k < 2:
        raise ParseError("plans need a stride >= 2; use the unit-stride "
                         "sweeps for k = 1")
    segments, unit_tail = plan_segments(chunk_size, k)
    strides = sorted({stride for _, stride in segments}, reverse=True)
    tables = {stride: table_source(dfa, stride) for stride in strides}
    return KernelPlan(dfa=dfa, k=k, chunk_size=chunk_size,
                      segments=segments, unit_tail=unit_tail,
                      tables=tables)


def pack_plan(groups: np.ndarray, plan: KernelPlan
              ) -> dict[int, np.ndarray]:
    """Packed k-gram indexes for every segment of ``plan``.

    Returns ``{stride: (num_chunks, segments_of_that_stride) int32}``,
    segment columns in plan order — the mixed-stride analogue of
    :func:`pack_kgrams`, and like it a handful of vectorised shift-add
    passes over the whole chunk grid.
    """
    if groups.ndim != 2 or groups.shape[1] != plan.chunk_size:
        raise ValueError("groups do not match the plan's chunk grid")
    num_groups = plan.dfa.num_groups
    packed: dict[int, np.ndarray] = {}
    for stride in plan.tables:  # parlint: disable=PPR401 -- one pass per distinct stride (<= ladder length), each vectorised over the chunk grid
        offsets = np.array([offset for offset, s in plan.segments
                            if s == stride])
        columns = groups[:, offsets[:, None] + np.arange(stride)[None, :]]
        words = columns[:, :, 0].astype(np.int32)
        for i in range(1, stride):  # parlint: disable=PPR401 -- stride<=k shift-add passes, each vectorised over the whole chunk grid
            words *= num_groups
            words += columns[:, :, i]
        packed[stride] = words
    return packed


def _segment_columns(plan: KernelPlan):
    """Yield ``(segment_index, offset, stride, packed_column)`` so the
    sweeps can walk segments in plan order while indexing the per-stride
    packed matrices of :func:`pack_plan`."""
    counters = {stride: 0 for stride in plan.tables}
    for index, (offset, stride) in enumerate(plan.segments):  # parlint: disable=PPR401 -- bookkeeping over <= ~10 plan segments, not input data
        column = counters[stride]
        counters[stride] = column + 1
        yield index, offset, stride, column


def compute_transition_vectors_plan(groups: np.ndarray, plan: KernelPlan,
                                    packed: dict[int, np.ndarray] | None
                                    = None) -> np.ndarray:
    """STVs for all chunks, one table gather per plan segment (cf.
    :func:`compute_transition_vectors_strided`).

    Bit-identical to the unit-stride sweep for the same reason the
    uniform sweep is: every per-stride table is the exact composition of
    the base table over its block, and composition is associative
    regardless of how the chunk is split.
    """
    if groups.ndim != 2:
        raise ValueError("expected a (num_chunks, chunk_size) matrix")
    num_chunks, chunk_size = groups.shape
    if chunk_size != plan.chunk_size:
        raise ValueError("chunk grid does not match the plan")
    dfa = plan.dfa
    vectors = np.broadcast_to(
        np.arange(dfa.num_states, dtype=np.uint8),
        (num_chunks, dfa.num_states)).copy()
    if packed is None:
        packed = pack_plan(groups, plan)
    for _, _, stride, column in _segment_columns(plan):  # parlint: disable=PPR401 -- one iteration per plan segment (~chunk_size/k); vectorised over the num_chunks axis
        vectors = plan.tables[stride].transitions[
            packed[stride][:, column, None], vectors]
    transitions = dfa.transitions
    for j in range(chunk_size - plan.unit_tail, chunk_size):  # parlint: disable=PPR401 -- unit-stride tail of < 2 symbols
        vectors = transitions[groups[:, j, None], vectors]
    return vectors


def compute_emissions_plan(groups: np.ndarray, start_states: np.ndarray,
                           plan: KernelPlan, chunking,
                           packed: dict[int, np.ndarray] | None = None
                           ) -> tuple[np.ndarray, int, int | None]:
    """Tagging sweep over a mixed-stride plan (cf.
    :func:`compute_emissions_strided`).

    Returns the same ``(emissions, final_state, invalid_position)``
    triple as the unit-stride sweep, bit for bit.  Each segment gathers
    one SWAR word (every supported stride is a word size) and re-views it
    as the segment's emission bytes; INV handling generalises the
    uniform-stride scheme — the hot loop records only segment entry
    states, and the exact offset is recovered by a scalar replay of the
    first affected chunk through the per-segment ``first_invalid``
    tables, then the unit tail, then the next chunk's first symbol.
    """
    num_chunks, chunk_size = groups.shape
    if chunk_size != plan.chunk_size:
        raise ValueError("chunk grid does not match the plan")
    dfa = plan.dfa
    invalid = dfa.invalid_state
    states = start_states.astype(np.uint8).copy()
    emissions = np.empty((num_chunks, chunk_size), dtype=np.uint8)
    if packed is None:
        packed = pack_plan(groups, plan)
    entry_states = np.empty((num_chunks, len(plan.segments)),
                            dtype=np.uint8) if invalid is not None else None
    for index, offset, stride, column in _segment_columns(plan):  # parlint: disable=PPR401 -- one iteration per plan segment (~chunk_size/k); vectorised over the num_chunks axis
        tables = plan.tables[stride]
        kgrams = packed[stride][:, column]
        if entry_states is not None:
            entry_states[:, index] = states
        # One word gather per chunk per segment (§5.3), re-viewed as the
        # segment's emission bytes in the same native order it was
        # packed; explicitly requested non-word strides gather bytes.
        if tables.emission_words is not None:
            emissions[:, offset:offset + stride] = \
                tables.emission_words[kgrams, states].view(
                    np.uint8).reshape(num_chunks, stride)
        else:
            emissions[:, offset:offset + stride] = \
                tables.emissions[kgrams, states]
        states = tables.transitions[kgrams, states]

    tail_entry = states.copy() if invalid is not None else None
    tail_start = chunk_size - plan.unit_tail
    transitions = dfa.transitions
    emission_table = dfa.emissions
    for j in range(tail_start, chunk_size):  # parlint: disable=PPR401 -- unit-stride tail of < 2 symbols
        g = groups[:, j]
        emissions[:, j] = emission_table[states, g]
        states = transitions[g, states]

    final_state = int(states[-1])
    flat = emissions.reshape(-1)[:chunking.input_bytes]

    invalid_position: int | None = None
    if invalid is not None:
        bad = np.flatnonzero(states == invalid)   # sink: end == visited
        if bad.size:
            chunk = int(bad[0])
            offset_found = -1
            for index, offset, stride, column in _segment_columns(plan):  # parlint: disable=PPR401 -- scalar replay of one chunk, one step per plan segment
                off = int(plan.tables[stride].first_invalid[
                    packed[stride][chunk, column],
                    entry_states[chunk, index]])
                if off >= 0:
                    offset_found = offset + off
                    break
            if offset_found < 0:
                state = int(tail_entry[chunk])
                for j in range(tail_start, chunk_size):  # parlint: disable=PPR401 -- scalar replay of one chunk tail, < 2 steps
                    if state == invalid:
                        offset_found = j
                        break
                    state = int(transitions[groups[chunk, j], state])
            if offset_found < 0:
                # Entered the sink on the chunk's very last transition:
                # the first symbol read in it is the next chunk's first.
                chunk += 1
                offset_found = 0 if chunk < num_chunks else -1
            if offset_found >= 0:
                position = chunk * chunk_size + offset_found
                if position < chunking.input_bytes:
                    invalid_position = position
    return flat, final_state, invalid_position
