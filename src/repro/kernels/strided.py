"""Multi-symbol strided kernels for the byte-bound phases.

The two hot loops of the pipeline — the STV simulation
(:func:`repro.core.context.compute_transition_vectors`) and the tagging
sweep (:func:`repro.core.tagging.compute_emissions`) — advance every
chunk by *one* symbol per Python-level iteration, so a chunk of ``n``
bytes pays ``n`` rounds of interpreter and NumPy-dispatch overhead on
top of the actual table gathers.  ParPaRaw's own answer to per-symbol
serial depth is to process several symbols per thread step: MFIRA packs
fragments into registers (paper §5.2) and SWAR matches multiple bytes
branchlessly (§5.3).  This module is the NumPy translation of that idea.

Given a DFA with ``G`` symbol groups and ``S`` states, a *stride* ``k``
and the packed k-gram ``g_0·G^(k-1) + … + g_{k-1}`` of ``k`` consecutive
symbols, :func:`build_tables` precomposes

* ``transitions[kgram, state]`` — the state after consuming all ``k``
  symbols (the k-fold composition of the base transition table);
* ``emissions[kgram, state, 0..k-1]`` — the :class:`Emission` code of
  every one of the ``k`` symbols, as emitted by the base Mealy table
  along the way — plus, for word-sized strides, a SWAR view of the same
  table packing the ``k`` codes into a single machine word, so the
  tagging sweep gathers one word per chunk per block instead of ``k``
  scattered bytes (the §5.3 trick: several symbols matched per
  register-width operation);
* ``first_invalid[kgram, state]`` — the block-local index of the first
  symbol that is *read in* the INV sink state (``-1`` if none), which is
  exactly the intermediate-state information the unit-stride sweep
  derives symbol by symbol.

With these tables both sweeps advance ``k`` symbols per gather, shrinking
the Python loop from ``chunk_size`` to ``chunk_size // k`` iterations
(plus a unit-stride tail of ``chunk_size % k`` symbols).  The outputs are
bit-identical to the unit-stride sweeps by construction — the tables are
*the same function*, memoised over k-grams — and the parity property
suite in ``tests/kernels`` proves it over random dialects and inputs.

The trade-off is table memory: ``G^k`` rows.  :func:`pick_stride`
selects the largest supported ``k`` whose tables fit a byte budget
(falling back to ``k = 1``, i.e. the unit-stride path), so small
automata — CSV needs 7-9 groups including padding — get ``k = 4`` while
group-rich automata degrade gracefully.
"""

from __future__ import annotations

# parlint: hot-path -- strided byte-bound kernels; loops need waivers

from dataclasses import dataclass

import numpy as np

from repro.dfa.automaton import Dfa
from repro.errors import ParseError

__all__ = [
    "StridedTables",
    "SUPPORTED_STRIDES",
    "DEFAULT_TABLE_BUDGET",
    "build_tables",
    "table_nbytes",
    "pick_stride",
    "resolve_stride",
    "pack_kgrams",
    "compute_transition_vectors_strided",
    "compute_emissions_strided",
]

#: Strides the auto-picker considers, best first.  Any ``k >= 1`` is
#: legal to request explicitly; these are the sweet spots for the
#: paper's 31-byte chunks.
SUPPORTED_STRIDES: tuple[int, ...] = (4, 2)

#: Default ceiling for the precomposed tables of one ``(dfa, k)`` pair.
#: 4 MiB keeps every table well inside L2 — a table that spills out of
#: cache loses the very memory locality the striding is buying.
DEFAULT_TABLE_BUDGET = 4 << 20

#: Hard ceiling for explicitly requested strides: building a table this
#: large is always a configuration error, not a tuning choice.
_HARD_TABLE_CAP = 1 << 30

#: Strides whose k emission bytes fit one machine word (SWAR packing).
_EMISSION_WORD_DTYPES: dict[int, type] = {
    1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64,
}


@dataclass(frozen=True)
class StridedTables:
    """Precomposed k-step DFA tables (see module docstring).

    Built once per ``(dfa, k)`` by :func:`build_tables` and cached
    process-wide by :mod:`repro.kernels.cache`; instances are immutable
    and safe to share across parses, shards and threads.
    """

    #: The automaton the tables were composed from (with padding group).
    dfa: Dfa
    #: Symbols advanced per table gather.
    k: int
    #: ``(G**k, S)`` uint8 — state after consuming a whole k-gram.
    transitions: np.ndarray
    #: ``(G**k, S, k)`` uint8 — emission of each symbol in the k-gram.
    emissions: np.ndarray
    #: ``(G**k, S)`` int16 — block-local index of the first symbol read
    #: in the INV sink (-1 = never); ``None`` when the DFA has no sink.
    first_invalid: np.ndarray | None
    #: ``(G**k, S)`` uint{8k} — the k emission bytes of each cell packed
    #: into one machine word (a zero-copy view of ``emissions``, native
    #: byte order); ``None`` when ``k`` is not a word size.  Lets the
    #: tagging sweep gather one word instead of ``k`` scattered bytes —
    #: the SWAR device of paper §5.3.
    emission_words: np.ndarray | None = None

    @property
    def num_kgrams(self) -> int:
        return self.transitions.shape[0]

    @property
    def nbytes(self) -> int:
        """Total table footprint in bytes."""
        invalid = self.first_invalid.nbytes if self.first_invalid is not None \
            else 0
        return self.transitions.nbytes + self.emissions.nbytes + invalid


def table_nbytes(num_groups: int, num_states: int, k: int) -> int:
    """Predicted footprint of :func:`build_tables` output (bytes)."""
    kgrams = num_groups ** k
    # transitions (1 B) + emissions (k B) + first_invalid (2 B) per
    # (kgram, state) cell.
    return kgrams * num_states * (1 + k + 2)


def pick_stride(dfa: Dfa, budget: int = DEFAULT_TABLE_BUDGET) -> int:
    """Largest supported stride whose tables fit ``budget`` bytes.

    Falls back to ``1`` (the unit-stride path, no tables at all) when
    even ``k = 2`` would blow the budget — automata with very many
    symbol groups keep working, just without striding.
    """
    for k in SUPPORTED_STRIDES:  # parlint: disable=PPR401 -- two candidate strides, configuration-time arithmetic only
        if table_nbytes(dfa.num_groups, dfa.num_states, k) <= budget:
            return k
    return 1


def resolve_stride(requested: int | None, dfa: Dfa,
                   budget: int = DEFAULT_TABLE_BUDGET) -> int:
    """The stride a parse actually runs with.

    ``requested is None`` selects automatically via :func:`pick_stride`;
    an explicit stride is honoured (``1`` = force unit-stride) but
    rejected when its tables would be absurdly large.
    """
    if requested is None:
        return pick_stride(dfa, budget)
    if requested < 1:
        raise ParseError("kernel_stride must be >= 1")
    if requested > 1 and table_nbytes(dfa.num_groups, dfa.num_states,
                                      requested) > _HARD_TABLE_CAP:
        raise ParseError(
            f"kernel_stride={requested} needs a "
            f"{dfa.num_groups}**{requested}-row table; reduce the stride "
            f"or use kernel_stride=None for automatic selection")
    return requested


def build_tables(dfa: Dfa, k: int) -> StridedTables:
    """Precompose the DFA over all k-grams (see module docstring).

    The build iterates over the ``k`` positions of the block — never over
    input data — extending every (prefix, start-state) pair by all ``G``
    possible next symbols at once, so it costs ``O(G^k · S)`` table cells
    and is independent of input size.  The packed index of prefix ``p``
    extended by group ``g`` is ``p·G + g``, matching
    :func:`pack_kgrams`'s big-endian packing.
    """
    if k < 1:
        raise ParseError("stride must be >= 1")
    num_groups, num_states = dfa.num_groups, dfa.num_states
    transitions = dfa.transitions          # (G, S): group-major
    emission_table = dfa.emissions         # (S, G): state-major
    invalid = dfa.invalid_state

    groups = np.arange(num_groups)
    # State after the (initially empty) prefix, per (prefix, start state).
    prefix_states = np.broadcast_to(
        np.arange(num_states, dtype=np.uint8), (1, num_states)).copy()
    emissions = np.empty((1, num_states, 0), dtype=np.uint8)
    first_invalid = np.full((1, num_states), -1, dtype=np.int16) \
        if invalid is not None else None

    for i in range(k):  # parlint: disable=PPR401 -- loop over the k<=stride block positions, not over input; each body is a vectorised table extension
        num_prefixes = prefix_states.shape[0]
        # Symbol i is read in the prefix state; extension by group g
        # lands the (prefix*G + g) row of every table.
        step_emissions = emission_table[
            prefix_states[:, None, :], groups[None, :, None]]
        next_states = transitions[
            groups[None, :, None], prefix_states[:, None, :]]
        if first_invalid is not None:
            hit = prefix_states == invalid
            first_invalid = np.where(
                first_invalid >= 0, first_invalid,
                np.where(hit, np.int16(i), np.int16(-1)))
            first_invalid = np.repeat(first_invalid, num_groups, axis=0)
        emissions = np.concatenate([
            np.repeat(emissions, num_groups, axis=0),
            step_emissions.reshape(num_prefixes * num_groups,
                                   num_states)[:, :, None],
        ], axis=2)
        prefix_states = next_states.reshape(
            num_prefixes * num_groups, num_states)

    emissions = np.ascontiguousarray(emissions)
    word_dtype = _EMISSION_WORD_DTYPES.get(k)
    # The word view and the byte table alias the same memory; viewing in
    # native order on both the pack and unpack side makes the round trip
    # endianness-independent.
    emission_words = emissions.view(word_dtype)[:, :, 0] \
        if word_dtype is not None else None
    return StridedTables(
        dfa=dfa,
        k=k,
        transitions=np.ascontiguousarray(prefix_states),
        emissions=emissions,
        first_invalid=np.ascontiguousarray(first_invalid)
        if first_invalid is not None else None,
        emission_words=emission_words,
    )


def pack_kgrams(groups: np.ndarray, k: int, num_groups: int) -> np.ndarray:
    """Pack consecutive symbol groups into big-endian k-gram indexes.

    ``groups`` is the ``(num_chunks, chunk_size)`` symbol-group matrix;
    the result is ``(num_chunks, chunk_size // k)`` int32 where block
    ``b`` packs columns ``b*k .. b*k+k-1`` as
    ``g_0·G^(k-1) + … + g_{k-1}``.  Trailing columns beyond the last
    full block are ignored (the sweeps finish them unit-stride).

    The packing itself is ``k`` vectorised shift-adds over the whole
    matrix — one pass over the data, amortised across the
    ``chunk_size // k`` loop iterations it saves.
    """
    num_blocks = groups.shape[1] // k
    head = groups[:, :num_blocks * k]
    packed = head[:, 0::k].astype(np.int32)
    for i in range(1, k):  # parlint: disable=PPR401 -- k<=stride shift-add passes, each vectorised over the whole chunk grid
        packed *= num_groups
        packed += head[:, i::k]
    return packed


def compute_transition_vectors_strided(groups: np.ndarray,
                                       tables: StridedTables,
                                       packed: np.ndarray | None = None
                                       ) -> np.ndarray:
    """STVs for all chunks, ``k`` symbols per step (cf.
    :func:`repro.core.context.compute_transition_vectors`).

    Bit-identical to the unit-stride sweep: the k-step table *is* the
    k-fold composition of the base table, and composition is associative.
    ``packed`` may carry a precomputed :func:`pack_kgrams` result so the
    STV and tagging sweeps of one parse share a single packing pass.
    """
    if groups.ndim != 2:
        raise ValueError("expected a (num_chunks, chunk_size) matrix")
    dfa, k = tables.dfa, tables.k
    num_chunks, chunk_size = groups.shape
    num_blocks = chunk_size // k
    vectors = np.broadcast_to(
        np.arange(dfa.num_states, dtype=np.uint8),
        (num_chunks, dfa.num_states)).copy()
    if packed is None:
        packed = pack_kgrams(groups, k, dfa.num_groups)
    elif packed.shape != (num_chunks, num_blocks):
        raise ValueError("packed k-grams do not match the chunk grid")
    transitions_k = tables.transitions
    for b in range(num_blocks):  # parlint: disable=PPR401 -- chunk_size // k iterations (the strided serial depth); vectorised over the num_chunks axis
        vectors = transitions_k[packed[:, b, None], vectors]
    transitions = dfa.transitions
    for j in range(num_blocks * k, chunk_size):  # parlint: disable=PPR401 -- unit-stride tail of < k symbols
        vectors = transitions[groups[:, j, None], vectors]
    return vectors


def compute_emissions_strided(groups: np.ndarray, start_states: np.ndarray,
                              tables: StridedTables, chunking,
                              packed: np.ndarray | None = None
                              ) -> tuple[np.ndarray, int, int | None]:
    """Tagging sweep, ``k`` symbols per step (cf.
    :func:`repro.core.tagging.compute_emissions`).

    Returns the same ``(emissions, final_state, invalid_position)``
    triple as the unit-stride sweep, bit for bit.  INV detection exploits
    the sink property: once entered, INV is never left, so a chunk read a
    symbol in the sink iff its *end* state is the sink (or it entered on
    its very last transition, in which case the next chunk starts there
    and reads its first symbol in it).  The hot loop therefore carries no
    per-block invalid bookkeeping at all — it only records the block
    entry states — and the exact offset is recovered afterwards by a
    scalar replay of the single first affected chunk through the
    per-block ``first_invalid`` table.  That reproduces the unit-stride
    position also when it falls mid-block or inside the padded tail
    (where the ``position < input_bytes`` filter below discards it
    identically).  ``packed`` may carry a precomputed :func:`pack_kgrams`
    result (see :func:`compute_transition_vectors_strided`).
    """
    dfa, k = tables.dfa, tables.k
    num_chunks, chunk_size = groups.shape
    num_blocks = chunk_size // k
    states = start_states.astype(np.uint8).copy()
    emissions = np.empty((num_chunks, chunk_size), dtype=np.uint8)
    invalid = dfa.invalid_state

    if packed is None:
        packed = pack_kgrams(groups, k, dfa.num_groups)
    elif packed.shape != (num_chunks, num_blocks):
        raise ValueError("packed k-grams do not match the chunk grid")
    transitions_k = tables.transitions
    emissions_k = tables.emissions
    words_k = tables.emission_words
    invalid_k = tables.first_invalid
    entry_states = np.empty((num_chunks, num_blocks), dtype=np.uint8) \
        if invalid is not None else None
    if words_k is not None:
        # SWAR fast path (§5.3): one word gather per chunk per block
        # instead of k scattered bytes; the word buffer is re-viewed as
        # the emission bytes afterwards (same native order as the pack).
        out_words = np.empty((num_chunks, num_blocks), dtype=words_k.dtype)
    else:
        out_words = None
    for b in range(num_blocks):  # parlint: disable=PPR401 -- chunk_size // k iterations (the strided serial depth); vectorised over the num_chunks axis
        kgrams = packed[:, b]
        if out_words is not None:
            out_words[:, b] = words_k[kgrams, states]
        else:
            emissions[:, b * k:(b + 1) * k] = emissions_k[kgrams, states]
        if entry_states is not None:
            entry_states[:, b] = states
        states = transitions_k[kgrams, states]
    if out_words is not None and num_blocks:
        emissions[:, :num_blocks * k] = out_words.view(np.uint8).reshape(
            num_chunks, num_blocks * k)

    tail_entry = states.copy() if invalid is not None else None
    transitions = dfa.transitions
    emission_table = dfa.emissions
    for j in range(num_blocks * k, chunk_size):  # parlint: disable=PPR401 -- unit-stride tail of < k symbols
        g = groups[:, j]
        emissions[:, j] = emission_table[states, g]
        states = transitions[g, states]

    final_state = int(states[-1])
    flat = emissions.reshape(-1)[:chunking.input_bytes]

    invalid_position: int | None = None
    if invalid is not None:
        bad = np.flatnonzero(states == invalid)   # sink: end == visited
        if bad.size:
            chunk = int(bad[0])
            offset = -1
            for b in range(num_blocks):  # parlint: disable=PPR401 -- scalar replay of one chunk, <= chunk_size/k steps
                off = int(invalid_k[packed[chunk, b],
                                    entry_states[chunk, b]])
                if off >= 0:
                    offset = b * k + off
                    break
            if offset < 0:
                state = int(tail_entry[chunk])
                for j in range(num_blocks * k, chunk_size):  # parlint: disable=PPR401 -- scalar replay of one chunk tail, < k steps
                    if state == invalid:
                        offset = j
                        break
                    state = int(transitions[groups[chunk, j], state])
            if offset < 0:
                # Entered the sink on the chunk's very last transition:
                # the first symbol read in it is the next chunk's first.
                chunk += 1
                offset = 0 if chunk < num_chunks else -1
            if offset >= 0:
                position = chunk * chunk_size + offset
                if position < chunking.input_bytes:
                    invalid_position = position
    return flat, final_state, invalid_position
