"""Process-wide LRU cache for precomposed strided DFA tables.

Building the k-step tables costs ``O(G^k · S)`` — negligible against a
large parse, but very noticeable when the same dialect is parsed over
and over: every streaming partition, every shard task and every parse
call would otherwise rebuild identical tables.  This cache keys tables
on ``(dfa fingerprint, k)`` so each distinct automaton pays the build
exactly once per process:

* the **serial** executor and :class:`~repro.streaming.StreamingParser`
  hit the parent process's cache from the second chunk/partition on;
* :class:`~repro.exec.ShardedExecutor` worker processes each hold their
  own copy (module state is per-process) — a worker builds the tables on
  its first shard and reuses them for every later shard and parse that
  the pool schedules onto it.

The fingerprint hashes the tables that define the automaton's *behaviour*
(transitions, emissions, invalid sink) rather than using object identity,
so equal dialects share cache entries across independently constructed
:class:`~repro.dfa.automaton.Dfa` instances.

Cache traffic is observable through :mod:`repro.obs`: pass a
:class:`~repro.obs.metrics.MetricsRegistry` to :func:`get_tables` and it
records ``kernels.cache.hits`` / ``kernels.cache.misses`` counters and a
``kernels.table_build.seconds`` histogram (plus a ``kernels.table.bytes``
gauge for the most recent build).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict

from repro.dfa.automaton import Dfa
from repro.kernels.strided import StridedTables, build_tables
from repro.obs.metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "dfa_fingerprint",
    "get_tables",
    "cache_info",
    "clear_cache",
    "MAX_CACHED_TABLES",
]

#: Entries kept before least-recently-used eviction.  Tables are small
#: (bounded by the stride budget) but a long-lived process cycling many
#: ad-hoc automata should not accumulate them forever.
MAX_CACHED_TABLES = 16

_lock = threading.Lock()
_cache: "OrderedDict[tuple[str, int], StridedTables]" = OrderedDict()
_hits = 0
_misses = 0
_evictions = 0


def dfa_fingerprint(dfa: Dfa) -> str:
    """Stable digest of everything that shapes the strided tables."""
    digest = hashlib.sha1()
    digest.update(b"%d:%d:%d:%d;" % (
        dfa.num_groups, dfa.num_states, dfa.start_state,
        -1 if dfa.invalid_state is None else dfa.invalid_state))
    digest.update(dfa.transitions.tobytes())
    digest.update(dfa.emissions.tobytes())
    return digest.hexdigest()


def get_tables(dfa: Dfa, k: int,
               metrics: MetricsRegistry = NULL_METRICS) -> StridedTables:
    """The precomposed tables for ``(dfa, k)``, built at most once.

    Thread-safe; concurrent callers of the same key may race to build,
    in which case one result wins and the others are discarded (the
    tables are immutable and interchangeable, so this is merely a little
    duplicated work, never an inconsistency).
    """
    global _hits, _misses, _evictions
    key = (dfa_fingerprint(dfa), int(k))
    with _lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache.move_to_end(key)
            _hits += 1
            if metrics.enabled:
                metrics.count("kernels.cache.hits")
            return cached
    start = time.perf_counter()
    tables = build_tables(dfa, k)
    build_seconds = time.perf_counter() - start
    with _lock:
        _misses += 1
        _cache[key] = tables
        _cache.move_to_end(key)
        while len(_cache) > MAX_CACHED_TABLES:
            _cache.popitem(last=False)
            _evictions += 1
    if metrics.enabled:
        metrics.count("kernels.cache.misses")
        metrics.observe("kernels.table_build.seconds", build_seconds)
        metrics.gauge("kernels.table.bytes", tables.nbytes)
    return tables


def cache_info() -> dict[str, int]:
    """Lifetime cache statistics of this process."""
    with _lock:
        return {
            "entries": len(_cache),
            "hits": _hits,
            "misses": _misses,
            "evictions": _evictions,
        }


def clear_cache() -> None:
    """Drop all cached tables and reset the statistics (tests)."""
    global _hits, _misses, _evictions
    with _lock:
        _cache.clear()
        _hits = _misses = _evictions = 0
