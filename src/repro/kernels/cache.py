"""Process-wide LRU cache for precomposed strided DFA tables.

Building the k-step tables costs ``O(G^k · S)`` — negligible against a
large parse, but very noticeable when the same dialect is parsed over
and over: every streaming partition, every shard task and every parse
call would otherwise rebuild identical tables.  This cache keys tables
on ``(dfa fingerprint, k)`` so each distinct automaton pays the build
exactly once per process:

* the **serial** executor and :class:`~repro.streaming.StreamingParser`
  hit the parent process's cache from the second chunk/partition on;
* :class:`~repro.exec.ShardedExecutor` worker processes each hold their
  own copy (module state is per-process) — a worker builds the tables on
  its first shard and reuses them for every later shard and parse that
  the pool schedules onto it.

The fingerprint is *behavioural*: it hashes the canonical minimised form
(:func:`repro.dfa.minimize.canonicalize`) of the automaton, so not just
independently constructed but *structurally different yet behaviourally
equivalent* automata — a sniffer-built CSV DFA with redundant states vs
the :mod:`repro.dfa.dialects` builder's — map to the same fingerprint.
Canonical automata (which is what the pipeline feeds through here when
``ParseOptions.minimize_dfa`` is on) share one entry per behaviour
class; a non-canonical automaton still gets correct tables for its own
state numbering through a structural sub-key.

Cache traffic is observable through :mod:`repro.obs`: pass a
:class:`~repro.obs.metrics.MetricsRegistry` to :func:`get_tables` and it
records ``kernels.cache.hits`` / ``kernels.cache.misses`` counters and a
``kernels.table_build.seconds`` histogram (plus a ``kernels.table.bytes``
gauge for the most recent build).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict

from repro.dfa.automaton import Dfa
from repro.dfa.minimize import canonicalize
from repro.kernels.strided import KernelPlan, StridedTables, build_plan, \
    build_tables
from repro.obs.metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "dfa_fingerprint",
    "get_tables",
    "get_plan",
    "cache_info",
    "clear_cache",
    "MAX_CACHED_TABLES",
]

#: Entries kept before least-recently-used eviction.  Tables are small
#: (bounded by the stride budget) but a long-lived process cycling many
#: ad-hoc automata should not accumulate them forever.
MAX_CACHED_TABLES = 16

_lock = threading.Lock()
_cache: "OrderedDict[tuple, StridedTables]" = OrderedDict()
_hits = 0
_misses = 0
_evictions = 0


def _structural_fingerprint(dfa: Dfa) -> str:
    """Stable digest of everything that shapes the strided tables."""
    digest = hashlib.sha1()
    digest.update(b"%d:%d:%d:%d;" % (
        dfa.num_groups, dfa.num_states, dfa.start_state,
        -1 if dfa.invalid_state is None else dfa.invalid_state))
    digest.update(dfa.transitions.tobytes())
    digest.update(dfa.emissions.tobytes())
    return digest.hexdigest()


def dfa_fingerprint(dfa: Dfa) -> str:
    """Behavioural digest: the structural fingerprint of the canonical
    minimised form.

    Behaviourally equivalent automata — same byte-level transitions,
    emissions, acceptance and invalid detection, however their states
    and groups are numbered — share a fingerprint, so they share cached
    tables.  (The digest deliberately ignores ``symbol_groups``: two
    canonical automata differing only in *which bytes* map to each group
    — a comma vs a semicolon dialect — run the very same tables, since
    tables are indexed by group id, never by byte.)
    """
    return _structural_fingerprint(canonicalize(dfa).dfa)


def _table_key(dfa: Dfa, k: int) -> tuple:
    """Cache key for ``(dfa, k)``.

    Keyed behaviourally when the automaton's transition structure *is*
    its canonical form (the pipeline's hot path under ``minimize_dfa``,
    and any hand-built automaton that happens to be minimal) — those
    tables are interchangeable across every equivalent automaton with
    the same structure.  A non-canonical automaton gets a structural
    sub-key: its tables are indexed by *its* state numbering and must
    not be handed to a structurally different equivalent automaton.
    """
    canonical = canonicalize(dfa).dfa
    structural = _structural_fingerprint(dfa)
    behavioural = _structural_fingerprint(canonical)
    if structural == behavioural:
        return (behavioural, int(k))
    return (behavioural, structural, int(k))


def get_tables(dfa: Dfa, k: int,
               metrics: MetricsRegistry = NULL_METRICS) -> StridedTables:
    """The precomposed tables for ``(dfa, k)``, built at most once.

    Thread-safe; concurrent callers of the same key may race to build,
    in which case one result wins and the others are discarded (the
    tables are immutable and interchangeable, so this is merely a little
    duplicated work, never an inconsistency).
    """
    global _hits, _misses, _evictions
    key = _table_key(dfa, k)
    with _lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache.move_to_end(key)
            _hits += 1
            if metrics.enabled:
                metrics.count("kernels.cache.hits")
            return cached
    start = time.perf_counter()
    tables = build_tables(dfa, k)
    build_seconds = time.perf_counter() - start
    with _lock:
        _misses += 1
        _cache[key] = tables
        _cache.move_to_end(key)
        while len(_cache) > MAX_CACHED_TABLES:
            _cache.popitem(last=False)
            _evictions += 1
    if metrics.enabled:
        metrics.count("kernels.cache.misses")
        metrics.observe("kernels.table_build.seconds", build_seconds)
        metrics.gauge("kernels.table.bytes", tables.nbytes)
    return tables


def get_plan(dfa: Dfa, k: int, chunk_size: int,
             metrics: MetricsRegistry = NULL_METRICS) -> KernelPlan:
    """The mixed-stride :class:`~repro.kernels.strided.KernelPlan` for
    ``(dfa, k, chunk_size)``, its per-stride tables served from (and
    shared through) this cache.

    The plan object itself is cheap (a tuple of segment offsets); only
    the tables matter, and those are cached per ``(dfa, stride)`` — so a
    k=8 parse at chunk size 31 and one at chunk size 63 share every
    table even though their segment decompositions differ.
    """
    return build_plan(dfa, k, int(chunk_size),
                      table_source=lambda d, stride:
                      get_tables(d, stride, metrics))


def cache_info() -> dict[str, int]:
    """Lifetime cache statistics of this process."""
    with _lock:
        return {
            "entries": len(_cache),
            "hits": _hits,
            "misses": _misses,
            "evictions": _evictions,
        }


def clear_cache() -> None:
    """Drop all cached tables and reset the statistics (tests)."""
    global _hits, _misses, _evictions
    with _lock:
        _cache.clear()
        _hits = _misses = _evictions = 0
