"""Phase 3b — generating typed field values (paper §3.3).

With each column's CSS and index in hand, conversion produces the columnar
output: a typed data buffer + validity bitmap per column.  The pipeline:

1. map each indexed field to its output row (dropped/rejected records map
   to no row);
2. pre-initialise the column with its default value (paper §4.3 — *Default
   values for empty strings*): fields without symbols simply never
   overwrite it, and become NULL when there is no default;
3. convert the non-empty fields — vectorised by default
   (:mod:`repro.core.vector_convert`), with scalar fallback for literals
   the vector path declines, or fully scalar when configured;
4. scatter values into rows; conversion failures clear the row's validity
   and count as *rejects* (the per-thread reject flags of Figure 5).

**Collaboration levels** (paper §3.3): fields are classified by symbol
count into thread-exclusive, block-level (above ``block_threshold``) and
device-level (above ``device_threshold``) work.  In this reproduction all
three classes produce values through the same vectorised kernels — NumPy
already is the "device-wide collaboration" — but the classification is
tracked per column (:class:`CollaborationStats`) and drives the GPU cost
model and the skew experiments (Figure 11 right).
"""

from __future__ import annotations

# parlint: hot-path -- byte-bound pipeline phase; loops need waivers

from dataclasses import dataclass

import numpy as np

from repro.columnar.buffers import ValidityBitmap
from repro.columnar.guard import protect
from repro.columnar.schema import DataType, Field
from repro.columnar.table import Column
from repro.core.css import ColumnIndex
from repro.core.options import ParseOptions
from repro.core.scalar_convert import convert_scalar
from repro.core.vector_convert import (
    match_literals,
    pack_fields,
    parse_bool_vector,
    parse_date_vector,
    parse_decimal_vector,
    parse_float_vector,
    parse_int_vector,
    parse_timestamp_vector,
)
from repro.errors import ConversionError
from repro.scan.numpy_scan import exclusive_sum

__all__ = ["CollaborationStats", "ConvertStats", "convert_column"]


@dataclass
class CollaborationStats:
    """How many fields each collaboration level handled (paper §3.3)."""

    thread_fields: int = 0
    block_fields: int = 0
    device_fields: int = 0

    @property
    def total_fields(self) -> int:
        return self.thread_fields + self.block_fields + self.device_fields

    def __add__(self, other: "CollaborationStats") -> "CollaborationStats":
        return CollaborationStats(
            self.thread_fields + other.thread_fields,
            self.block_fields + other.block_fields,
            self.device_fields + other.device_fields)


@dataclass
class ConvertStats:
    """Byte-copy accounting across one convert stage.

    ``bytes_copied`` counts the value bytes materialised into output
    buffers by copy; ``zero_copy_columns`` counts string columns whose
    value buffer is a zero-copy slice of the column CSS (the fused
    partition→convert handoff).  Surfaced as the ``convert.bytes.copied``
    and ``convert.zero_copy_columns`` metrics.
    """

    bytes_copied: int = 0
    zero_copy_columns: int = 0


def _classify_collaboration(lengths: np.ndarray,
                            options: ParseOptions) -> CollaborationStats:
    device = int(np.count_nonzero(lengths > options.device_threshold))
    block = int(np.count_nonzero(lengths > options.block_threshold)) - device
    thread = int(lengths.size) - block - device
    return CollaborationStats(thread_fields=thread, block_fields=block,
                              device_fields=device)


_ZERO_DEFAULTS = {
    DataType.BOOL: False,
    DataType.STRING: "",
}


def _effective_default(field: Field):
    """The value empty fields resolve to; ``None`` means NULL."""
    if field.default is not None:
        return field.default
    if not field.nullable:
        return _ZERO_DEFAULTS.get(field.dtype, 0)
    return None


_VECTOR_PARSERS = {
    DataType.INT8: parse_int_vector,
    DataType.INT16: parse_int_vector,
    DataType.INT32: parse_int_vector,
    DataType.INT64: parse_int_vector,
    DataType.FLOAT32: parse_float_vector,
    DataType.FLOAT64: parse_float_vector,
    DataType.BOOL: parse_bool_vector,
    DataType.DATE: parse_date_vector,
    DataType.TIMESTAMP: parse_timestamp_vector,
}


def _vector_parse(field: Field, buf: np.ndarray, offsets: np.ndarray,
                  lengths: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    # parlint: borrowed=buf -- may be a CSS slice on the fused path
    """Run the type-appropriate vector parser."""
    dtype = field.dtype
    if dtype is DataType.DECIMAL:
        return parse_decimal_vector(buf, offsets, lengths,
                                    field.decimal_scale)
    parser = _VECTOR_PARSERS[dtype]
    if dtype in (DataType.INT8, DataType.INT16, DataType.INT32,
                 DataType.INT64, DataType.FLOAT32, DataType.FLOAT64):
        return parser(buf, offsets, lengths, dtype)
    return parser(buf, offsets, lengths)


def _scalar_parse_into(field: Field, buf: np.ndarray, offsets: np.ndarray,
                       lengths: np.ndarray, which: np.ndarray,
                       values: np.ndarray, ok: np.ndarray) -> None:
    # parlint: borrowed=buf -- values/ok are the caller's owned outputs
    """Scalar-parse the fields selected by ``which`` into values/ok."""
    for i in np.flatnonzero(which):  # parlint: disable=PPR401 -- scalar fallback for fields the vector parsers decline; off the default path
        lo = int(offsets[i])
        text = buf[lo:lo + int(lengths[i])].tobytes()
        value, good = convert_scalar(field, text)
        ok[i] = good
        if good:
            values[i] = value


def _contiguous(starts: np.ndarray, lengths: np.ndarray) -> bool:
    """Whether the fields tile ``[starts[0], starts[-1] + lengths[-1])``."""
    return bool(np.array_equal(starts[1:], starts[:-1] + lengths[:-1]))


def convert_column(field: Field, css: np.ndarray, index: ColumnIndex,
                   row_of_record: np.ndarray, num_rows: int,
                   options: ParseOptions,
                   convert_stats: ConvertStats | None = None
                   ) -> tuple[Column, CollaborationStats]:
    # parlint: borrowed=css -- a view of the partition's shared CSS
    """Convert one column's CSS into a typed :class:`Column`.

    Parameters
    ----------
    field:
        Schema field (type, default, nullability, decimal scale).
    css:
        The column's concatenated symbol string (uint8).
    index:
        Field index into ``css``.
    row_of_record:
        Maps the index's record ids to output rows (-1 = dropped record).
    num_rows:
        Output row count.
    options:
        Parse options (vectorised vs scalar conversion, thresholds,
        strictness, fused vs copying buffer assembly).
    convert_stats:
        Optional accumulator for byte-copy accounting (the convert
        stage's ``convert.bytes.copied`` / ``convert.zero_copy_columns``
        metrics).
    """
    records = index.records
    in_range = (records >= 0) & (records < len(row_of_record))
    rows = np.where(in_range, row_of_record[np.clip(records, 0,
                    max(0, len(row_of_record) - 1))], np.int64(-1))
    keep = (rows >= 0) & (index.lengths > 0)
    starts = index.offsets[keep]
    lengths = index.lengths[keep]
    out_rows = rows[keep]
    stats = _classify_collaboration(lengths, options)

    # NULL literals: matching fields become NULL before conversion and
    # never count as rejects (paper §3.3, "identifying NULLs").
    null_rows = np.empty(0, dtype=np.int64)
    if options.null_literals and lengths.size:
        literal_bytes = tuple(lit.encode("utf-8")
                              for lit in options.null_literals)
        probe_buf, probe_offsets = pack_fields(css, starts, lengths)
        nulls = match_literals(probe_buf, probe_offsets, lengths,
                               literal_bytes)
        null_rows = out_rows[nulls]
        starts = starts[~nulls]
        lengths = lengths[~nulls]
        out_rows = out_rows[~nulls]

    default = _effective_default(field)

    # The fused paths need the output rows in order (so per-row cumsum
    # reproduces the per-field order) and the fields tiling the CSS (so a
    # CSS slice is the value buffer / a parse input).  Both hold on the
    # record-tagged partition handoff unless NULL literals punched holes.
    rows_ascending = bool(np.all(out_rows[1:] > out_rows[:-1]))
    fields_tile_css = lengths.size > 0 and _contiguous(starts, lengths)

    if field.dtype is DataType.STRING:
        column = None
        if options.fused_convert and rows_ascending and fields_tile_css:
            column = _fused_string_column(field, css, starts, lengths,
                                          out_rows, num_rows, default,
                                          null_rows)
        if column is not None:
            if convert_stats is not None:
                convert_stats.zero_copy_columns += 1
        else:
            column = _convert_string_column(field, css, starts, lengths,
                                            out_rows, num_rows, default,
                                            null_rows)
            if convert_stats is not None:
                convert_stats.bytes_copied += int(column.data.nbytes)
        return column, stats

    n_fields = len(lengths)
    # Fully-populated fixed-width column: every output row has exactly
    # one field, in order — the parsed value vector *is* the data buffer
    # and the parse-ok mask *is* the validity; no default pre-fill, no
    # scatter.  (NULL-literal holes break full coverage, so they imply
    # the scatter path.)
    fused_fixed = (options.fused_convert and rows_ascending
                   and n_fields == num_rows and num_rows > 0)
    if not fused_fixed:
        data = np.zeros(num_rows, dtype=field.dtype.numpy_dtype)
        if default is None:
            validity = np.zeros(num_rows, dtype=bool)
        else:
            data[:] = default
            validity = np.ones(num_rows, dtype=bool)

    if options.fused_convert and fields_tile_css:
        # Fields already packed: parse straight off the CSS slice.
        base = int(starts[0])
        buf = css[base:int(starts[-1] + lengths[-1])]
        packed_offsets = starts - base
    else:
        buf, packed_offsets = pack_fields(css, starts, lengths)
    if n_fields:
        if options.vectorized_conversion:
            values, ok, fallback = _vector_parse(field, buf,
                                                 packed_offsets, lengths)
            values = values.astype(field.dtype.numpy_dtype, copy=False)
            if np.any(fallback):
                values = values.copy()
                ok = ok.copy()
                _scalar_parse_into(field, buf, packed_offsets, lengths,
                                   fallback, values, ok)
        else:
            values = np.zeros(n_fields, dtype=field.dtype.numpy_dtype)
            ok = np.zeros(n_fields, dtype=bool)
            _scalar_parse_into(field, buf, packed_offsets, lengths,
                               np.ones(n_fields, dtype=bool), values, ok)
        rejects = int(np.count_nonzero(~ok))
        if rejects and options.strict:
            first = int(np.flatnonzero(~ok)[0])
            lo = int(packed_offsets[first])
            text = buf[lo:lo + int(lengths[first])].tobytes()
            raise ConversionError(
                f"cannot convert {text!r} to {field.dtype.value} "
                f"in column {field.name!r}",
                column=None, record=int(out_rows[first]),
                text=text.decode("utf-8", errors="replace"))
        if fused_fixed:
            # The parse result is adopted as the column's data buffer
            # zero-copy; under the guard it leaves this frame read-only.
            data = protect(values)
            validity = ok
        else:
            data[out_rows[ok]] = values[ok]
            validity[out_rows[ok]] = True
            validity[out_rows[~ok]] = False
            if convert_stats is not None:
                convert_stats.bytes_copied += int(data.nbytes)
    else:
        rejects = 0
        if convert_stats is not None and not fused_fixed:
            convert_stats.bytes_copied += int(data.nbytes)
    validity[null_rows] = False

    return Column(field, data, ValidityBitmap.from_mask(validity),
                  rejects=rejects), stats


def _fused_string_column(field: Field, css: np.ndarray,
                         starts: np.ndarray, lengths: np.ndarray,
                         out_rows: np.ndarray, num_rows: int,
                         default,
                         null_rows: np.ndarray) -> Column | None:
    # parlint: borrowed=css returns-borrowed -- the Column wraps a CSS slice
    """Zero-copy string column: the value buffer is a slice of the CSS.

    Preconditions checked by the caller: fields tile a contiguous CSS
    range and output rows are ascending — then the CSS slice *is* the
    Arrow value buffer byte-for-byte (same field order, no terminators in
    between), and only the per-row offsets need computing (rows without
    a field get zero length: NULL or empty-default).  Returns ``None``
    when a non-empty default would have to materialise bytes the CSS
    does not contain.
    """
    default_bytes = (default.encode("utf-8")
                     if isinstance(default, str) else None)
    if default_bytes:
        return None
    values = protect(css[int(starts[0]):int(starts[-1] + lengths[-1])])
    row_lengths = np.zeros(num_rows, dtype=np.int64)
    row_lengths[out_rows] = lengths
    offsets = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(row_lengths, out=offsets[1:])
    if default is None:
        validity = np.zeros(num_rows, dtype=bool)
        validity[out_rows] = True
    else:
        validity = np.ones(num_rows, dtype=bool)
    validity[null_rows] = False
    return Column(field, values, ValidityBitmap.from_mask(validity),
                  offsets=offsets)


def _convert_string_column(field: Field, css: np.ndarray,
                           starts: np.ndarray, lengths: np.ndarray,
                           out_rows: np.ndarray, num_rows: int,
                           default,
                           null_rows: np.ndarray | None = None) -> Column:
    # parlint: borrowed=css -- read-only source; data/offsets are fresh
    """Assemble a variable-width column: offsets buffer + data buffer."""
    if null_rows is None:
        null_rows = np.empty(0, dtype=np.int64)
    default_bytes = (default.encode("utf-8")
                     if isinstance(default, str) else None)
    row_lengths = np.zeros(num_rows, dtype=np.int64)
    if default_bytes:
        row_lengths[:] = len(default_bytes)
    row_lengths[out_rows] = lengths
    row_lengths[null_rows] = 0
    offsets = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(row_lengths, out=offsets[1:])

    data = np.zeros(int(offsets[-1]), dtype=np.uint8)
    if default_bytes:
        pattern = np.frombuffer(default_bytes, dtype=np.uint8)
        filled = np.ones(num_rows, dtype=bool)
        filled[out_rows] = False
        filled[null_rows] = False
        fill_rows = np.flatnonzero(filled)
        if fill_rows.size:
            # One scatter for all defaulted rows: each row's destination
            # window is its offset plus 0..len(pattern)-1.
            dst = offsets[fill_rows, None] + np.arange(
                len(default_bytes), dtype=np.int64)
            data[dst] = pattern
    if lengths.size:
        total = int(lengths.sum())
        src = (np.arange(total, dtype=np.int64)
               - np.repeat(exclusive_sum(lengths), lengths)
               + np.repeat(starts, lengths))
        dst = (np.arange(total, dtype=np.int64)
               - np.repeat(exclusive_sum(lengths), lengths)
               + np.repeat(offsets[out_rows], lengths))
        data[dst] = css[src]

    if default is None:
        validity = np.zeros(num_rows, dtype=bool)
        validity[out_rows] = True
    else:
        validity = np.ones(num_rows, dtype=bool)
    validity[null_rows] = False
    return Column(field, data, ValidityBitmap.from_mask(validity),
                  offsets=offsets)
