"""The ParPaRaw core algorithm (paper §3-§4).

The pipeline mirrors the paper's processing steps, and the module layout
follows them:

1. :mod:`~repro.core.chunking` — split the input into equal-size chunks
   (one per logical thread), including variable-length symbol boundary
   handling (§4.2);
2. :mod:`~repro.core.context` — per-chunk state-transition vectors and the
   composition scan that yields every chunk's parsing context (§3.1);
3. :mod:`~repro.core.tagging` / :mod:`~repro.core.offsets` — delimiter
   bitmap indexes, record/column offsets via the rel/abs operator scan, and
   per-symbol record/column tags (§3.2);
4. :mod:`~repro.core.partition` / :mod:`~repro.core.css` — stable
   radix-sort partition by column, concatenated symbol strings, and CSS
   index generation, in all three tagging modes (§3.3, §4.1);
5. :mod:`~repro.core.conversion` — typed field-value generation with
   thread/block/device collaboration levels (§3.3);
6. capabilities (§4.3): :mod:`~repro.core.validation`,
   :mod:`~repro.core.selection`, :mod:`~repro.core.typeinfer`.

:mod:`~repro.core.stages` expresses the steps as an explicit stage
pipeline (``prune -> chunk -> stv -> scan -> tag -> validate ->
partition -> convert``), scheduled by a pluggable executor from
:mod:`repro.exec`; :class:`~repro.core.parser.ParPaRawParser` is the
one-call facade over it and the library's main entry point.
"""

from repro.core.options import ParseOptions, PartitionStrategy, \
    TaggingMode, TaggingImpl
from repro.core.parser import ParPaRawParser, parse_bytes
from repro.core.result import ParseResult
from repro.core.stages import StagePipeline, default_pipeline

__all__ = [
    "ParseOptions",
    "TaggingMode",
    "TaggingImpl",
    "PartitionStrategy",
    "ParPaRawParser",
    "parse_bytes",
    "ParseResult",
    "StagePipeline",
    "default_pipeline",
]
