"""Phase 1 — determining every chunk's parsing context (paper §3.1).

Each chunk (logical thread) simulates one DFA instance per state, recording
where each hypothetical start state ends up: its *state-transition vector*
(STV).  The exclusive prefix scan of the STVs under composition, seeded
with the identity, turns local knowledge into global: entry ``i`` of chunk
``c``'s scanned vector is the state the sequential automaton would be in
when entering chunk ``c``, had the whole input started in state ``i``.
Indexing with the DFA's real start state gives every chunk its true start
state — no sequential pass, no constraint on the input.

The batched STV computation iterates over the *chunk-local* byte positions
(a loop of ``chunk_size`` steps) while operating on all chunks at once —
the NumPy translation of "every thread reads its chunk in lock step".
"""

from __future__ import annotations

# parlint: hot-path -- byte-bound pipeline phase; loops need waivers

import numpy as np

from repro.dfa.automaton import Dfa
from repro.scan.numpy_scan import scan_transition_vectors

__all__ = [
    "compute_transition_vectors",
    "chunk_start_states",
    "determine_contexts",
]


def compute_transition_vectors(groups: np.ndarray, dfa: Dfa) -> np.ndarray:
    """STVs for all chunks: ``(num_chunks, num_states)`` uint8.

    ``groups`` is the ``(num_chunks, chunk_size)`` symbol-group matrix
    (padding included).  Row ``c`` of the result maps a start state to the
    state after chunk ``c`` — the per-thread phase-1 output.
    """
    if groups.ndim != 2:
        raise ValueError("expected a (num_chunks, chunk_size) matrix")
    num_chunks, chunk_size = groups.shape
    transitions = dfa.transitions  # (num_groups, num_states)
    vectors = np.broadcast_to(
        np.arange(dfa.num_states, dtype=np.uint8),
        (num_chunks, dfa.num_states)).copy()
    for j in range(chunk_size):  # parlint: disable=PPR401 -- per-thread serial depth of paper alg. 1; vectorised over the num_chunks axis
        # All threads advance their |S| DFA instances by one symbol.
        vectors = transitions[groups[:, j, None], vectors]
    return vectors


def chunk_start_states(vectors: np.ndarray, dfa: Dfa) -> np.ndarray:
    """True start state of every chunk, via the composition scan.

    Returns ``(num_chunks,)`` uint8; entry ``c`` is the DFA state entering
    chunk ``c`` when the sequential automaton starts the whole input in
    ``dfa.start_state``.
    """
    scanned = scan_transition_vectors(vectors, exclusive=True)
    return scanned[:, dfa.start_state].astype(np.uint8)


def determine_contexts(groups: np.ndarray,
                       dfa: Dfa) -> tuple[np.ndarray, np.ndarray]:
    """Phase 1 in one call: (STVs, per-chunk start states)."""
    vectors = compute_transition_vectors(groups, dfa)
    return vectors, chunk_start_states(vectors, dfa)
