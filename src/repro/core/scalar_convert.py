"""Scalar (per-field) reference converters.

These are the readable ground-truth implementations of field-value
generation: one Python function per data type, converting a single field's
bytes to a value or signalling a reject.  The vectorised converters in
:mod:`repro.core.vector_convert` are property tested against these, and the
pipeline falls back to them for rare literals the vectorised paths decline
(e.g. floats with exponents of unusual shape, >18-digit integers).

The conversion contract (shared by both implementations):

* returns ``(value, True)`` on success, ``(None, False)`` on reject;
* empty fields never reach converters (the pipeline maps them to the
  column default / NULL first — paper §4.3);
* no locale handling: ``.`` is the decimal separator, ASCII digits only.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.columnar.schema import DataType, Field

__all__ = [
    "convert_scalar",
    "parse_int_scalar",
    "parse_float_scalar",
    "parse_decimal_scalar",
    "parse_bool_scalar",
    "parse_date_scalar",
    "parse_timestamp_scalar",
    "days_from_civil",
    "INT64_MIN",
    "INT64_MAX",
]

INT64_MIN = -(2 ** 63)
INT64_MAX = 2 ** 63 - 1

_INT_BOUNDS = {
    DataType.INT8: (-(2 ** 7), 2 ** 7 - 1),
    DataType.INT16: (-(2 ** 15), 2 ** 15 - 1),
    DataType.INT32: (-(2 ** 31), 2 ** 31 - 1),
    DataType.INT64: (INT64_MIN, INT64_MAX),
}

_TRUE_LITERALS = {b"1", b"t", b"true", b"T", b"TRUE", b"True"}
_FALSE_LITERALS = {b"0", b"f", b"false", b"F", b"FALSE", b"False"}


def days_from_civil(year: int, month: int, day: int) -> int:
    """Days since the Unix epoch for a proleptic Gregorian civil date.

    Howard Hinnant's era-based algorithm; exact for all representable
    dates and branch-free enough to vectorise verbatim.

    >>> days_from_civil(1970, 1, 1)
    0
    >>> days_from_civil(2018, 3, 1)
    17591
    """
    adjusted_year = year - (1 if month <= 2 else 0)
    era = adjusted_year // 400
    year_of_era = adjusted_year - era * 400
    month_shifted = month + (-3 if month > 2 else 9)
    day_of_year = (153 * month_shifted + 2) // 5 + day - 1
    day_of_era = (year_of_era * 365 + year_of_era // 4
                  - year_of_era // 100 + day_of_year)
    return era * 146097 + day_of_era - 719468


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _valid_ymd(year: int, month: int, day: int) -> bool:
    if not 1 <= month <= 12 or day < 1:
        return False
    limit = _DAYS_IN_MONTH[month - 1]
    if month == 2 and _is_leap(year):
        limit = 29
    return day <= limit


def parse_int_scalar(text: bytes,
                     dtype: DataType = DataType.INT64
                     ) -> tuple[int | None, bool]:
    """Parse a signed decimal integer with range checking."""
    if not text:
        return None, False
    sign = 1
    digits = text
    if text[0:1] in (b"-", b"+"):
        sign = -1 if text[0:1] == b"-" else 1
        digits = text[1:]
    if not digits or not digits.isdigit():
        return None, False
    value = sign * int(digits)
    lo, hi = _INT_BOUNDS[dtype]
    if not lo <= value <= hi:
        return None, False
    return value, True


def parse_float_scalar(text: bytes) -> tuple[float | None, bool]:
    """Parse a decimal floating-point literal.

    Accepts ``[+-]digits[.digits][eE[+-]digits]`` plus the special
    literal ``nan`` (any case).  Rejects everything Python's ``float``
    would accept beyond that — underscores, hex floats, leading/trailing
    whitespace, and the spelled-out infinities ``inf``/``infinity``,
    which are Python-isms no CSV numeric grammar admits.
    """
    if not text:
        return None, False
    lowered = text.lower()
    body = lowered[1:] if lowered[:1] in (b"-", b"+") else lowered
    if body == b"nan":
        return float(lowered), True
    allowed = set(b"0123456789.e+-")
    if not body or any(c not in allowed for c in lowered):
        return None, False
    try:
        value = float(text)
    except ValueError:
        return None, False
    return value, True


def parse_decimal_scalar(text: bytes,
                         scale: int) -> tuple[int | None, bool]:
    """Parse a fixed-scale decimal into a scaled int64.

    ``"199.99"`` at scale 2 becomes ``19999``.  Rejects more fractional
    digits than the scale allows, and overflow.
    """
    if not text:
        return None, False
    sign = 1
    body = text
    if body[0:1] in (b"-", b"+"):
        sign = -1 if body[0:1] == b"-" else 1
        body = body[1:]
    if not body:
        return None, False
    integer_part, dot, fraction_part = body.partition(b".")
    if dot and not fraction_part:
        return None, False
    if not integer_part and not fraction_part:
        return None, False
    if integer_part and not integer_part.isdigit():
        return None, False
    if fraction_part and not fraction_part.isdigit():
        return None, False
    if len(fraction_part) > scale:
        return None, False
    digits = (integer_part or b"0") + fraction_part.ljust(scale, b"0")
    value = sign * int(digits)
    if not INT64_MIN <= value <= INT64_MAX:
        return None, False
    return value, True


def parse_bool_scalar(text: bytes) -> tuple[bool | None, bool]:
    """Parse a boolean literal (1/0, t/f, true/false, any common case)."""
    if text in _TRUE_LITERALS:
        return True, True
    if text in _FALSE_LITERALS:
        return False, True
    return None, False


def parse_date_scalar(text: bytes) -> tuple[int | None, bool]:
    """Parse ``YYYY-MM-DD`` into days since the Unix epoch."""
    if len(text) != 10 or text[4:5] != b"-" or text[7:8] != b"-":
        return None, False
    year_s, month_s, day_s = text[:4], text[5:7], text[8:10]
    if not (year_s.isdigit() and month_s.isdigit() and day_s.isdigit()):
        return None, False
    year, month, day = int(year_s), int(month_s), int(day_s)
    if not _valid_ymd(year, month, day):
        return None, False
    return days_from_civil(year, month, day), True


def parse_timestamp_scalar(text: bytes) -> tuple[int | None, bool]:
    """Parse ``YYYY-MM-DD HH:MM:SS`` into seconds since the Unix epoch."""
    if len(text) != 19 or text[10:11] != b" " \
            or text[13:14] != b":" or text[16:17] != b":":
        return None, False
    date_value, ok = parse_date_scalar(text[:10])
    if not ok:
        return None, False
    hour_s, minute_s, second_s = text[11:13], text[14:16], text[17:19]
    if not (hour_s.isdigit() and minute_s.isdigit() and second_s.isdigit()):
        return None, False
    hour, minute, second = int(hour_s), int(minute_s), int(second_s)
    if hour > 23 or minute > 59 or second > 59:
        return None, False
    assert date_value is not None
    return date_value * 86400 + hour * 3600 + minute * 60 + second, True


def convert_scalar(field: Field, text: bytes) -> tuple[Any, bool]:
    """Dispatch one field's bytes through the scalar converters."""
    dtype = field.dtype
    if dtype is DataType.STRING:
        return text.decode("utf-8", errors="replace"), True
    if dtype in _INT_BOUNDS:
        return parse_int_scalar(text, dtype)
    if dtype in (DataType.FLOAT32, DataType.FLOAT64):
        value, ok = parse_float_scalar(text)
        return value, ok
    if dtype is DataType.DECIMAL:
        return parse_decimal_scalar(text, field.decimal_scale)
    if dtype is DataType.BOOL:
        return parse_bool_scalar(text)
    if dtype is DataType.DATE:
        return parse_date_scalar(text)
    if dtype is DataType.TIMESTAMP:
        return parse_timestamp_scalar(text)
    raise NotImplementedError(f"no scalar converter for {dtype}")
