"""Numeric type inference (paper §4.3).

ParPaRaw infers a column's type *after* partitioning, when the column's
symbols lie cohesively in memory: every field determines the minimum
numeric type able to back its value, and a parallel max-reduction over the
widening order yields the column type.  The paper covers numeric types and
notes temporal types as an extension — this reproduction implements both
(INT8 → INT16 → INT32 → INT64 → FLOAT64, plus BOOL/DATE/TIMESTAMP
detection), falling back to STRING when any field fits nothing narrower.
"""

from __future__ import annotations

import numpy as np

from repro.columnar.schema import DataType
from repro.core.css import ColumnIndex
from repro.core.vector_convert import (
    pack_fields,
    parse_bool_vector,
    parse_date_vector,
    parse_float_vector,
    parse_int_vector,
    parse_timestamp_vector,
)

__all__ = ["infer_column_type", "WIDENING_ORDER"]

#: Widening lattice: the inferred type is the max over per-field minima.
WIDENING_ORDER = (
    DataType.BOOL,
    DataType.INT8,
    DataType.INT16,
    DataType.INT32,
    DataType.INT64,
    DataType.FLOAT64,
    DataType.DATE,
    DataType.TIMESTAMP,
    DataType.STRING,
)

_RANK = {dtype: rank for rank, dtype in enumerate(WIDENING_ORDER)}

_INT8_MAX = 2 ** 7 - 1
_INT16_MAX = 2 ** 15 - 1
_INT32_MAX = 2 ** 31 - 1


def _minimum_int_rank(values: np.ndarray) -> np.ndarray:
    """Per-value rank of the narrowest integer type that holds it."""
    ranks = np.full(values.size, _RANK[DataType.INT64], dtype=np.int64)
    ranks[(values >= -(_INT32_MAX + 1)) & (values <= _INT32_MAX)] = \
        _RANK[DataType.INT32]
    ranks[(values >= -(_INT16_MAX + 1)) & (values <= _INT16_MAX)] = \
        _RANK[DataType.INT16]
    ranks[(values >= -(_INT8_MAX + 1)) & (values <= _INT8_MAX)] = \
        _RANK[DataType.INT8]
    return ranks


def infer_column_type(css: np.ndarray, index: ColumnIndex) -> DataType:
    """Infer one column's type from its CSS and field index.

    Each non-empty field is classified bottom-up (bool < ints < float <
    temporal < string); empty fields are neutral.  The column type is the
    maximum classification — the paper's reduction over the minimum
    per-field type.
    """
    keep = index.lengths > 0
    starts = index.offsets[keep]
    lengths = index.lengths[keep]
    if lengths.size == 0:
        return DataType.STRING
    buf, offsets = pack_fields(css, starts, lengths)
    n = lengths.size

    ranks = np.full(n, _RANK[DataType.STRING], dtype=np.int64)

    # Temporal shapes are unambiguous (fixed width with separators), so
    # classify them first; then numerics; bools win only over pure
    # integer-looking 0/1 — match the narrowest.
    ts_values, ts_ok, _ = parse_timestamp_vector(buf, offsets, lengths)
    ranks[ts_ok] = _RANK[DataType.TIMESTAMP]
    date_values, date_ok, _ = parse_date_vector(buf, offsets, lengths)
    ranks[date_ok] = _RANK[DataType.DATE]

    float_values, float_ok, float_fb = parse_float_vector(
        buf, offsets, lengths, DataType.FLOAT64)
    # Fallback-flagged fields (exponents, nan, >18 digits) still count
    # as floats for inference purposes when they are float-shaped; resolve
    # the few of them scalar-ly (which also rejects inf/infinity, keeping
    # inference aligned with the strict conversion grammar).
    if np.any(float_fb):
        from repro.core.scalar_convert import parse_float_scalar
        for i in np.flatnonzero(float_fb):
            lo = int(offsets[i])
            text = buf[lo:lo + int(lengths[i])].tobytes()
            _, ok = parse_float_scalar(text)
            float_ok = float_ok.copy()
            float_ok[i] = ok
    ranks[float_ok] = np.minimum(ranks[float_ok], _RANK[DataType.FLOAT64])

    int_values, int_ok, _ = parse_int_vector(buf, offsets, lengths,
                                             DataType.INT64)
    if np.any(int_ok):
        int_ranks = _minimum_int_rank(int_values[int_ok])
        ranks[int_ok] = np.minimum(ranks[int_ok], int_ranks)

    bool_values, bool_ok, _ = parse_bool_vector(buf, offsets, lengths)
    ranks[bool_ok] = np.minimum(ranks[bool_ok], _RANK[DataType.BOOL])

    top = WIDENING_ORDER[int(ranks.max())]
    # The lattice is linear only within the numeric family; a temporal
    # verdict requires EVERY field to parse as that temporal type (a "5"
    # is never a date), otherwise the column falls back to STRING.
    if top is DataType.TIMESTAMP:
        return top if bool(ts_ok.all()) else DataType.STRING
    if top is DataType.DATE:
        return top if bool(date_ok.all()) else DataType.STRING
    return top
