"""The parsing pipeline as explicit, individually runnable stages.

The monolithic ``ParPaRawParser.parse()`` is decomposed here into the
paper's processing steps, each a :class:`Stage` object with a declared
input/output payload dataclass:

====================  ==================  ==================  ===========
stage                 input               output              timer step
====================  ==================  ==================  ===========
``prune``    (§4.3)   :class:`RawInput`   :class:`RawInput`   ``prune``
``chunk``    (§3)     :class:`RawInput`   :class:`ChunkedInput`      —
``stv``      (§3.1)   :class:`ChunkedInput`  :class:`ChunkVectors`  ``parse``
``scan``     (§3.1)   :class:`ChunkVectors`  :class:`ChunkContexts` ``scan``
``tag``      (§3.1-2) :class:`ChunkContexts` :class:`TaggedInput`   ``tag``
``validate`` (§4.3)   :class:`TaggedInput`   :class:`ValidatedInput`    —
``partition``(§3.3)   :class:`ValidatedInput` :class:`PartitionedInput` ``partition``
``convert``  (§3.3)   :class:`PartitionedInput` :class:`ConvertedOutput` ``convert``
====================  ==================  ==================  ===========

The *timer step* column is the paper's step vocabulary (Figures 9/11);
:class:`StagePipeline` times each stage under that name, so the measured
breakdown of a staged parse is indistinguishable from the old monolith's.

Stages are pure with respect to the :class:`PipelineContext` (options,
automaton, timer): running the same stage twice on the same payload gives
the same result.  This is what makes execution *pluggable*: the
:mod:`repro.exec` executors run the very same stage objects — serially, or
sharded across a process pool with scan-based shard combination.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.columnar.schema import DataType, Field, Schema
from repro.columnar.table import Table
from repro.core.chunking import Chunking, chunk_groups_canonical
from repro.core.context import chunk_start_states, compute_transition_vectors
from repro.core.conversion import CollaborationStats, ConvertStats, \
    convert_column
from repro.core.options import (
    ColumnCountPolicy,
    ParseOptions,
    PartitionStrategy,
    TaggingImpl,
    TaggingMode,
)
from repro.core.partition import PartitionResult, partition_by_column, \
    partition_field_runs
from repro.core.selection import prune_rows, row_mapping, selected_column_mask
from repro.core.tagging import TagResult, compute_emissions, tag_chunked, \
    tag_global
from repro.core.tagging_modes import build_keep_mask, column_indexes, \
    prepare_css
from repro.core.typeinfer import infer_column_type
from repro.core.validation import ValidationReport, apply_column_policy, \
    validate_input
from repro.dfa.automaton import Dfa
from repro.dfa.minimize import Minimization
from repro.errors import ParseError
from repro.kernels import (
    compute_emissions_plan,
    compute_transition_vectors_plan,
    get_plan,
    pack_plan,
    resolve_stride,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.utils.timing import StepTimer

__all__ = [
    "PipelineContext",
    "RawInput",
    "ChunkedInput",
    "ChunkVectors",
    "ChunkContexts",
    "TaggedInput",
    "ValidatedInput",
    "PartitionedInput",
    "ConvertedOutput",
    "Stage",
    "PruneStage",
    "ChunkStage",
    "StvStage",
    "ScanStage",
    "TagStage",
    "ValidateStage",
    "PartitionStage",
    "ConvertStage",
    "StagePipeline",
    "default_pipeline",
    "as_input_array",
]


# -- context -----------------------------------------------------------------

@dataclass
class PipelineContext:
    """Everything a stage may read besides its payload."""

    #: The options the parse runs with.
    options: ParseOptions
    #: The resolved (unpadded) automaton.
    dfa: Dfa
    #: Accumulates the per-step wall-clock breakdown.
    timer: StepTimer
    #: Span tracer; the shared no-op unless observability is requested.
    tracer: Tracer = NULL_TRACER
    #: Metrics registry; the shared no-op unless requested.
    metrics: MetricsRegistry = NULL_METRICS


# -- stage payloads ----------------------------------------------------------

@dataclass
class RawInput:
    """The parse input as raw bytes (possibly already row-pruned)."""

    #: ``(n,)`` uint8 input bytes.
    raw: np.ndarray
    #: Size of the *original* input, before row pruning (for rates).
    input_bytes: int


@dataclass
class ChunkedInput(RawInput):
    """The input cut into the equal-size chunk grid of §3."""

    #: ``(num_chunks, chunk_size)`` symbol-group matrix (padded).
    groups: np.ndarray
    #: Grid geometry.
    chunking: Chunking
    #: The automaton extended with the padding group.  When
    #: ``minimize_dfa`` is on this is the *canonical minimised* automaton
    #: (plus padding group) and the chunk grid holds canonical group ids.
    padded_dfa: Dfa
    #: The minimisation that produced the canonical automaton — carries
    #: the maps back to the source state space; ``None`` when
    #: ``minimize_dfa`` is off.
    canon: Minimization | None = field(default=None, kw_only=True)


@dataclass
class ChunkVectors(ChunkedInput):
    """Chunked input plus each chunk's state-transition vector (§3.1)."""

    #: ``(num_chunks, num_states)`` uint8 STVs.
    vectors: np.ndarray
    #: Packed k-gram indexes keyed by stride (one matrix per distinct
    #: segment width of the kernel plan), cached by :class:`StvStage` so
    #: :class:`TagStage` reuses the packing pass of the strided kernels;
    #: ``None`` on the unit-stride path.
    packed_kgrams: dict[int, np.ndarray] | None = \
        field(default=None, kw_only=True)


@dataclass
class ChunkContexts(ChunkVectors):
    """Chunk vectors plus every chunk's true start state (post-scan)."""

    #: ``(num_chunks,)`` uint8 start states.
    start_states: np.ndarray


@dataclass
class TaggedInput(RawInput):
    """The input with every symbol classified and tagged (§3.1-§3.2).

    Deliberately grid-free: a sharded executor produces this payload by
    merging per-shard tag results, without ever materialising a global
    chunk grid.
    """

    #: Per-symbol classification and record/column tags.
    tags: TagResult
    #: First byte offset at which the automaton sat in the INV sink.
    invalid_position: int | None


@dataclass
class ValidatedInput(TaggedInput):
    """Tagged input after validation, policies and selection (§4.3)."""

    #: Format/column-count findings.
    report: ValidationReport
    #: Output schema, or ``None`` when it is inferred during conversion.
    schema: Schema | None
    #: Column count (declared or inferred).
    num_columns: int
    #: ``(num_columns,)`` bool — columns to materialise.
    column_mask: np.ndarray
    #: ``(num_records,)`` bool — records producing an output row.
    valid_records: np.ndarray
    #: ``(num_records,)`` int64 — dense output row per record (-1 dropped).
    rows_of_record: np.ndarray
    #: Output row count.
    num_rows: int
    #: Records dropped by policy or the invalid tail.
    rejected_records: int
    #: Input extended with the virtual trailing record delimiter.
    data_ext: np.ndarray
    #: Per-position tags over the extended input.
    col_ids: np.ndarray
    rec_ids: np.ndarray
    data_mask: np.ndarray
    delim_mask: np.ndarray
    #: ``(n_ext,)`` bool — positions entering the partition.
    keep: np.ndarray
    #: Ascending delimiter positions over the extended input (including
    #: the virtual trailing delimiter), threaded through from the
    #: tagging stage when it materialised them; ``None`` on the
    #: paper-faithful chunked path.  Column tags are constant between
    #: consecutive entries — the run structure that licenses the
    #: field-run partition strategy.
    delim_positions: np.ndarray | None


@dataclass
class PartitionedInput(ValidatedInput):
    """Validated input with symbols partitioned into per-column CSSs."""

    #: The stable column partition.
    part: PartitionResult
    #: CSS after mode-specific post-processing (§4.1).
    css: np.ndarray
    #: CSS positions holding field terminators.
    aux_delims: np.ndarray


@dataclass
class ConvertedOutput:
    """Final stage output: everything a ParseResult is assembled from."""

    table: Table
    collaboration: CollaborationStats
    report: ValidationReport
    num_records: int
    num_rows: int
    rejected_records: int
    input_bytes: int
    #: Byte-copy accounting of the convert stage (fused-path telemetry).
    convert_stats: ConvertStats = field(default_factory=ConvertStats)


def as_input_array(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    # parlint: returns-borrowed -- frombuffer view of the caller's bytes
    """Coerce parser input to the uint8 array the pipeline operates on."""
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            raise ParseError("input array must be uint8")
        return data
    return np.frombuffer(bytes(data), dtype=np.uint8)


# -- stages ------------------------------------------------------------------

class Stage:
    """One named phase of the parsing pipeline.

    Subclasses declare their payload contract (``input_type`` /
    ``output_type``) and the paper step name their wall-clock time is
    credited to (``timer_step``; ``None`` = untimed, exactly as in the
    monolithic parser).
    """

    name: ClassVar[str]
    timer_step: ClassVar[str | None] = None
    input_type: ClassVar[type] = RawInput
    output_type: ClassVar[type] = RawInput

    def applies(self, ctx: PipelineContext, payload) -> bool:
        """Whether the stage does any work for this parse (default: yes).

        An inapplicable stage is skipped entirely — it neither runs nor
        records a timer entry (the monolith only timed ``prune`` when rows
        were actually pruned).
        """
        return True

    def run(self, ctx: PipelineContext, payload):
        raise NotImplementedError

    def record_metrics(self, metrics: MetricsRegistry, payload) -> None:
        """Credit this stage's output to the metrics registry.

        Called by :meth:`StagePipeline.run_stage` with the stage's output
        payload, only when metrics are enabled.  Default: nothing.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PruneStage(Stage):
    """Remove skipped physical rows in an initial pass (§4.3)."""

    name = "prune"
    timer_step = "prune"
    input_type = RawInput
    output_type = RawInput

    def applies(self, ctx, payload) -> bool:
        return bool(ctx.options.skip_rows)

    def run(self, ctx, payload: RawInput) -> RawInput:
        raw = prune_rows(payload.raw, ctx.options.skip_rows,
                         ctx.options.dialect.record_delimiter_byte)
        return RawInput(raw=raw, input_bytes=payload.input_bytes)


class ChunkStage(Stage):
    """Cut the input into the chunk grid, one chunk per logical thread.

    With ``ParseOptions.minimize_dfa`` (the default) the grid is built
    over the canonical minimised automaton, so every downstream sweep —
    unit-stride or strided — runs in the smallest equivalent state/group
    space; :class:`TagStage` maps the final state back to the source
    automaton before validation.
    """

    name = "chunk"
    timer_step = None
    input_type = RawInput
    output_type = ChunkedInput

    def run(self, ctx, payload: RawInput) -> ChunkedInput:
        groups, chunking, padded_dfa, canon = chunk_groups_canonical(
            payload.raw, ctx.dfa, ctx.options.chunk_size,
            minimize=ctx.options.minimize_dfa)
        return ChunkedInput(raw=payload.raw, input_bytes=payload.input_bytes,
                            groups=groups, chunking=chunking,
                            padded_dfa=padded_dfa, canon=canon)

    def record_metrics(self, metrics, payload: ChunkedInput) -> None:
        metrics.count("chunks", payload.chunking.num_chunks)
        metrics.gauge("chunk.size", payload.chunking.chunk_size)


class StvStage(Stage):
    """Phase 1a: per-chunk state-transition vectors (§3.1).

    Timed as ``parse`` — the paper's name for the STV simulation step.
    With a kernel stride > 1 (the default when the dialect's k-gram
    tables fit the budget) the sweep runs on the precomposed strided
    tables from :mod:`repro.kernels`, advancing k symbols per step.
    """

    name = "stv"
    timer_step = "parse"
    input_type = ChunkedInput
    output_type = ChunkVectors

    def run(self, ctx, payload: ChunkedInput) -> ChunkVectors:
        budget = ctx.options.kernel_table_budget
        stride = resolve_stride(ctx.options.kernel_stride,
                                payload.padded_dfa, budget)
        packed = None
        if stride > 1:
            plan = get_plan(payload.padded_dfa, stride,
                            payload.chunking.chunk_size, ctx.metrics)
            packed = pack_plan(payload.groups, plan)
            vectors = compute_transition_vectors_plan(payload.groups,
                                                      plan, packed)
        else:
            vectors = compute_transition_vectors(payload.groups,
                                                 payload.padded_dfa)
        if ctx.metrics.enabled:
            ctx.metrics.gauge("stage.stv.stride", stride)
            ctx.metrics.gauge("kernels.table_budget", budget)
        return ChunkVectors(**payload.__dict__, vectors=vectors,
                            packed_kgrams=packed)


class ScanStage(Stage):
    """Phase 1b: composition scan of the STVs -> chunk start states."""

    name = "scan"
    timer_step = "scan"
    input_type = ChunkVectors
    output_type = ChunkContexts

    def run(self, ctx, payload: ChunkVectors) -> ChunkContexts:
        start_states = chunk_start_states(payload.vectors,
                                          payload.padded_dfa)
        return ChunkContexts(**payload.__dict__, start_states=start_states)

    def record_metrics(self, metrics, payload: ChunkContexts) -> None:
        # Depth of the composition scan tree over the chunk STVs.
        num_chunks = payload.chunking.num_chunks
        metrics.gauge("scan.depth",
                      math.ceil(math.log2(num_chunks)) if num_chunks > 1
                      else 0)


class TagStage(Stage):
    """Phase 2: emissions, bitmap indexes and record/column tags."""

    name = "tag"
    timer_step = "tag"
    input_type = ChunkContexts
    output_type = TaggedInput

    def run(self, ctx, payload: ChunkContexts) -> TaggedInput:
        stride = resolve_stride(ctx.options.kernel_stride,
                                payload.padded_dfa,
                                ctx.options.kernel_table_budget)
        if stride > 1:
            plan = get_plan(payload.padded_dfa, stride,
                            payload.chunking.chunk_size, ctx.metrics)
            emissions, final_state, invalid_position = \
                compute_emissions_plan(payload.groups,
                                       payload.start_states, plan,
                                       payload.chunking,
                                       payload.packed_kgrams)
        else:
            emissions, final_state, invalid_position = compute_emissions(
                payload.groups, payload.start_states, payload.padded_dfa,
                payload.chunking)
        if payload.canon is not None:
            # The sweeps ran in canonical state space; report the final
            # state as its source-automaton representative so validation
            # (which speaks the source automaton) reads it directly.
            final_state = int(payload.canon.state_rep[final_state])
        if ctx.metrics.enabled:
            ctx.metrics.gauge("stage.tag.stride", stride)
        if ctx.options.tagging_impl is TaggingImpl.CHUNKED:
            tags = tag_chunked(emissions, final_state, payload.chunking)
        else:
            tags = tag_global(emissions, final_state)
        return TaggedInput(raw=payload.raw, input_bytes=payload.input_bytes,
                           tags=tags, invalid_position=invalid_position)


class ValidateStage(Stage):
    """Validation, column-count resolution, policies and selection (§4.3).

    Everything between tagging and partitioning: the validation report,
    structural/policy record masks, the row mapping, the virtual trailing
    delimiter, and the partition keep-mask.
    """

    name = "validate"
    timer_step = None
    input_type = TaggedInput
    output_type = ValidatedInput

    def run(self, ctx, payload: TaggedInput) -> ValidatedInput:
        options = ctx.options
        tags = payload.tags
        report = validate_input(tags, ctx.dfa, payload.invalid_position,
                                options.strict)

        # Records that exist structurally: everything except skipped
        # records and the invalid tail.  Column-count inference runs over
        # these (the §4.3 max-reduction), *before* the count policy.
        structural = self._structural_records(options, tags, report)
        schema, num_columns = self._resolve_column_count(options, report,
                                                         structural)
        column_mask = selected_column_mask(num_columns,
                                           options.select_columns)

        valid_records = structural & self._policy_records(
            options, tags, report, num_columns)
        rows_of_record, num_rows = row_mapping(valid_records)
        rejected = int(tags.num_records - num_rows)

        (data_ext, col_ids, rec_ids, data_mask, delim_mask,
         delim_positions) = self._extend_trailing(options, payload.raw,
                                                  tags, report)

        mode = options.tagging_mode
        col_ok = (col_ids < num_columns) & (col_ids >= 0)
        col_ok &= column_mask[np.clip(col_ids, 0, max(0, num_columns - 1))] \
            if num_columns else False
        if tags.num_records:
            # Positions in a trailing comment (no content after the last
            # record delimiter) carry a record id one past the end; they
            # are never content, so clipping is safe.
            rec_ok = valid_records[np.clip(rec_ids, 0,
                                           tags.num_records - 1)]
        else:
            rec_ok = np.zeros(col_ids.shape, dtype=bool)
        if mode is not TaggingMode.TAGGED:
            self._require_consistent_columns(report, valid_records,
                                             num_columns)
        keep = build_keep_mask(mode, data_mask, delim_mask, col_ok, rec_ok)

        return ValidatedInput(
            **payload.__dict__,
            report=report,
            schema=schema,
            num_columns=num_columns,
            column_mask=column_mask,
            valid_records=valid_records,
            rows_of_record=rows_of_record,
            num_rows=num_rows,
            rejected_records=rejected,
            data_ext=data_ext,
            col_ids=col_ids,
            rec_ids=rec_ids,
            data_mask=data_mask,
            delim_mask=delim_mask,
            keep=keep,
            delim_positions=delim_positions,
        )

    def record_metrics(self, metrics, payload: ValidatedInput) -> None:
        metrics.count("records", payload.tags.num_records)
        metrics.count("records.rejected", payload.rejected_records)
        metrics.gauge("columns", payload.num_columns)

    # -- helpers (the monolith's private methods, verbatim semantics) -------

    @staticmethod
    def _resolve_column_count(options: ParseOptions, report,
                              structural: np.ndarray
                              ) -> tuple[Schema | None, int]:
        """The output schema (None = infer later) and the column count.

        Without a schema the count is inferred as the maximum field count
        over structurally present records (paper §4.3) — rejected-by-policy
        records still participate; invalid-tail/skipped records do not.
        """
        if options.schema is not None:
            return options.schema, len(options.schema)
        counts = report.field_counts[structural]
        inferred = int(counts.max()) if counts.size else 0
        return None, inferred

    @staticmethod
    def _structural_records(options: ParseOptions, tags: TagResult,
                            report) -> np.ndarray:
        """Records that exist at all: not skipped, not in the invalid tail."""
        valid = np.ones(tags.num_records, dtype=bool)
        if options.skip_records:
            skip = np.array(sorted(r for r in options.skip_records
                                   if 0 <= r < tags.num_records),
                            dtype=np.int64)
            valid[skip] = False
        if report.invalid_position is not None and tags.num_records:
            first_bad = int(tags.record_ids[report.invalid_position])
            valid[first_bad:] = False
        return valid

    @staticmethod
    def _policy_records(options: ParseOptions, tags: TagResult, report,
                        num_columns: int) -> np.ndarray:
        """Records surviving the column-count policy and tail checks."""
        valid = apply_column_policy(report, num_columns,
                                    options.column_count_policy,
                                    options.strict)
        if tags.has_trailing_record and not report.end_accepted \
                and tags.num_records:
            # Truncated trailing record (e.g. unclosed quote): reject it in
            # REJECT/STRICT modes, keep best-effort data in LENIENT mode.
            if options.column_count_policy is not ColumnCountPolicy.LENIENT:
                valid[tags.num_records - 1] = False
        return valid

    @staticmethod
    def _extend_trailing(options: ParseOptions, raw: np.ndarray,
                         tags: TagResult, report
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                    np.ndarray, np.ndarray,
                                    np.ndarray | None]:
        """Append a virtual record delimiter for an unterminated record.

        This gives the trailing record's last field a terminator, so the
        inline/delimited CSS modes need no special-casing.  The virtual
        position is never field data.  The tagging stage's per-delimiter
        position array (when present) is extended alongside, so the
        partition stage sees run structure consistent with the extended
        input.
        """
        delim_mask = tags.record_delim | tags.field_delim
        if not tags.has_trailing_record:
            return (raw, tags.column_ids, tags.record_ids, tags.data_mask,
                    delim_mask, tags.delim_positions)
        last_record = tags.num_records - 1
        last_column = int(report.field_counts[last_record]) - 1
        data_ext = np.concatenate([
            raw, np.array([options.dialect.record_delimiter_byte],
                          dtype=np.uint8)])
        col_ids = np.concatenate([tags.column_ids,
                                  np.array([last_column], dtype=np.int64)])
        rec_ids = np.concatenate([tags.record_ids,
                                  np.array([last_record], dtype=np.int64)])
        data_mask = np.concatenate([tags.data_mask, [False]])
        delim_ext = np.concatenate([delim_mask, [True]])
        delim_positions = tags.delim_positions
        if delim_positions is not None:
            delim_positions = np.concatenate([
                delim_positions, np.array([raw.size], dtype=np.int64)])
        return data_ext, col_ids, rec_ids, data_mask, delim_ext, \
            delim_positions

    @staticmethod
    def _require_consistent_columns(report, valid_records: np.ndarray,
                                    num_columns: int) -> None:
        counts = report.field_counts[valid_records] \
            if report.field_counts.size else report.field_counts
        if counts.size and (int(counts.min()) != num_columns
                            or int(counts.max()) != num_columns):
            raise ParseError(
                "inline/delimited tagging modes require a constant number "
                f"of columns per record (expected {num_columns}, observed "
                f"{int(counts.min())}..{int(counts.max())}); use "
                "TaggingMode.TAGGED or ColumnCountPolicy.REJECT")


class PartitionStage(Stage):
    """Phase 3a: stable column partition + CSS post-processing (§3.3).

    Selects the partition strategy: ``ParseOptions.partition_strategy``
    when set, otherwise field-run whenever the tagging stage threaded
    per-delimiter position arrays through the payload (run-structured
    tags), with the GPU-faithful radix sort as the fallback.  Both
    strategies produce bit-identical :class:`PartitionResult` values, so
    everything downstream is untouched by the choice.
    """

    name = "partition"
    timer_step = "partition"
    input_type = ValidatedInput
    output_type = PartitionedInput

    @staticmethod
    def resolve_strategy(options: ParseOptions,
                         delim_positions: np.ndarray | None
                         ) -> PartitionStrategy:
        """The strategy this parse runs with (auto = by run structure)."""
        if options.partition_strategy is not None:
            return options.partition_strategy
        return PartitionStrategy.FIELD_RUN if delim_positions is not None \
            else PartitionStrategy.RADIX

    def run(self, ctx, payload: ValidatedInput) -> PartitionedInput:
        options = ctx.options
        strategy = self.resolve_strategy(options, payload.delim_positions)
        if strategy is PartitionStrategy.FIELD_RUN \
                and payload.delim_positions is None:
            # ParseOptions rejects the known-bad combinations up front;
            # this guards any future tagging path that drops the
            # per-delimiter positions an explicit field-run needs.
            raise ParseError(
                "partition_strategy='field-run' needs the per-delimiter "
                "position arrays, but this tagging path did not "
                "materialise them; use partition_strategy='radix' or "
                "None (auto)")
        if strategy is PartitionStrategy.FIELD_RUN:
            part = partition_field_runs(payload.data_ext, payload.keep,
                                        payload.col_ids, payload.rec_ids,
                                        payload.num_columns,
                                        payload.delim_positions)
        else:
            part = partition_by_column(payload.data_ext, payload.keep,
                                       payload.col_ids, payload.rec_ids,
                                       payload.num_columns)
        css, aux_delims = prepare_css(options.tagging_mode, part,
                                      payload.delim_mask, options)
        return PartitionedInput(**payload.__dict__, part=part, css=css,
                                aux_delims=aux_delims)

    def record_metrics(self, metrics, payload: PartitionedInput) -> None:
        # 1.0 = field-run, 0.0 = radix (num_field_runs is the field-run
        # strategy's diagnostic by-product; the radix path never counts
        # runs).
        field_run = payload.part.num_field_runs is not None
        metrics.gauge("stage.partition.strategy",
                      1.0 if field_run else 0.0)
        if field_run:
            metrics.gauge("partition.fields", payload.part.num_field_runs)


class ConvertStage(Stage):
    """Phase 3b: CSS indexes, schema inference and typed conversion."""

    name = "convert"
    timer_step = "convert"
    input_type = PartitionedInput
    output_type = ConvertedOutput

    def run(self, ctx, payload: PartitionedInput) -> ConvertedOutput:
        options = ctx.options
        mode = options.tagging_mode
        part, css = payload.part, payload.css
        num_columns, num_rows = payload.num_columns, payload.num_rows

        indexes = column_indexes(mode, part, css, payload.aux_delims,
                                 options)
        schema = payload.schema
        if schema is None:
            schema = self._infer_schema(options, part, css, indexes,
                                        num_columns)
        columns = []
        out_fields = []
        collaboration = CollaborationStats()
        convert_stats = ConvertStats()
        for column in range(num_columns):
            if not payload.column_mask[column]:
                continue
            field = schema[column]
            lo = int(part.column_offsets[column])
            hi = int(part.column_offsets[column + 1])
            column_css = css[lo:hi]
            index = indexes[column]
            if mode is TaggingMode.TAGGED:
                row_of = payload.rows_of_record
            else:
                row_of = np.arange(num_rows, dtype=np.int64)
                if index.num_fields != num_rows:
                    raise ParseError(
                        f"column {column} materialised "
                        f"{index.num_fields} fields for {num_rows} "
                        f"records; inline/delimited tagging requires a "
                        f"consistent column count")
            converted, stats = convert_column(
                field, column_css, index, row_of, num_rows, options,
                convert_stats)
            columns.append(converted)
            out_fields.append(field)
            collaboration = collaboration + stats

        table = Table(Schema(out_fields), columns)
        return ConvertedOutput(
            table=table,
            collaboration=collaboration,
            report=payload.report,
            num_records=payload.tags.num_records,
            num_rows=num_rows,
            rejected_records=payload.rejected_records,
            input_bytes=payload.input_bytes,
            convert_stats=convert_stats,
        )

    def record_metrics(self, metrics, payload: ConvertedOutput) -> None:
        metrics.count("rows", payload.num_rows)
        metrics.count("fields",
                      payload.num_rows * payload.table.num_columns)
        metrics.count("bytes.out",
                      sum(col.data.nbytes
                          + (col.offsets.nbytes if col.offsets is not None
                             else 0)
                          for col in payload.table.columns))
        metrics.count("convert.bytes.copied",
                      payload.convert_stats.bytes_copied)
        metrics.count("convert.zero_copy_columns",
                      payload.convert_stats.zero_copy_columns)

    @staticmethod
    def _infer_schema(options: ParseOptions, part, css: np.ndarray,
                      indexes, num_columns: int) -> Schema:
        """Schema when none was given: inferred types or all strings."""
        fields = []
        for column in range(num_columns):
            if options.infer_types:
                lo = int(part.column_offsets[column])
                hi = int(part.column_offsets[column + 1])
                dtype = infer_column_type(css[lo:hi], indexes[column])
            else:
                dtype = DataType.STRING
            fields.append(Field(f"col{column}", dtype))
        return Schema(fields)


# -- the pipeline ------------------------------------------------------------

class StagePipeline:
    """An ordered sequence of stages with timed, resumable execution.

    Executors drive this object: :class:`~repro.exec.SerialExecutor` runs
    every stage in order; :class:`~repro.exec.ShardedExecutor` replaces the
    ``stv``/``scan``/``tag`` segment with its process-pool equivalent and
    re-enters the pipeline at ``validate``.
    """

    def __init__(self, stages: tuple[Stage, ...] | list[Stage]):
        self.stages: tuple[Stage, ...] = tuple(stages)
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self._index = {name: i for i, name in enumerate(names)}

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def stage(self, name: str) -> Stage:
        """Look a stage up by name."""
        return self.stages[self.index_of(name)]

    def index_of(self, name: str) -> int:
        if name not in self._index:
            raise KeyError(f"unknown stage {name!r}; "
                           f"have {self.stage_names}")
        return self._index[name]

    def run_stage(self, stage: Stage, ctx: PipelineContext, payload):
        """Run one stage, timing it under its paper step name.

        With observability off (the default ``NULL_TRACER``/``NULL_METRICS``
        context) this takes the exact pre-observability path after two
        attribute reads, so the disabled overhead is negligible.
        """
        if not stage.applies(ctx, payload):
            return payload
        tracer, metrics = ctx.tracer, ctx.metrics
        if not tracer.enabled and not metrics.enabled:
            if stage.timer_step is None:
                return stage.run(ctx, payload)
            with ctx.timer.step(stage.timer_step):
                return stage.run(ctx, payload)
        start = time.perf_counter()
        with tracer.span(f"stage:{stage.name}",
                         step=stage.timer_step or ""):
            if stage.timer_step is None:
                payload = stage.run(ctx, payload)
            else:
                with ctx.timer.step(stage.timer_step):
                    payload = stage.run(ctx, payload)
        if metrics.enabled:
            metrics.observe(f"stage.{stage.name}.seconds",
                            time.perf_counter() - start)
            stage.record_metrics(metrics, payload)
        return payload

    def run(self, ctx: PipelineContext, payload, *,
            start: str | None = None, until: str | None = None):
        """Run stages ``start``..``until`` (inclusive, by name) in order."""
        lo = 0 if start is None else self.index_of(start)
        hi = len(self.stages) - 1 if until is None else self.index_of(until)
        if hi < lo:
            raise ValueError(f"until={until!r} precedes start={start!r}")
        for stage in self.stages[lo:hi + 1]:
            payload = self.run_stage(stage, ctx, payload)
        return payload


_DEFAULT_STAGES = (PruneStage, ChunkStage, StvStage, ScanStage, TagStage,
                   ValidateStage, PartitionStage, ConvertStage)
_default: StagePipeline | None = None


def default_pipeline() -> StagePipeline:
    """The canonical eight-stage ParPaRaw pipeline (shared instance)."""
    global _default
    if _default is None:
        _default = StagePipeline(tuple(cls() for cls in _DEFAULT_STAGES))
    return _default
