"""Phase 3a — partitioning symbols by column (paper §3.3).

To convert fields without thread divergence and without load-balancing
hazards, ParPaRaw first brings all symbols of each column together.  Two
interchangeable strategies produce the same stable column partition:

**Stable LSD radix sort** (:func:`stable_radix_sort` /
:func:`partition_by_column`) — the paper's GPU formulation.  A single
partitioning pass is the GPU-classic three-step dance:

1. histogram of items per digit value,
2. exclusive prefix sum over the histogram (partition start offsets),
3. stable placement of every item at ``offset[digit] + rank-within-digit``.

No ``np.argsort`` anywhere; the rank-within-digit is materialised per
digit value with a vectorised ``np.flatnonzero`` (the positions of a
digit value, in input order, *are* its stable ranks), which stands in for
the prefix-sum-based ranking a GPU implementation performs.

**Field-run segment gather** (:func:`partition_field_runs`) — the
vectorised-executor formulation.  Column tags arrive in contiguous
per-field runs (they only change at delimiters), so instead of paying
per-symbol sort work the runs are encoded once, the *runs* are
stable-counting-sorted by column id (``num_fields ≪ n``), and the CSS,
record tags and ``order`` permutation are materialised with a single
``np.repeat``-based segment gather: ``O(n + num_fields)`` total work.
The result is bit-identical to the radix sort — same
:class:`PartitionResult`, including the stable ``order`` permutation —
which the parity suite in ``tests/core/test_partition.py`` and the
pipeline-level sweep in ``tests/core/test_partition_parity.py`` enforce.
"""

from __future__ import annotations

# parlint: hot-path -- byte-bound pipeline phase; loops need waivers

from dataclasses import dataclass

import numpy as np

from repro.columnar.guard import protect
from repro.errors import ParseError
from repro.scan.numpy_scan import exclusive_sum

__all__ = ["stable_radix_sort", "PartitionResult", "partition_by_column",
           "partition_field_runs"]


def stable_radix_sort(keys: np.ndarray, radix_bits: int = 2,
                      max_key: int | None = None) -> np.ndarray:
    """Stable permutation sorting ``keys`` ascending, GPU-style.

    Parameters
    ----------
    keys:
        ``(n,)`` non-negative integer keys.
    radix_bits:
        Digit width per pass (the paper iterates over the bits of the
        column tags in fixed-size digits).  On this vectorised executor
        the per-pass ranking loop costs ``2**radix_bits`` array sweeps, so
        narrow digits win — the ablation benchmark measures the trade-off
        (a GPU prefers wide digits; launch overhead dominates there).
    max_key:
        Upper bound on the keys (exclusive); defaults to ``keys.max()+1``.

    Returns
    -------
    np.ndarray
        ``(n,)`` int64 permutation: ``keys[perm]`` is sorted and equal keys
        keep their input order.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ParseError("radix sort expects a 1-D key array")
    n = keys.size
    perm = np.arange(n, dtype=np.int64)
    if n == 0:
        return perm
    if keys.min() < 0:
        raise ParseError("radix sort requires non-negative keys")
    if radix_bits <= 0 or radix_bits > 16:
        raise ParseError("radix_bits must be in 1..16")
    if max_key is None:
        max_key = int(keys.max()) + 1
    key_bits = max(1, int(max_key - 1).bit_length())
    radix = 1 << radix_bits
    # The keys travel with the permutation (permuted in place each pass)
    # so no pass re-gathers them from the source array.
    current_keys = keys.astype(np.int64)

    shift = 0
    while shift < key_bits:  # parlint: disable=PPR401 -- one pass per radix digit, <= key_bits/radix_bits iterations
        digits = (current_keys >> shift) & (radix - 1)
        # (1) histogram, (2) partition offsets via exclusive prefix sum.
        histogram = np.bincount(digits, minlength=radix)
        offsets = exclusive_sum(histogram)
        # (3) stable placement: a digit value's positions in input order
        # (np.flatnonzero) are exactly its items in stable rank order, so
        # writing them at the partition offset performs the
        # offset[d] + rank-within-d scatter without materialising the
        # per-digit prefix sum.
        gather = np.empty(n, dtype=np.int64)
        for value in range(radix):  # parlint: disable=PPR401 -- 2**radix_bits iterations with vectorised bodies (per-digit stable ranking)
            count = int(histogram[value])
            if count == 0:
                continue
            lo = int(offsets[value])
            gather[lo:lo + count] = np.flatnonzero(digits == value)
        perm = perm[gather]
        current_keys = current_keys[gather]
        shift += radix_bits
    return perm


def _stable_counting_sort(keys: np.ndarray, num_values: int
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Stable permutation sorting small-int ``keys`` ascending.

    One counting-sort pass: histogram → exclusive prefix sum → per-value
    stable placement, iterating only over the key values actually
    present.  ``O(P · R)`` with vectorised bodies, for ``R`` keys over
    ``P`` distinct values — the field-run partition calls this on the
    *runs* (``R = num_fields``, ``P ≤ num_columns``), never on symbols.

    Returns ``(perm, key_starts)``: the stable permutation and, as a
    by-product of the pass, the ``(num_values,)`` exclusive prefix sum of
    the key histogram (first sorted position of each key value).
    """
    counts = np.bincount(keys, minlength=num_values)
    offsets = exclusive_sum(counts)
    perm = np.empty(keys.size, dtype=np.int64)
    for value in np.flatnonzero(counts):  # parlint: disable=PPR401 -- one iteration per distinct column id, vectorised bodies over the runs
        lo = int(offsets[value])
        perm[lo:lo + int(counts[value])] = np.flatnonzero(keys == value)
    return perm, offsets


@dataclass
class PartitionResult:
    """The columnar symbol layout after partitioning.

    Attributes
    ----------
    css:
        All retained symbols, column-partitioned: column ``c``'s CSS is
        ``css[column_offsets[c]:column_offsets[c + 1]]``.
    record_tags:
        Record tag of each CSS symbol (same layout).
    column_offsets:
        ``(num_columns + 1,)`` int64 CSS boundaries (from the histogram).
    num_columns:
        Number of columns partitioned.
    order:
        Original input position of each CSS symbol (the applied stable
        permutation) — lets callers gather any per-position payload into
        CSS layout (the inline/delimited modes gather the delimiter mask).
    num_field_runs:
        Diagnostic metadata: how many contiguous field runs the field-run
        strategy gathered (``None`` on the radix path, which never counts
        them).  Excluded from the strategies' bit-identity contract,
        which covers ``css``/``record_tags``/``column_offsets``/``order``.
    field_records / field_starts / field_lengths / field_bounds:
        Per-field geometry read directly off the segment gather, present
        only when the field-run strategy partitioned from the tagging
        stage's ``delim_positions`` (where one run is exactly one
        non-empty field).  Sorted-run ``j`` is a field starting at CSS
        position ``field_starts[j]`` with ``field_lengths[j]`` symbols of
        record ``field_records[j]``; column ``c``'s fields are the slice
        ``[field_bounds[c], field_bounds[c + 1])``.  This is the fused
        partition→convert handoff: the convert stage reads each column's
        index from here instead of re-deriving it with a per-symbol RLE,
        and a column's CSS *is* already an Arrow string column
        (:meth:`column_view`).
    """

    css: np.ndarray
    record_tags: np.ndarray
    column_offsets: np.ndarray
    num_columns: int
    order: np.ndarray | None = None
    num_field_runs: int | None = None
    field_records: np.ndarray | None = None
    field_starts: np.ndarray | None = None
    field_lengths: np.ndarray | None = None
    field_bounds: np.ndarray | None = None

    @property
    def has_field_geometry(self) -> bool:
        """Whether per-field run geometry survived the partition."""
        return self.field_bounds is not None

    def column_css(self, column: int) -> np.ndarray:
        # parlint: returns-borrowed -- zero-copy slice of the shared CSS
        """Column ``c``'s concatenated symbol string."""
        lo = int(self.column_offsets[column])
        hi = int(self.column_offsets[column + 1])
        # Views of a read-only array are read-only, so protecting here
        # also covers column_view's values (it slices this result).
        return protect(self.css[lo:hi])

    def column_record_tags(self, column: int) -> np.ndarray:
        lo = int(self.column_offsets[column])
        hi = int(self.column_offsets[column + 1])
        return self.record_tags[lo:hi]

    def column_fields(self, column: int
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Column ``c``'s ``(records, offsets, lengths)`` field geometry.

        Offsets are relative to :meth:`column_css`.  Requires
        :attr:`has_field_geometry` (the ``delim_positions`` field-run
        path); callers without it re-derive the index from the record
        tags.
        """
        if self.field_bounds is None:
            raise ParseError("partition carries no field geometry")
        assert self.field_records is not None
        assert self.field_starts is not None
        assert self.field_lengths is not None
        lo = int(self.field_bounds[column])
        hi = int(self.field_bounds[column + 1])
        base = int(self.column_offsets[column])
        return (self.field_records[lo:hi],
                self.field_starts[lo:hi] - base,
                self.field_lengths[lo:hi])

    def column_view(self, column: int) -> tuple[np.ndarray, np.ndarray]:
        # parlint: returns-borrowed -- values aliases self.css by design
        """Column ``c``'s CSS as an Arrow-style ``(values, offsets)`` pair.

        ``values`` is a zero-copy view of :attr:`css`; ``offsets`` is the
        ``(num_fields + 1,)`` int64 field-boundary buffer.  In the
        record-tagged mode the fields tile the column CSS exactly, so the
        pair *is* a valid Arrow string column over the retained fields —
        no symbol is copied.  Requires :attr:`has_field_geometry`.
        """
        values = self.column_css(column)
        _, starts, lengths = self.column_fields(column)
        offsets = np.empty(starts.size + 1, dtype=np.int64)
        offsets[:-1] = starts
        offsets[-1] = (int(starts[-1] + lengths[-1]) if starts.size
                       else 0)
        return values, offsets


def _check_partition_inputs(data: np.ndarray, keep_mask: np.ndarray,
                            column_ids: np.ndarray,
                            record_ids: np.ndarray) -> None:
    if not (data.shape == keep_mask.shape == column_ids.shape
            == record_ids.shape):
        raise ParseError("partition inputs must share one shape")


def partition_by_column(data: np.ndarray, keep_mask: np.ndarray,
                        column_ids: np.ndarray, record_ids: np.ndarray,
                        num_columns: int,
                        radix_bits: int = 2) -> PartitionResult:
    """Partition the retained symbols into per-column CSSs (radix sort).

    Parameters
    ----------
    data:
        ``(n,)`` uint8 raw input (symbols).
    keep_mask:
        ``(n,)`` bool — which positions enter the partition (data symbols
        of selected columns/records; for the inline/delimited tagging modes
        also the terminating delimiters).
    column_ids / record_ids:
        Per-position tags from phase 2.
    num_columns:
        Column count (CSS boundaries are produced for all of them).
    radix_bits:
        Digit width for the radix sort.
    """
    _check_partition_inputs(data, keep_mask, column_ids, record_ids)
    kept = np.flatnonzero(keep_mask)
    keys = column_ids[kept]
    if keys.size and int(keys.max()) >= num_columns:
        raise ParseError("a column tag exceeds the declared column count")
    perm = stable_radix_sort(keys, radix_bits=radix_bits,
                             max_key=num_columns)
    order = kept[perm]
    css = data[order]
    record_tags = record_ids[order]
    histogram = np.bincount(keys, minlength=num_columns)
    column_offsets = np.empty(num_columns + 1, dtype=np.int64)
    column_offsets[0] = 0
    np.cumsum(histogram, out=column_offsets[1:])
    return PartitionResult(css=css, record_tags=record_tags,
                           column_offsets=column_offsets,
                           num_columns=num_columns, order=order)


def partition_field_runs(data: np.ndarray, keep_mask: np.ndarray,
                         column_ids: np.ndarray, record_ids: np.ndarray,
                         num_columns: int,
                         delim_positions: np.ndarray | None = None
                         ) -> PartitionResult:
    """Partition via run-length encoding + one stable segment gather.

    Bit-identical to :func:`partition_by_column` (same CSS, record tags,
    offsets and stable ``order`` permutation) in ``O(n + num_fields)``:

    1. encode the retained positions' column-tag sequence as contiguous
       runs — either from ``delim_positions`` (the tagging stage's
       per-delimiter position arrays; ``O(num_fields · log n)`` with no
       per-symbol key gather at all) or, when they are unavailable, by a
       vectorised change-detection sweep over the gathered keys;
    2. stable-counting-sort the *runs* by column id
       (:func:`_stable_counting_sort`, ``num_fields ≪ n`` items);
    3. materialise ``order`` with one ``np.repeat``-based segment gather
       (run starts repeated by run lengths plus intra-run ``arange``
       offsets), then gather ``css`` and ``record_tags`` through it.

    Parameters
    ----------
    delim_positions:
        Ascending positions at which a delimiter (record or field)
        occurs.  The column tags must be constant on every segment
        between consecutive delimiters — exactly what phase 2 guarantees
        (a delimiter carries the column of the field it terminates; the
        next position starts the following field).  ``None`` derives the
        run boundaries from ``column_ids`` directly, which is correct
        for *any* tag sequence.
    """
    _check_partition_inputs(data, keep_mask, column_ids, record_ids)
    kept = np.flatnonzero(keep_mask)
    total = kept.size

    if delim_positions is not None:
        # Segment j spans [seg_starts[j], seg_starts[j+1]) in input
        # space; its retained positions are a contiguous slice of
        # ``kept`` located by binary search — no per-symbol key gather.
        seg_starts = np.empty(delim_positions.size + 1, dtype=np.int64)
        seg_starts[0] = 0
        seg_starts[1:] = delim_positions
        seg_starts[1:] += 1
        bounds = np.searchsorted(kept, seg_starts)
        lengths = np.empty(bounds.size, dtype=np.int64)
        lengths[:-1] = np.diff(bounds)
        lengths[-1] = total - bounds[-1]
        nonempty = lengths > 0
        run_starts = bounds[nonempty]
        run_lengths = lengths[nonempty]
    elif total:
        boundary = np.empty(total, dtype=bool)
        boundary[0] = True
        keys = column_ids[kept]
        np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
        run_starts = np.flatnonzero(boundary)
        run_lengths = np.empty(run_starts.size, dtype=np.int64)
        run_lengths[:-1] = np.diff(run_starts)
        if run_lengths.size:
            run_lengths[-1] = total - run_starts[-1]
    else:
        run_starts = np.empty(0, dtype=np.int64)
        run_lengths = np.empty(0, dtype=np.int64)

    run_keys = column_ids[kept[run_starts]]
    if run_keys.size:
        if int(run_keys.min()) < 0:
            raise ParseError("partition requires non-negative column tags")
        if int(run_keys.max()) >= num_columns:
            raise ParseError(
                "a column tag exceeds the declared column count")

    perm_runs, run_starts_of_key = _stable_counting_sort(run_keys,
                                                         num_columns)
    sorted_starts = run_starts[perm_runs]
    sorted_lengths = run_lengths[perm_runs]

    # Segment gather: output position p inside sorted run j reads
    # kept[sorted_starts[j] + (p - out_starts[j])]; repeating
    # (start - out_start) per run and adding a global arange yields every
    # source index in one vectorised sweep.
    out_starts = exclusive_sum(sorted_lengths)
    gather = np.repeat(sorted_starts - out_starts, sorted_lengths)
    gather += np.arange(total, dtype=np.int64)
    order = kept[gather]
    css = data[order]
    record_tags = record_ids[order]

    # CSS boundaries without a per-symbol histogram: column c's CSS
    # starts where its first sorted run starts, i.e. the run-length
    # prefix sum evaluated at the counting sort's per-key offsets.
    out_bounds = np.empty(perm_runs.size + 1, dtype=np.int64)
    out_bounds[:-1] = out_starts
    out_bounds[-1] = total
    column_offsets = np.empty(num_columns + 1, dtype=np.int64)
    column_offsets[:-1] = out_bounds[run_starts_of_key]
    column_offsets[-1] = total

    # On the delim_positions path every sorted run is exactly one
    # non-empty field, so the run geometry *is* the per-column field
    # index — expose it and spare the convert stage its per-symbol RLE.
    # (The boundary-detect fallback may merge adjacent same-column runs
    # across records, e.g. single-column data, so it stays geometry-free.)
    field_records = field_bounds = None
    if delim_positions is not None:
        field_records = record_tags[out_starts]
        field_bounds = np.empty(num_columns + 1, dtype=np.int64)
        field_bounds[:-1] = run_starts_of_key
        field_bounds[-1] = perm_runs.size
    return PartitionResult(css=css, record_tags=record_tags,
                           column_offsets=column_offsets,
                           num_columns=num_columns, order=order,
                           num_field_runs=int(run_keys.size),
                           field_records=field_records,
                           field_starts=out_starts
                           if field_bounds is not None else None,
                           field_lengths=sorted_lengths
                           if field_bounds is not None else None,
                           field_bounds=field_bounds)
