"""Phase 3a — partitioning symbols by column (paper §3.3).

To convert fields without thread divergence and without load-balancing
hazards, ParPaRaw first brings all symbols of each column together: a
**stable LSD radix sort** keyed on the column tags, moving the symbol and
its record tag along.  A single partitioning pass is the GPU-classic
three-step dance the paper describes:

1. histogram of items per digit value,
2. exclusive prefix sum over the histogram (partition start offsets),
3. stable scatter of every item to ``offset[digit] + rank-within-digit``.

:func:`stable_radix_sort` implements exactly that (no ``np.argsort``
anywhere), with configurable digit width; the rank-within-digit is computed
per digit value with vectorised cumulative sums, which is the
prefix-sum-based ranking a GPU implementation uses.

:func:`partition_by_column` applies the sort to the data symbols and
returns the per-column *concatenated symbol strings* (CSS) with their
offsets — the histogram maintained while sorting identifies the CSS
boundaries (paper §3.3).
"""

from __future__ import annotations

# parlint: hot-path -- byte-bound pipeline phase; loops need waivers

from dataclasses import dataclass

import numpy as np

from repro.errors import ParseError
from repro.scan.numpy_scan import exclusive_sum

__all__ = ["stable_radix_sort", "PartitionResult", "partition_by_column"]


def stable_radix_sort(keys: np.ndarray, radix_bits: int = 2,
                      max_key: int | None = None) -> np.ndarray:
    """Stable permutation sorting ``keys`` ascending, GPU-style.

    Parameters
    ----------
    keys:
        ``(n,)`` non-negative integer keys.
    radix_bits:
        Digit width per pass (the paper iterates over the bits of the
        column tags in fixed-size digits).  On this vectorised executor
        the per-pass ranking loop costs ``2**radix_bits`` array sweeps, so
        narrow digits win — the ablation benchmark measures the trade-off
        (a GPU prefers wide digits; launch overhead dominates there).
    max_key:
        Upper bound on the keys (exclusive); defaults to ``keys.max()+1``.

    Returns
    -------
    np.ndarray
        ``(n,)`` int64 permutation: ``keys[perm]`` is sorted and equal keys
        keep their input order.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ParseError("radix sort expects a 1-D key array")
    n = keys.size
    perm = np.arange(n, dtype=np.int64)
    if n == 0:
        return perm
    if keys.min() < 0:
        raise ParseError("radix sort requires non-negative keys")
    if radix_bits <= 0 or radix_bits > 16:
        raise ParseError("radix_bits must be in 1..16")
    if max_key is None:
        max_key = int(keys.max()) + 1
    key_bits = max(1, int(max_key - 1).bit_length())
    radix = 1 << radix_bits
    current_keys = keys.astype(np.int64)

    shift = 0
    while shift < key_bits:  # parlint: disable=PPR401 -- one pass per radix digit, <= key_bits/radix_bits iterations
        digits = (current_keys >> shift) & (radix - 1)
        # (1) histogram, (2) partition offsets via exclusive prefix sum.
        histogram = np.bincount(digits, minlength=radix)
        offsets = exclusive_sum(histogram)
        # (3) stable scatter: rank within digit via a per-digit-value
        # cumulative sum (the segmented prefix sum a GPU pass performs).
        destinations = np.empty(n, dtype=np.int64)
        for value in range(radix):  # parlint: disable=PPR401 -- 2**radix_bits iterations with vectorised bodies (per-digit segmented rank)
            if histogram[value] == 0:
                continue
            mask = digits == value
            ranks = np.cumsum(mask, dtype=np.int64)[mask] - 1
            destinations[mask] = offsets[value] + ranks
        new_perm = np.empty(n, dtype=np.int64)
        new_perm[destinations] = perm
        perm = new_perm
        current_keys = keys[perm].astype(np.int64)
        shift += radix_bits
    return perm


@dataclass
class PartitionResult:
    """The columnar symbol layout after partitioning.

    Attributes
    ----------
    css:
        All retained symbols, column-partitioned: column ``c``'s CSS is
        ``css[column_offsets[c]:column_offsets[c + 1]]``.
    record_tags:
        Record tag of each CSS symbol (same layout).
    column_offsets:
        ``(num_columns + 1,)`` int64 CSS boundaries (from the histogram).
    num_columns:
        Number of columns partitioned.
    order:
        Original input position of each CSS symbol (the applied stable
        permutation) — lets callers gather any per-position payload into
        CSS layout (the inline/delimited modes gather the delimiter mask).
    """

    css: np.ndarray
    record_tags: np.ndarray
    column_offsets: np.ndarray
    num_columns: int
    order: np.ndarray = None  # type: ignore[assignment]

    def column_css(self, column: int) -> np.ndarray:
        """Column ``c``'s concatenated symbol string."""
        lo = int(self.column_offsets[column])
        hi = int(self.column_offsets[column + 1])
        return self.css[lo:hi]

    def column_record_tags(self, column: int) -> np.ndarray:
        lo = int(self.column_offsets[column])
        hi = int(self.column_offsets[column + 1])
        return self.record_tags[lo:hi]


def partition_by_column(data: np.ndarray, keep_mask: np.ndarray,
                        column_ids: np.ndarray, record_ids: np.ndarray,
                        num_columns: int,
                        radix_bits: int = 2) -> PartitionResult:
    """Partition the retained symbols into per-column CSSs.

    Parameters
    ----------
    data:
        ``(n,)`` uint8 raw input (symbols).
    keep_mask:
        ``(n,)`` bool — which positions enter the partition (data symbols
        of selected columns/records; for the inline/delimited tagging modes
        also the terminating delimiters).
    column_ids / record_ids:
        Per-position tags from phase 2.
    num_columns:
        Column count (CSS boundaries are produced for all of them).
    radix_bits:
        Digit width for the radix sort.
    """
    if not (data.shape == keep_mask.shape == column_ids.shape
            == record_ids.shape):
        raise ParseError("partition inputs must share one shape")
    kept = np.flatnonzero(keep_mask)
    keys = column_ids[kept]
    if keys.size and int(keys.max()) >= num_columns:
        raise ParseError("a column tag exceeds the declared column count")
    perm = stable_radix_sort(keys, radix_bits=radix_bits,
                             max_key=num_columns)
    order = kept[perm]
    css = data[order]
    record_tags = record_ids[order]
    histogram = np.bincount(keys, minlength=num_columns)
    column_offsets = np.empty(num_columns + 1, dtype=np.int64)
    column_offsets[0] = 0
    np.cumsum(histogram, out=column_offsets[1:])
    return PartitionResult(css=css, record_tags=record_tags,
                           column_offsets=column_offsets,
                           num_columns=num_columns, order=order)
