"""CSS index generation (paper §3.3, §4.1 — Figures 5 and 6).

After partitioning, each column's symbols lie contiguously in memory (the
*concatenated symbol string*).  Before values can be generated, the
algorithm needs an index giving every field's offset and length within the
CSS.  How the index is built depends on the tagging mode:

* **record-tagged** — run-length encode the column's record tags: each run
  is one field (its value = the record, its length = the symbol count);
  exclusive prefix sum over the lengths gives the offsets.  Empty fields
  contribute no symbols and are absent from the index (they later become
  NULL / the column default — paper §4.3).
* **inline-terminated** — fields end at occurrences of the terminator
  byte; the index is simply the terminator positions.  Empty fields *are*
  present (zero-length).  Requires the terminator byte not to occur in
  data and a consistent column count (field ordinal == record ordinal).
* **vector-delimited** — like inline, but field ends are marked in an
  auxiliary boolean vector instead of a reserved byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParseError
from repro.scan.numpy_scan import exclusive_sum
from repro.utils.rle import run_length_encode

__all__ = ["ColumnIndex", "tagged_index", "inline_index", "delimited_index"]


@dataclass
class ColumnIndex:
    """Field index into one column's CSS.

    Attributes
    ----------
    records:
        ``(num_fields,)`` int64 — the record each field belongs to.  For
        the inline/delimited modes this is the field *ordinal*, which under
        their consistent-column-count precondition equals the record
        ordinal among retained records.
    offsets:
        ``(num_fields,)`` int64 — field start within the column CSS.
    lengths:
        ``(num_fields,)`` int64 — symbol count of the field (excluding any
        terminator).
    """

    records: np.ndarray
    offsets: np.ndarray
    lengths: np.ndarray

    @property
    def num_fields(self) -> int:
        return len(self.records)


def tagged_index(record_tags: np.ndarray) -> ColumnIndex:
    """Index from a column's record tags (record-tagged mode, Figure 5).

    >>> idx = tagged_index(np.array([0, 0, 0, 0, 1, 1]))
    >>> idx.records.tolist(), idx.offsets.tolist(), idx.lengths.tolist()
    ([0, 1], [0, 4], [4, 2])
    """
    records, lengths = run_length_encode(np.asarray(record_tags,
                                                    dtype=np.int64))
    offsets = exclusive_sum(lengths)
    return ColumnIndex(records=records.astype(np.int64),
                       offsets=offsets, lengths=lengths)


def inline_index(css: np.ndarray, terminator: int) -> ColumnIndex:
    """Index from terminator positions (inline-terminated mode, Figure 6).

    The CSS must end with a terminator (the partition step appends one for
    a trailing unterminated field).

    >>> css = np.frombuffer(b"Apples\\x1e\\x1ePears\\x1e", dtype=np.uint8)
    >>> idx = inline_index(css, 0x1e)
    >>> idx.offsets.tolist(), idx.lengths.tolist()
    ([0, 7, 8], [6, 0, 5])
    """
    css = np.asarray(css)
    term_positions = np.flatnonzero(css == terminator).astype(np.int64)
    if css.size and (term_positions.size == 0
                     or term_positions[-1] != css.size - 1):
        raise ParseError("inline CSS must end with a terminator")
    num_fields = term_positions.size
    offsets = np.empty(num_fields, dtype=np.int64)
    if num_fields:
        offsets[0] = 0
        offsets[1:] = term_positions[:-1] + 1
    lengths = term_positions - offsets
    return ColumnIndex(records=np.arange(num_fields, dtype=np.int64),
                       offsets=offsets, lengths=lengths)


def delimited_index(field_end_marks: np.ndarray) -> ColumnIndex:
    """Index from the auxiliary boolean vector (vector-delimited mode).

    ``field_end_marks[i]`` is True where CSS position ``i`` holds a field
    delimiter (the byte itself is ignored during conversion).

    >>> marks = np.array([0, 0, 0, 1, 1, 0, 0, 1], dtype=bool)
    >>> idx = delimited_index(marks)
    >>> idx.offsets.tolist(), idx.lengths.tolist()
    ([0, 4, 5], [3, 0, 2])
    """
    marks = np.asarray(field_end_marks, dtype=bool)
    end_positions = np.flatnonzero(marks).astype(np.int64)
    if marks.size and (end_positions.size == 0
                       or end_positions[-1] != marks.size - 1):
        raise ParseError("delimited CSS must end with a field mark")
    num_fields = end_positions.size
    offsets = np.empty(num_fields, dtype=np.int64)
    if num_fields:
        offsets[0] = 0
        offsets[1:] = end_positions[:-1] + 1
    lengths = end_positions - offsets
    return ColumnIndex(records=np.arange(num_fields, dtype=np.int64),
                       offsets=offsets, lengths=lengths)
