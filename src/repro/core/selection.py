"""Skipping rows and records, selecting columns (paper §4.3).

* **Rows** are physical lines; a record may span several of them (a quoted
  field can contain record delimiters).  Ignoring rows can therefore change
  how subsequent symbols parse, so — exactly as the paper prescribes — rows
  are pruned in an *initial pass* over the raw input, before parsing.
* **Records** are skipped after tagging: their symbols are marked
  irrelevant and never partitioned.
* **Columns** are selected after tagging, the same way.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParseError

__all__ = ["prune_rows", "row_mapping", "selected_column_mask"]


def prune_rows(data: np.ndarray, skip_rows: frozenset[int] | set[int],
               record_delimiter: int) -> np.ndarray:
    """Remove the physical lines with the given 0-based indexes.

    A line includes its terminating record-delimiter byte.  The pass is a
    vectorised line-id labelling plus a mask — the initial pass of §4.3.
    """
    if data.dtype != np.uint8:
        raise ParseError("prune_rows expects a uint8 array")
    if not skip_rows:
        return data
    if any(r < 0 for r in skip_rows):
        raise ParseError("row indexes must be non-negative")
    newline = data == record_delimiter
    # Line id of each byte: number of delimiters strictly before it.
    line_ids = np.zeros(data.size, dtype=np.int64)
    if data.size:
        np.cumsum(newline[:-1], out=line_ids[1:])
    skip = np.array(sorted(skip_rows), dtype=np.int64)
    keep = ~np.isin(line_ids, skip)
    return data[keep]


def row_mapping(valid_records: np.ndarray) -> tuple[np.ndarray, int]:
    """Dense output-row index per record (-1 for dropped records).

    >>> rows, n = row_mapping(np.array([True, False, True]))
    >>> rows.tolist(), n
    ([0, -1, 1], 2)
    """
    valid_records = np.asarray(valid_records, dtype=bool)
    rows = np.full(valid_records.size, -1, dtype=np.int64)
    kept = np.flatnonzero(valid_records)
    rows[kept] = np.arange(kept.size, dtype=np.int64)
    return rows, int(kept.size)


def selected_column_mask(num_columns: int,
                         select: tuple[int, ...] | None) -> np.ndarray:
    """Boolean mask over columns; all True when no selection is given."""
    mask = np.zeros(num_columns, dtype=bool)
    if select is None:
        mask[:] = True
        return mask
    for column in select:
        if column >= num_columns:
            raise ParseError(
                f"selected column {column} out of range "
                f"(input has {num_columns} columns)")
        mask[column] = True
    return mask
