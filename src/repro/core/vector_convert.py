"""Vectorised field converters.

These implement type conversion as whole-column array operations — the
NumPy translation of the paper's thread-per-field conversion kernels
(§3.3).  Each parser consumes a *packed* field set: a contiguous uint8
buffer holding the fields back to back, with ``lengths`` per field (all
strictly positive — empty fields are resolved to defaults/NULL before
conversion).  Each returns ``(values, ok, fallback)`` where ``fallback``
flags fields the vectorised path declines (e.g. >18-digit mantissas,
exponent floats); the orchestrator re-parses those with the scalar
reference converters, so the combined result is exactly the scalar
semantics (property tested).

The numeric parsers share one skeleton: classify every byte, locate each
byte's field via ``np.repeat``, combine per-digit contributions with
``np.add.reduceat`` over the field boundaries, and validate with reduceat
of boolean masks.  This is a faithful stand-in for the GPU's
block-per-field reductions.
"""

from __future__ import annotations

# parlint: hot-path -- byte-bound pipeline phase; loops need waivers

import numpy as np

from repro.columnar.schema import DataType
from repro.scan.numpy_scan import exclusive_sum

__all__ = [
    "pack_fields",
    "match_literals",
    "parse_int_vector",
    "parse_float_vector",
    "parse_decimal_vector",
    "parse_bool_vector",
    "parse_date_vector",
    "parse_timestamp_vector",
]

_POW10 = np.power(np.int64(10), np.arange(19, dtype=np.int64))
_INT_BOUNDS = {
    DataType.INT8: (-(2 ** 7), 2 ** 7 - 1),
    DataType.INT16: (-(2 ** 15), 2 ** 15 - 1),
    DataType.INT32: (-(2 ** 31), 2 ** 31 - 1),
    DataType.INT64: (-(2 ** 63), 2 ** 63 - 1),
}

_MINUS = np.uint8(ord("-"))
_PLUS = np.uint8(ord("+"))
_DOT = np.uint8(ord("."))
_ZERO = np.uint8(ord("0"))


def pack_fields(src: np.ndarray, starts: np.ndarray,
                lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gather ragged field slices into one contiguous buffer.

    Returns ``(buffer, offsets)`` with ``offsets = exclusive_sum(lengths)``.
    The gather builds an index array with the classic repeat/cumsum ragged
    -range trick (no Python loop over fields).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    offsets = exclusive_sum(lengths)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.uint8), offsets
    positions = (np.arange(total, dtype=np.int64)
                 - np.repeat(offsets, lengths)
                 + np.repeat(starts, lengths))
    return src[positions], offsets


def match_literals(buf: np.ndarray, offsets: np.ndarray,
                   lengths: np.ndarray,
                   literals: tuple[bytes, ...]) -> np.ndarray:
    """Which packed fields equal one of ``literals`` exactly.

    Vectorised per literal (length check + per-byte compare), the same
    lock-step pattern as boolean parsing; used for NULL-literal detection
    (paper §3.3 mentions "identifying NULLs" during conversion).
    """
    n = len(lengths)
    matched = np.zeros(n, dtype=bool)
    for literal in literals:  # parlint: disable=PPR401 -- one pass per NULL literal, a small config constant
        candidates = lengths == len(literal)
        if not np.any(candidates) or not literal:
            continue
        this = candidates.copy()
        for i, ch in enumerate(literal):  # parlint: disable=PPR401 -- bounded by the literal's length with vectorised per-byte compares
            idx = np.where(candidates, offsets + i, 0)
            this &= buf[idx] == ch
        matched |= this
    return matched


def _field_geometry(offsets: np.ndarray, lengths: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """(field id, local position) for every byte of a packed buffer."""
    total = int(lengths.sum())
    field_ids = np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)
    local = (np.arange(total, dtype=np.int64)
             - np.repeat(offsets, lengths))
    return field_ids, local


def _count_per_field(mask: np.ndarray, offsets: np.ndarray,
                     num_fields: int) -> np.ndarray:
    """Per-field count of set mask positions (reduceat over boundaries)."""
    if num_fields == 0:
        return np.zeros(0, dtype=np.int64)
    return np.add.reduceat(mask.astype(np.int64), offsets)


def parse_int_vector(buf: np.ndarray, offsets: np.ndarray,
                     lengths: np.ndarray,
                     dtype: DataType = DataType.INT64
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised signed decimal integer parsing.

    Fields with more than 18 digits are flagged for scalar fallback
    (they may exceed the int64 weight table without overflow checks).
    """
    n = len(lengths)
    values = np.zeros(n, dtype=np.int64)
    if n == 0:
        empty = np.zeros(0, dtype=bool)
        return values, empty, empty

    first = buf[offsets]
    negative = first == _MINUS
    signed = negative | (first == _PLUS)
    digit_len = lengths - signed
    fallback = digit_len > 18
    ok = digit_len >= 1

    field_ids, local = _field_geometry(offsets, lengths)
    digits = buf.astype(np.int64) - int(_ZERO)
    is_digit = (digits >= 0) & (digits <= 9)
    in_digits = local >= signed[field_ids]
    bad = in_digits & ~is_digit
    ok &= _count_per_field(bad, offsets, n) == 0

    ends = offsets + lengths
    exponent = ends[field_ids] - 1 - (offsets[field_ids] + local)
    weight = _POW10[np.clip(exponent, 0, 18)]
    contrib = np.where(in_digits & is_digit & (exponent <= 18),
                       digits * weight, np.int64(0))
    sums = np.add.reduceat(contrib, offsets)
    values = np.where(negative, -sums, sums)

    lo, hi = _INT_BOUNDS[dtype]
    ok &= (values >= lo) & (values <= hi)
    values = np.where(ok, values, np.int64(0))
    return values, ok & ~fallback, fallback


def _mantissa_and_fraction(buf, offsets, lengths, require_frac_after_dot):
    """Shared digits/dot machinery for float and decimal parsing.

    Returns (sign, mantissa, frac_len, digit_count, ok, fallback).
    ``mantissa`` is the integer formed by all digits (dot removed).
    """
    n = len(lengths)
    first = buf[offsets]
    negative = first == _MINUS
    signed = negative | (first == _PLUS)

    field_ids, local = _field_geometry(offsets, lengths)
    digits = buf.astype(np.int64) - int(_ZERO)
    is_digit = (digits >= 0) & (digits <= 9)
    is_dot = buf == _DOT
    in_body = local >= signed[field_ids]

    dot_count = _count_per_field(is_dot & in_body, offsets, n)
    digit_count = _count_per_field(is_digit & in_body, offsets, n)
    bad = in_body & ~is_digit & ~is_dot
    ok = (_count_per_field(bad, offsets, n) == 0) \
        & (dot_count <= 1) & (digit_count >= 1)
    fallback = digit_count > 18

    # Digit ordinal within its field (among digits only), via a global
    # cumulative sum rebased at each field start.
    global_digit_cum = np.cumsum(is_digit & in_body, dtype=np.int64)
    base = global_digit_cum[offsets] - (is_digit & in_body)[offsets]
    ordinal = global_digit_cum - 1 - base[field_ids]
    digits_after = digit_count[field_ids] - 1 - ordinal
    weight = _POW10[np.clip(digits_after, 0, 18)]
    contrib = np.where(is_digit & in_body & (digits_after <= 18),
                       digits * weight, np.int64(0))
    mantissa = np.add.reduceat(contrib, offsets) if n else \
        np.zeros(0, dtype=np.int64)

    # Fractional length: digits strictly after the dot.
    dot_positions = np.where(is_dot & in_body, local, np.int64(-1))
    dot_local = np.full(n, np.int64(np.iinfo(np.int64).max))
    has_dot = dot_count == 1
    if np.any(is_dot & in_body):
        per_field_dot = np.maximum.reduceat(dot_positions, offsets)
        dot_local = np.where(has_dot, per_field_dot, dot_local)
    after_dot = local > dot_local[field_ids]
    frac_len = _count_per_field(is_digit & in_body & after_dot, offsets, n)

    if require_frac_after_dot:
        ok &= ~has_dot | (frac_len >= 1)
    sign = np.where(negative, np.int64(-1), np.int64(1))
    return sign, mantissa, frac_len, digit_count, ok, fallback


def parse_float_vector(buf: np.ndarray, offsets: np.ndarray,
                       lengths: np.ndarray,
                       dtype: DataType = DataType.FLOAT64
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised float parsing for ``[+-]digits[.digits]`` literals.

    Fields containing an exponent marker (``e``/``E``) or the ``nan``
    literal are flagged for scalar fallback rather than parsed here; so
    are >18-digit mantissas (precision).  The fallback enforces the same
    strict CSV grammar, so Python-isms (``inf``/``infinity``, underscore
    separators) are rejected on both paths.
    """
    n = len(lengths)
    if n == 0:
        empty = np.zeros(0, dtype=bool)
        return np.zeros(0, dtype=dtype.numpy_dtype), empty, empty

    # Any alphabetic byte routes to the scalar path (exponents, nan, inf).
    lower = buf | np.uint8(0x20)
    is_alpha = (lower >= np.uint8(ord("a"))) & (lower <= np.uint8(ord("z")))
    alpha_count = _count_per_field(is_alpha, offsets, n)
    route_scalar = alpha_count > 0

    sign, mantissa, frac_len, digit_count, ok, fallback = \
        _mantissa_and_fraction(buf, offsets, lengths,
                               require_frac_after_dot=False)
    # Beyond 15 significant digits the int64 mantissa is no longer exactly
    # representable in float64, so the divide below would not be correctly
    # rounded; route those to the scalar (strtod) path.
    fallback = (fallback | route_scalar | (digit_count > 15)) \
        & (lengths > 0)
    # mantissa and 10**frac_len are both exact in float64 here, so one
    # correctly-rounded division reproduces strtod's result bit for bit.
    # The sign is applied in float space so "-0.0" keeps its sign bit.
    values = mantissa.astype(np.float64) \
        / np.power(10.0, frac_len.astype(np.float64))
    values = np.where(sign < 0, -values, values)
    values = values.astype(dtype.numpy_dtype)
    ok = ok & ~route_scalar
    values = np.where(ok, values, 0.0).astype(dtype.numpy_dtype)
    return values, ok & ~fallback, fallback


def parse_decimal_vector(buf: np.ndarray, offsets: np.ndarray,
                         lengths: np.ndarray, scale: int
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised fixed-scale decimal parsing into scaled int64."""
    n = len(lengths)
    if n == 0:
        empty = np.zeros(0, dtype=bool)
        return np.zeros(0, dtype=np.int64), empty, empty
    sign, mantissa, frac_len, digit_count, ok, fallback = \
        _mantissa_and_fraction(buf, offsets, lengths,
                               require_frac_after_dot=True)
    ok &= frac_len <= scale
    # Total scaled digits must stay within the int64 weight table.
    fallback |= (digit_count + scale - frac_len) > 18
    shift = np.clip(scale - frac_len, 0, 18)
    values = sign * mantissa * _POW10[shift]
    values = np.where(ok, values, np.int64(0))
    return values, ok & ~fallback, fallback


def parse_bool_vector(buf: np.ndarray, offsets: np.ndarray,
                      lengths: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised boolean parsing (1/0, t/f, true/false, common cases)."""
    n = len(lengths)
    values = np.zeros(n, dtype=bool)
    ok = np.zeros(n, dtype=bool)
    fallback = np.zeros(n, dtype=bool)
    for literal, value in ((b"1", True), (b"0", False),  # parlint: disable=PPR401 -- 12 fixed boolean literals
                           (b"t", True), (b"f", False),
                           (b"T", True), (b"F", False),
                           (b"true", True), (b"false", False),
                           (b"True", True), (b"False", False),
                           (b"TRUE", True), (b"FALSE", False)):
        candidates = lengths == len(literal)
        if not np.any(candidates):
            continue
        match = candidates.copy()
        for i, ch in enumerate(literal):  # parlint: disable=PPR401 -- bounded by the literal's length with vectorised per-byte compares
            idx = offsets + i
            # Guard the gather for non-candidate fields.
            safe = np.where(candidates, idx, 0)
            match &= buf[safe] == ch
        values = np.where(match, value, values)
        ok |= match
    return values, ok, fallback


def _fixed_width_matrix(buf: np.ndarray, offsets: np.ndarray,
                        lengths: np.ndarray,
                        width: int) -> tuple[np.ndarray, np.ndarray]:
    """(n, width) byte matrix for fields of exactly ``width`` bytes.

    Returns the matrix and the mask of fields with the right length;
    wrong-length rows are zero filled.
    """
    n = len(lengths)
    right_length = lengths == width
    matrix = np.zeros((n, width), dtype=np.uint8)
    if np.any(right_length):
        rows = np.flatnonzero(right_length)
        gather = offsets[rows, None] + np.arange(width, dtype=np.int64)
        matrix[rows] = buf[gather]
    return matrix, right_length


def _civil_days_vector(year: np.ndarray, month: np.ndarray,
                       day: np.ndarray) -> np.ndarray:
    """Vectorised days_from_civil (same algorithm as the scalar one)."""
    adjusted = year - (month <= 2)
    era = adjusted // 400
    year_of_era = adjusted - era * 400
    month_shifted = month + np.where(month > 2, -3, 9)
    day_of_year = (153 * month_shifted + 2) // 5 + day - 1
    day_of_era = (year_of_era * 365 + year_of_era // 4
                  - year_of_era // 100 + day_of_year)
    return era * 146097 + day_of_era - 719468


_DAYS_IN_MONTH = np.array([31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31],
                          dtype=np.int64)


def _valid_ymd_vector(year: np.ndarray, month: np.ndarray,
                      day: np.ndarray) -> np.ndarray:
    month_ok = (month >= 1) & (month <= 12)
    safe_month = np.where(month_ok, month, 1)
    limits = _DAYS_IN_MONTH[safe_month - 1].copy()
    leap = (year % 4 == 0) & ((year % 100 != 0) | (year % 400 == 0))
    limits = np.where((safe_month == 2) & leap, 29, limits)
    return month_ok & (day >= 1) & (day <= limits)


def _digits_value(matrix: np.ndarray,
                  columns: slice) -> tuple[np.ndarray, np.ndarray]:
    """Integer value of a digit span in a fixed-width matrix + validity."""
    sub = matrix[:, columns].astype(np.int64) - int(_ZERO)
    valid = np.all((sub >= 0) & (sub <= 9), axis=1)
    weights = _POW10[np.arange(sub.shape[1])[::-1]]
    return (sub * weights).sum(axis=1), valid


def parse_date_vector(buf: np.ndarray, offsets: np.ndarray,
                      lengths: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised ``YYYY-MM-DD`` parsing into days since the epoch."""
    n = len(lengths)
    if n == 0:
        empty = np.zeros(0, dtype=bool)
        return np.zeros(0, dtype=np.int32), empty, empty
    matrix, right_length = _fixed_width_matrix(buf, offsets, lengths, 10)
    separators = (matrix[:, 4] == ord("-")) & (matrix[:, 7] == ord("-"))
    year, year_ok = _digits_value(matrix, slice(0, 4))
    month, month_ok = _digits_value(matrix, slice(5, 7))
    day, day_ok = _digits_value(matrix, slice(8, 10))
    ok = right_length & separators & year_ok & month_ok & day_ok
    ok &= _valid_ymd_vector(year, month, day)
    days = np.where(ok, _civil_days_vector(year, month, day), 0)
    fallback = np.zeros(n, dtype=bool)
    return days.astype(np.int32), ok, fallback


def parse_timestamp_vector(buf: np.ndarray, offsets: np.ndarray,
                           lengths: np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised ``YYYY-MM-DD HH:MM:SS`` parsing into epoch seconds."""
    n = len(lengths)
    if n == 0:
        empty = np.zeros(0, dtype=bool)
        return np.zeros(0, dtype=np.int64), empty, empty
    matrix, right_length = _fixed_width_matrix(buf, offsets, lengths, 19)
    separators = ((matrix[:, 4] == ord("-")) & (matrix[:, 7] == ord("-"))
                  & (matrix[:, 10] == ord(" "))
                  & (matrix[:, 13] == ord(":"))
                  & (matrix[:, 16] == ord(":")))
    year, year_ok = _digits_value(matrix, slice(0, 4))
    month, month_ok = _digits_value(matrix, slice(5, 7))
    day, day_ok = _digits_value(matrix, slice(8, 10))
    hour, hour_ok = _digits_value(matrix, slice(11, 13))
    minute, minute_ok = _digits_value(matrix, slice(14, 16))
    second, second_ok = _digits_value(matrix, slice(17, 19))
    ok = (right_length & separators & year_ok & month_ok & day_ok
          & hour_ok & minute_ok & second_ok)
    ok &= _valid_ymd_vector(year, month, day)
    ok &= (hour <= 23) & (minute <= 59) & (second <= 59)
    seconds = np.where(
        ok,
        _civil_days_vector(year, month, day) * 86400
        + hour * 3600 + minute * 60 + second,
        0)
    fallback = np.zeros(n, dtype=bool)
    return seconds.astype(np.int64), ok, fallback
