"""Tagging-mode mechanics (paper §4.1, Figure 6).

The three CSS layouts trade robustness against memory traffic:

* **record-tagged** — partition only data symbols; every CSS symbol
  carries its 4-byte record tag; the CSS index comes from run-length
  encoding the tags.  Handles varying column counts.
* **inline-terminated** — partition data symbols *and* the delimiters
  terminating each field, then overwrite the delimiter bytes with a
  reserved terminator inside the CSS; the index is the terminator
  positions.  No per-symbol tags, but the terminator byte must not occur
  in data and the column count must be constant.
* **vector-delimited** — like inline, but field ends are marked in an
  auxiliary boolean vector instead of a reserved byte (1 bit/symbol).

This module owns the mode-specific steps the parser composes: building the
partition keep-mask, post-processing the CSS (terminator substitution /
auxiliary vector extraction), and per-column index construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.css import ColumnIndex, delimited_index, inline_index, \
    tagged_index
from repro.core.options import ParseOptions, TaggingMode
from repro.core.partition import PartitionResult
from repro.errors import ParseError

__all__ = ["build_keep_mask", "prepare_css", "column_indexes"]


def build_keep_mask(mode: TaggingMode, data_mask: np.ndarray,
                    delim_mask: np.ndarray, column_ok: np.ndarray,
                    record_ok: np.ndarray) -> np.ndarray:
    """Positions entering the partition under the given mode.

    Record-tagged keeps data symbols only; the inline/delimited modes also
    keep each field's terminating delimiter (it becomes the terminator /
    auxiliary mark).
    """
    if mode is TaggingMode.TAGGED:
        return data_mask & column_ok & record_ok
    return (data_mask | delim_mask) & column_ok & record_ok


def prepare_css(mode: TaggingMode, part: PartitionResult,
                delim_mask: np.ndarray,
                options: ParseOptions) -> tuple[np.ndarray, np.ndarray]:
    """Mode-specific CSS post-processing after the partition.

    Returns ``(css, aux_delims)`` where ``aux_delims`` marks the CSS
    positions holding field terminators (used by both non-tagged modes;
    empty semantics for record-tagged).

    For the inline mode this performs the §4.1 substitution — delimiters
    become the reserved terminator byte — and verifies the terminator does
    not occur in field data (the documented precondition; use the
    vector-delimited mode otherwise).
    """
    aux_delims = delim_mask[part.order]
    css = part.css
    if mode is TaggingMode.INLINE:
        if bool(np.any(css[~aux_delims] == options.inline_terminator)):
            raise ParseError(
                "inline terminator byte occurs in field data; use "
                "TaggingMode.DELIMITED or a different terminator")
        css = css.copy()
        css[aux_delims] = options.inline_terminator
    return css, aux_delims


def column_indexes(mode: TaggingMode, part: PartitionResult,
                   css: np.ndarray, aux_delims: np.ndarray,
                   options: ParseOptions) -> list[ColumnIndex]:
    """Per-column CSS field indexes for the configured mode.

    Record-tagged fast path: when the partition carries per-field run
    geometry (the ``delim_positions`` field-run strategy), every sorted
    run is one field, so the index is read straight off the partition —
    bit-identical to the per-symbol RLE of :func:`tagged_index`, without
    touching the CSS symbols again.
    """
    if mode is TaggingMode.TAGGED and part.has_field_geometry:
        indexes = []
        for column in range(part.num_columns):
            records, offsets, lengths = part.column_fields(column)
            indexes.append(ColumnIndex(records=records, offsets=offsets,
                                       lengths=lengths))
        return indexes
    indexes = []
    for column in range(part.num_columns):
        lo = int(part.column_offsets[column])
        hi = int(part.column_offsets[column + 1])
        if mode is TaggingMode.TAGGED:
            indexes.append(tagged_index(part.record_tags[lo:hi]))
        elif mode is TaggingMode.INLINE:
            indexes.append(inline_index(css[lo:hi],
                                        options.inline_terminator))
        else:
            indexes.append(delimited_index(aux_delims[lo:hi]))
    return indexes
