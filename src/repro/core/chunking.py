"""Input chunking and variable-length symbol boundaries.

ParPaRaw splits the input into chunks of equal size, one per logical thread
(paper §3).  :func:`chunk_groups` produces the ``(num_chunks, chunk_size)``
symbol-group matrix the data-parallel kernels operate on, padding the final
partial chunk with a dedicated no-op group.

Variable-length encodings (paper §4.2): a UTF-8/UTF-16 symbol may cross a
chunk boundary.  The thread owning the symbol's *leading* bytes reads the
whole symbol; threads seeing only trailing bytes skip them.
:func:`utf8_leading_skip` and :func:`utf16_leading_skip` compute the skip
counts from the bit patterns the paper describes (``0b10XXXXXX``
continuation bytes for UTF-8; low surrogates ``0xDC00-0xDFFF`` for UTF-16).

For *byte-level* automata over ASCII-compatible encodings (all dialects in
:mod:`repro.dfa.dialects`: delimiters/quotes are ASCII and UTF-8
continuation bytes can never collide with them), chunk boundaries need no
adjustment — continuation bytes fall into the catch-all group and emit
DATA, which is exactly right.  The skip functions are used by the
symbol-level reader (:class:`SymbolReader`) and its tests.
"""

from __future__ import annotations

# parlint: hot-path -- byte-bound pipeline phase; loops need waivers

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.dfa.automaton import Dfa
from repro.dfa.minimize import Minimization, canonicalize
from repro.errors import ParseError

__all__ = [
    "Chunking",
    "chunk_groups",
    "chunk_groups_canonical",
    "utf8_leading_skip",
    "utf16_leading_skip",
    "SymbolReader",
]


@dataclass(frozen=True)
class Chunking:
    """Geometry of one chunked input."""

    input_bytes: int
    chunk_size: int
    num_chunks: int
    padding: int


def chunk_groups(data: np.ndarray, dfa: Dfa,
                 chunk_size: int) -> tuple[np.ndarray, Chunking, Dfa]:
    """Map bytes to symbol groups and reshape into chunks.

    Parameters
    ----------
    data:
        ``(n,)`` uint8 input.
    dfa:
        The automaton; it is extended with a padding group (identity
        transitions, CONTROL emission) used for the tail padding.
    chunk_size:
        Bytes per chunk.

    Returns
    -------
    (groups, chunking, padded_dfa)
        ``groups`` is ``(num_chunks, chunk_size)`` uint8 of symbol-group
        ids (pad positions hold the padding group).
    """
    if data.dtype != np.uint8:
        raise ParseError("input must be a uint8 array")
    if chunk_size <= 0:
        raise ParseError("chunk_size must be positive")
    padded_dfa = dfa.with_padding_group()
    pad_group = padded_dfa.num_groups - 1
    n = data.size
    num_chunks = max(1, -(-n // chunk_size))
    padding = num_chunks * chunk_size - n
    groups_flat = np.empty(num_chunks * chunk_size, dtype=np.uint8)
    groups_flat[:n] = dfa.symbol_groups[data]
    groups_flat[n:] = pad_group
    chunking = Chunking(input_bytes=n, chunk_size=chunk_size,
                        num_chunks=num_chunks, padding=padding)
    return groups_flat.reshape(num_chunks, chunk_size), chunking, padded_dfa


def chunk_groups_canonical(
        data: np.ndarray, dfa: Dfa, chunk_size: int, minimize: bool = True
) -> tuple[np.ndarray, Chunking, Dfa, Minimization | None]:
    """:func:`chunk_groups` over the canonical minimised automaton.

    When ``minimize`` is set, the automaton is canonicalised first
    (:func:`repro.dfa.minimize.canonicalize` — cached per process) and
    the chunk grid is built from the canonical ``symbol_groups``, so
    every downstream sweep runs in the smaller canonical state/group
    space: smaller stride tables (often unlocking wider strides) and
    behavioural kernel-cache sharing.  The returned ``Minimization``
    carries the maps back to the source automaton's state space
    (``state_rep``) for consumers that report states to the caller —
    parses are bit-identical either way.  ``minimize=False`` degrades to
    plain :func:`chunk_groups` with a ``None`` map.
    """
    if not minimize:
        groups, chunking, padded_dfa = chunk_groups(data, dfa, chunk_size)
        return groups, chunking, padded_dfa, None
    canon = canonicalize(dfa)
    groups, chunking, padded_dfa = chunk_groups(data, canon.dfa, chunk_size)
    return groups, chunking, padded_dfa, canon


# -- variable-length symbol boundaries (paper §4.2) -------------------------

def utf8_leading_skip(chunk: bytes | np.ndarray) -> int:
    """Number of leading UTF-8 continuation bytes of a chunk.

    Continuation bytes carry the prefix ``0b10XXXXXX``; a thread skips them
    because the previous chunk's owner consumed the whole code point.

    >>> utf8_leading_skip("é".encode("utf-8")[1:] + b"abc")
    1
    """
    buf = np.frombuffer(bytes(chunk), dtype=np.uint8) \
        if not isinstance(chunk, np.ndarray) else chunk
    skip = 0
    for byte in buf[:3]:  # a code point has at most 3 continuation bytes  # parlint: disable=PPR401 -- at most 3 continuation bytes per code point
        if (int(byte) & 0xC0) == 0x80:
            skip += 1
        else:
            break
    return skip


def utf16_leading_skip(chunk: bytes | np.ndarray,
                       little_endian: bool = True) -> int:
    """Bytes to skip at a UTF-16 chunk boundary (0 or 2).

    A chunk starting with a *low surrogate* (0xDC00-0xDFFF) sees only the
    trailing half of a 4-byte code point and skips those two bytes.  Chunk
    sizes must be even (an integer multiple of the 2-byte code unit), per
    the paper's fixed-size-symbol rule.
    """
    buf = bytes(chunk)
    if len(buf) < 2:
        return 0
    if little_endian:
        unit = buf[0] | (buf[1] << 8)
    else:
        unit = (buf[0] << 8) | buf[1]
    return 2 if 0xDC00 <= unit <= 0xDFFF else 0


class SymbolReader:
    """Iterate decoded code points of a chunk, honouring boundary rules.

    Mirrors the per-thread reading discipline of paper §4.2: skip leading
    trailing-bytes, and *continue past the chunk's end* to finish a code
    point whose leading byte lies inside the chunk.
    """

    def __init__(self, data: bytes, chunk_start: int, chunk_size: int,
                 encoding: str = "utf-8"):
        if encoding not in ("utf-8", "utf-16-le"):
            raise ParseError(f"unsupported encoding {encoding!r}")
        self._data = data
        self._start = chunk_start
        self._size = chunk_size
        self._encoding = encoding

    def __iter__(self) -> Iterator[int]:
        data = self._data
        end = min(self._start + self._size, len(data))
        if self._encoding == "utf-8":
            pos = self._start + utf8_leading_skip(data[self._start:end])
            while pos < end:  # parlint: disable=PPR401 -- scalar decoder for the symbol-iterator debug API, not the vectorised parse path
                lead = data[pos]
                if lead < 0x80:
                    length = 1
                elif lead >> 5 == 0b110:
                    length = 2
                elif lead >> 4 == 0b1110:
                    length = 3
                elif lead >> 3 == 0b11110:
                    length = 4
                else:
                    raise ParseError(
                        f"invalid UTF-8 lead byte {lead:#04x} at {pos}")
                raw = data[pos:pos + length]
                if len(raw) < length:
                    raise ParseError("truncated UTF-8 sequence at input end")
                yield ord(raw.decode("utf-8"))
                pos += length
        else:
            pos = self._start + utf16_leading_skip(data[self._start:end])
            while pos < end:  # parlint: disable=PPR401 -- scalar decoder for the symbol-iterator debug API, not the vectorised parse path
                if pos + 2 > len(data):
                    raise ParseError("truncated UTF-16 code unit")
                unit = data[pos] | (data[pos + 1] << 8)
                if 0xD800 <= unit <= 0xDBFF:  # high surrogate
                    if pos + 4 > len(data):
                        raise ParseError("truncated UTF-16 surrogate pair")
                    low = data[pos + 2] | (data[pos + 3] << 8)
                    if not 0xDC00 <= low <= 0xDFFF:
                        raise ParseError("unpaired UTF-16 high surrogate")
                    yield 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                    pos += 4
                elif 0xDC00 <= unit <= 0xDFFF:
                    raise ParseError("unpaired UTF-16 low surrogate")
                else:
                    yield unit
                    pos += 2
