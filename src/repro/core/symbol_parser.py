"""Symbol-level chunk-parallel parsing for variable-length encodings (§4.2).

The byte-level pipeline in :mod:`repro.core.parser` is correct for any
ASCII-compatible encoding (UTF-8 continuation bytes can never collide with
ASCII delimiters).  For encodings where that does not hold — UTF-16, or
formats whose control *symbols* are multi-byte — the DFA must consume
*code points*, and a code point may cross a chunk boundary.

This module implements the paper's §4.2 discipline at the symbol level:

* the thread owning a symbol's **leading** bytes reads the whole symbol,
  continuing past its chunk's end if needed;
* threads seeing only **trailing** bytes skip them (UTF-8: ``0b10xxxxxx``
  prefixes; UTF-16: low surrogates) —

both provided by :class:`~repro.core.chunking.SymbolReader` — and then
runs the ordinary ParPaRaw phase structure over code points: per-chunk
state-transition vectors, the composition scan, and a context-aware
emission pass.  Output equals a sequential symbol-level simulation for
every chunk size (property tested), which is precisely the §4.2 claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.chunking import SymbolReader
from repro.dfa.automaton import Dfa, Emission
from repro.dfa.transitions import compose, identity_vector
from repro.errors import ParseError

__all__ = ["SymbolDfa", "symbol_transition_vectors", "parse_symbols"]


@dataclass(frozen=True)
class SymbolDfa:
    """A DFA lifted from bytes to Unicode code points.

    ``classify`` maps a code point to one of the underlying DFA's symbol
    groups; the default sends ASCII code points through the byte table and
    everything else to the catch-all group (correct for all dialects in
    this library — their control symbols are ASCII).
    """

    dfa: Dfa
    classify: Callable[[int], int] | None = None

    def group_of(self, code_point: int) -> int:
        if self.classify is not None:
            return self.classify(code_point)
        if code_point < 128:
            return int(self.dfa.symbol_groups[code_point])
        return int(self.dfa.symbol_groups[0xFF])  # catch-all group


def _chunk_starts(data: bytes, chunk_size: int) -> list[int]:
    if chunk_size <= 0:
        raise ParseError("chunk_size must be positive")
    if not data:
        return [0]
    return list(range(0, len(data), chunk_size))


def symbol_transition_vectors(sdfa: SymbolDfa, data: bytes,
                              chunk_size: int,
                              encoding: str = "utf-8"
                              ) -> list[tuple[int, ...]]:
    """Per-chunk STVs over *code points*, honouring boundary skipping.

    Each chunk's vector is computed by reading the chunk with a
    :class:`SymbolReader` — skipping leading trailing-bytes, finishing a
    symbol whose lead byte falls inside the chunk — and advancing all
    hypothetical DFA instances per code point (the §3.1 loop, one level
    up).
    """
    dfa = sdfa.dfa
    vectors: list[tuple[int, ...]] = []
    for start in _chunk_starts(data, chunk_size):
        vector = list(identity_vector(dfa.num_states))
        for code_point in SymbolReader(data, start, chunk_size, encoding):
            group = sdfa.group_of(code_point)
            for state in range(dfa.num_states):
                vector[state] = int(dfa.transitions[group, vector[state]])
        vectors.append(tuple(vector))
    return vectors


def parse_symbols(sdfa: SymbolDfa, data: bytes, chunk_size: int,
                  encoding: str = "utf-8"
                  ) -> tuple[list[list[str | None]], int]:
    """Chunk-parallel symbol-level parsing into records of string fields.

    Phase structure mirrors the byte pipeline: STVs -> exclusive
    composition scan -> per-chunk emission pass seeded with the recovered
    start states -> record assembly.  Returns ``(records, final_state)``
    with the same record/field semantics as
    :func:`repro.baselines.sequential.sequential_rows` (fields with no
    data symbols are ``None``).
    """
    dfa = sdfa.dfa
    vectors = symbol_transition_vectors(sdfa, data, chunk_size, encoding)

    # Exclusive composition scan -> each chunk's entering context.
    start_states: list[int] = []
    prefix = identity_vector(dfa.num_states)
    for vector in vectors:
        start_states.append(prefix[dfa.start_state])
        prefix = compose(prefix, vector)
    final_state = prefix[dfa.start_state]

    # Context-aware emission pass, chunk by chunk (each independent given
    # its start state), then record assembly over the concatenation.
    records: list[list[str | None]] = []
    fields: list[str | None] = []
    buffer: list[str] = []
    has_content = False
    has_data = False
    for chunk_index, start in enumerate(_chunk_starts(data, chunk_size)):
        state = start_states[chunk_index]
        for code_point in SymbolReader(data, start, chunk_size, encoding):
            group = sdfa.group_of(code_point)
            emission = Emission(int(dfa.emissions[state, group]))
            state = int(dfa.transitions[group, state])
            if emission is Emission.DATA:
                buffer.append(chr(code_point))
                has_data = True
                has_content = True
            elif emission is Emission.FIELD_DELIMITER:
                fields.append("".join(buffer) if has_data else None)
                buffer.clear()
                has_data = False
                has_content = True
            elif emission is Emission.RECORD_DELIMITER:
                fields.append("".join(buffer) if has_data else None)
                buffer.clear()
                has_data = False
                records.append(fields)
                fields = []
                has_content = False
            elif emission is Emission.CONTROL:
                has_content = True
    if has_content:
        fields.append("".join(buffer) if has_data else None)
        records.append(fields)
    return records, final_state
