"""Phase 2 — bitmap indexes and record/column tags (paper §3.1-3.2).

With every chunk's start state known (phase 1), each thread re-simulates a
*single* DFA instance over its chunk, classifying every symbol via the
emission table: the three bitmap indexes of §3.1 (record delimiters, field
delimiters, control symbols).  The §3.2 offset machinery then tags every
symbol with the record and column it belongs to.

Two interchangeable implementations are provided (selected by
:class:`~repro.core.options.TaggingImpl`):

* ``GLOBAL`` — computes record/column ids with whole-input cumulative sums
  (three vectorised passes).  This is the production path.
* ``CHUNKED`` — the paper's formulation: per-chunk counts and rel/abs
  offsets, prefix scans across chunks (:mod:`repro.core.offsets`), then a
  per-chunk tagging sweep seeded with the scanned offsets.  Structurally
  identical to the GPU kernels; used by tests and ablations.

Both produce bit-identical :class:`TagResult` values (property tested).
"""

from __future__ import annotations

# parlint: hot-path -- byte-bound pipeline phase; loops need waivers

from dataclasses import dataclass

import numpy as np

from repro.core.chunking import Chunking
from repro.core.offsets import compute_chunk_offsets
from repro.dfa.automaton import Dfa, Emission
from repro.errors import ParseError
from repro.scan.numpy_scan import exclusive_sum

__all__ = ["TagResult", "compute_emissions", "tag_global", "tag_chunked",
           "build_tag_result"]


@dataclass
class TagResult:
    """Per-symbol classification and tags for the whole input.

    All arrays have input length (padding removed).
    """

    #: ``(n,)`` :class:`~repro.dfa.automaton.Emission` codes.
    emissions: np.ndarray
    #: ``(n,)`` bool — record-delimiter bitmap index.
    record_delim: np.ndarray
    #: ``(n,)`` bool — field-delimiter bitmap index (field delims only).
    field_delim: np.ndarray
    #: ``(n,)`` bool — symbol is field data.
    data_mask: np.ndarray
    #: ``(n,)`` int64 — record each symbol belongs to.
    record_ids: np.ndarray
    #: ``(n,)`` int64 — column each symbol belongs to (delimiters carry
    #: the column of the field they terminate).
    column_ids: np.ndarray
    #: DFA state after the last input symbol.
    final_state: int
    #: Whether the input ends mid-record (no trailing record delimiter).
    has_trailing_record: bool
    #: Total records, including a trailing unterminated one.
    num_records: int
    #: ``(m,)`` int64 ascending positions of all delimiters (record or
    #: field), when the tagging implementation materialised them — the
    #: run structure the field-run partition strategy exploits (§3.3):
    #: column tags are constant on every segment between consecutive
    #: delimiter positions.  ``None`` on the paper-faithful chunked path,
    #: which never builds per-delimiter arrays.
    delim_positions: np.ndarray | None = None


def compute_emissions(groups: np.ndarray, start_states: np.ndarray,
                      dfa: Dfa, chunking: Chunking
                      ) -> tuple[np.ndarray, int, int | None]:
    """Re-simulate one DFA instance per chunk, emitting classifications.

    Parameters
    ----------
    groups:
        ``(num_chunks, chunk_size)`` symbol-group matrix (with padding).
    start_states:
        ``(num_chunks,)`` per-chunk start states from phase 1.
    dfa:
        The padded automaton (must include the padding group).
    chunking:
        Geometry, to strip the padding from the result.

    Returns
    -------
    (emissions, final_state, invalid_position)
        Flat ``(input_bytes,)`` uint8 emissions, the automaton's state
        after the last real symbol, and the first byte offset at which the
        automaton sat in the INV sink (``None`` if never) — the format
        validation of paper §4.3 as a by-product of tagging.
    """
    num_chunks, chunk_size = groups.shape
    states = start_states.astype(np.uint8).copy()
    emissions = np.empty((num_chunks, chunk_size), dtype=np.uint8)
    transitions = dfa.transitions
    emission_table = dfa.emissions
    invalid = dfa.invalid_state
    first_invalid = np.full(num_chunks, -1, dtype=np.int64)
    for j in range(chunk_size):  # parlint: disable=PPR401 -- per-thread serial depth of the tagging sweep; vectorised over num_chunks
        g = groups[:, j]
        emissions[:, j] = emission_table[states, g]
        if invalid is not None:
            newly = (states == invalid) & (first_invalid < 0)
            first_invalid[newly] = j
        states = transitions[g, states]
    final_state = int(states[-1])
    flat = emissions.reshape(-1)[:chunking.input_bytes]

    invalid_position: int | None = None
    if invalid is not None:
        hit = np.flatnonzero(first_invalid >= 0)
        if hit.size:
            chunk = int(hit[0])
            position = chunk * chunk_size + int(first_invalid[chunk])
            if position < chunking.input_bytes:
                invalid_position = position
    return flat, final_state, invalid_position


def _bitmaps(emissions: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray]:
    """The three bitmap indexes of §3.1 from the emission codes."""
    record_delim = emissions == int(Emission.RECORD_DELIMITER)
    field_delim = emissions == int(Emission.FIELD_DELIMITER)
    data_mask = emissions == int(Emission.DATA)
    return record_delim, field_delim, data_mask


def _exclusive_count(mask: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """``out[i]`` = number of set bits strictly before ``i``.

    Semantically ``exclusive_sum(mask)``, but exploiting that the result
    is a step function: between consecutive set positions the count is
    constant, so it can be materialised by run-length ``np.repeat`` over
    the (small) position array instead of a full-width prefix sum —
    several times cheaper at realistic delimiter densities.  Dense masks
    fall back to the scan.
    """
    n = mask.size
    if n == 0 or positions.size * 2 > n:
        return exclusive_sum(mask)
    edges = np.empty(positions.size + 2, dtype=np.int64)
    edges[0] = -1
    edges[1:-1] = positions
    edges[-1] = n - 1
    return np.repeat(np.arange(positions.size + 1, dtype=np.int64),
                     np.diff(edges))


def _trailing_record(emissions: np.ndarray,
                     record_positions: np.ndarray) -> bool:
    """Whether record content follows the last record delimiter.

    Content = DATA, FIELD_DELIMITER or CONTROL emissions (a lone ``\"\"``
    is a record with one empty field); COMMENT emissions are not content.
    Only the slice after the last record delimiter is classified — for a
    delimiter-terminated input that is a handful of bytes, not the whole
    stream.
    """
    tail = emissions if record_positions.size == 0 \
        else emissions[int(record_positions[-1]) + 1:]
    content = ((tail == int(Emission.DATA))
               | (tail == int(Emission.FIELD_DELIMITER))
               | (tail == int(Emission.CONTROL)))
    return bool(content.any())


def _finalise(emissions: np.ndarray, record_ids: np.ndarray,
              column_ids: np.ndarray, final_state: int,
              bitmaps: tuple[np.ndarray, np.ndarray, np.ndarray]
              | None = None,
              record_positions: np.ndarray | None = None,
              delim_positions: np.ndarray | None = None) -> TagResult:
    record_delim, field_delim, data_mask = bitmaps if bitmaps is not None \
        else _bitmaps(emissions)
    if record_positions is None:
        record_positions = np.flatnonzero(record_delim)
    trailing = _trailing_record(emissions, record_positions)
    num_records = record_positions.size + (1 if trailing else 0)
    return TagResult(
        emissions=emissions,
        record_delim=record_delim,
        field_delim=field_delim,
        data_mask=data_mask,
        record_ids=record_ids,
        column_ids=column_ids,
        final_state=final_state,
        has_trailing_record=trailing,
        num_records=num_records,
        delim_positions=delim_positions,
    )


def build_tag_result(emissions: np.ndarray, record_ids: np.ndarray,
                     column_ids: np.ndarray, final_state: int, *,
                     run_structured: bool = True) -> TagResult:
    """Assemble a :class:`TagResult` from externally computed tags.

    Bitmap indexes, the trailing-record flag and the record count are
    derived from the emission stream exactly as :func:`tag_global` does —
    used by the sharded executor after merging per-shard record/column ids
    with the rel/abs offset scan.

    ``run_structured`` materialises the per-delimiter position array
    (the :func:`tag_global` contract, licensing the field-run partition
    strategy); the sharded executor passes ``False`` when the workers
    ran the paper-faithful chunked implementation, so serial and sharded
    schedules resolve the auto partition strategy identically.
    """
    result = _finalise(emissions, record_ids, column_ids, final_state)
    if run_structured:
        result.delim_positions = np.flatnonzero(result.record_delim
                                                | result.field_delim)
    return result


def tag_global(emissions: np.ndarray, final_state: int) -> TagResult:
    """Record/column ids via whole-input delimiter bookkeeping.

    * ``record_ids[i]`` = record delimiters strictly before ``i``;
    * ``column_ids[i]`` = delimiters (field or record) between the start of
      ``i``'s record and ``i`` — inside a record every such delimiter is a
      field delimiter, so this is the running column index, resetting at
      record boundaries.

    Both id streams are piecewise constant between delimiters, so at
    realistic delimiter densities they are materialised by run-length
    ``np.repeat`` over per-delimiter arrays — every full-width
    intermediate (prefix sums, per-position gathers) disappears, leaving
    one sequential write per output array.  Delimiter-dense inputs fall
    back to the prefix-sum formulation.
    """
    record_delim, field_delim, data_mask = _bitmaps(emissions)
    n = emissions.size
    record_positions = np.flatnonzero(record_delim)
    record_ids = _exclusive_count(record_delim, record_positions)

    delim_any = record_delim | field_delim
    delim_positions = np.flatnonzero(delim_any)
    m = delim_positions.size
    if n and 2 * m <= n:
        # Segment j of the column-id stream spans (dp[j-1], dp[j]] shifted
        # by one — i.e. starts right after delimiter j-1 — and holds the
        # constant ``j - t[r_j]``: j delims seen so far, minus the delim
        # count at the start of the enclosing record (t), where r_j counts
        # the record delimiters among the first j delims.
        is_record = record_delim[delim_positions]
        records_before = np.empty(m + 1, dtype=np.int64)
        records_before[0] = 0
        np.cumsum(is_record, dtype=np.int64, out=records_before[1:])
        record_start_delims = np.empty(record_positions.size + 1,
                                       dtype=np.int64)
        record_start_delims[0] = 0
        record_start_delims[1:] = np.flatnonzero(is_record) + 1
        segment_values = np.arange(m + 1, dtype=np.int64) \
            - record_start_delims[records_before]
        bounds = np.empty(m + 2, dtype=np.int64)
        bounds[0] = 0
        bounds[1:-1] = delim_positions + 1
        bounds[-1] = n
        column_ids = np.repeat(segment_values, np.diff(bounds))
    else:
        # Dense fallback: delims before the start of each record, as a
        # per-record table; subtracting via a gather from it is the whole
        # per-position reset.
        delims_before = exclusive_sum(delim_any)
        start_offsets = np.empty(record_positions.size + 1, dtype=np.int64)
        start_offsets[0] = 0
        start_offsets[1:] = delims_before[record_positions] + 1
        column_ids = delims_before - start_offsets[record_ids]
    return _finalise(emissions, record_ids, column_ids, final_state,
                     bitmaps=(record_delim, field_delim, data_mask),
                     record_positions=record_positions,
                     delim_positions=delim_positions)


def tag_chunked(emissions: np.ndarray, final_state: int,
                chunking: Chunking) -> TagResult:
    """Record/column ids via the paper's per-chunk offsets + scans.

    Pads the emission stream back to the chunk grid, computes each chunk's
    record count and rel/abs column offset, scans both across chunks
    (:func:`~repro.core.offsets.compute_chunk_offsets`), then assigns tags
    in one data-parallel sweep over chunk-local positions with per-chunk
    running counters seeded from the scans.
    """
    n = emissions.size
    if n != chunking.input_bytes:
        raise ParseError("emission stream does not match the chunking")
    num_chunks, chunk_size = chunking.num_chunks, chunking.chunk_size
    padded = np.full(num_chunks * chunk_size, int(Emission.COMMENT),
                     dtype=np.uint8)
    padded[:n] = emissions
    grid = padded.reshape(num_chunks, chunk_size)

    record_delim = grid == int(Emission.RECORD_DELIMITER)
    field_delim = grid == int(Emission.FIELD_DELIMITER)
    offsets = compute_chunk_offsets(record_delim, field_delim)

    # Per-chunk tagging sweep: every thread walks its chunk with a record
    # counter and a column counter seeded by the scanned offsets.
    record_counter = offsets.record_offsets.copy()
    column_counter = offsets.entering_column_offsets.copy()
    record_ids = np.empty((num_chunks, chunk_size), dtype=np.int64)
    column_ids = np.empty((num_chunks, chunk_size), dtype=np.int64)
    for j in range(chunk_size):  # parlint: disable=PPR401 -- per-thread serial depth of the tagging sweep; vectorised over num_chunks
        record_ids[:, j] = record_counter
        column_ids[:, j] = column_counter
        is_record = record_delim[:, j]
        is_field = field_delim[:, j]
        record_counter = record_counter + is_record
        column_counter = np.where(is_record, 0,
                                  column_counter + is_field)
    return _finalise(emissions, record_ids.reshape(-1)[:n],
                     column_ids.reshape(-1)[:n], final_state)
