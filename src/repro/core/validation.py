"""Format validation and column-count handling (paper §4.3).

ParPaRaw's DFA simulation makes validation almost free: it is always aware
of the state a symbol is read in, so *invalid state transitions* (the input
drives the automaton into the INV sink) and a *non-accepting end state*
(truncated quoted field, dangling CR...) are detected as a by-product.

Column-count inference and validation follow §4.3: per-record field counts
are derived from the delimiter bitmaps; their maximum (a parallel reduction
in the paper) gives the inferred column count, and deviating records are
kept, rejected, or escalated per the configured policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.options import ColumnCountPolicy
from repro.core.tagging import TagResult
from repro.dfa.automaton import Dfa
from repro.errors import ParseError

__all__ = ["ValidationReport", "record_field_counts", "validate_input",
           "apply_column_policy"]


@dataclass
class ValidationReport:
    """Everything the validation capabilities learned about the input."""

    #: DFA state after the last symbol.
    final_state: int
    final_state_name: str
    #: Whether the final state is accepting (False = truncated input).
    end_accepted: bool
    #: First byte offset at which the automaton was in the INV sink,
    #: or ``None`` if the input never went invalid.
    invalid_position: int | None
    #: Per-record field counts (length = number of records).
    field_counts: np.ndarray
    #: Minimum / maximum observed columns per record (0 when no records).
    min_columns: int
    max_columns: int

    @property
    def is_valid(self) -> bool:
        return self.end_accepted and self.invalid_position is None

    @property
    def inferred_num_columns(self) -> int:
        """The §4.3 inference: a max-reduction over per-record counts."""
        return self.max_columns


def record_field_counts(tags: TagResult) -> np.ndarray:
    """Fields per record: field delimiters within the record plus one.

    Covers the trailing unterminated record; blank-line records count one
    (empty) field, matching the record semantics of the tagger.
    """
    counts = np.bincount(tags.record_ids[tags.field_delim],
                         minlength=tags.num_records).astype(np.int64)
    return counts + 1


def validate_input(tags: TagResult, dfa: Dfa,
                   invalid_position: int | None,
                   strict: bool) -> ValidationReport:
    """Build the validation report; raise in strict mode on violations."""
    final_state = tags.final_state
    end_accepted = dfa.is_accepting(final_state)
    counts = record_field_counts(tags)
    if counts.size:
        min_columns = int(counts.min())
        max_columns = int(counts.max())
    else:
        min_columns = max_columns = 0
    report = ValidationReport(
        final_state=final_state,
        final_state_name=dfa.state_names[final_state],
        end_accepted=end_accepted,
        invalid_position=invalid_position,
        field_counts=counts,
        min_columns=min_columns,
        max_columns=max_columns,
    )
    if strict and invalid_position is not None:
        raise ParseError(
            f"input drives the automaton into the invalid state at byte "
            f"{invalid_position}", byte_offset=invalid_position)
    if strict and not end_accepted:
        raise ParseError(
            f"input ends in non-accepting state "
            f"{report.final_state_name!r} (truncated field?)")
    return report


def apply_column_policy(report: ValidationReport, expected_columns: int,
                        policy: ColumnCountPolicy,
                        strict: bool) -> np.ndarray:
    """Which records survive the column-count policy.

    Returns a boolean mask over records.  ``LENIENT`` keeps everything;
    ``REJECT`` drops records whose field count differs from
    ``expected_columns``; ``STRICT`` raises on the first deviation.
    """
    counts = report.field_counts
    if policy is ColumnCountPolicy.LENIENT:
        return np.ones(counts.size, dtype=bool)
    deviating = counts != expected_columns
    if policy is ColumnCountPolicy.STRICT and bool(deviating.any()):
        first = int(np.flatnonzero(deviating)[0])
        raise ParseError(
            f"record {first} has {int(counts[first])} fields, expected "
            f"{expected_columns}", record=first)
    return ~deviating
