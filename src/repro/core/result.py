"""Parse results: the columnar table plus everything learned on the way."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.columnar.table import Table
from repro.core.conversion import CollaborationStats
from repro.core.options import ParseOptions
from repro.core.validation import ValidationReport
from repro.utils.timing import StepTimer

__all__ = ["ParseResult"]


@dataclass
class ParseResult:
    """Output of one :class:`~repro.core.parser.ParPaRawParser` run.

    Attributes
    ----------
    table:
        The parsed, typed, columnar output (selected columns only).
    num_records:
        Records found in the input (before policy-based rejection).
    num_rows:
        Rows materialised (records surviving skips and rejection).
    rejected_records:
        Records dropped by the column-count policy or an invalid tail.
    validation:
        Format/column-count findings (paper §4.3 capabilities).
    timer:
        Wall-clock per-step breakdown, with the paper's step names
        (``parse``, ``scan``, ``tag``, ``partition``, ``convert``).
    collaboration:
        Field counts per collaboration level across all columns (§3.3).
    options:
        The options the parse ran with (after schema resolution the
        effective schema is ``table.schema``).
    """

    table: Table
    num_records: int
    num_rows: int
    rejected_records: int
    validation: ValidationReport
    timer: StepTimer
    collaboration: CollaborationStats
    options: ParseOptions
    input_bytes: int = 0

    @property
    def total_rejected_fields(self) -> int:
        """Fields that failed type conversion across all columns."""
        return self.table.total_rejects()

    def step_seconds(self) -> dict[str, float]:
        """The Figure 9-style wall-clock breakdown."""
        return self.timer.totals()

    def parsing_rate(self) -> float:
        """Measured bytes/second over the whole pipeline."""
        total = self.timer.total()
        return self.input_bytes / total if total > 0 else 0.0

    def workload_stats(self):
        """This parse's shape as :class:`~repro.gpusim.cost_model.WorkloadStats`.

        Bridges a real parse to the GPU cost model: feed the returned
        statistics to :class:`~repro.gpusim.cost_model.PipelineCostModel`
        to estimate what the same workload would cost on the simulated
        device.
        """
        from repro.core.options import TaggingMode
        from repro.gpusim.cost_model import WorkloadStats

        tag_bytes = {TaggingMode.TAGGED: 4.0, TaggingMode.INLINE: 0.0,
                     TaggingMode.DELIMITED: 0.125}[self.options.tagging_mode]
        # Every non-string column costs conversion work (bool included).
        from repro.columnar.schema import DataType
        numeric = sum(1 for f in self.table.schema
                      if f.dtype is not DataType.STRING)
        return WorkloadStats.from_result(
            input_bytes=self.input_bytes,
            chunk_size=self.options.chunk_size,
            num_states=self.options.resolved_dfa().num_states,
            num_columns=max(1, self.table.num_columns),
            num_records=max(1, self.num_rows),
            numeric_columns=numeric,
            record_tag_bytes=tag_bytes,
        )

    def __repr__(self) -> str:
        return (f"ParseResult(rows={self.num_rows}, "
                f"records={self.num_records}, "
                f"rejected={self.rejected_records}, "
                f"columns={self.table.num_columns})")
