"""Chunk-local record/column offsets and their scans (paper §3.2).

This is the paper-faithful formulation used by the ``CHUNKED`` tagging
implementation and the ablation benchmarks:

* every chunk builds its three *bitmap indexes* (record delimiters, field
  delimiters, control symbols);
* the chunk's **record count** is the popcount of its record-delimiter
  bitmap;
* the chunk's **column offset** is *absolute* when the chunk contains a
  record delimiter — computed by zeroing all field-delimiter bits preceding
  the last record-delimiter bit and popcounting the rest — and *relative*
  (its total field-delimiter popcount) otherwise;
* an exclusive prefix sum over record counts yields each chunk's record
  offset, and an exclusive scan under the rel/abs operator
  (:class:`~repro.scan.operators.ColumnOffsetMonoid`) yields each chunk's
  entering column offset.

Bitmap indexes are materialised both as boolean matrices (for the
vectorised path) and as Python integers (for the bit-twiddling formulation
with :func:`~repro.utils.bits.clear_bits_below` — exercised by the tests to
match the figures' worked examples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scan.numpy_scan import exclusive_sum, scan_column_offsets
from repro.scan.operators import ColumnOffset
from repro.utils.bits import clear_bits_below, last_set_bit_position, popcount64

__all__ = [
    "ChunkOffsets",
    "chunk_bitmap_ints",
    "column_offset_from_bitmaps",
    "compute_chunk_offsets",
]


@dataclass(frozen=True)
class ChunkOffsets:
    """Per-chunk offsets after the scans.

    Attributes
    ----------
    record_counts:
        ``(num_chunks,)`` record delimiters per chunk.
    record_offsets:
        ``(num_chunks,)`` record id entering each chunk (exclusive sum).
    column_kinds / column_values:
        The chunks' *own* rel/abs column offsets (pre-scan).
    entering_column_offsets:
        ``(num_chunks,)`` absolute column offset entering each chunk
        (post-scan; the first chunk enters at column 0).
    """

    record_counts: np.ndarray
    record_offsets: np.ndarray
    column_kinds: np.ndarray
    column_values: np.ndarray
    entering_column_offsets: np.ndarray


def chunk_bitmap_ints(record_delim_row: np.ndarray,
                      field_delim_row: np.ndarray) -> tuple[int, int]:
    """One chunk's bitmap indexes as integers (bit ``j`` = position ``j``).

    Provided for the paper-exact bit-twiddling formulation; requires the
    chunk to fit in 64 positions (the paper's chunks do: 4-64 bytes).
    """
    if record_delim_row.size > 64:
        raise ValueError("integer bitmaps support at most 64 positions")
    rd = 0
    fd = 0
    for j in range(record_delim_row.size):
        if record_delim_row[j]:
            rd |= 1 << j
        if field_delim_row[j]:
            fd |= 1 << j
    return rd, fd


def column_offset_from_bitmaps(record_bits: int,
                               field_bits: int) -> ColumnOffset:
    """A chunk's rel/abs column offset from its two bitmap indexes.

    Implements §3.2 verbatim: absolute iff the record bitmap is non-empty,
    in which case the field bits below (and at) the last record bit are
    zeroed before popcounting.

    >>> column_offset_from_bitmaps(0b000100, 0b110011).value
    2
    >>> column_offset_from_bitmaps(0, 0b110011).kind.name
    'RELATIVE'
    """
    if record_bits == 0:
        return ColumnOffset.relative(popcount64(field_bits))
    last = last_set_bit_position(record_bits)
    remaining = clear_bits_below(field_bits, last + 1)
    return ColumnOffset.absolute(popcount64(remaining))


def compute_chunk_offsets(record_delim: np.ndarray,
                          field_delim: np.ndarray) -> ChunkOffsets:
    """Vectorised §3.2 over all chunks at once.

    Parameters
    ----------
    record_delim / field_delim:
        ``(num_chunks, chunk_size)`` boolean matrices (the bitmap indexes
        in matrix form).  ``field_delim`` holds *field* delimiters only.
    """
    if record_delim.shape != field_delim.shape or record_delim.ndim != 2:
        raise ValueError("expected matching (num_chunks, chunk_size) masks")
    num_chunks, chunk_size = record_delim.shape

    record_counts = record_delim.sum(axis=1).astype(np.int64)
    record_offsets = exclusive_sum(record_counts)

    has_record = record_counts > 0
    # Position of the last record delimiter per chunk (-1 when none):
    # argmax on the reversed mask finds the last set position.
    reversed_ = record_delim[:, ::-1]
    last_from_end = np.argmax(reversed_, axis=1)
    last_positions = np.where(has_record,
                              chunk_size - 1 - last_from_end, -1)
    # Zero field bits at positions <= last record delimiter.
    positions = np.arange(chunk_size)
    after_last = positions[None, :] > last_positions[:, None]
    absolute_values = (field_delim & after_last).sum(axis=1)
    relative_values = field_delim.sum(axis=1)
    column_values = np.where(has_record, absolute_values,
                             relative_values).astype(np.int64)
    column_kinds = has_record.copy()

    entering_kinds, entering_values = scan_column_offsets(
        column_kinds, column_values, exclusive=True)
    # The sequential automaton starts at a record boundary, so the seed
    # relative(0) is effectively absolute 0; the scanned values are the
    # entering column offsets regardless of their kind flag.
    return ChunkOffsets(
        record_counts=record_counts,
        record_offsets=record_offsets,
        column_kinds=column_kinds,
        column_values=column_values,
        entering_column_offsets=entering_values,
    )
