"""The ParPaRaw parser: the stage pipeline behind a one-call facade.

:class:`ParPaRawParser` wires the phases of paper §3-§4 together as an
explicit stage pipeline (:mod:`repro.core.stages`):

``prune -> chunk -> stv -> scan -> tag -> validate -> partition -> convert``

scheduled by a pluggable executor (:mod:`repro.exec`) — the serial
executor by default, or the sharded multiprocess executor — with
wall-clock step timing under the paper's step names (``prune``/``parse``/
``scan``/``tag``/``partition``/``convert``), so measured breakdowns line
up with the Figure 9/11 benchmarks regardless of the backend.
:func:`parse_bytes` is the one-call convenience entry point.
"""

from __future__ import annotations

import numpy as np

from repro.core.options import ParseOptions
from repro.core.result import ParseResult
from repro.core.stages import (
    ConvertedOutput,
    PipelineContext,
    RawInput,
    as_input_array,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.utils.timing import StepTimer

__all__ = ["ParPaRawParser", "parse_bytes", "set_default_executor_factory",
           "set_default_planner_factory"]

#: Factory invoked when a parser is built without an explicit executor.
#: ``repro.exec`` registers the :class:`~repro.exec.SerialExecutor` here at
#: import time (dependency inversion: the executor layer depends on the
#: pipeline, never the reverse, so ``repro.core`` stays import-clean).
_default_executor_factory = None

#: Factory invoked when ``options.plan == "auto"`` and no planner was
#: passed.  ``repro.plan`` registers its process-wide shared planner here
#: at import time (same inversion as the executor factory).
_default_planner_factory = None


def set_default_executor_factory(factory) -> None:
    """Register the zero-argument factory for the default executor."""
    global _default_executor_factory
    _default_executor_factory = factory


def set_default_planner_factory(factory) -> None:
    """Register the zero-argument factory for the default planner."""
    global _default_planner_factory
    _default_planner_factory = factory


class _InlineSchedule:
    """Fallback scheduler when no executor layer has been registered.

    Runs the default pipeline inline; only reachable when ``repro.core``
    is imported standalone, without the ``repro`` package root (which
    imports ``repro.exec`` and registers the real default).
    """

    def execute(self, ctx, payload, *, until=None):
        from repro.core.stages import default_pipeline
        return default_pipeline().run(ctx, payload, until=until)

    def close(self) -> None:
        pass


def parse_bytes(data: bytes, options: ParseOptions | None = None,
                executor=None, tracer: Tracer = NULL_TRACER,
                metrics: MetricsRegistry = NULL_METRICS, planner=None,
                **option_kwargs) -> ParseResult:
    """Parse ``data`` in one call.

    ``option_kwargs`` are forwarded to :class:`ParseOptions` when no
    options object is given — e.g. ``parse_bytes(raw, chunk_size=16)``.
    ``executor`` selects the execution backend (default: serial);
    ``tracer``/``metrics`` attach :mod:`repro.obs` sinks; ``planner``
    attaches a :class:`repro.plan.Planner` (see :class:`ParPaRawParser`).
    """
    if options is None:
        options = ParseOptions(**option_kwargs)
    elif option_kwargs:
        options = options.with_(**option_kwargs)
    return ParPaRawParser(options, executor=executor, tracer=tracer,
                          metrics=metrics, planner=planner).parse(data)


class ParPaRawParser:
    """Massively parallel parser for delimiter-separated data.

    Parameters
    ----------
    options:
        Parse configuration (defaults to :class:`ParseOptions`).
    executor:
        Execution backend from :mod:`repro.exec`; ``None`` selects the
        :class:`~repro.exec.SerialExecutor`, which reproduces the
        historical monolithic behaviour bit for bit.  Pass a
        :class:`~repro.exec.ShardedExecutor` to spread the byte-bound
        phases over a process pool.
    tracer / metrics:
        Observability sinks from :mod:`repro.obs`.  The defaults are the
        shared no-op singletons; pass real instances to record spans and
        counters (see ``docs/OBSERVABILITY.md``).
    planner:
        Self-tuning planner from :mod:`repro.plan` (duck-typed:
        ``plan_options``/``observe``).  When ``options.plan == "auto"``
        the planner re-plans the performance knobs per input before
        parsing; whenever a planner is attached, every finished parse is
        fed back through ``observe`` so its calibration store learns the
        substrate's real stage costs.  ``None`` falls back to the
        process-wide planner registered by ``repro.plan`` (only when
        ``plan == "auto"``).

    Example
    -------
    >>> from repro.core import ParPaRawParser, ParseOptions
    >>> result = ParPaRawParser(ParseOptions()).parse(b'a,b\\n"x,y",2\\n')
    >>> result.table.num_rows
    2
    >>> result.table.row(1)
    ('x,y', '2')
    """

    def __init__(self, options: ParseOptions | None = None,
                 executor=None, tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_METRICS, planner=None):
        self.options = options if options is not None else ParseOptions()
        self._dfa = self.options.resolved_dfa()
        if executor is None:
            if _default_executor_factory is not None:
                executor = _default_executor_factory()
            else:
                executor = _InlineSchedule()
        self.executor = executor
        self.tracer = tracer
        self.metrics = metrics
        if planner is None and self.options.plan == "auto" \
                and _default_planner_factory is not None:
            planner = _default_planner_factory()
        self.planner = planner

    # -- public API ---------------------------------------------------------

    def parse(self, data: bytes | bytearray | np.ndarray) -> ParseResult:
        """Parse ``data`` and return the columnar result."""
        timer = StepTimer()
        raw = self._as_array(data)
        tracer, metrics = self.tracer, self.metrics
        options, dfa = self.options, self._dfa
        if options.plan == "auto":
            if self.planner is not None:
                options = self.planner.plan_options(
                    raw, options, tracer=tracer, metrics=metrics)
                dfa = options.resolved_dfa()
            else:
                # No planner layer loaded: parse with the knobs as given.
                options = options.with_(plan=None)
        ctx = PipelineContext(options=options, dfa=dfa,
                              timer=timer, tracer=tracer, metrics=metrics)
        payload = RawInput(raw=raw, input_bytes=int(raw.size))
        if metrics.enabled:
            metrics.count("bytes.in", int(raw.size))
        if tracer.enabled:
            with tracer.span("parse", input_bytes=int(raw.size)):
                out: ConvertedOutput = self.executor.execute(ctx, payload)
        else:
            out = self.executor.execute(ctx, payload)
        result = ParseResult(
            table=out.table,
            num_records=out.num_records,
            num_rows=out.num_rows,
            rejected_records=out.rejected_records,
            validation=out.report,
            timer=timer,
            collaboration=out.collaboration,
            options=options,
            input_bytes=out.input_bytes,
        )
        if self.planner is not None:
            self.planner.observe(result, metrics=metrics)
        return result

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _as_array(data: bytes | bytearray | np.ndarray) -> np.ndarray:
        return as_input_array(data)
