"""The ParPaRaw parser: orchestration of all pipeline phases.

:class:`ParPaRawParser` wires the phases of paper §3-§4 together:

``prune rows -> chunk -> parse (STVs) -> scan -> tag -> validate ->
partition -> convert``

with wall-clock step timing under the paper's step names, so measured
breakdowns line up with the Figure 9/11 benchmarks.  :func:`parse_bytes`
is the one-call convenience entry point.
"""

from __future__ import annotations

import numpy as np

from repro.columnar.schema import DataType, Field, Schema
from repro.columnar.table import Table
from repro.core.chunking import chunk_groups
from repro.core.context import compute_transition_vectors, chunk_start_states
from repro.core.conversion import CollaborationStats, convert_column
from repro.core.css import ColumnIndex
from repro.core.options import (
    ColumnCountPolicy,
    ParseOptions,
    TaggingImpl,
    TaggingMode,
)
from repro.core.partition import partition_by_column
from repro.core.result import ParseResult
from repro.core.selection import prune_rows, row_mapping, selected_column_mask
from repro.core.tagging_modes import build_keep_mask, column_indexes, \
    prepare_css
from repro.core.tagging import TagResult, compute_emissions, tag_chunked, \
    tag_global
from repro.core.typeinfer import infer_column_type
from repro.core.validation import apply_column_policy, validate_input
from repro.errors import ParseError
from repro.utils.timing import StepTimer

__all__ = ["ParPaRawParser", "parse_bytes"]


def parse_bytes(data: bytes, options: ParseOptions | None = None,
                **option_kwargs) -> ParseResult:
    """Parse ``data`` in one call.

    ``option_kwargs`` are forwarded to :class:`ParseOptions` when no
    options object is given — e.g. ``parse_bytes(raw, chunk_size=16)``.
    """
    if options is None:
        options = ParseOptions(**option_kwargs)
    elif option_kwargs:
        options = options.with_(**option_kwargs)
    return ParPaRawParser(options).parse(data)


class ParPaRawParser:
    """Massively parallel parser for delimiter-separated data.

    Example
    -------
    >>> from repro.core import ParPaRawParser, ParseOptions
    >>> result = ParPaRawParser(ParseOptions()).parse(b'a,b\\n"x,y",2\\n')
    >>> result.table.num_rows
    2
    >>> result.table.row(1)
    ('x,y', '2')
    """

    def __init__(self, options: ParseOptions | None = None):
        self.options = options if options is not None else ParseOptions()
        self._dfa = self.options.resolved_dfa()

    # -- public API ---------------------------------------------------------

    def parse(self, data: bytes | bytearray | np.ndarray) -> ParseResult:
        """Parse ``data`` and return the columnar result."""
        options = self.options
        timer = StepTimer()
        raw = self._as_array(data)
        input_bytes = int(raw.size)

        if options.skip_rows:
            with timer.step("prune"):
                raw = prune_rows(raw, options.skip_rows,
                                 options.dialect.record_delimiter_byte)

        groups, chunking, padded_dfa = chunk_groups(
            raw, self._dfa, options.chunk_size)

        with timer.step("parse"):
            vectors = compute_transition_vectors(groups, padded_dfa)
        with timer.step("scan"):
            start_states = chunk_start_states(vectors, padded_dfa)
        with timer.step("tag"):
            emissions, final_state, invalid_position = compute_emissions(
                groups, start_states, padded_dfa, chunking)
            if options.tagging_impl is TaggingImpl.CHUNKED:
                tags = tag_chunked(emissions, final_state, chunking)
            else:
                tags = tag_global(emissions, final_state)

        report = validate_input(tags, self._dfa, invalid_position,
                                options.strict)

        # Records that exist structurally: everything except skipped
        # records and the invalid tail.  Column-count inference runs over
        # these (the §4.3 max-reduction), *before* the count policy.
        structural = self._structural_records(tags, report)
        schema, num_columns = self._resolve_column_count(report, structural)
        column_mask = selected_column_mask(num_columns,
                                           options.select_columns)

        valid_records = structural & self._policy_records(
            tags, report, num_columns)
        rows_of_record, num_rows = row_mapping(valid_records)
        rejected = int(tags.num_records - num_rows)

        extended = self._extend_trailing(raw, tags, report)
        data_ext, col_ids, rec_ids, data_mask, delim_mask = extended

        mode = options.tagging_mode
        col_ok = (col_ids < num_columns) & (col_ids >= 0)
        col_ok &= column_mask[np.clip(col_ids, 0, max(0, num_columns - 1))] \
            if num_columns else False
        if tags.num_records:
            # Positions in a trailing comment (no content after the last
            # record delimiter) carry a record id one past the end; they
            # are never content, so clipping is safe.
            rec_ok = valid_records[np.clip(rec_ids, 0,
                                           tags.num_records - 1)]
        else:
            rec_ok = np.zeros(col_ids.shape, dtype=bool)
        if mode is not TaggingMode.TAGGED:
            self._require_consistent_columns(report, valid_records,
                                             num_columns)
        keep = build_keep_mask(mode, data_mask, delim_mask, col_ok, rec_ok)

        with timer.step("partition"):
            part = partition_by_column(data_ext, keep, col_ids, rec_ids,
                                       num_columns)
            css, aux_delims = prepare_css(mode, part, delim_mask, options)

        with timer.step("convert"):
            indexes = column_indexes(mode, part, css, aux_delims, options)
            if schema is None:
                schema = self._infer_schema(part, css, indexes, num_columns)
            columns = []
            out_fields = []
            collaboration = CollaborationStats()
            for column in range(num_columns):
                if not column_mask[column]:
                    continue
                field = schema[column]
                lo = int(part.column_offsets[column])
                hi = int(part.column_offsets[column + 1])
                column_css = css[lo:hi]
                index = indexes[column]
                if mode is TaggingMode.TAGGED:
                    row_of = rows_of_record
                else:
                    row_of = np.arange(num_rows, dtype=np.int64)
                    if index.num_fields != num_rows:
                        raise ParseError(
                            f"column {column} materialised "
                            f"{index.num_fields} fields for {num_rows} "
                            f"records; inline/delimited tagging requires a "
                            f"consistent column count")
                converted, stats = convert_column(
                    field, column_css, index, row_of, num_rows, options)
                columns.append(converted)
                out_fields.append(field)
                collaboration = collaboration + stats

        table = Table(Schema(out_fields), columns)
        return ParseResult(
            table=table,
            num_records=tags.num_records,
            num_rows=num_rows,
            rejected_records=rejected,
            validation=report,
            timer=timer,
            collaboration=collaboration,
            options=options,
            input_bytes=input_bytes,
        )

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _as_array(data: bytes | bytearray | np.ndarray) -> np.ndarray:
        if isinstance(data, np.ndarray):
            if data.dtype != np.uint8:
                raise ParseError("input array must be uint8")
            return data
        return np.frombuffer(bytes(data), dtype=np.uint8)

    def _resolve_column_count(self, report,
                              structural: np.ndarray
                              ) -> tuple[Schema | None, int]:
        """The output schema (None = infer later) and the column count.

        Without a schema the count is inferred as the maximum field count
        over structurally present records (paper §4.3) — rejected-by-policy
        records still participate; invalid-tail/skipped records do not.
        """
        options = self.options
        if options.schema is not None:
            return options.schema, len(options.schema)
        counts = report.field_counts[structural]
        inferred = int(counts.max()) if counts.size else 0
        return None, inferred

    def _structural_records(self, tags: TagResult, report) -> np.ndarray:
        """Records that exist at all: not skipped, not in the invalid tail."""
        options = self.options
        valid = np.ones(tags.num_records, dtype=bool)
        if options.skip_records:
            skip = np.array(sorted(r for r in options.skip_records
                                   if 0 <= r < tags.num_records),
                            dtype=np.int64)
            valid[skip] = False
        if report.invalid_position is not None and tags.num_records:
            first_bad = int(tags.record_ids[report.invalid_position])
            valid[first_bad:] = False
        return valid

    def _policy_records(self, tags: TagResult, report,
                        num_columns: int) -> np.ndarray:
        """Records surviving the column-count policy and tail checks."""
        options = self.options
        valid = apply_column_policy(report, num_columns,
                                    options.column_count_policy,
                                    options.strict)
        if tags.has_trailing_record and not report.end_accepted \
                and tags.num_records:
            # Truncated trailing record (e.g. unclosed quote): reject it in
            # REJECT/STRICT modes, keep best-effort data in LENIENT mode.
            if options.column_count_policy is not ColumnCountPolicy.LENIENT:
                valid[tags.num_records - 1] = False
        return valid

    def _extend_trailing(self, raw: np.ndarray, tags: TagResult, report
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                    np.ndarray, np.ndarray]:
        """Append a virtual record delimiter for an unterminated record.

        This gives the trailing record's last field a terminator, so the
        inline/delimited CSS modes need no special-casing.  The virtual
        position is never field data.
        """
        delim_mask = tags.record_delim | tags.field_delim
        if not tags.has_trailing_record:
            return (raw, tags.column_ids, tags.record_ids, tags.data_mask,
                    delim_mask)
        last_record = tags.num_records - 1
        last_column = int(report.field_counts[last_record]) - 1
        data_ext = np.concatenate([
            raw, np.array([self.options.dialect.record_delimiter_byte],
                          dtype=np.uint8)])
        col_ids = np.concatenate([tags.column_ids,
                                  np.array([last_column], dtype=np.int64)])
        rec_ids = np.concatenate([tags.record_ids,
                                  np.array([last_record], dtype=np.int64)])
        data_mask = np.concatenate([tags.data_mask, [False]])
        delim_ext = np.concatenate([delim_mask, [True]])
        return data_ext, col_ids, rec_ids, data_mask, delim_ext

    def _require_consistent_columns(self, report, valid_records: np.ndarray,
                                    num_columns: int) -> None:
        counts = report.field_counts[valid_records] \
            if report.field_counts.size else report.field_counts
        if counts.size and (int(counts.min()) != num_columns
                            or int(counts.max()) != num_columns):
            raise ParseError(
                "inline/delimited tagging modes require a constant number "
                f"of columns per record (expected {num_columns}, observed "
                f"{int(counts.min())}..{int(counts.max())}); use "
                "TaggingMode.TAGGED or ColumnCountPolicy.REJECT")

    def _infer_schema(self, part, css: np.ndarray,
                      indexes: list[ColumnIndex],
                      num_columns: int) -> Schema:
        """Schema when none was given: inferred types or all strings."""
        fields = []
        for column in range(num_columns):
            if self.options.infer_types:
                lo = int(part.column_offsets[column])
                hi = int(part.column_offsets[column + 1])
                dtype = infer_column_type(css[lo:hi], indexes[column])
            else:
                dtype = DataType.STRING
            fields.append(Field(f"col{column}", dtype))
        return Schema(fields)
