"""Dialect detection (sniffing) from a raw sample.

Practical front door for the schema-less path: given the first kilobytes
of an unknown delimiter-separated file, guess the field delimiter, whether
quoting is in use, and whether ``#`` comment lines appear — then hand the
resulting :class:`~repro.dfa.dialects.Dialect` to the parser.

The approach is deliberately simple and fully explainable (no ML): for
each candidate delimiter, parse the sample with the reference parser under
that dialect and score the outcome by (a) the number of columns, (b) the
consistency of the per-record column count, and (c) the absence of
invalid-state aborts.  Consistent multi-column interpretations win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfa.csv import dialect_dfa
from repro.dfa.dialects import Dialect
from repro.errors import DialectError

__all__ = ["SniffResult", "sniff_dialect"]

#: Delimiters tried, most common first (ties break in this order).
CANDIDATE_DELIMITERS = (b",", b"\t", b";", b"|", b" ", b":")


@dataclass(frozen=True)
class SniffResult:
    """The sniffer's verdict."""

    dialect: Dialect
    #: Inferred columns per record under the winning dialect.
    num_columns: int
    #: Fraction of sampled records with exactly ``num_columns`` fields.
    consistency: float
    #: Records examined.
    records_sampled: int


def _score(data: bytes, dialect: Dialect) -> tuple[float, int, int]:
    """(score, columns, records) for one candidate dialect."""
    # Imported lazily: baselines import core.options which imports this
    # package — a module-level import would be circular.
    from repro.baselines.sequential import sequential_rows  # parlint: disable=PPR503 -- sniffer scores candidates with the cheap sequential parser; lazy to avoid a baselines<->dfa cycle
    try:
        dfa = dialect_dfa(dialect)
    except DialectError:
        return (-1.0, 0, 0)
    rows, state, _ = sequential_rows(data, dfa)
    if not rows:
        return (-1.0, 0, 0)
    counts: dict[int, int] = {}
    for row in rows:
        counts[len(row)] = counts.get(len(row), 0) + 1
    columns, majority = max(counts.items(), key=lambda kv: kv[1])
    consistency = majority / len(rows)
    if columns < 2:
        # A single column matches everything; heavily penalise so a real
        # delimiter (if any) wins, but keep it as the last resort.
        return (0.1 * consistency, columns, len(rows))
    invalid_penalty = 0.5 if dfa.invalid_state is not None \
        and state == dfa.invalid_state else 0.0
    score = consistency * (1.0 + 0.05 * min(columns, 20)) \
        - invalid_penalty
    return (score, columns, len(rows))


def sniff_dialect(sample: bytes, max_records: int = 200) -> SniffResult:
    """Guess the dialect of ``sample``.

    Parameters
    ----------
    sample:
        Leading bytes of the input (a few KB suffice).  Should end at a
        line boundary if possible; a trailing partial line is tolerated.
    max_records:
        Cap on records examined per candidate.
    """
    if not sample:
        raise DialectError("cannot sniff an empty sample")
    # Truncate to whole lines when there is at least one newline.
    cut = sample.rfind(b"\n")
    if cut > 0:
        sample = sample[:cut + 1]
    lines = sample.split(b"\n")
    if len(lines) > max_records:
        sample = b"\n".join(lines[:max_records]) + b"\n"

    has_comments = any(line.startswith(b"#") for line in sample.split(b"\n")
                       if line)
    quoting_likely = sample.count(b'"') >= 2

    best: tuple[float, int, int] | None = None
    best_dialect: Dialect | None = None
    for delimiter in CANDIDATE_DELIMITERS:
        for quote in ((b'"', None) if quoting_likely else (None, b'"')):
            try:
                dialect = Dialect(
                    delimiter=delimiter,
                    quote=quote,
                    doubled_quote=quote is not None,
                    comment=b"#" if has_comments and delimiter != b"#"
                    else None)
            except DialectError:
                continue
            result = _score(sample, dialect)
            if best is None or result[0] > best[0]:
                best = result
                best_dialect = dialect
    assert best is not None and best_dialect is not None
    score, columns, records = best
    if score <= 0:
        raise DialectError("sample does not look delimiter separated")
    return SniffResult(dialect=best_dialect, num_columns=columns,
                       consistency=min(1.0, score / (1.0 + 0.05
                                                     * min(columns, 20))),
                       records_sampled=records)
