"""DFA machinery: parsing rules as deterministic finite automata.

ParPaRaw expresses parsing rules as a DFA (paper §3.1): the DFA state is the
parsing context, the transition table (compressed over *symbol groups*,
paper §4.5, Table 1) drives state updates, and a Mealy-style *emission*
table classifies each consumed symbol as data, a field delimiter, a record
delimiter, or a control symbol to discard.

Entry points:

* :class:`~repro.dfa.dialects.Dialect` — declarative description of a
  delimiter-separated format (delimiters, quoting, escapes, comments);
* :func:`~repro.dfa.csv.rfc4180_dfa` — the paper's 6-state RFC 4180 CSV DFA;
* :class:`~repro.dfa.builder.DfaBuilder` — fluent construction of custom
  automata;
* :mod:`~repro.dfa.logformats` — Common / Extended Log Format automata;
* :mod:`~repro.dfa.minimize` — Hopcroft + data-parallel minimisation,
  canonical forms, and behavioural equivalence/inclusion checking.
"""

from repro.dfa.automaton import Dfa, Emission
from repro.dfa.builder import DfaBuilder
from repro.dfa.dialects import Dialect
from repro.dfa.csv import rfc4180_dfa, dialect_dfa
from repro.dfa.logformats import common_log_format_dfa, extended_log_format_dfa
from repro.dfa.transitions import (
    transition_vector,
    compose,
    identity_vector,
    simulate,
)
from repro.dfa.compression import group_symbols, CompressedTable
from repro.dfa.minimize import (
    Minimization,
    canonicalize,
    equivalent,
    included,
    is_canonical,
    minimize,
)
from repro.dfa.registry import REGISTERED_AUTOMATA, registered_dfas
from repro.dfa.utf8 import utf8_validation_dfa, validate_utf8
from repro.dfa.sniffer import SniffResult, sniff_dialect

__all__ = [
    "Dfa",
    "Emission",
    "DfaBuilder",
    "Dialect",
    "rfc4180_dfa",
    "dialect_dfa",
    "common_log_format_dfa",
    "extended_log_format_dfa",
    "transition_vector",
    "compose",
    "identity_vector",
    "simulate",
    "group_symbols",
    "CompressedTable",
    "utf8_validation_dfa",
    "validate_utf8",
    "sniff_dialect",
    "SniffResult",
    "Minimization",
    "minimize",
    "canonicalize",
    "is_canonical",
    "equivalent",
    "included",
    "REGISTERED_AUTOMATA",
    "registered_dfas",
]
