"""DFAs for web-server log formats.

The paper motivates ParPaRaw with log files as a second major source of
delimiter-separated data (§1): the NCSA Common Log Format and the W3C
Extended Log Format.  Both are space-delimited with context-dependent
symbols, which makes them good demonstrations of the DFA approach:

* the Common Log Format wraps the timestamp in ``[...]`` and the request in
  ``"..."`` — spaces inside either are data, not delimiters;
* the Extended Log Format starts directive lines with ``#`` — everything on
  such a line, including quotes, must be ignored, which again defeats
  quote-counting.
"""

from __future__ import annotations

from repro.dfa.automaton import Dfa, Emission
from repro.dfa.builder import DfaBuilder
from repro.dfa.dialects import Dialect

__all__ = ["common_log_format_dfa", "extended_log_format_dfa"]


def common_log_format_dfa() -> Dfa:
    """DFA for NCSA Common Log Format lines.

    ``host ident authuser [date] "request" status bytes``

    Space-delimited fields, with two enclosing conventions: square brackets
    around the timestamp and double quotes around the request line.  Spaces
    inside either enclosure are field data.
    """
    b = DfaBuilder()
    b.state("EOR", accepting=True)      # record start
    b.state("FLD", accepting=True)      # inside a bare field
    b.state("EOF", accepting=True)      # just after a field delimiter
    b.state("BRK")                       # inside [...]
    b.state("QTD")                       # inside "..."
    b.state("BRK_END", accepting=True)  # just after closing ]
    b.state("QTD_END", accepting=True)  # just after closing "
    b.invalid_state("INV")

    b.group("EOL", b"\n")
    b.group("SP", b" ")
    b.group("LBRK", b"[")
    b.group("RBRK", b"]")
    b.group("QUOTE", b'"')
    b.catch_all("OTHER")

    fdel = Emission.FIELD_DELIMITER
    rdel = Emission.RECORD_DELIMITER
    data = Emission.DATA
    ctrl = Emission.CONTROL

    for state in ("EOR", "FLD", "EOF", "BRK_END", "QTD_END"):
        b.transition(state, "EOL", "EOR", rdel)
        b.transition(state, "SP", "EOF", fdel)
    for state in ("EOR", "EOF"):
        b.transition(state, "LBRK", "BRK", ctrl)
        b.transition(state, "QUOTE", "QTD", ctrl)
        b.transition(state, "OTHER", "FLD", data)
        b.transition(state, "RBRK", "FLD", data)
    b.transition("FLD", "OTHER", "FLD", data)
    b.transition("FLD", "LBRK", "FLD", data)
    b.transition("FLD", "RBRK", "FLD", data)
    b.transition("FLD", "QUOTE", "INV", ctrl)

    # Inside [...]: everything except ] is data (including spaces/quotes).
    b.transition("BRK", "OTHER", "BRK", data)
    b.transition("BRK", "SP", "BRK", data)
    b.transition("BRK", "QUOTE", "BRK", data)
    b.transition("BRK", "LBRK", "BRK", data)
    b.transition("BRK", "RBRK", "BRK_END", ctrl)
    # Newline inside a bracketed timestamp is malformed.

    # Inside "...": everything except " is data.
    b.transition("QTD", "OTHER", "QTD", data)
    b.transition("QTD", "SP", "QTD", data)
    b.transition("QTD", "LBRK", "QTD", data)
    b.transition("QTD", "RBRK", "QTD", data)
    b.transition("QTD", "QUOTE", "QTD_END", ctrl)

    # After a closing bracket/quote only a delimiter may follow; anything
    # else is malformed (handled by the INV default).

    b.start("EOR")
    return b.build()


def extended_log_format_dfa() -> Dfa:
    """DFA for W3C Extended Log Format lines.

    Space-delimited fields with ``#`` directive lines (``#Fields: ...`` and
    friends).  Directive lines produce no records and their content —
    including any quotes — is ignored, exactly the situation where a prior
    sequential pass was previously required (paper §1).
    """
    b = DfaBuilder()
    b.state("EOR", accepting=True)
    b.state("FLD", accepting=True)
    b.state("EOF", accepting=True)
    b.state("QTD")
    b.state("QTD_END", accepting=True)
    b.invalid_state("INV")
    b.state("DIRECTIVE", accepting=True)

    b.group("EOL", b"\n")
    b.group("SP", b" ")
    b.group("QUOTE", b'"')
    b.group("HASH", b"#")
    b.catch_all("OTHER")

    fdel = Emission.FIELD_DELIMITER
    rdel = Emission.RECORD_DELIMITER
    data = Emission.DATA
    ctrl = Emission.CONTROL

    for state in ("EOR", "FLD", "EOF", "QTD_END"):
        b.transition(state, "EOL", "EOR", rdel)
        b.transition(state, "SP", "EOF", fdel)
    for state in ("EOR", "EOF"):
        b.transition(state, "QUOTE", "QTD", ctrl)
        b.transition(state, "OTHER", "FLD", data)
    b.transition("EOR", "HASH", "DIRECTIVE", Emission.COMMENT)
    b.transition("EOF", "HASH", "FLD", data)
    b.transition("FLD", "OTHER", "FLD", data)
    b.transition("FLD", "HASH", "FLD", data)
    b.transition("FLD", "QUOTE", "INV", ctrl)

    b.transition("QTD", "OTHER", "QTD", data)
    b.transition("QTD", "SP", "QTD", data)
    b.transition("QTD", "HASH", "QTD", data)
    b.transition("QTD", "QUOTE", "QTD_END", ctrl)

    comment = Emission.COMMENT
    b.transition("DIRECTIVE", "EOL", "EOR", comment)
    b.transition("DIRECTIVE", "SP", "DIRECTIVE", comment)
    b.transition("DIRECTIVE", "QUOTE", "DIRECTIVE", comment)
    b.transition("DIRECTIVE", "HASH", "DIRECTIVE", comment)
    b.transition("DIRECTIVE", "OTHER", "DIRECTIVE", comment)

    b.start("EOR")
    return b.build()
