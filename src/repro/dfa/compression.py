"""Transition-table compression via symbol groups (paper §4.5).

The raw transition table of a byte-level DFA has 256 symbol rows.  Since
delimiter-separated formats distinguish only a handful of symbols, all byte
values with identical column behaviour collapse into *symbol groups*; the
compressed table has one row per group (the paper's Table 1 shows the
four-group RFC 4180 table).  A small table fits into registers / shared
memory, which is what makes the per-thread multi-DFA simulation viable on a
GPU.

:func:`group_symbols` performs the collapse for an arbitrary 256-row table
and is used both to verify that hand-built DFAs are minimal and to compress
user-supplied tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dfa.automaton import Dfa, NUM_BYTE_VALUES
from repro.errors import DfaError

__all__ = ["CompressedTable", "group_symbols", "expand_table", "is_minimal"]


@dataclass(frozen=True)
class CompressedTable:
    """A symbol-grouped transition table.

    Attributes
    ----------
    symbol_groups:
        ``(256,)`` byte-value -> group map.
    transitions:
        ``(num_groups, num_states)`` next-state table.
    """

    symbol_groups: np.ndarray
    transitions: np.ndarray

    @property
    def num_groups(self) -> int:
        return self.transitions.shape[0]

    @property
    def num_states(self) -> int:
        return self.transitions.shape[1]


def group_symbols(full_table: np.ndarray) -> CompressedTable:
    """Collapse identical rows of a 256-row transition table.

    Parameters
    ----------
    full_table:
        ``(256, num_states)`` array; row ``b`` gives the next state for each
        current state when byte ``b`` is read.

    Returns
    -------
    CompressedTable
        Groups numbered in order of first appearance, so the construction is
        deterministic.
    """
    if full_table.ndim != 2 or full_table.shape[0] != NUM_BYTE_VALUES:
        raise DfaError("expected a (256, num_states) table")
    groups = np.empty(NUM_BYTE_VALUES, dtype=np.uint8)
    rows: list[np.ndarray] = []
    seen: dict[bytes, int] = {}
    for byte in range(NUM_BYTE_VALUES):
        key = full_table[byte].tobytes()
        idx = seen.get(key)
        if idx is None:
            idx = len(rows)
            if idx > 255:
                raise DfaError("more than 256 distinct symbol groups")
            seen[key] = idx
            rows.append(full_table[byte].copy())
        groups[byte] = idx
    return CompressedTable(symbol_groups=groups,
                           transitions=np.stack(rows).astype(full_table.dtype))


def expand_table(dfa: Dfa) -> np.ndarray:
    """Expand a DFA's grouped table back to the full 256-row form."""
    return dfa.transitions[dfa.symbol_groups]


def is_minimal(dfa: Dfa) -> bool:
    """Whether the DFA's grouping is the coarsest possible.

    True when no two of its symbol groups have identical transition *and*
    emission behaviour.  The paper's hand-built tables are minimal; builder
    users may over-split, which is legal but wastes table space.
    """
    signatures = set()
    for g in range(dfa.num_groups):
        key = (dfa.transitions[g].tobytes(), dfa.emissions[:, g].tobytes())
        if key in signatures:
            return False
        signatures.add(key)
    return True
