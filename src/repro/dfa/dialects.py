"""Declarative descriptions of delimiter-separated formats.

A :class:`Dialect` captures the surface syntax of a delimiter-separated
format — field/record delimiters, quoting, escape convention, comment
prefix — from which :func:`repro.dfa.csv.dialect_dfa` derives the DFA that
actually drives parsing.  Keeping the two separated lets tests enumerate
dialect space (quoting on/off, comments on/off, escape styles) while the DFA
construction stays a single, well-tested function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DialectError

__all__ = ["Dialect"]


@dataclass(frozen=True)
class Dialect:
    """Surface syntax of a delimiter-separated format.

    Parameters
    ----------
    delimiter:
        Field delimiter byte (e.g. ``b','``).
    record_delimiter:
        Record delimiter byte (e.g. ``b'\\n'``).  A preceding ``\\r`` is
        treated as part of the delimiter when ``strip_carriage_return`` is
        set.
    quote:
        Enclosing byte (e.g. ``b'"'``) or ``None`` to disable quoting.
        Inside an enclosed field, delimiters are data (RFC 4180 §2.6).
    doubled_quote:
        If true (RFC 4180), a doubled quote inside an enclosed field encodes
        one literal quote.
    escape:
        Optional escape byte (e.g. ``b'\\\\'``); the byte following it inside
        a field is taken literally.  Mutually exclusive with
        ``doubled_quote`` semantics on the same byte.
    comment:
        Optional comment byte (e.g. ``b'#'``); when it appears at the start
        of a record, the remainder of the line is discarded and the line
        does not produce a record.  This is exactly the feature that breaks
        quote-counting parsers (paper §1, §2).
    strip_carriage_return:
        Treat ``\\r`` immediately before the record delimiter as part of it
        (CRLF line endings).
    """

    delimiter: bytes = b","
    record_delimiter: bytes = b"\n"
    quote: bytes | None = b'"'
    doubled_quote: bool = True
    escape: bytes | None = None
    comment: bytes | None = None
    strip_carriage_return: bool = True

    def __post_init__(self) -> None:
        for name in ("delimiter", "record_delimiter"):
            value = getattr(self, name)
            if not isinstance(value, bytes) or len(value) != 1:
                raise DialectError(f"{name} must be a single byte")
        for name in ("quote", "escape", "comment"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, bytes)
                                      or len(value) != 1):
                raise DialectError(f"{name} must be a single byte or None")
        special = [self.delimiter, self.record_delimiter]
        for value in (self.quote, self.escape, self.comment):
            if value is not None:
                special.append(value)
        if len(set(special)) != len(special):
            raise DialectError(
                "delimiter, record delimiter, quote, escape and comment "
                "bytes must be pairwise distinct")
        if self.escape is not None and self.quote is None:
            # An escape outside quotes is permitted, but an escape with no
            # quoting at all is unusual enough to allow explicitly.
            pass

    # -- convenience constructors -------------------------------------

    @staticmethod
    def csv() -> "Dialect":
        """RFC 4180 CSV: comma, newline, double-quote enclosing."""
        return Dialect()

    @staticmethod
    def tsv() -> "Dialect":
        """Tab-separated values without quoting."""
        return Dialect(delimiter=b"\t", quote=None, doubled_quote=False)

    @staticmethod
    def pipe() -> "Dialect":
        """Pipe-separated values (common log/export format)."""
        return Dialect(delimiter=b"|", quote=None, doubled_quote=False)

    @staticmethod
    def csv_with_comments(comment: bytes = b"#") -> "Dialect":
        """RFC 4180 CSV extended with line comments/directives."""
        return Dialect(comment=comment)

    # -- derived views -------------------------------------------------

    @property
    def delimiter_byte(self) -> int:
        return self.delimiter[0]

    @property
    def record_delimiter_byte(self) -> int:
        return self.record_delimiter[0]

    @property
    def quote_byte(self) -> int | None:
        return None if self.quote is None else self.quote[0]

    @property
    def escape_byte(self) -> int | None:
        return None if self.escape is None else self.escape[0]

    @property
    def comment_byte(self) -> int | None:
        return None if self.comment is None else self.comment[0]

    def special_bytes(self) -> set[int]:
        """All byte values with syntactic meaning in this dialect."""
        out = {self.delimiter_byte, self.record_delimiter_byte}
        for value in (self.quote_byte, self.escape_byte, self.comment_byte):
            if value is not None:
                out.add(value)
        if self.strip_carriage_return:
            out.add(0x0D)
        return out
