"""DFA factories for CSV-style dialects.

:func:`rfc4180_dfa` builds the paper's six-state automaton (Table 1):
states ``EOR`` (record start), ``ENC`` (inside enclosed field), ``FLD``
(inside plain field), ``EOF`` (just after a field delimiter), ``ESC`` (just
read a quote inside an enclosed field), and the sink ``INV``; symbol groups
``\\n``, ``\"``, ``,`` and the catch-all ``*``.

:func:`dialect_dfa` generalises the construction to any
:class:`~repro.dfa.dialects.Dialect`, adding states for CRLF handling,
backslash escapes, and line comments as needed.  Comments are the feature
that defeats quote-counting parsers (paper §1): a quote inside a comment
must not toggle quotation scope.

Emission semantics (the Mealy outputs; see
:class:`~repro.dfa.automaton.Emission`):

* delimiters emit ``FIELD_DELIMITER`` / ``RECORD_DELIMITER`` only when they
  act as delimiters — inside an enclosed field they emit ``DATA``;
* enclosing quotes emit ``CONTROL`` (they are not part of the value), but
  the *second* quote of an RFC 4180 doubled pair emits ``DATA`` (one literal
  quote);
* every byte of a comment line, including its terminating newline, emits
  ``COMMENT`` — a comment line does not produce a record and does not
  count as record content.
"""

from __future__ import annotations

from repro.dfa.automaton import Dfa, Emission
from repro.dfa.builder import DfaBuilder
from repro.dfa.dialects import Dialect
from repro.errors import DialectError

__all__ = ["rfc4180_dfa", "dialect_dfa"]

CARRIAGE_RETURN = 0x0D


def rfc4180_dfa() -> Dfa:
    """The paper's RFC 4180 automaton, exactly as in Table 1.

    Six states (EOR, ENC, FLD, EOF, ESC, INV), four symbol groups
    (``\\n``, ``\"``, ``,``, ``*``), doubled-quote escaping, no CRLF or
    comment handling.
    """
    dfa = dialect_dfa(Dialect(strip_carriage_return=False))
    assert dfa.state_names == ("EOR", "ENC", "FLD", "EOF", "ESC", "INV")
    return dfa


def dialect_dfa(dialect: Dialect) -> Dfa:
    """Compile a :class:`Dialect` into a :class:`Dfa`.

    The state set adapts to the dialect: the six RFC 4180 states always
    exist (ENC/ESC only when quoting is enabled); ``CR`` is added for CRLF
    normalisation, ``COMMENT`` for line comments, and ``ESCU``/``ESCQ`` for
    backslash-style escapes outside/inside quotes.
    """
    b = DfaBuilder()

    has_quote = dialect.quote is not None
    has_comment = dialect.comment is not None
    has_escape = dialect.escape is not None
    has_cr = dialect.strip_carriage_return

    # State declaration order fixes ids; keep the paper's order for the
    # shared six so rfc4180_dfa() reproduces Table 1 exactly.
    b.state("EOR", accepting=True)
    if has_quote:
        b.state("ENC")
    b.state("FLD", accepting=True)
    b.state("EOF", accepting=True)
    if has_quote:
        b.state("ESC", accepting=True)
    b.invalid_state("INV")
    if has_cr:
        b.state("CR")
    if has_comment:
        b.state("COMMENT", accepting=True)
    if has_escape:
        b.state("ESCU")
        if has_quote:
            b.state("ESCQ")

    # Symbol groups, in the paper's order: record delimiter, quote, field
    # delimiter, then dialect extras, then the catch-all.
    b.group("EOL", dialect.record_delimiter)
    if has_quote:
        b.group("QUOTE", dialect.quote)
    b.group("DELIM", dialect.delimiter)
    if has_escape:
        b.group("ESCAPE", dialect.escape)
    if has_comment:
        b.group("COMMENT_SYM", dialect.comment)
    if has_cr:
        b.group("CR_SYM", bytes([CARRIAGE_RETURN]))
    b.catch_all("OTHER")

    field_delim = Emission.FIELD_DELIMITER
    record_delim = Emission.RECORD_DELIMITER
    data = Emission.DATA
    control = Emission.CONTROL

    # States from which a record delimiter actually ends a record.
    record_enders = ["EOR", "FLD", "EOF"] + (["ESC"] if has_quote else [])

    for state in record_enders:
        b.transition(state, "EOL", "EOR", record_delim)
        b.transition(state, "DELIM", "EOF", field_delim)
        if has_cr:
            b.transition(state, "CR_SYM", "CR", control)

    # Plain-field entry points: EOR and EOF accept field-starting bytes.
    for state in ("EOR", "EOF"):
        b.transition(state, "OTHER", "FLD", data)
        if has_quote:
            b.transition(state, "QUOTE", "ENC", control)
        if has_escape:
            b.transition(state, "ESCAPE", "ESCU", control)
    if has_comment:
        # A comment symbol only opens a comment at record start; after a
        # field delimiter it is ordinary field data.
        b.transition("EOR", "COMMENT_SYM", "COMMENT", Emission.COMMENT)
        b.transition("EOF", "COMMENT_SYM", "FLD", data)

    # Inside a plain field.
    b.transition("FLD", "OTHER", "FLD", data)
    if has_quote:
        # RFC 4180: a bare quote inside an unquoted field is invalid
        # (matches Table 1's FLD/'"' -> INV).
        b.transition("FLD", "QUOTE", "INV", control)
    if has_escape:
        b.transition("FLD", "ESCAPE", "ESCU", control)
    if has_comment:
        b.transition("FLD", "COMMENT_SYM", "FLD", data)

    if has_quote:
        # Inside an enclosed field: everything is data except the quote
        # (and the escape byte, when configured).
        b.transition("ENC", "EOL", "ENC", data)
        b.transition("ENC", "DELIM", "ENC", data)
        b.transition("ENC", "OTHER", "ENC", data)
        b.transition("ENC", "QUOTE", "ESC", control)
        if has_comment:
            b.transition("ENC", "COMMENT_SYM", "ENC", data)
        if has_cr:
            b.transition("ENC", "CR_SYM", "ENC", data)
        if has_escape:
            b.transition("ENC", "ESCAPE", "ESCQ", control)

        # Just read a quote inside an enclosed field: either it closed the
        # field (delimiter / record delimiter follows) or, with RFC 4180
        # doubling, a second quote makes it a literal quote.
        if dialect.doubled_quote:
            b.transition("ESC", "QUOTE", "ENC", data)
        # Other ESC transitions (OTHER, COMMENT_SYM, ESCAPE) fall through
        # to INV via the builder default: garbage after a closing quote.

    if has_cr:
        # CR is only valid as part of a CRLF record delimiter.
        b.transition("CR", "EOL", "EOR", record_delim)

    if has_comment:
        # Comment-line content never constitutes record content.
        comment = Emission.COMMENT
        b.transition("COMMENT", "EOL", "EOR", comment)
        b.transition("COMMENT", "DELIM", "COMMENT", comment)
        b.transition("COMMENT", "OTHER", "COMMENT", comment)
        b.transition("COMMENT", "COMMENT_SYM", "COMMENT", comment)
        if has_quote:
            b.transition("COMMENT", "QUOTE", "COMMENT", comment)
        if has_cr:
            b.transition("COMMENT", "CR_SYM", "COMMENT", comment)
        if has_escape:
            b.transition("COMMENT", "ESCAPE", "COMMENT", comment)

    if has_escape:
        # The byte after an escape introducer is literal data, whatever it
        # is; afterwards parsing resumes in the surrounding context.
        for group in _all_groups(dialect):
            b.transition("ESCU", group, "FLD", data)
        if has_quote:
            for group in _all_groups(dialect):
                b.transition("ESCQ", group, "ENC", data)

    b.start("EOR")
    dfa = b.build()
    if dfa.num_states > 32:
        raise DialectError("dialect compiles to more than 32 states")
    return dfa


def _all_groups(dialect: Dialect) -> list[str]:
    """Names of every symbol group the dialect's DFA defines."""
    groups = ["EOL"]
    if dialect.quote is not None:
        groups.append("QUOTE")
    groups.append("DELIM")
    if dialect.escape is not None:
        groups.append("ESCAPE")
    if dialect.comment is not None:
        groups.append("COMMENT_SYM")
    if dialect.strip_carriage_return:
        groups.append("CR_SYM")
    groups.append("OTHER")
    return groups
