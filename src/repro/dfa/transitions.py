"""State-transition vector algebra (paper §3.1).

A chunk's *state-transition vector* (STV) summarises the chunk's effect on
the automaton: entry ``i`` is the state reached after reading the chunk
having started in state ``i``.  STVs form a monoid under composition
``(a ∘ b)[i] = b[a[i]]`` — apply chunk A, then chunk B — with the identity
mapping each state to itself.  The exclusive prefix scan of per-chunk STVs
under this operation yields, for every chunk, the state the sequential
automaton would be in when *entering* that chunk (for every hypothetical
global start state).

This module provides the scalar algebra; the vectorised counterpart lives in
:mod:`repro.scan.numpy_scan` and the batched STV computation in
:mod:`repro.core.context`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dfa.automaton import Dfa, Emission

__all__ = ["identity_vector", "compose", "transition_vector", "simulate"]


def identity_vector(num_states: int) -> tuple[int, ...]:
    """The identity STV: every state maps to itself."""
    return tuple(range(num_states))


def compose(first: Sequence[int], second: Sequence[int]) -> tuple[int, ...]:
    """Compose two STVs: apply ``first``, then ``second``.

    >>> compose((1, 0, 2), (2, 2, 0))
    (2, 2, 0)
    """
    if len(first) != len(second):
        raise ValueError("cannot compose vectors of different lengths")
    return tuple(second[s] for s in first)


def transition_vector(dfa: Dfa, chunk: bytes | np.ndarray) -> tuple[int, ...]:
    """Compute one chunk's STV by simulating a DFA instance per state.

    This is the per-thread phase-1 work of the paper: the thread reads its
    chunk once, transitioning all ``|S|`` DFA instances in lock step.
    """
    return dfa.transition_vector(chunk)


def simulate(dfa: Dfa, data: bytes | np.ndarray,
             start_state: int | None = None) -> tuple[int, list[Emission]]:
    """Sequential reference simulation (delegates to the DFA)."""
    return dfa.simulate(data, start_state)
