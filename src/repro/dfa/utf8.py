"""Massively parallel UTF-8 validation on the ParPaRaw machinery.

Paper §4.2 handles UTF-8 at chunk boundaries; this module goes one step
further and demonstrates that the *whole approach* — express the format as
a DFA, compute per-chunk state-transition vectors, recover every chunk's
context with one composition scan — applies verbatim to a different
problem: validating UTF-8 well-formedness in parallel.

:func:`utf8_validation_dfa` builds the 9-state byte-level automaton
(equivalent to Björn Höhrmann's classic table: states for "expecting N
continuation bytes" plus the E0/ED/F0/F4 special states that exclude
overlong encodings and surrogates), with its 12 byte classes as symbol
groups.  :func:`validate_utf8` then runs the standard ParPaRaw phase 1
over any chunk size and accepts iff the recovered final state is the
start state — bit-for-bit agreement with Python's strict decoder is
property tested.
"""

from __future__ import annotations

import numpy as np

from repro.dfa.automaton import Dfa, Emission
from repro.dfa.builder import DfaBuilder

__all__ = ["utf8_validation_dfa", "validate_utf8"]

_D = Emission.DATA


def utf8_validation_dfa() -> Dfa:
    """The RFC 3629 byte-level validation automaton.

    States: ``OK`` (between code points, accepting), ``S1``/``S2``/``S3``
    (1/2/3 continuation bytes outstanding, any value), and the four
    constrained first-continuation states ``E0``/``ED``/``F0``/``F4``
    that reject overlong encodings (E0 80-9F, F0 80-8F), UTF-16
    surrogates (ED A0-BF) and code points beyond U+10FFFF (F4 90-BF).
    """
    b = DfaBuilder()
    b.state("OK", accepting=True)
    b.state("S1")
    b.state("S2")
    b.state("S3")
    b.state("E0")
    b.state("ED")
    b.state("F0")
    b.state("F4")
    b.invalid_state("INV")

    b.group("ASCII", bytes(range(0x00, 0x80)))
    b.group("C_80_8F", bytes(range(0x80, 0x90)))
    b.group("C_90_9F", bytes(range(0x90, 0xA0)))
    b.group("C_A0_BF", bytes(range(0xA0, 0xC0)))
    b.group("L2", bytes(range(0xC2, 0xE0)))
    b.group("E0_LEAD", b"\xe0")
    b.group("L3", bytes(range(0xE1, 0xED)) + b"\xee\xef")
    b.group("ED_LEAD", b"\xed")
    b.group("F0_LEAD", b"\xf0")
    b.group("L4", bytes(range(0xF1, 0xF4)))
    b.group("F4_LEAD", b"\xf4")
    b.group("BAD", b"\xc0\xc1" + bytes(range(0xF5, 0x100)))

    # Between code points: leads dispatch, continuations are malformed.
    b.transition("OK", "ASCII", "OK", _D)
    b.transition("OK", "L2", "S1", _D)
    b.transition("OK", "E0_LEAD", "E0", _D)
    b.transition("OK", "L3", "S2", _D)
    b.transition("OK", "ED_LEAD", "ED", _D)
    b.transition("OK", "F0_LEAD", "F0", _D)
    b.transition("OK", "L4", "S3", _D)
    b.transition("OK", "F4_LEAD", "F4", _D)

    # Unconstrained continuation chains.
    for group in ("C_80_8F", "C_90_9F", "C_A0_BF"):
        b.transition("S1", group, "OK", _D)
        b.transition("S2", group, "S1", _D)
        b.transition("S3", group, "S2", _D)

    # Constrained first continuations.
    b.transition("E0", "C_A0_BF", "S1", _D)          # no overlong 3-byte
    b.transition("ED", "C_80_8F", "S1", _D)          # no surrogates
    b.transition("ED", "C_90_9F", "S1", _D)
    b.transition("F0", "C_90_9F", "S2", _D)          # no overlong 4-byte
    b.transition("F0", "C_A0_BF", "S2", _D)
    b.transition("F4", "C_80_8F", "S2", _D)          # <= U+10FFFF

    # Everything unspecified falls into INV via the builder default.
    b.start("OK")
    return b.build()


def validate_utf8(data: bytes | np.ndarray,
                  chunk_size: int = 31) -> bool:
    """Validate UTF-8 well-formedness, data-parallel.

    Runs ParPaRaw phase 1 — per-chunk state-transition vectors + the
    composition scan — over the validation automaton, exactly like the
    parsing pipeline; truncated inputs (ending mid code point) and any
    malformed byte are rejected.

    >>> validate_utf8("grüße 😀".encode("utf-8"))
    True
    >>> validate_utf8(b"\\xc3")      # truncated two-byte sequence
    False
    >>> validate_utf8(b"\\xed\\xa0\\x80")  # UTF-16 surrogate
    False
    """
    # Deliberate upward imports: this validator *demonstrates* the parsing
    # pipeline on a second DFA family, so it borrows the chunking/scan
    # machinery; module-level imports would create a dfa<->core cycle.
    from repro.core.chunking import chunk_groups  # parlint: disable=PPR503 -- demo of pipeline reuse, lazy to avoid cycle
    from repro.core.context import compute_transition_vectors  # parlint: disable=PPR503 -- demo of pipeline reuse, lazy to avoid cycle
    from repro.scan.numpy_scan import scan_transition_vectors  # parlint: disable=PPR503 -- demo of pipeline reuse, lazy to avoid cycle

    dfa = utf8_validation_dfa()
    buf = np.frombuffer(bytes(data), dtype=np.uint8) \
        if not isinstance(data, np.ndarray) else data
    groups, chunking, padded = chunk_groups(buf, dfa, chunk_size)
    vectors = compute_transition_vectors(groups, padded)
    final = scan_transition_vectors(vectors, exclusive=False)
    end_state = int(final[-1, dfa.start_state])
    return dfa.is_accepting(end_state)
